"""Repository-level pytest configuration.

Lives at the repo root (not under ``tests/``) because
``pytest_addoption`` must be defined in an *initial* conftest — one
pytest discovers before collecting any test file, wherever the run was
invoked from.

Adds the ``--runslow`` flag gating the ``slow`` marker: the exhaustive
crash matrix in ``tests/test_durability.py`` (every crash point × shard
count × compaction policy) is minutes of copytree-heavy I/O, so the
default tier-1 run keeps only its quick subset and CI's dedicated
fault-injection job opts into the rest.
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    """Register ``--runslow`` (off by default)."""
    parser.addoption(
        "--runslow",
        action="store_true",
        default=False,
        help="also run tests marked slow (e.g. the full durability crash matrix)",
    )


def pytest_configure(config):
    """Declare the ``slow`` marker so ``--strict-markers`` stays clean."""
    config.addinivalue_line(
        "markers", "slow: long-running test, skipped unless --runslow is given"
    )


def pytest_collection_modifyitems(config, items):
    """Skip ``slow``-marked tests unless ``--runslow`` was passed."""
    if config.getoption("--runslow"):
        return
    skip_slow = pytest.mark.skip(reason="needs --runslow")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)
