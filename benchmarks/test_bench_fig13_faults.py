"""Benchmark E8 — Fig 13: fault recovery during PageRank.

Paper: three injected task failures all recover within 12 seconds.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.fig13_faults import RECOVERY_BOUND_S, run_fig13


def test_bench_fig13_faults(benchmark, bench_scale):
    result = run_once(benchmark, run_fig13, scale=bench_scale)
    print()
    print(result.to_text())
    failures = result.rows[:-1]
    worst = max(row[3] for row in failures)
    benchmark.extra_info["num_failures"] = len(failures)
    benchmark.extra_info["worst_recovery_s"] = worst
    assert worst <= RECOVERY_BOUND_S
