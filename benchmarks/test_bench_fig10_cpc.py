"""Benchmark E5 — Fig 10: CPC filter-threshold sweep (runtime vs error)."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.fig10_cpc import run_fig10


def test_bench_fig10_cpc(benchmark, bench_scale):
    result = run_once(benchmark, run_fig10, scale=bench_scale)
    print()
    print(result.to_text())
    final = {}
    for ft, iteration, cumulative, error, _ in result.rows:
        final[ft] = (cumulative, error)
    for ft, (cumulative, error) in final.items():
        benchmark.extra_info[f"ft{ft}_time_s"] = cumulative
        benchmark.extra_info[f"ft{ft}_mean_error"] = error
    # Larger threshold -> faster (the Fig 10a ordering).
    assert final[1.0][0] <= final[0.1][0]
