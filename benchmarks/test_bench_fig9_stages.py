"""Benchmark E3 — Fig 9: PageRank per-stage breakdown.

Paper savings vs PlainMR: iterMR map -51%, shuffle -74%, reduce -88%;
i2MR cuts map/shuffle/sort hardest but pays MRBG-Store cost in reduce.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.fig9_stages import run_fig9


def test_bench_fig9_stages(benchmark, bench_scale):
    result = run_once(benchmark, run_fig9, scale=bench_scale)
    print()
    print(result.to_text())
    for stage, plain, itermr, i2mr, *_ in result.rows:
        benchmark.extra_info[f"{stage}_plainmr_s"] = plain
        benchmark.extra_info[f"{stage}_itermr_s"] = itermr
        benchmark.extra_info[f"{stage}_i2mr_s"] = i2mr
    rows = {row[0]: row for row in result.rows}
    assert rows["reduce"][3] > rows["reduce"][2]  # store cost shows up
