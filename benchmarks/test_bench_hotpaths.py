"""Benchmark — hot paths: codec MB/s, store merge ops/s, shuffle records/s,
and fig8 end-to-end host wall-clock.

This is the perf-regression harness started by the hot-path overhaul PR:
it writes ``BENCH_hotpaths.json`` at the repository root so the perf
trajectory is tracked from that PR forward.  Two kinds of baselines are
recorded alongside the current numbers:

- the **legacy codec** (the original recursive, if-chain implementation)
  is carried inside this module as a reference and measured in the same
  run, so the codec speedup is host-independent and asserted (≥ 2×);
- end-to-end numbers are compared against
  ``benchmarks/baseline_hotpaths.json``, measured on the pre-PR tree —
  both numbers land in ``BENCH_hotpaths.json``, the comparison is
  informational when the host differs from the one that measured the
  baseline.

Run it alone with::

    REPRO_BENCH_SCALE=test python -m pytest benchmarks/test_bench_hotpaths.py -s
"""

from __future__ import annotations

import json
import os
import platform
import random
import struct
import sys
import tempfile
import time

from benchmarks.conftest import bench_out_path, run_once
from repro.common.kvpair import Op, merge_sorted_runs, sort_records
from repro.experiments.fig8_overall import run_workload
from repro.mrbgraph.chunk import decode_chunk, encode_chunk
from repro.mrbgraph.graph import DeltaEdge, Edge
from repro.mrbgraph.store import MRBGStore

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_OUT_NAME = "BENCH_hotpaths.json"
_BASELINE_PATH = os.path.join(_ROOT, "benchmarks", "baseline_hotpaths.json")


def _record(section: str, payload: dict) -> None:
    """Merge one section into ``BENCH_hotpaths.json``."""
    out_path = bench_out_path(_OUT_NAME)
    doc = {}
    if os.path.exists(out_path):
        with open(out_path) as fh:
            doc = json.load(fh)
    doc.setdefault("schema", "bench-hotpaths/1")
    doc["host"] = {
        "python": sys.version.split()[0],
        "machine": platform.machine(),
        "bench_scale": os.environ.get("REPRO_BENCH_SCALE", "test"),
    }
    doc[section] = payload
    with open(out_path, "w") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")


def _baseline(section: str) -> dict:
    if not os.path.exists(_BASELINE_PATH):
        return {}
    with open(_BASELINE_PATH) as fh:
        return json.load(fh).get(section, {})


# ---------------------------------------------------------------------- #
# legacy codec reference (the pre-overhaul implementation, verbatim)     #
# ---------------------------------------------------------------------- #

_U32 = struct.Struct("<I")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")


def _legacy_encode_into(value, out):
    if value is None:
        out.append(0x00)
    elif value is True:
        out.append(0x01)
    elif value is False:
        out.append(0x02)
    elif isinstance(value, int):
        out.append(0x03)
        out += _I64.pack(value)
    elif isinstance(value, float):
        out.append(0x04)
        out += _F64.pack(value)
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out.append(0x05)
        out += _U32.pack(len(raw))
        out += raw
    elif isinstance(value, bytes):
        out.append(0x06)
        out += _U32.pack(len(value))
        out += value
    elif isinstance(value, tuple):
        out.append(0x07)
        out += _U32.pack(len(value))
        for item in value:
            _legacy_encode_into(item, out)
    elif isinstance(value, list):
        out.append(0x08)
        out += _U32.pack(len(value))
        for item in value:
            _legacy_encode_into(item, out)


def _legacy_decode_at(buf, offset):
    tag = buf[offset]
    offset += 1
    if tag == 0x00:
        return None, offset
    if tag == 0x01:
        return True, offset
    if tag == 0x02:
        return False, offset
    if tag == 0x03:
        return _I64.unpack_from(buf, offset)[0], offset + 8
    if tag == 0x04:
        return _F64.unpack_from(buf, offset)[0], offset + 8
    if tag == 0x05:
        (length,) = _U32.unpack_from(buf, offset)
        offset += 4
        return buf[offset : offset + length].decode("utf-8"), offset + length
    if tag == 0x06:
        (length,) = _U32.unpack_from(buf, offset)
        offset += 4
        return bytes(buf[offset : offset + length]), offset + length
    if tag in (0x07, 0x08):
        (length,) = _U32.unpack_from(buf, offset)
        offset += 4
        items = []
        for _ in range(length):
            item, offset = _legacy_decode_at(buf, offset)
            items.append(item)
        return (tuple(items) if tag == 0x07 else items), offset
    raise ValueError(f"unknown tag 0x{tag:02x}")


def _legacy_encode_chunk(k2, entries):
    body = bytearray()
    _legacy_encode_into((k2, [(mk, v) for mk, v in entries]), body)
    return _U32.pack(len(body)) + bytes(body)


def _legacy_decode_chunk(raw):
    (length,) = _U32.unpack_from(raw, 0)
    pair, _ = _legacy_decode_at(raw, 4)
    k2, payload = pair
    return k2, [Edge(mk, v) for mk, v in payload], 4 + length


def _codec_workload():
    rng = random.Random(42)
    return [
        (k2, [Edge(mk, rng.random() * 100.0) for mk in range(64)])
        for k2 in range(400)
    ]


def _throughput(fn, reps: int = 5) -> float:
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_bench_codec(benchmark):
    chunks = _codec_workload()
    raws = [encode_chunk(k2, entries) for k2, entries in chunks]
    total_bytes = sum(len(raw) for raw in raws)
    for (k2, entries), raw in zip(chunks, raws):
        assert _legacy_encode_chunk(k2, entries) == raw
        assert _legacy_decode_chunk(raw)[:2] == decode_chunk(raw)[:2]

    def encode_all():
        for k2, entries in chunks:
            encode_chunk(k2, entries)

    def decode_all():
        for raw in raws:
            decode_chunk(raw)

    def legacy_encode_all():
        for k2, entries in chunks:
            _legacy_encode_chunk(k2, entries)

    def legacy_decode_all():
        for raw in raws:
            _legacy_decode_chunk(raw)

    enc_s = _throughput(encode_all)
    dec_s = _throughput(decode_all)
    legacy_enc_s = _throughput(legacy_encode_all)
    legacy_dec_s = _throughput(legacy_decode_all)
    run_once(benchmark, encode_all)

    payload = {
        "payload_bytes": total_bytes,
        "encode_MBps": round(total_bytes / enc_s / 1e6, 2),
        "decode_MBps": round(total_bytes / dec_s / 1e6, 2),
        "legacy_encode_MBps": round(total_bytes / legacy_enc_s / 1e6, 2),
        "legacy_decode_MBps": round(total_bytes / legacy_dec_s / 1e6, 2),
        "encode_speedup": round(legacy_enc_s / enc_s, 2),
        "decode_speedup": round(legacy_dec_s / dec_s, 2),
        "pre_pr_baseline": _baseline("codec"),
    }
    _record("codec", payload)
    benchmark.extra_info.update(payload)
    print(
        f"\ncodec: encode {payload['encode_MBps']} MB/s "
        f"(x{payload['encode_speedup']} vs legacy), "
        f"decode {payload['decode_MBps']} MB/s (x{payload['decode_speedup']})"
    )
    assert payload["encode_speedup"] >= 2.0, "codec encode lost its ≥2x win"
    assert payload["decode_speedup"] >= 2.0, "codec decode lost its ≥2x win"


def test_bench_store_merge(benchmark):
    with tempfile.TemporaryDirectory() as tmp:
        store = MRBGStore(tmp)
        store.build(
            (k2, [Edge(mk, float(mk)) for mk in range(32)]) for k2 in range(2000)
        )
        deltas = [
            (k2, [DeltaEdge(1, 9.9, Op.INSERT)]) for k2 in range(0, 2000, 2)
        ]

        def merge_all():
            count = 0
            for _ in store.merge_delta(deltas):
                count += 1
            return count

        ops = run_once(benchmark, merge_all)
        t0 = time.perf_counter()
        rounds = 3
        for _ in range(rounds):
            assert merge_all() == ops
        merge_s = time.perf_counter() - t0
        ops *= rounds
        t0 = time.perf_counter()
        store.compact()
        compact_s = time.perf_counter() - t0
        store.close()

    payload = {
        "ops_per_s": round(ops / merge_s, 1),
        "compact_s": round(compact_s, 4),
        "pre_pr_baseline": _baseline("store_merge"),
    }
    _record("store_merge", payload)
    benchmark.extra_info.update(payload)
    print(f"\nstore merge: {payload['ops_per_s']} ops/s, compact {compact_s:.4f}s")


def test_bench_shuffle(benchmark):
    rng = random.Random(42)
    keys = [
        (rng.randrange(500), "suffix-%d" % rng.randrange(50)) for _ in range(20000)
    ]
    records = [(key, i * 0.5) for i, key in enumerate(keys)]

    def shuffle_round():
        runs = [sort_records(records[i::8]) for i in range(8)]
        return merge_sorted_runs(runs)

    merged = run_once(benchmark, shuffle_round)
    assert len(merged) == len(records)
    best_s = _throughput(shuffle_round, reps=3)
    payload = {
        "records_per_s": round(len(records) / best_s, 1),
        "pre_pr_baseline": _baseline("shuffle"),
    }
    _record("shuffle", payload)
    benchmark.extra_info.update(payload)
    print(f"\nshuffle: {payload['records_per_s']} records/s")


def test_bench_fig8_end_to_end(benchmark, bench_scale):
    t0 = time.perf_counter()
    times = run_once(benchmark, run_workload, "pagerank", scale=bench_scale)
    wall_s = time.perf_counter() - t0
    baseline = _baseline("fig8")
    payload = {
        "workload": "pagerank",
        "scale": bench_scale,
        "wall_clock_s": round(wall_s, 3),
        "pre_pr_baseline": baseline,
        "simulated": {k: round(v, 2) for k, v in times.items()},
    }
    if baseline.get("wall_clock_s") and bench_scale == baseline.get("scale"):
        payload["speedup_vs_pre_pr"] = round(baseline["wall_clock_s"] / wall_s, 2)
        # Simulated times are the determinism contract — identical to the
        # pre-PR run modulo the (deterministic) new index-I/O accounting.
        assert payload["simulated"] == baseline.get("simulated", payload["simulated"])
    _record("fig8", payload)
    benchmark.extra_info.update(
        {k: v for k, v in payload.items() if not isinstance(v, dict)}
    )
    print(f"\nfig8 end-to-end: {wall_s:.3f}s wall-clock "
          f"(pre-PR baseline {baseline.get('wall_clock_s', 'n/a')}s)")
