"""Benchmark E7 — Fig 12 / Table 5: PlainMR vs iterMR vs Spark across
graph sizes; Spark wins small, loses once memory is exhausted."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.fig12_spark import run_fig12


def test_bench_fig12_spark(benchmark, bench_scale):
    result = run_once(benchmark, run_fig12, scale=bench_scale)
    print()
    print(result.to_text())
    for label, _, plain, itermr, spark, spill in result.rows:
        benchmark.extra_info[f"{label}_plainmr_s"] = plain
        benchmark.extra_info[f"{label}_itermr_s"] = itermr
        benchmark.extra_info[f"{label}_spark_s"] = spark
    rows = {row[0]: row for row in result.rows}
    assert rows["clueweb-xs"][4] < rows["clueweb-xs"][3]  # Spark wins small
    assert rows["clueweb-l"][5] != "0%"  # Spark spills at the top end
