"""Benchmark — sharded MRBG-Store: merge/compact/incremental-round
throughput across shard counts (1/2/4/8) and execution backends
(serial/thread/process).

Writes ``BENCH_sharding.json`` at the repository root (the sibling of
``BENCH_hotpaths.json``); ``tools/bench_report.py`` renders both.  Every
combination is also checked for *correctness*: merged results, final
chunk contents and index bytes must be identical whatever the shard
count or backend — throughput may move, bytes may not.

Run it alone with::

    REPRO_BENCH_SCALE=test python -m pytest benchmarks/test_bench_sharding.py -s
"""

from __future__ import annotations

import json
import os
import platform
import sys
import tempfile
import time

from benchmarks.conftest import bench_out_path, run_once
from repro.common.kvpair import Op
from repro.execution import resolve_executor
from repro.mrbgraph.graph import DeltaEdge, Edge
from repro.mrbgraph.sharding import ShardedMRBGStore

_OUT_NAME = "BENCH_sharding.json"

SHARD_COUNTS = (1, 2, 4, 8)
BACKENDS = ("serial", "thread", "process")

#: per-scale store shape: (chunks, edges_per_chunk, merge_rounds).
_SCALES = {
    "test": (1500, 16, 2),
    "small": (6000, 32, 3),
    "medium": (20000, 32, 3),
}


def _record(section: str, payload: dict) -> None:
    """Merge one section into ``BENCH_sharding.json``."""
    out_path = bench_out_path(_OUT_NAME)
    doc = {}
    if os.path.exists(out_path):
        with open(out_path) as fh:
            doc = json.load(fh)
    doc.setdefault("schema", "bench-sharding/1")
    doc["host"] = {
        "python": sys.version.split()[0],
        "machine": platform.machine(),
        "bench_scale": os.environ.get("REPRO_BENCH_SCALE", "test"),
    }
    doc[section] = payload
    with open(out_path, "w") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")


def _store_workload(bench_scale):
    chunks, edges, rounds = _SCALES.get(bench_scale, _SCALES["test"])
    build = [
        (k2, [Edge(mk, float(k2 + mk)) for mk in range(edges)])
        for k2 in range(chunks)
    ]
    deltas = [
        sorted(
            (k2, [DeltaEdge(1, float(generation), Op.INSERT)])
            for k2 in range(0, chunks, 2)
        )
        for generation in range(rounds)
    ]
    return build, deltas


def _drive_store(build, deltas, num_shards, backend):
    """One merge+compact cycle: wall-clock, simulated placement, digest.

    Wall-clock is the host-dependent part; the *simulated* stage times
    come from the locality-aware shard placement
    (:func:`repro.cluster.scheduler.schedule_shard_stage`) and are
    byte-identical whatever backend executed the fan-out — they are the
    deterministic scaling claim the report tracks.
    """
    with tempfile.TemporaryDirectory() as tmp:
        store = ShardedMRBGStore(
            os.path.join(tmp, "store"), num_shards=num_shards, executor=backend
        )
        store.build(iter(build))

        t0 = time.perf_counter()
        merged = 0
        sim_merge_elapsed = 0.0
        sim_merge_serial = 0.0
        for delta in deltas:
            for _ in store.merge_delta(delta):
                merged += 1
            schedule = store.last_schedule
            sim_merge_elapsed += schedule.elapsed_s
            sim_merge_serial += sum(schedule.worker_loads)
        merge_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        schedule = store.compact()
        compact_s = time.perf_counter() - t0
        sim_compact_elapsed = schedule.elapsed_s
        sim_compact_serial = sum(schedule.worker_loads)

        t0 = time.perf_counter()
        index_bytes = store.save_index()
        flush_s = time.perf_counter() - t0

        assert index_bytes > 0
        # Index bytes vary with shard count (one header per shard); the
        # chunk payload must not.
        digest = (
            merged,
            store.live_bytes(),
            store.get_chunk(0),
            store.get_chunk(len(build) // 2),
        )
        store.close()
    wall = (merge_s, compact_s, flush_s)
    simulated = (
        sim_merge_elapsed,
        sim_merge_serial,
        sim_compact_elapsed,
        sim_compact_serial,
    )
    return wall, simulated, digest


def test_bench_shard_maintenance(benchmark, bench_scale):
    build, deltas = _store_workload(bench_scale)
    backends = {name: resolve_executor(name) for name in BACKENDS}

    wall_results: dict = {name: {} for name in BACKENDS}
    simulated_by_shards: dict = {}
    reference = None
    for name, backend in backends.items():
        for shards in SHARD_COUNTS:
            wall, simulated, digest = _drive_store(build, deltas, shards, backend)
            if reference is None:
                reference = digest
            # Correctness: bytes and results never move with shards/backend.
            assert digest == reference, (name, shards)
            merge_s, compact_s, flush_s = wall
            merged_ops = digest[0]
            wall_results[name][str(shards)] = {
                "merge_ops_per_s": round(merged_ops / merge_s, 1),
                "compact_s": round(compact_s, 4),
                "index_flush_s": round(flush_s, 4),
            }
            # Simulated placement is part of the determinism contract:
            # identical whichever backend ran the batch.
            key = str(shards)
            if key in simulated_by_shards:
                assert simulated_by_shards[key]["_raw"] == simulated, (name, shards)
            else:
                merge_el, merge_serial, compact_el, compact_serial = simulated
                simulated_by_shards[key] = {
                    "_raw": simulated,
                    "merge_elapsed_s": round(merge_el, 6),
                    "compact_elapsed_s": round(compact_el, 6),
                    "compact_serial_s": round(compact_serial, 6),
                    "merge_parallel_speedup": round(
                        merge_serial / merge_el, 2
                    ) if merge_el else 1.0,
                    "compact_parallel_speedup": round(
                        compact_serial / compact_el, 2
                    ) if compact_el else 1.0,
                }

    for row in simulated_by_shards.values():
        del row["_raw"]

    # The deterministic scaling claim: spreading a store over more shards
    # shrinks the simulated merge/compact stage elapsed (locality-aware
    # parallel placement), monotonically up to the worker count.
    most = str(SHARD_COUNTS[-1])
    assert (
        simulated_by_shards[most]["compact_elapsed_s"]
        < simulated_by_shards["1"]["compact_elapsed_s"]
    )
    assert (
        simulated_by_shards[most]["merge_elapsed_s"]
        < simulated_by_shards["1"]["merge_elapsed_s"]
    )

    payload = {
        "shard_counts": list(SHARD_COUNTS),
        "wall_clock": wall_results,
        "simulated": simulated_by_shards,
    }
    _record("shard_maintenance", payload)
    benchmark.extra_info.update({"simulated": simulated_by_shards})
    run_once(benchmark, lambda: None)
    for name in BACKENDS:
        row = ", ".join(
            f"{shards}sh {wall_results[name][str(shards)]['merge_ops_per_s']} ops/s"
            f"/{wall_results[name][str(shards)]['compact_s']}s"
            for shards in SHARD_COUNTS
        )
        print(f"\nshard maintenance wall-clock [{name}]: {row}")
    print(
        "simulated stage elapsed (any backend): "
        + ", ".join(
            f"{shards}sh merge {simulated_by_shards[str(shards)]['merge_elapsed_s']}s"
            f"/compact {simulated_by_shards[str(shards)]['compact_elapsed_s']}s"
            f" (x{simulated_by_shards[str(shards)]['compact_parallel_speedup']})"
            for shards in SHARD_COUNTS
        )
    )
    for backend in backends.values():
        backend.close()


def test_bench_shard_incremental_round(benchmark, bench_scale):
    """End-to-end incremental PageRank round, shards × backends.

    Every combination records a digest of its refreshed state in the
    JSON payload — the correctness record must be present whether or
    not the combination won its wall-clock race (a process pool losing
    to serial on a small workload is expected, a digest mismatch is
    not).
    """
    import hashlib

    from repro.algorithms.pagerank import PageRank
    from repro.datasets.graphs import mutate_web_graph, powerlaw_web_graph
    from repro.experiments.harness import make_cluster
    from repro.inciter.engine import I2MREngine, I2MROptions
    from repro.iterative.api import IterativeJob

    vertices = {"test": 300, "small": 1000, "medium": 4000}.get(bench_scale, 300)
    graph = powerlaw_web_graph(vertices, 6.0, seed=3)
    delta = mutate_web_graph(graph, 0.05, seed=9)

    results: dict = {}
    reference_state = None
    for name in BACKENDS:
        results[name] = {}
        for shards in (1, 4):
            cluster, dfs = make_cluster(num_workers=4, seed=7)
            job = IterativeJob(
                PageRank(), graph, num_partitions=4,
                max_iterations=20, epsilon=1e-6,
            )
            engine = I2MREngine(cluster, dfs, executor=name, num_shards=shards)
            _, prev = engine.run_initial(job)
            t0 = time.perf_counter()
            engine.run_incremental(
                job, delta.records, prev,
                I2MROptions(filter_threshold=1e-4, max_iterations=10,
                            epsilon=1e-6),
            )
            round_s = time.perf_counter() - t0
            state = sorted(prev.state.items())
            if reference_state is None:
                reference_state = state
            assert state == reference_state, (name, shards)
            prev.cleanup()
            engine.close()
            results[name][str(shards)] = {
                "round_s": round(round_s, 4),
                "delta_records_per_s": round(len(delta.records) / round_s, 1),
                "state_digest": hashlib.sha256(
                    repr(state).encode()
                ).hexdigest()[:16],
            }

    # The digest is recorded unconditionally — even when a pool backend
    # loses the wall-clock race to serial — and must agree everywhere.
    digests = {
        (name, shards): results[name][shards]["state_digest"]
        for name in results
        for shards in results[name]
    }
    assert len(set(digests.values())) == 1, digests
    slowest = max(
        ((name, shards) for name in results for shards in results[name]),
        key=lambda pair: results[pair[0]][pair[1]]["round_s"],
    )
    assert "state_digest" in results[slowest[0]][slowest[1]]

    payload = {"vertices": vertices, "backends": results}
    _record("incremental_round", payload)
    benchmark.extra_info.update({"incremental_round": results})
    run_once(benchmark, lambda: None)
    for name in BACKENDS:
        print(
            f"\nincremental round [{name}]: "
            + ", ".join(
                f"{shards}sh {results[name][shards]['round_s']}s"
                for shards in ("1", "4")
            )
        )
