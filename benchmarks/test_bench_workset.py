"""Benchmark — workset (delta) iteration: execution-footprint collapse.

Two sections land in ``BENCH_workset.json`` at the repository root
(rendered by ``tools/bench_report.py``):

- ``superstep_collapse``: converging PageRank on a cascade DAG whose
  vertices each own a distinct prime-task partition.  Rank changes die
  out level by level, so the per-superstep scheduled-map-task and
  touched-vertex series must collapse *strictly* to zero — the
  acceptance claim of workset execution (a full-sweep engine would
  schedule the constant partition count every superstep).
- ``frontier_savings``: SSSP to the exact fixpoint on a power-law
  graph, full sweep vs workset; total scheduled tasks and touched
  vertices quantify the work the dirty frontier avoids, with identical
  final state.

Run it alone with::

    REPRO_BENCH_SCALE=test python -m pytest benchmarks/test_bench_workset.py -s
"""

from __future__ import annotations

import json
import os
import platform
import sys

from benchmarks.conftest import bench_out_path, run_once
from repro.algorithms.pagerank import PageRank
from repro.algorithms.sssp import SSSP
from repro.common.hashing import partition_for
from repro.datasets.graphs import WebGraph, powerlaw_web_graph, weighted_graph_from
from repro.iterative.api import IterativeJob
from repro.iterative.engine import IterMREngine

from tests.conftest import fresh_cluster

_OUT_NAME = "BENCH_workset.json"

#: per-scale shapes: (chain depth, powerlaw vertices).
_SCALES = {
    "test": (12, 300),
    "small": (24, 1000),
    "medium": (48, 4000),
}


def _record(section: str, payload: dict) -> None:
    """Merge one section into ``BENCH_workset.json``."""
    out_path = bench_out_path(_OUT_NAME)
    doc = {}
    if os.path.exists(out_path):
        with open(out_path) as fh:
            doc = json.load(fh)
    doc.setdefault("schema", "bench-workset/1")
    doc["host"] = {
        "python": sys.version.split()[0],
        "machine": platform.machine(),
        "bench_scale": os.environ.get("REPRO_BENCH_SCALE", "test"),
    }
    doc[section] = payload
    with open(out_path, "w") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")


def _cascade_graph(depth: int) -> WebGraph:
    """A transitive-tournament DAG, one prime-task partition per vertex.

    Vertex ``i`` links to every later vertex, so rank ``i`` reaches its
    fixpoint exactly one superstep after ranks ``0..i-1`` do — the dirty
    frontier loses exactly one vertex per superstep.  Vertex ids are
    chosen so ``partition_for(id, depth)`` enumerates all ``depth``
    residues: every level is its own partition, making the
    scheduled-task series read directly as "levels still dirty".
    """
    ids = []
    seen = set()
    candidate = 0
    while len(ids) < depth:
        shard = partition_for(candidate, depth)
        if shard not in seen:
            seen.add(shard)
            ids.append(candidate)
        candidate += 1
    out_links = {
        ids[i]: tuple(ids[i + 1:])
        for i in range(depth)
    }
    return WebGraph(out_links)


def test_bench_workset_superstep_collapse(benchmark, bench_scale):
    depth, _ = _SCALES.get(bench_scale, _SCALES["test"])
    graph = _cascade_graph(depth)
    cluster, dfs = fresh_cluster()

    def drive():
        return IterMREngine(cluster, dfs).run(
            IterativeJob(
                PageRank(), graph, num_partitions=depth,
                max_iterations=depth + 4, workset=True,
            )
        )

    result = run_once(benchmark, drive)
    assert result.converged

    # Superstep 0 is the priming full sweep; the *delta* supersteps that
    # follow are the workset claim.  The run stops on an empty workset,
    # so the series closes with the 0 no further superstep scheduled.
    map_series = [s.scheduled_map_tasks for s in result.per_iteration[1:]] + [0]
    touched_series = [s.touched_vertices for s in result.per_iteration[1:]] + [0]
    workset_series = [s.workset_size for s in result.per_iteration]

    assert map_series[0] == depth
    assert all(a > b for a, b in zip(map_series, map_series[1:])), map_series
    assert all(a > b for a, b in zip(touched_series, touched_series[1:]))
    assert workset_series[-1] == 0

    payload = {
        "depth": depth,
        "num_partitions": depth,
        "supersteps": len(result.per_iteration),
        "seed_map_tasks": result.per_iteration[0].scheduled_map_tasks,
        "map_tasks_per_superstep": map_series,
        "touched_vertices_per_superstep": touched_series,
        "workset_size_per_superstep": workset_series,
        "full_sweep_map_tasks_per_superstep": depth,
    }
    _record("superstep_collapse", payload)
    benchmark.extra_info.update({"superstep_collapse": payload})
    print(
        f"\nworkset collapse (cascade depth {depth}): "
        f"map tasks {map_series} vs constant {depth} full-sweep"
    )


def test_bench_workset_frontier_savings(benchmark, bench_scale):
    _, vertices = _SCALES.get(bench_scale, _SCALES["test"])
    graph = weighted_graph_from(powerlaw_web_graph(vertices, 5, seed=9), seed=1)
    knobs = dict(num_partitions=4, max_iterations=40, epsilon=0.0)

    def drive(workset):
        cluster, dfs = fresh_cluster()
        return IterMREngine(cluster, dfs).run(
            IterativeJob(SSSP(source=0), graph, workset=workset, **knobs)
        )

    full = drive(False)
    ws = run_once(benchmark, drive, True)
    assert ws.state == full.state
    assert ws.iterations == full.iterations

    def totals(result):
        return (
            sum(s.scheduled_map_tasks for s in result.per_iteration),
            sum(s.touched_vertices for s in result.per_iteration),
        )

    full_tasks, full_touched = totals(full)
    ws_tasks, ws_touched = totals(ws)
    assert ws_tasks <= full_tasks
    assert ws_touched < full_touched

    payload = {
        "vertices": vertices,
        "iterations": ws.iterations,
        "full_sweep": {"map_tasks": full_tasks, "touched_vertices": full_touched},
        "workset": {"map_tasks": ws_tasks, "touched_vertices": ws_touched},
        "touched_savings": round(1.0 - ws_touched / full_touched, 4),
    }
    _record("frontier_savings", payload)
    benchmark.extra_info.update({"frontier_savings": payload})
    print(
        f"\nworkset frontier savings (sssp, {vertices} vertices): "
        f"touched {ws_touched} vs {full_touched} "
        f"({payload['touched_savings']:.0%} saved), "
        f"map tasks {ws_tasks} vs {full_tasks}"
    )
