"""Benchmark E1 — §8.2 one-step APriori: recomputation vs incremental.

Paper: 1608 s vs 131 s (12x).  The reproduced speedup is recorded in
``extra_info`` and the table printed.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.onestep_apriori import run_apriori_onestep


def test_bench_apriori_onestep(benchmark, bench_scale):
    result = run_once(benchmark, run_apriori_onestep, scale=bench_scale)
    print()
    print(result.to_text())
    benchmark.extra_info["recomputation_s"] = result.rows[0][1]
    benchmark.extra_info["incremental_s"] = result.rows[1][1]
    benchmark.extra_info["speedup"] = result.rows[1][2]
    assert result.rows[1][2] > 4.0
