"""Benchmark configuration.

Each benchmark regenerates one of the paper's tables/figures and prints
it (run with ``pytest benchmarks/ --benchmark-only -s`` to see the tables
inline).  Scale defaults to ``test`` so the full suite stays fast; set
``REPRO_BENCH_SCALE=small`` (or ``medium``) for closer-to-paper shapes.

Simulated runtimes land in ``benchmark.extra_info`` so the JSON export
carries the reproduced numbers alongside the wall-clock timings.
"""

from __future__ import annotations

import os

import pytest


@pytest.fixture(scope="session")
def bench_scale() -> str:
    """Dataset scale preset for the benchmark suite."""
    return os.environ.get("REPRO_BENCH_SCALE", "test")


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                              iterations=1)
