"""Benchmark configuration.

Each benchmark regenerates one of the paper's tables/figures and prints
it (run with ``pytest benchmarks/ --benchmark-only -s`` to see the tables
inline).  Scale defaults to ``test`` so the full suite stays fast; set
``REPRO_BENCH_SCALE=small`` (or ``medium``) for closer-to-paper shapes.

Simulated runtimes land in ``benchmark.extra_info`` so the JSON export
carries the reproduced numbers alongside the wall-clock timings.
"""

from __future__ import annotations

import os

import pytest

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

_TRUTHY = ("1", "true", "yes", "on")


def bench_out_path(filename: str) -> str:
    """Where a ``BENCH_*.json`` perf artifact should be written.

    The repo-root artifacts are the committed performance record, so a
    plain ``pytest`` run (which collects ``benchmarks/`` alongside the
    tier-1 suite, usually on a busy machine) must not clobber them with
    noisy numbers.  The root path is returned only when
    ``REPRO_BENCH_WRITE`` is truthy — set by the CI bench-smoke job and
    by ``tools/bench_report.py --run``; otherwise artifacts land in the
    git-ignored ``.bench_scratch/`` directory.
    """
    if os.environ.get("REPRO_BENCH_WRITE", "0").lower() in _TRUTHY:
        return os.path.join(_ROOT, filename)
    scratch = os.path.join(_ROOT, ".bench_scratch")
    os.makedirs(scratch, exist_ok=True)
    return os.path.join(scratch, filename)


@pytest.fixture(scope="session")
def bench_scale() -> str:
    """Dataset scale preset for the benchmark suite."""
    return os.environ.get("REPRO_BENCH_SCALE", "test")


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                              iterations=1)
