"""Benchmark — online serving under concurrent streaming ingestion.

A :class:`repro.serving.QueryServer` answers a deterministic weighted
query mix (point / multi-get / top-k / range) from one thread while a
streaming WordCount pipeline ingests delta batches and publishes epochs
from another.  Reported per serving-shard count: host queries/s, host
p50/p99 query latency, the result-cache hit rate, distinct epochs
served, and the simulated read cost charged through the cost model.

Writes ``BENCH_serving.json`` at the repository root (a sibling of
``BENCH_hotpaths.json``); ``tools/bench_report.py`` renders it.  The
run also asserts the serving acceptance bar: queries answer while
epochs advance, and the delta-invalidated cache still produces a
nonzero hit rate.

Run it alone with::

    REPRO_BENCH_SCALE=test python -m pytest benchmarks/test_bench_serving.py -s
"""

from __future__ import annotations

import json
import os
import platform
import sys
import threading

from benchmarks.conftest import bench_out_path, run_once
from repro.algorithms.wordcount import WordCountMapper, WordCountReducer
from repro.cluster.cluster import Cluster
from repro.cluster.costmodel import CostModel
from repro.datasets.text import zipf_tweets
from repro.dfs.filesystem import DistributedFS
from repro.mapreduce.job import JobConf
from repro.serving import (
    EpochManager,
    LoadGenerator,
    QueryMix,
    QueryServer,
    ServingBridge,
)
from repro.streaming import (
    ContinuousPipeline,
    CountBatcher,
    OneStepStreamConsumer,
    evolving_text_source,
)

_OUT_NAME = "BENCH_serving.json"

SHARD_COUNTS = (1, 4)

#: per-scale workload shape: (tweets, generations, batch, queries).
_SCALES = {
    "test": (80, 2, 5, 400),
    "small": (300, 3, 8, 2000),
    "medium": (1000, 4, 12, 8000),
}


def _record(section: str, payload: dict) -> None:
    """Merge one section into ``BENCH_serving.json``."""
    out_path = bench_out_path(_OUT_NAME)
    doc = {}
    if os.path.exists(out_path):
        with open(out_path) as fh:
            doc = json.load(fh)
    doc.setdefault("schema", "bench-serving/1")
    doc["host"] = {
        "python": sys.version.split()[0],
        "machine": platform.machine(),
        "bench_scale": os.environ.get("REPRO_BENCH_SCALE", "test"),
    }
    doc[section] = payload
    with open(out_path, "w") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")


def _serving_rig(num_tweets: int, generations: int, batch: int, shards: int):
    """A streaming WordCount pipeline bridged to a fresh query server."""
    tweets = zipf_tweets(num_tweets, seed=21)
    cluster = Cluster(num_workers=4, cost_model=CostModel(), seed=7)
    dfs = DistributedFS(cluster, block_size=16 * 1024)
    dfs.write("/tweets", sorted(tweets.tweets.items()))
    conf = JobConf(name="wc", mapper=WordCountMapper,
                   reducer=WordCountReducer, inputs=["/tweets"],
                   output="/counts", num_reducers=2)
    consumer = OneStepStreamConsumer.from_initial(
        cluster, dfs, conf, accumulator=True
    )
    source = evolving_text_source(
        tweets, fraction=0.15, generations=generations, period_s=60.0, seed=23
    )
    server = QueryServer(manager=EpochManager(num_shards=shards))
    server.publish(consumer.state())
    pipe = ContinuousPipeline(source, CountBatcher(batch), consumer)
    pipe.add_batch_listener(ServingBridge(server))
    return pipe, server


def _drive(num_tweets, generations, batch, queries, shards):
    """Queries from the main thread, ingestion on a background thread."""
    pipe, server = _serving_rig(num_tweets, generations, batch, shards)
    words = sorted(dict(server.manager.latest().items()))
    loadgen = LoadGenerator(server, words, QueryMix(), seed=31)
    with pipe:
        ingest = threading.Thread(target=pipe.run)
        ingest.start()
        try:
            # the load must overlap the whole ingestion: meet the query
            # quota AND keep querying until the last batch commits.
            report = loadgen.run(queries, keep_going=ingest.is_alive)
        finally:
            ingest.join()
        report["ingested_batches"] = pipe.result.num_batches
        report["cache_invalidations"] = server.cache.stats.invalidations
        report["topk_rebuilds"] = server.manager.topk_rebuilds
    return report


def test_serving_under_concurrent_ingestion(benchmark, bench_scale):
    num_tweets, generations, batch, queries = _SCALES.get(
        bench_scale, _SCALES["test"]
    )

    def drive():
        return {
            shards: _drive(num_tweets, generations, batch, queries, shards)
            for shards in SHARD_COUNTS
        }

    reports = run_once(benchmark, drive)
    for shards, report in reports.items():
        # the acceptance bar: epochs advanced under load and the
        # delta-invalidated cache still earned hits.
        assert report["epochs_served"] >= 1
        assert report["cache_hit_rate"] > 0, f"{shards} shards: cold cache"
        assert report["timeouts"] == 0
        benchmark.extra_info[f"qps_{shards}sh"] = report["qps"]
        benchmark.extra_info[f"hit_rate_{shards}sh"] = report["cache_hit_rate"]
    _record(
        "serving_load",
        {
            "shard_counts": list(SHARD_COUNTS),
            "queries": queries,
            "mix": {"point": 0.6, "multi": 0.15, "top_k": 0.15, "range": 0.1},
            "per_shards": {str(s): r for s, r in reports.items()},
        },
    )
    print("\nserving under concurrent ingestion:")
    for shards, report in reports.items():
        print(
            f"  {shards} shard(s): {report['qps']} q/s, "
            f"p50 {report['p50_ms']} ms, p99 {report['p99_ms']} ms, "
            f"hit rate {report['cache_hit_rate']:.0%}, "
            f"{report['epochs_served']} epochs served"
        )
