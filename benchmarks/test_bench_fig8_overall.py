"""Benchmark E2 — Fig 8: normalized runtimes of the five solutions.

One benchmark per workload so the timing report shows them separately.
Expected shapes: PageRank/SSSP — i2MR w/ CPC several-fold under PlainMR,
HaLoop at/above PlainMR; Kmeans — i2MR falls back to iterMR; GIM-V —
PlainMR the outlier.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.experiments.fig8_overall import run_workload


@pytest.mark.parametrize("workload", ["pagerank", "sssp", "kmeans", "gimv"])
def test_bench_fig8(benchmark, bench_scale, workload):
    times = run_once(benchmark, run_workload, workload, scale=bench_scale)
    base = times["plainmr"]
    print(f"\nFig 8 [{workload}] normalized to PlainMR={base:.0f}s:")
    for solution in ("plainmr", "haloop", "itermr", "i2mr_nocpc", "i2mr_cpc"):
        print(f"  {solution:11s} {times[solution] / base:6.3f}")
        benchmark.extra_info[solution] = round(times[solution], 1)
    assert times["i2mr_cpc"] < times["plainmr"]
