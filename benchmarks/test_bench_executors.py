"""Benchmark — executor backends: host wall-clock per backend.

Runs the Fig 8 PageRank workload (all five solutions) under each
execution backend and records wall-clock via pytest-benchmark, so the
JSON export carries a serial/thread/process comparison for the host the
suite ran on.  Simulated cluster times must be *identical* across
backends — that is asserted, not just reported; only wall-clock is
allowed to differ.

Speedups depend on the host: the thread backend is GIL-bound for
pure-Python map/reduce functions, and the process backend pays pickling
and pool-startup costs that only amortize at ``REPRO_BENCH_SCALE=small``
and above on multi-core machines.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.experiments.fig8_overall import run_workload

#: Simulated runtimes of an unbenchmarked serial reference run, keyed by
#: scale.  Computed independently of the parametrization order so the
#: assertion stays meaningful even when a single backend is selected
#: with ``-k`` or tests are distributed across workers.
_reference: dict = {}


def _serial_reference(scale: str) -> dict:
    if scale not in _reference:
        _reference[scale] = run_workload("pagerank", scale=scale, executor="serial")
    return _reference[scale]


@pytest.mark.parametrize("backend", ["serial", "thread", "process"])
def test_bench_executors(benchmark, bench_scale, backend):
    reference = _serial_reference(bench_scale)
    times = run_once(
        benchmark, run_workload, "pagerank", scale=bench_scale, executor=backend
    )
    benchmark.extra_info["backend"] = backend
    for solution, simulated in times.items():
        benchmark.extra_info[solution] = round(simulated, 1)
    print(
        f"\nExecutor backend [{backend}]: simulated plainmr={times['plainmr']:.0f}s, "
        f"i2mr_cpc={times['i2mr_cpc']:.0f}s (wall-clock in the benchmark table)"
    )

    assert times == reference, (
        f"simulated metrics changed under the {backend!r} backend"
    )
