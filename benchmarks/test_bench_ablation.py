"""Benchmark A1 — ablation: Incoop-style task-level reuse vs kv-level.

Measures §8.1.1's claim that scattered changes defeat task-level
incremental processing, plus Table 3's dataset inventory.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.ablation_incoop import run_ablation
from repro.experiments.table3_datasets import run_table3


def test_bench_ablation_incoop(benchmark, bench_scale):
    result = run_once(benchmark, run_ablation, scale=bench_scale)
    print()
    print(result.to_text())
    rows = {(row[0], row[1]): row for row in result.rows}
    benchmark.extra_info["incoop_append_s"] = rows[("incoop", "append-only")][2]
    benchmark.extra_info["incoop_scattered_s"] = rows[
        ("incoop", "scattered-updates")
    ][2]
    assert (
        rows[("incoop", "scattered-updates")][2]
        > rows[("incoop", "append-only")][2]
    )


def test_bench_table3_datasets(benchmark, bench_scale):
    result = run_once(benchmark, run_table3, scale=bench_scale)
    print()
    print(result.to_text())
    assert len(result.rows) == 5
