"""Benchmark E6 — Fig 11: change propagation with/without CPC (1% delta)."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.fig11_propagation import run_fig11


def test_bench_fig11_propagation(benchmark, bench_scale):
    result = run_once(benchmark, run_fig11, scale=bench_scale)
    print()
    print(result.to_text())
    series = {}
    for variant, iteration, propagated, time_s in result.rows:
        series.setdefault(variant, []).append(propagated)
    benchmark.extra_info["no_cpc_final_propagated"] = series["w/o CPC"][-1]
    # Without CPC the change set keeps growing (the Fig 11a blow-up).
    assert series["w/o CPC"][-1] >= series["w/o CPC"][0]
