"""Benchmark — resilient executor: throughput and simulated overhead
under injected transient-fault rates (0% / 1% / 5% / 20%) across the
serial/thread/process backends.

Writes ``BENCH_resilience.json`` at the repository root (the sibling of
``BENCH_hotpaths.json``); ``tools/bench_report.py`` renders all three.
Every combination is also checked for *correctness*: the values returned
by :meth:`~repro.resilience.executor.ResilientExecutor.run_tasks` must
be identical whatever the fault rate or backend — retries may cost
simulated backoff, results may not move.

Run it alone with::

    REPRO_BENCH_SCALE=test python -m pytest benchmarks/test_bench_resilience.py -s
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time

from benchmarks.conftest import bench_out_path, run_once
from repro.common.hashing import stable_hash
from repro.execution import resolve_executor
from repro.faults.injection import TaskFaultDirective
from repro.resilience.executor import ResilientExecutor
from repro.resilience.policy import RetryPolicy

_OUT_NAME = "BENCH_resilience.json"

FAILURE_RATES = (0.0, 0.01, 0.05, 0.20)
BACKENDS = ("serial", "thread", "process")

#: per-scale workload shape: (num_tasks, inner_loop_iterations).
_SCALES = {
    "test": (400, 300),
    "small": (2000, 1000),
    "medium": (8000, 2000),
}


def _record(section: str, payload: dict) -> None:
    """Merge one section into ``BENCH_resilience.json``."""
    out_path = bench_out_path(_OUT_NAME)
    doc = {}
    if os.path.exists(out_path):
        with open(out_path) as fh:
            doc = json.load(fh)
    doc.setdefault("schema", "bench-resilience/1")
    doc["host"] = {
        "python": sys.version.split()[0],
        "machine": platform.machine(),
        "bench_scale": os.environ.get("REPRO_BENCH_SCALE", "test"),
    }
    doc[section] = payload
    with open(out_path, "w") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")


def _task(payload):
    """Pure CPU task: (index, iters) → (index, checksum)."""
    index, iters = payload
    total = 0
    for i in range(iters):
        total += (i * i) ^ index
    return (index, total)


def _make_hook(rate: float, seed: int = 1234):
    """Deterministic transient-fault hook firing on ~``rate`` of tasks.

    Each selected task fails exactly its first attempt — the retry then
    succeeds — so the measured overhead is the retry machinery itself,
    not an unbounded failure cascade.
    """
    threshold = int(rate * 1_000_000)
    hits: dict = {}

    def hook(task_index: int):
        occurrence = hits.get(task_index, 0)
        hits[task_index] = occurrence + 1
        if occurrence == 0 and stable_hash((seed, task_index)) % 1_000_000 < threshold:
            return TaskFaultDirective(kind="transient", occurrence=0)
        return None

    return hook


def test_bench_resilience_overhead(benchmark, bench_scale):
    """Throughput + simulated backoff at each fault rate, per backend."""
    num_tasks, iters = _SCALES.get(bench_scale, _SCALES["test"])
    payloads = [(i, iters) for i in range(num_tasks)]
    policy = RetryPolicy(max_retries=3, timeout_s=None, speculation=False)

    results: dict = {name: {} for name in BACKENDS}
    reference = None
    for name in BACKENDS:
        inner = resolve_executor(name)
        for rate in FAILURE_RATES:
            wrapper = ResilientExecutor(
                inner, policy=policy, fault_hook=_make_hook(rate)
            )
            t0 = time.perf_counter()
            values = wrapper.run_tasks(_task, payloads, picklable=True)
            wall_s = time.perf_counter() - t0
            wrapper.close()

            if reference is None:
                reference = values
            # Correctness: results never move with fault rate or backend.
            assert values == reference, (name, rate)

            stats = wrapper.stats
            results[name][f"{rate:.2f}"] = {
                "tasks_per_s": round(num_tasks / wall_s, 1),
                "wall_s": round(wall_s, 4),
                "task_failures": stats.task_failures,
                "retries": stats.retries,
                "sim_backoff_s": round(stats.sim_backoff_s, 4),
                "degraded_batches": stats.degraded_batches,
            }
        inner.close()

    # The fault-free passthrough must not pay for the machinery it skips
    # and injected failures must actually charge simulated backoff.
    for name in BACKENDS:
        assert results[name]["0.00"]["retries"] == 0
        assert results[name]["0.00"]["sim_backoff_s"] == 0.0
        assert results[name]["0.20"]["retries"] > 0
        assert results[name]["0.20"]["sim_backoff_s"] > 0.0
        # Simulated overhead grows with the failure rate.
        assert (
            results[name]["0.20"]["sim_backoff_s"]
            > results[name]["0.01"]["sim_backoff_s"]
        )

    payload = {
        "failure_rates": [f"{rate:.2f}" for rate in FAILURE_RATES],
        "num_tasks": num_tasks,
        "max_retries": policy.max_retries,
        "backends": results,
    }
    _record("task_resilience", payload)
    benchmark.extra_info.update({"task_resilience": results})
    run_once(benchmark, lambda: None)
    for name in BACKENDS:
        row = ", ".join(
            f"{rate:.0%} {results[name][f'{rate:.2f}']['tasks_per_s']} t/s"
            f"/+{results[name][f'{rate:.2f}']['sim_backoff_s']}s sim"
            for rate in FAILURE_RATES
        )
        print(f"\nresilience [{name}]: {row}")
