"""Benchmark E4 — Table 4: MRBG-Store read-window policies.

Paper ordering: index-only = most reads / fewest bytes; single fixed
window = catastrophic bytes; multi-dynamic-window = best time.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.table4_mrbgstore import run_table4


def test_bench_table4_store(benchmark, bench_scale):
    result = run_once(benchmark, run_table4, scale=bench_scale)
    print()
    print(result.to_text())
    for technique, reads, rsize, time_s in result.rows:
        benchmark.extra_info[f"{technique}_reads"] = reads
        benchmark.extra_info[f"{technique}_time_s"] = time_s
    rows = {row[0]: row for row in result.rows}
    assert rows["index-only"][1] == max(r[1] for r in result.rows)
    assert rows["multi-dynamic-window"][3] <= rows["single-fix-window"][3]
