"""Change propagation control (§5.3).

Filters state kv-pairs whose change is below a threshold, on the
observation that iterative computation converges asymmetrically: most
kv-pairs converge in a few iterations while a few converge slowly.
Changes are *accumulated* per key, so a filtered kv-pair is emitted later
if its accumulated change grows large enough — exactly the §5.3 contract.
"""

from __future__ import annotations

from typing import Any, Dict, Optional


class ChangePropagationControl:
    """Per-key accumulated-change filter.

    Args:
        threshold: the filter threshold (Table 2's
            ``job.setFilterThresh``).  ``None`` disables CPC entirely:
            every non-zero change propagates.  ``0.0`` filters only
            exactly-unchanged values (the paper uses this for SSSP, where
            results stay precise, §8.2).
    """

    def __init__(self, threshold: Optional[float] = None) -> None:
        if threshold is not None and threshold < 0:
            raise ValueError("filter threshold must be non-negative")
        self.threshold = threshold
        self._accumulated: Dict[Any, float] = {}

    @property
    def enabled(self) -> bool:
        """Whether filtering is active."""
        return self.threshold is not None

    def offer(self, dk: Any, diff: float) -> bool:
        """Register a state change; returns True when it should propagate.

        Without CPC any non-zero change propagates.  With CPC the change
        is added to the key's accumulated change; the key propagates when
        the accumulation reaches the threshold, and its accumulator resets
        on emission.
        """
        if self.threshold is None:
            return diff > 0.0
        accumulated = self._accumulated.get(dk, 0.0) + diff
        if accumulated > 0.0 and accumulated >= self.threshold:
            self._accumulated.pop(dk, None)
            return True
        if accumulated > 0.0:
            self._accumulated[dk] = accumulated
        return False

    def pending(self, dk: Any) -> float:
        """Accumulated (not yet propagated) change of ``dk``."""
        return self._accumulated.get(dk, 0.0)

    def num_pending(self) -> int:
        """Number of keys currently holding back accumulated changes."""
        return len(self._accumulated)

    def clear(self) -> None:
        """Drop all accumulated changes."""
        self._accumulated.clear()
