"""Incremental iterative processing engine (§5).

``run_initial`` executes a full iterMR computation, then preserves the
converged state and the last iteration's MRBGraph in per-partition
MRBG-Stores (§5.1: only the last iteration's states need saving when
starting from the converged state).

``run_incremental`` refreshes the computation for a delta structure
input.  Each iteration is an incremental one-step job (Fig 3):

- **iteration 1**: the delta input is the delta *structure* data; only
  the Map instances of changed structure kv-pairs run, against the
  previously converged state;
- **iteration j ≥ 2**: the delta input is the delta *state* data; only
  the Map instances whose ``project(SK)`` hit a changed state kv-pair
  run, emitting replacement MRBGraph edges;
- each iteration merges its delta MRBGraph into the MRBG-Store
  (multi-batch, multi-dynamic-window reads) and re-runs Reduce only for
  affected K2s;
- **change propagation control** (§5.3) filters sub-threshold changes;
- **P∆ auto-off** (§5.2): when the delta-state proportion exceeds the
  threshold, MRBGraph maintenance shuts off and the remaining iterations
  fall back to full iterMR recomputation from the current state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.cluster.cluster import Cluster
from repro.cluster.metrics import Counters, JobMetrics, StageTimes
from repro.common import config
from repro.common.errors import JobError
from repro.common.hashing import map_key, partition_for
from repro.common.kvpair import DeltaRecord, Op, sort_key, sort_records
from repro.common.sizeof import record_size
from repro.dfs.filesystem import DistributedFS
from repro.execution import (
    ExecutionBackend,
    ExecutorSelector,
    ExecutorSpec,
    SerialBackend,
)
from repro.incremental.state import PolicyFactory, PreservedJobState
from repro.inciter.cpc import ChangePropagationControl
from repro.inciter.state import PreservedIterState
from repro.iterative.api import Dependency, IterationStats, IterativeJob
from repro.iterative.engine import (
    MK_BYTES,
    IterMRResult,
    run_full_iteration,
)
from repro.iterative.partitioning import (
    partition_job_cost,
    partition_structure,
)
from repro.mrbgraph.graph import DeltaEdge, Edge
from repro.resilience.policy import RetryPolicy

#: Encoded overhead of the +/- op marker on a delta edge.
_OP_BYTES = 2

#: Fallback backend when no executor is supplied.
_SERIAL_BACKEND = SerialBackend()


@dataclass
class DeltaStateMapPayload:
    """One delta-state map task (iteration j >= 2, §5.1)."""

    partition: int
    #: ``(DK, DV_changed, [(SK, SV), ...])`` for the changed state keys
    #: whose structure groups live in this partition.
    groups: List[Tuple[Any, Any, List[Tuple[Any, Any]]]]
    algorithm: Any
    num_partitions: int


@dataclass
class DeltaStateMapRun:
    """Replacement MRBGraph edges emitted by one delta-state map task."""

    partition: int
    #: reduce partition q -> ``[(K2, DeltaEdge), ...]`` in emission order.
    per_q: Dict[int, List[Tuple[Any, "DeltaEdge"]]]
    edge_bytes_per_q: Dict[int, int]
    read_bytes: int
    emitted: int
    emitted_bytes: int
    pairs_done: int


def execute_delta_state_map_task(payload: DeltaStateMapPayload) -> DeltaStateMapRun:
    """Map the structure kv-pairs hit by changed state; pure function."""
    algorithm = payload.algorithm
    n = payload.num_partitions
    per_q: Dict[int, List[Tuple[Any, DeltaEdge]]] = {}
    edge_bytes_per_q: Dict[int, int] = {}
    read_bytes = 0
    emitted = 0
    emitted_bytes = 0
    pairs_done = 0
    for dk, dv, pairs in payload.groups:
        read_bytes += record_size(dk, dv)
        for sk, sv in pairs:
            read_bytes += record_size(sk, sv)
            mk = map_key(sk, sv)
            outs = algorithm.map_instance(sk, sv, dk, dv)
            pairs_done += 1
            emitted += len(outs)
            for k2, v2 in outs:
                q = partition_for(k2, n)
                per_q.setdefault(q, []).append((k2, DeltaEdge(mk, v2, Op.INSERT)))
                nbytes = record_size(k2, v2) + MK_BYTES + _OP_BYTES
                edge_bytes_per_q[q] = edge_bytes_per_q.get(q, 0) + nbytes
                emitted_bytes += nbytes
    return DeltaStateMapRun(
        partition=payload.partition,
        per_q=per_q,
        edge_bytes_per_q=edge_bytes_per_q,
        read_bytes=read_bytes,
        emitted=emitted,
        emitted_bytes=emitted_bytes,
        pairs_done=pairs_done,
    )


@dataclass
class I2MROptions:
    """Runtime options of one incremental iterative job (Table 2)."""

    #: CPC filter threshold; ``None`` disables CPC (i2MR w/o CPC in Fig 8).
    filter_threshold: Optional[float] = None
    #: Maintain the MRBGraph (users may turn it off a priori, §5.2).
    mrbg_enabled: bool = True
    #: Auto-off threshold on the delta-state proportion ``P∆`` (§5.2).
    pdelta_threshold: float = 0.5
    #: Checkpoint state + MRBGraph to the DFS every iteration (§6.1).
    checkpoint: bool = False
    #: Iteration budget for the incremental job.
    max_iterations: int = 10
    #: Convergence threshold for fallback (iterMR-style) iterations.
    epsilon: Optional[float] = None
    #: Record a state snapshot after every iteration (Fig 10 error curves).
    record_states: bool = False
    #: Run fallback iterations as workset supersteps
    #: (:mod:`repro.iterative.workset`) instead of full sweeps: the first
    #: fallback iteration primes the edge cache, later ones re-map only
    #: the dirty frontier, and the run stops when the frontier drains.
    #: ``None`` defers to the ``REPRO_WORKSET`` environment default.
    workset: Optional[bool] = None


@dataclass
class I2MRResult:
    """Result of an incremental iterative run."""

    state: Dict[Any, Any]
    iterations: int
    converged: bool
    per_iteration: List[IterationStats]
    metrics: JobMetrics
    #: iteration index at which MRBGraph maintenance was auto-disabled
    #: (None if it stayed on).
    mrbg_disabled_at: Optional[int] = None
    #: per-iteration state snapshots (only with ``record_states``).
    state_history: List[Dict[Any, Any]] = field(default_factory=list)

    @property
    def total_time(self) -> float:
        """Total simulated seconds."""
        return self.metrics.total_time

    @property
    def fell_back(self) -> bool:
        """Whether the run fell back to full recomputation."""
        return self.mrbg_disabled_at is not None


class I2MREngine:
    """The §5 engine: fine-grain incremental + general-purpose iterative."""

    def __init__(
        self,
        cluster: Cluster,
        dfs: DistributedFS,
        policy_factory: Optional[PolicyFactory] = None,
        store_root: Optional[str] = None,
        executor: ExecutorSpec = None,
        num_shards: Optional[int] = None,
        compaction: Optional[str] = None,
    ) -> None:
        self.cluster = cluster
        self.dfs = dfs
        self.policy_factory = policy_factory
        self.store_root = store_root
        self.executors = ExecutorSelector(executor, cost_model=cluster.cost_model)
        #: shards per preserved MRBG-Store (None = REPRO_SHARDS default).
        self.num_shards = num_shards
        #: MRBG-Store compaction policy name (None = REPRO_COMPACTION).
        self.compaction = compaction

    def backend_for(self, job: IterativeJob) -> ExecutionBackend:
        """The execution backend this job's task batches run on.

        Wrapped in a :class:`repro.resilience.ResilientExecutor`
        enforcing the job's retry/timeout/speculation knobs.
        """
        return self.executors.get(
            getattr(job, "executor", None),
            getattr(job, "max_workers", None),
            resilience=RetryPolicy.for_job(job),
        )

    def close(self) -> None:
        """Shut down any host worker pools the engine created."""
        self.executors.close()

    # ------------------------------------------------------------------ #
    # initial converged run                                              #
    # ------------------------------------------------------------------ #

    def run_initial(
        self,
        job: IterativeJob,
        structure_path: Optional[str] = None,
        initial_state: Optional[Dict[Any, Any]] = None,
    ) -> Tuple[IterMRResult, PreservedIterState]:
        """Run job ``A_0`` to convergence, preserving state + MRBGraph."""
        job.validate()
        algorithm = job.algorithm
        cost = self.cluster.cost_model

        if structure_path is None:
            structure_path = f"/{algorithm.name}/structure"
        if not self.dfs.exists(structure_path):
            self.dfs.write(structure_path, algorithm.structure_records(job.dataset))
        dfs_file = self.dfs.file(structure_path)

        records = self.dfs.read_all(structure_path)
        parts = partition_structure(algorithm, records, job.num_partitions)
        preprocess_s = partition_job_cost(
            cost,
            self.cluster.num_workers,
            dfs_file.size_bytes,
            dfs_file.num_records,
            job.num_partitions,
        )

        state = dict(
            initial_state
            if initial_state is not None
            else algorithm.initial_state(job.dataset)
        )

        metrics = JobMetrics()
        metrics.times.startup = cost.job_startup_s + preprocess_s
        backend = self.backend_for(job)
        per_iteration: List[IterationStats] = []
        converged = False
        iterations = 0
        last_chunks = None
        for it in range(job.max_iterations):
            result = run_full_iteration(
                algorithm, parts, state, self.cluster, capture_chunks=True,
                executor=backend,
            )
            state = result.new_state
            last_chunks = result.chunks
            iterations = it + 1
            metrics.times.add(result.times)
            metrics.counters.merge(result.counters)
            per_iteration.append(
                IterationStats(
                    iteration=it,
                    times=result.times,
                    changed_keys=len(result.outputs),
                    propagated_kv_pairs=len(result.outputs),
                    total_difference=result.total_difference,
                    mrbg_maintained=True,
                )
            )
            if job.epsilon is not None and result.total_difference <= job.epsilon:
                converged = True
                break

        stores = PreservedJobState(
            num_reducers=job.num_partitions,
            root_dir=self.store_root,
            policy_factory=self.policy_factory,
            cost_model=cost.unscaled(),
            num_shards=self.num_shards,
            store_executor=self.backend_for(job),
            num_workers=self.cluster.num_workers,
            compaction=self.compaction,
        )
        if last_chunks is not None:
            for q, chunk_list in enumerate(last_chunks):
                if not chunk_list:
                    continue
                store = stores.store_for(q)
                store.build(
                    (k2, [Edge(mk, v2) for mk, v2 in entries])
                    for k2, entries in chunk_list
                )
                store.save_index()
        build_metrics = stores.store_metrics()
        metrics.times.merge = build_metrics.write_time_s * cost.data_scale
        metrics.counters.add("mrbg_bytes_written", build_metrics.bytes_written)

        run_result = IterMRResult(
            state=state,
            iterations=iterations,
            converged=converged,
            per_iteration=per_iteration,
            metrics=metrics,
            preprocess_s=preprocess_s,
            parts=parts,
        )
        preserved = PreservedIterState(
            algorithm=algorithm, parts=parts, state=state, stores=stores
        )
        return run_result, preserved

    # ------------------------------------------------------------------ #
    # incremental run                                                    #
    # ------------------------------------------------------------------ #

    def run_incremental(
        self,
        job: IterativeJob,
        delta_records: List[DeltaRecord],
        prev: PreservedIterState,
        options: Optional[I2MROptions] = None,
    ) -> I2MRResult:
        """Run job ``A_i`` incrementally from job ``A_{i-1}``'s state."""
        job.validate()
        options = options or I2MROptions()
        algorithm = job.algorithm
        cost = self.cluster.cost_model
        n = prev.num_partitions
        workers = self.cluster.num_workers
        parts = prev.parts
        replicated = parts.replicated_state
        state = dict(prev.state)
        cpc = ChangePropagationControl(options.filter_threshold)

        metrics = JobMetrics()
        metrics.times.startup = cost.job_startup_s
        delta_bytes = sum(
            record_size(rec.key, rec.value) + _OP_BYTES for rec in delta_records
        )
        metrics.times.startup += partition_job_cost(
            cost, workers, delta_bytes, max(1, len(delta_records)), n
        )
        metrics.counters.add("delta_structure_records", len(delta_records))

        backend = self.backend_for(job)
        mrbg_on = options.mrbg_enabled and prev.stores_valid
        mrbg_disabled_at: Optional[int] = None if mrbg_on else 0
        per_iteration: List[IterationStats] = []
        state_history: List[Dict[Any, Any]] = []
        converged = False
        iterations = 0
        delta_state: Dict[Any, Any] = {}
        use_workset = (
            options.workset
            if options.workset is not None
            else config.DEFAULT_WORKSET
        )
        ws_runner = None

        for it in range(options.max_iterations):
            iterations = it + 1
            if not mrbg_on:
                if it == 0:
                    self._apply_delta_to_structure(algorithm, parts, delta_records)
                    self._reconcile_state_keys(algorithm, parts, state)
                if use_workset:
                    # Workset fallback: the first fallback iteration is
                    # the priming sweep (every vertex dirty); later ones
                    # re-map only the frontier the previous superstep
                    # left dirty, and an empty frontier ends the run.
                    if ws_runner is None:
                        from repro.iterative.workset import WorksetRunner

                        ws_runner = WorksetRunner(
                            algorithm,
                            parts,
                            state,
                            self.cluster,
                            executor=backend,
                            threshold=None,
                        )
                        stats = ws_runner.seed()
                    else:
                        stats = ws_runner.step()
                    stats.iteration = it
                    metrics.times.add(stats.times)
                    per_iteration.append(stats)
                    if options.record_states:
                        state_history.append(dict(state))
                    if (
                        options.epsilon is not None
                        and stats.total_difference <= options.epsilon
                    ):
                        converged = True
                        break
                    if not ws_runner.workset:
                        converged = True
                        break
                    continue
                full = run_full_iteration(
                    algorithm, parts, state, self.cluster, executor=backend
                )
                state = full.new_state
                metrics.times.add(full.times)
                metrics.counters.merge(full.counters)
                per_iteration.append(
                    IterationStats(
                        iteration=it,
                        times=full.times,
                        changed_keys=len(full.outputs),
                        propagated_kv_pairs=len(full.outputs),
                        total_difference=full.total_difference,
                        mrbg_maintained=False,
                        scheduled_map_tasks=n,
                        scheduled_reduce_tasks=n,
                        touched_vertices=sum(len(g) for g in parts.groups),
                    )
                )
                if options.record_states:
                    state_history.append(dict(state))
                if (
                    options.epsilon is not None
                    and full.total_difference <= options.epsilon
                ):
                    converged = True
                    break
                continue

            stats = self._incremental_iteration(
                job, prev, state, delta_state, delta_records if it == 0 else None,
                cpc, options, it, backend,
            )
            metrics.times.add(stats.times)
            metrics.counters.merge(stats.counters)
            per_iteration.append(stats)
            delta_state = stats.next_delta_state
            if options.record_states:
                state_history.append(dict(state))

            # §5.2 auto-off: detect an over-costly delta proportion.
            pdelta = len(delta_state) / max(1, len(state))
            if pdelta > options.pdelta_threshold:
                mrbg_on = False
                mrbg_disabled_at = it + 1
                prev.stores_valid = False
                metrics.counters.add("mrbg_auto_disabled", 1)
            if not delta_state:
                converged = True
                break

        if ws_runner is not None:
            metrics.counters.merge(ws_runner.counters)
        prev.state = state
        return I2MRResult(
            state=state,
            iterations=iterations,
            converged=converged,
            per_iteration=per_iteration,
            metrics=metrics,
            mrbg_disabled_at=mrbg_disabled_at,
            state_history=state_history,
        )

    # ------------------------------------------------------------------ #
    # one incremental iteration                                          #
    # ------------------------------------------------------------------ #

    def _incremental_iteration(
        self,
        job: IterativeJob,
        prev: PreservedIterState,
        state: Dict[Any, Any],
        delta_state: Dict[Any, Any],
        delta_records: Optional[List[DeltaRecord]],
        cpc: ChangePropagationControl,
        options: I2MROptions,
        iteration: int,
        backend: Optional[ExecutionBackend] = None,
    ) -> "_IterOutcome":
        algorithm = job.algorithm
        cost = self.cluster.cost_model
        parts = prev.parts
        n = parts.num_partitions
        workers = self.cluster.num_workers
        replicated = parts.replicated_state
        times = StageTimes()
        counters = Counters()

        delta_edges: List[List[Tuple[Any, DeltaEdge]]] = [[] for _ in range(n)]
        edge_bytes = [0] * n
        map_loads = [0.0] * workers
        new_dks: List[Any] = []
        removed_dks: List[Any] = []

        if delta_records is not None:
            map_tasks, touched_vertices = self._map_delta_structure(
                algorithm, parts, state, delta_records, delta_edges, edge_bytes,
                map_loads, new_dks, removed_dks, counters,
            )
        else:
            map_tasks, touched_vertices = self._map_delta_state(
                algorithm, parts, state, delta_state, delta_edges, edge_bytes,
                map_loads, counters, backend,
            )
        times.map = max(map_loads) if map_loads else 0.0
        reduce_tasks = sum(1 for q in range(n) if delta_edges[q])

        # ----------------------- shuffle + sort ------------------------ #
        shuffle_loads = [0.0] * workers
        sort_loads = [0.0] * workers
        for q in range(n):
            if not delta_edges[q]:
                continue
            total = edge_bytes[q]
            local = int(total / max(1, n))
            shuffle_loads[q % workers] += cost.disk_read_time(local)
            shuffle_loads[q % workers] += cost.net_time(
                total - local, transfers=max(1, n - 1)
            )
            counters.add("shuffle_bytes", total)
            delta_edges[q] = sort_records(delta_edges[q])
            sort_loads[q % workers] += cost.sort_time(len(delta_edges[q]))
            counters.add("delta_edges", len(delta_edges[q]))
        times.shuffle = max(shuffle_loads)
        times.sort = max(sort_loads)

        # ------------------------ merge + reduce ----------------------- #
        reduce_loads = [0.0] * workers
        changed_outputs: List[Tuple[Any, Any]] = []
        removed_set = set(removed_dks)
        store_read_total = 0.0
        store_write_total = 0.0
        store_reads_total = 0
        store_bytes_read_total = 0
        store_bytes_written_total = 0

        for q in range(n):
            if not delta_edges[q]:
                continue
            groups: List[Tuple[Any, List[DeltaEdge]]] = []
            current_key: Any = None
            current: List[DeltaEdge] = []
            for k2, edge in delta_edges[q]:
                if current and k2 == current_key:
                    current.append(edge)
                else:
                    if current:
                        groups.append((current_key, current))
                    current_key = k2
                    current = [edge]
            if current:
                groups.append((current_key, current))

            store = prev.stores.store_for(q)
            snap = store.metrics.snapshot()
            values_processed = 0
            for k2, entries in store.merge_delta(groups):
                if k2 in removed_set:
                    continue
                if (
                    algorithm.dependency is Dependency.ONE_TO_ONE
                    and k2 not in parts.groups[q]
                ):
                    # Ghost reduce instance: its structure kv-pair is gone.
                    state.pop(k2, None)
                    continue
                dv_new = algorithm.reduce_instance(k2, [v2 for _, v2 in entries])
                changed_outputs.append((k2, dv_new))
                values_processed += len(entries) + 1
            part_delta = store.metrics.since(snap)
            store_time = (
                part_delta.read_time_s + part_delta.write_time_s
            ) * cost.data_scale
            reduce_loads[q % workers] += store_time
            store_read_total += part_delta.read_time_s * cost.data_scale
            store_write_total += part_delta.write_time_s * cost.data_scale
            store_reads_total += part_delta.io_reads
            store_bytes_read_total += part_delta.bytes_read
            store_bytes_written_total += part_delta.bytes_written
            reduce_loads[q % workers] += cost.cpu_time(
                values_processed, algorithm.reduce_cpu_weight
            )
            counters.add("reduce_values", values_processed)

        # Chunk + state cleanup for fully removed state keys.
        for dk in removed_dks:
            state.pop(dk, None)
            q = partition_for(dk, n)
            store = prev.stores.store_for(q)
            if dk in store:
                store.begin_merge([])
                store.delete_chunk(dk)
                store.end_merge()

        # Brand-new state keys with no in-edges get the base Reduce value.
        if new_dks:
            produced = {k2 for k2, _ in changed_outputs}
            for dk in new_dks:
                if dk not in produced and dk not in state:
                    changed_outputs.append((dk, algorithm.reduce_instance(dk, [])))

        counters.add("affected_reduce_instances", len(changed_outputs))

        # --------------------- assemble + CPC filter ------------------- #
        if replicated:
            affected_keys = list(state.keys())
        else:
            affected_keys = [k2 for k2, _ in changed_outputs]
        prev_values = {key: state.get(key) for key in affected_keys}
        algorithm.assemble_state(state, changed_outputs)

        next_delta_state: Dict[Any, Any] = {}
        total_difference = 0.0
        changed_state_bytes = 0
        for key in affected_keys:
            new_value = state.get(key)
            if new_value is None:
                continue
            old_value = prev_values.get(key)
            if old_value is None:
                propagate = True
            else:
                diff = algorithm.difference(new_value, old_value)
                total_difference += diff
                propagate = cpc.offer(key, diff)
            if propagate:
                next_delta_state[key] = new_value
                changed_state_bytes += record_size(key, new_value)

        times.reduce = max(reduce_loads) + cost.disk_write_time(changed_state_bytes)
        counters.add("mrbg_reads", store_reads_total)
        counters.add("mrbg_bytes_read", store_bytes_read_total)
        counters.add("mrbg_bytes_written", store_bytes_written_total)

        if options.checkpoint:
            ckpt_bytes = changed_state_bytes + store_bytes_written_total
            times.checkpoint = cost.disk_write_time(ckpt_bytes) + cost.net_time(
                ckpt_bytes * max(0, self.dfs.replication - 1)
            )

        outcome = _IterOutcome(
            iteration=iteration,
            times=times,
            changed_keys=len(changed_outputs),
            propagated_kv_pairs=len(next_delta_state),
            total_difference=total_difference,
            mrbg_maintained=True,
            scheduled_map_tasks=map_tasks,
            scheduled_reduce_tasks=reduce_tasks,
            touched_vertices=touched_vertices,
            workset_size=len(next_delta_state),
        )
        outcome.counters = counters
        outcome.next_delta_state = next_delta_state
        return outcome

    # ------------------------------------------------------------------ #
    # delta map phases                                                   #
    # ------------------------------------------------------------------ #

    def _map_delta_structure(
        self,
        algorithm: Any,
        parts: Any,
        state: Dict[Any, Any],
        delta_records: List[DeltaRecord],
        delta_edges: List[List[Tuple[Any, DeltaEdge]]],
        edge_bytes: List[int],
        map_loads: List[float],
        new_dks: List[Any],
        removed_dks: List[Any],
        counters: Counters,
    ) -> Tuple[int, int]:
        """Iteration 1: map only the changed structure kv-pairs (§5.1).

        Returns ``(map tasks materialized, distinct state keys touched)``
        for the scheduling-footprint stats.
        """
        cost = self.cluster.cost_model
        n = parts.num_partitions
        workers = self.cluster.num_workers
        per_partition: Dict[int, List[DeltaRecord]] = {}
        for rec in delta_records:
            p = parts.partition_of(algorithm, rec.key)
            per_partition.setdefault(p, []).append(rec)

        # A state key counts as removed only when the *net* effect of the
        # whole delta leaves it without structure (an update is a deletion
        # followed by an insertion of the same key, §3.1).
        removal_candidates: set = set()
        touched_dks: set = set()

        for p, recs in per_partition.items():
            read_bytes = 0
            emitted = 0
            emitted_bytes = 0
            for rec in recs:
                sk, sv, op = rec.key, rec.value, rec.op
                dk = algorithm.project(sk)
                touched_dks.add(dk)
                read_bytes += record_size(sk, sv) + _OP_BYTES
                if op is Op.DELETE:
                    try:
                        parts.delete_pair(algorithm, sk, sv)
                    except KeyError as exc:
                        raise JobError(f"bad delta: {exc}") from exc
                    if algorithm.dependency is Dependency.ONE_TO_ONE:
                        removal_candidates.add(dk)
                else:
                    parts.insert_pair(algorithm, sk, sv)
                    if dk not in state:
                        new_dks.append(dk)
                dv = state.get(dk)
                if dv is None:
                    dv = algorithm.init_state_value(dk)
                mk = map_key(sk, sv)
                outs = algorithm.map_instance(sk, sv, dk, dv)
                emitted += len(outs)
                if op is Op.DELETE:
                    for k2, _ in outs:
                        q = partition_for(k2, n)
                        delta_edges[q].append((k2, DeltaEdge(mk, None, Op.DELETE)))
                        nbytes = record_size(k2, None) + MK_BYTES + _OP_BYTES
                        edge_bytes[q] += nbytes
                        emitted_bytes += nbytes
                else:
                    for k2, v2 in outs:
                        q = partition_for(k2, n)
                        delta_edges[q].append((k2, DeltaEdge(mk, v2, Op.INSERT)))
                        nbytes = record_size(k2, v2) + MK_BYTES + _OP_BYTES
                        edge_bytes[q] += nbytes
                        emitted_bytes += nbytes
            task_cost = cost.disk_read_time(read_bytes)
            task_cost += cost.cpu_time(len(recs), algorithm.map_cpu_weight)
            task_cost += cost.sort_time(emitted)
            task_cost += cost.disk_write_time(emitted_bytes)
            map_loads[p % workers] += task_cost
        for dk in sorted(removal_candidates, key=sort_key):
            p = partition_for(dk, parts.num_partitions)
            if dk not in parts.groups[p]:
                removed_dks.append(dk)
        counters.add("delta_map_instances", len(delta_records))
        return len(per_partition), len(touched_dks)

    def _map_delta_state(
        self,
        algorithm: Any,
        parts: Any,
        state: Dict[Any, Any],
        delta_state: Dict[Any, Any],
        delta_edges: List[List[Tuple[Any, DeltaEdge]]],
        edge_bytes: List[int],
        map_loads: List[float],
        counters: Counters,
        backend: Optional[ExecutionBackend] = None,
    ) -> Tuple[int, int]:
        """Iteration j ≥ 2: map the structure kv-pairs whose interdependent
        state kv-pair changed (§5.1).

        These map tasks are pure (the structure is not mutated in state
        iterations), so the batch runs on the job's execution backend;
        emissions merge in partition order.  Returns ``(map tasks
        materialized, state-key groups mapped)`` for the
        scheduling-footprint stats.
        """
        cost = self.cluster.cost_model
        n = parts.num_partitions
        workers = self.cluster.num_workers
        replicated = parts.replicated_state

        per_partition: Dict[int, List[Tuple[Any, Any]]] = {}
        for dk, dv in delta_state.items():
            if replicated:
                for p in range(n):
                    if dk in parts.groups[p]:
                        per_partition.setdefault(p, []).append((dk, dv))
            else:
                p = partition_for(dk, n)
                if dk in parts.groups[p]:
                    per_partition.setdefault(p, []).append((dk, dv))

        payloads = [
            DeltaStateMapPayload(
                partition=p,
                groups=[
                    (dk, dv, list(parts.groups[p].get(dk, ())))
                    for dk, dv in dk_list
                ],
                algorithm=algorithm,
                num_partitions=n,
            )
            for p, dk_list in sorted(per_partition.items())
        ]
        runner = backend or _SERIAL_BACKEND
        runs = runner.run_tasks(execute_delta_state_map_task, payloads)

        instances = 0
        for run in sorted(runs, key=lambda r: r.partition):
            p = run.partition
            for q in sorted(run.per_q):
                delta_edges[q].extend(run.per_q[q])
                edge_bytes[q] += run.edge_bytes_per_q[q]
            task_cost = cost.disk_read_time(run.read_bytes)
            task_cost += cost.cpu_time(run.pairs_done, algorithm.map_cpu_weight)
            task_cost += cost.sort_time(run.emitted)
            task_cost += cost.disk_write_time(run.emitted_bytes)
            map_loads[p % workers] += task_cost
            instances += run.pairs_done
        counters.add("delta_map_instances", instances)
        return len(payloads), sum(len(v) for v in per_partition.values())

    # ------------------------------------------------------------------ #
    # helpers                                                            #
    # ------------------------------------------------------------------ #

    @staticmethod
    def _reconcile_state_keys(algorithm: Any, parts: Any, state: Dict[Any, Any]) -> None:
        """Align the state key set with the structure after a raw delta.

        The fine-grain path prunes removed state keys and seeds brand-new
        ones as it merges; when MRBGraph maintenance is off from the start
        (stores invalidated by a previous auto-off) the fallback path must
        do the same reconciliation explicitly.  Only one-to-one
        dependencies tie the state domain to the structure keys.
        """
        if algorithm.dependency is not Dependency.ONE_TO_ONE:
            return
        live: set = set()
        for partition in range(parts.num_partitions):
            live.update(parts.groups[partition].keys())
        for stale in [dk for dk in state if dk not in live]:
            del state[stale]
        for dk in live:
            if dk not in state:
                state[dk] = algorithm.init_state_value(dk)

    @staticmethod
    def _apply_delta_to_structure(
        algorithm: Any,
        parts: Any,
        delta_records: List[DeltaRecord],
    ) -> None:
        """Apply a structure delta without incremental processing (used by
        the fallback path when MRBGraph maintenance is off from the
        start)."""
        for rec in delta_records:
            if rec.op is Op.DELETE:
                try:
                    parts.delete_pair(algorithm, rec.key, rec.value)
                except KeyError as exc:
                    raise JobError(f"bad delta: {exc}") from exc
            else:
                parts.insert_pair(algorithm, rec.key, rec.value)


class _IterOutcome(IterationStats):
    """IterationStats plus the engine-internal iteration products."""

    counters: Counters
    next_delta_state: Dict[Any, Any]
