"""Preserved state between incremental iterative jobs (§5.1).

After job ``A_{i-1}`` converges, i2MapReduce keeps:

- the **converged state data** ``D_{i-1}`` (the paper chooses it over the
  random initial state because it is close to ``D_i`` and only the last
  iteration's state needs saving), and
- the **converged MRBGraph** ``MRBGraph_{i-1}`` in the per-Reduce-task
  MRBG-Stores, plus
- the cached, partitioned structure data, which job ``A_i`` mutates in
  place with the delta structure input.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.incremental.state import PreservedJobState
from repro.iterative.partitioning import PartitionedStructure


@dataclass
class PreservedIterState:
    """Everything job ``A_i`` needs from job ``A_{i-1}``."""

    algorithm: Any
    parts: PartitionedStructure
    state: Dict[Any, Any]
    stores: PreservedJobState
    #: False once MRBGraph maintenance was auto-disabled — a later job must
    #: rebuild the stores before fine-grain incremental processing.
    stores_valid: bool = True

    @property
    def num_partitions(self) -> int:
        """Number of state partitions."""
        return self.parts.num_partitions

    def close(self) -> None:
        """Flush store indexes and release file handles."""
        self.stores.close()

    def cleanup(self) -> None:
        """Delete all preserved on-disk state."""
        self.stores.cleanup()

    def __enter__(self) -> "PreservedIterState":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.cleanup()
