"""Incremental iterative processing (paper §5)."""

from repro.inciter.cpc import ChangePropagationControl
from repro.inciter.engine import I2MREngine, I2MROptions, I2MRResult
from repro.inciter.state import PreservedIterState

__all__ = [
    "ChangePropagationControl",
    "I2MREngine",
    "I2MROptions",
    "I2MRResult",
    "PreservedIterState",
]
