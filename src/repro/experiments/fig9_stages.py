"""Fig 9 — PageRank run time broken into MapReduce stages.

The paper reports, across all iterations, the time of the map / shuffle /
sort / reduce stages for PlainMR recomputation, iterMR recomputation and
i2MapReduce incremental processing.  Expected shape (§8.3):

- iterMR cuts map ≈ 51 % (no structure re-parsing), shuffle ≈ 74 % (no
  structure shuffling), reduce ≈ 88 % (no structure/state re-join);
- i2MapReduce cuts map/shuffle/sort ≥ 95 % (only affected instances) but
  its reduce time *exceeds* iterMR's — the price of accessing and
  updating the MRBGraph file in the MRBG-Store.

Per the paper's footnote, these stage times exclude the structure-data
partition job (which Fig 8's totals include).
"""

from __future__ import annotations

from typing import Dict

from repro.algorithms.pagerank import PageRank
from repro.baselines.plainmr import PlainMRDriver
from repro.cluster.metrics import StageTimes
from repro.datasets.graphs import mutate_web_graph, powerlaw_web_graph
from repro.experiments.harness import (
    ExperimentResult,
    data_scale_for,
    make_cluster,
    scale_params,
)
from repro.inciter.engine import I2MREngine, I2MROptions
from repro.iterative.api import IterativeJob
from repro.iterative.engine import IterMREngine


def run_fig9(scale: str = "small", change_fraction: float = 0.10, seed: int = 7) -> ExperimentResult:
    """Reproduce Fig 9's per-stage breakdown."""
    params = scale_params(scale)
    iterations = params["iterations"]
    n = params["num_partitions"]
    workers = params["num_workers"]

    graph = powerlaw_web_graph(
        params["pagerank_vertices"], 8.0, seed=seed, payload_bytes=300
    )
    delta = mutate_web_graph(graph, change_fraction, seed=seed + 1)
    algorithm = PageRank()
    data_scale = data_scale_for("pagerank", graph.num_vertices)

    # Previously converged state shared by all three solutions.
    cluster, dfs = make_cluster(num_workers=workers, seed=seed, data_scale=data_scale)
    engine = I2MREngine(cluster, dfs)
    init_job = IterativeJob(algorithm, graph, num_partitions=n,
                            max_iterations=3 * iterations, epsilon=1e-6)
    _, preserved = engine.run_initial(init_job)
    converged = dict(preserved.state)

    stage_times: Dict[str, StageTimes] = {}

    cluster, dfs = make_cluster(num_workers=workers, seed=seed, data_scale=data_scale)
    plain = PlainMRDriver(cluster, dfs).run(
        algorithm, delta.new_graph, initial_state=converged, max_iterations=iterations
    )
    stage_times["plainmr"] = plain.metrics.times

    cluster, dfs = make_cluster(num_workers=workers, seed=seed, data_scale=data_scale)
    itermr = IterMREngine(cluster, dfs).run(
        IterativeJob(algorithm, delta.new_graph, num_partitions=n,
                     max_iterations=iterations),
        initial_state=converged,
    )
    stage_times["itermr"] = itermr.metrics.times

    cluster, dfs = make_cluster(num_workers=workers, seed=seed, data_scale=data_scale)
    engine = I2MREngine(cluster, dfs)
    _, prev = engine.run_initial(
        IterativeJob(algorithm, graph, num_partitions=n,
                     max_iterations=3 * iterations, epsilon=1e-6)
    )
    incr = engine.run_incremental(
        IterativeJob(algorithm, delta.new_graph, num_partitions=n,
                     max_iterations=iterations),
        delta.records,
        prev,
        I2MROptions(filter_threshold=0.01, max_iterations=iterations, epsilon=1e-6),
    )
    stage_times["i2mr"] = incr.metrics.times
    prev.cleanup()
    preserved.cleanup()

    rows = []
    for stage in ("map", "shuffle", "sort", "reduce"):
        plain_s = getattr(stage_times["plainmr"], stage)
        iter_s = getattr(stage_times["itermr"], stage)
        i2_s = getattr(stage_times["i2mr"], stage)
        rows.append(
            (
                stage,
                round(plain_s, 1),
                round(iter_s, 1),
                round(i2_s, 1),
                f"{1 - iter_s / plain_s:.0%}" if plain_s else "-",
                f"{1 - i2_s / plain_s:.0%}" if plain_s else "-",
            )
        )
    return ExperimentResult(
        name="Fig 9: PageRank stage breakdown (seconds across all iterations)",
        headers=("stage", "plainmr", "itermr", "i2mr", "itermr_saving", "i2mr_saving"),
        rows=rows,
        notes=(
            f"scale={scale}, {change_fraction:.0%} changed; i2MR reduce "
            "includes MRBG-Store access (expected to exceed iterMR's)"
        ),
    )


def main() -> None:
    """CLI entry point: print the fig-9 stage-breakdown table."""
    print(run_fig9().to_text())


if __name__ == "__main__":
    main()
