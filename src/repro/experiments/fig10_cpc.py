"""Fig 10 — effect of the change-propagation filter threshold.

PageRank runs on i2MapReduce with 10 % changed data while the filter
threshold varies over {0.1, 0.5, 1}.  Fig 10(a) plots cumulative runtime
per iteration; Fig 10(b) the mean error of the kv-pairs — the average
relative difference from the exact value computed offline.

Expected shape: larger thresholds filter more kv-pairs, run faster, and
err more; all mean errors stay far below 1 % because "influential"
kv-pairs are hardly ever filtered (§8.5).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.algorithms.pagerank import PageRank
from repro.datasets.graphs import mutate_web_graph, powerlaw_web_graph
from repro.experiments.harness import (
    ExperimentResult,
    data_scale_for,
    make_cluster,
    scale_params,
)
from repro.inciter.engine import I2MREngine, I2MROptions
from repro.iterative.api import IterativeJob

#: The paper's threshold sweep.
THRESHOLDS: Sequence[float] = (0.1, 0.5, 1.0)


def mean_relative_error(approx: Dict, exact: Dict) -> float:
    """Average relative difference from the exact values (Fig 10b)."""
    total = 0.0
    count = 0
    for key, value in exact.items():
        if key not in approx or value == 0:
            continue
        total += abs(approx[key] - value) / abs(value)
        count += 1
    return total / count if count else 0.0


def run_fig10(scale: str = "small", change_fraction: float = 0.10, seed: int = 7) -> ExperimentResult:
    """Reproduce Fig 10's runtime and mean-error curves."""
    params = scale_params(scale)
    iterations = params["iterations"]
    n = params["num_partitions"]
    workers = params["num_workers"]

    graph = powerlaw_web_graph(
        params["pagerank_vertices"], 8.0, seed=seed, payload_bytes=300
    )
    delta = mutate_web_graph(graph, change_fraction, seed=seed + 1)
    algorithm = PageRank()
    data_scale = data_scale_for("pagerank", graph.num_vertices)

    rows: List[tuple] = []
    for threshold in THRESHOLDS:
        cluster, dfs = make_cluster(
            num_workers=workers, seed=seed, data_scale=data_scale
        )
        engine = I2MREngine(cluster, dfs)
        _, prev = engine.run_initial(
            IterativeJob(algorithm, graph, num_partitions=n,
                         max_iterations=3 * iterations, epsilon=1e-6)
        )
        converged = dict(prev.state)
        result = engine.run_incremental(
            IterativeJob(algorithm, delta.new_graph, num_partitions=n,
                         max_iterations=iterations),
            delta.records,
            prev,
            I2MROptions(filter_threshold=threshold, max_iterations=iterations,
                        record_states=True),
        )

        # Exact per-iteration trajectory computed offline from the same
        # starting state on the updated graph.
        exact = dict(converged)
        cumulative = 0.0
        for it, snapshot in enumerate(result.state_history):
            exact = algorithm.reference_from(delta.new_graph, exact, 1)
            cumulative += result.per_iteration[it].times.total
            rows.append(
                (
                    threshold,
                    it + 1,
                    round(cumulative, 1),
                    round(mean_relative_error(snapshot, exact), 6),
                    result.per_iteration[it].propagated_kv_pairs,
                )
            )
        prev.cleanup()

    return ExperimentResult(
        name="Fig 10: change propagation control — runtime and mean error",
        headers=("filter_threshold", "iteration", "cumulative_s", "mean_error", "propagated"),
        rows=rows,
        notes=(
            f"scale={scale}, {change_fraction:.0%} changed; the paper "
            "reports all mean errors below 0.2%"
        ),
    )


def main() -> None:
    """CLI entry point: print the fig-10 CPC table."""
    print(run_fig10().to_text())


if __name__ == "__main__":
    main()
