"""Fig 11 — change propagation with and without CPC (1 % delta).

The paper updates 1 % of ClueWeb and records, per iteration, the number
of propagated (non-converged) kv-pairs and the runtime.

Expected shape: without CPC the changes spread to (nearly) all kv-pairs
within about three iterations and every iteration costs close to a full
recomputation, with MRBGraph maintenance pushing per-iteration time up —
the total barely beats vanilla MapReduce.  With CPC the propagated count
rises then falls steadily, and per-iteration time decays with it; the
first iteration is the slowest because it merges the delta MRBGraph
against the preserved one (§8.5).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.algorithms.pagerank import PageRank
from repro.datasets.graphs import mutate_web_graph, powerlaw_web_graph
from repro.experiments.harness import (
    ExperimentResult,
    data_scale_for,
    make_cluster,
    scale_params,
)
from repro.inciter.engine import I2MREngine, I2MROptions
from repro.iterative.api import IterativeJob

#: None reproduces the "w/o CPC" series.
VARIANTS: Sequence[Optional[float]] = (None, 0.1, 0.5, 1.0)


def run_fig11(scale: str = "small", change_fraction: float = 0.01, seed: int = 7) -> ExperimentResult:
    """Reproduce Fig 11's per-iteration propagation and runtime."""
    params = scale_params(scale)
    iterations = params["iterations"]
    n = params["num_partitions"]
    workers = params["num_workers"]

    graph = powerlaw_web_graph(
        params["pagerank_vertices"], 8.0, seed=seed, payload_bytes=300
    )
    delta = mutate_web_graph(graph, change_fraction, seed=seed + 1)
    algorithm = PageRank()
    data_scale = data_scale_for("pagerank", graph.num_vertices)

    rows: List[tuple] = []
    for threshold in VARIANTS:
        label = "w/o CPC" if threshold is None else f"FT={threshold}"
        cluster, dfs = make_cluster(
            num_workers=workers, seed=seed, data_scale=data_scale
        )
        engine = I2MREngine(cluster, dfs)
        _, prev = engine.run_initial(
            IterativeJob(algorithm, graph, num_partitions=n,
                         max_iterations=3 * iterations, epsilon=1e-6)
        )
        result = engine.run_incremental(
            IterativeJob(algorithm, delta.new_graph, num_partitions=n,
                         max_iterations=iterations),
            delta.records,
            prev,
            I2MROptions(filter_threshold=threshold, max_iterations=iterations),
        )
        for stats in result.per_iteration:
            rows.append(
                (
                    label,
                    stats.iteration + 1,
                    stats.propagated_kv_pairs,
                    round(stats.times.total, 1),
                )
            )
        prev.cleanup()

    return ExperimentResult(
        name="Fig 11: propagated kv-pairs and per-iteration runtime (1% delta)",
        headers=("variant", "iteration", "propagated_kv_pairs", "iter_time_s"),
        rows=rows,
        notes=f"scale={scale}, graph of {params['pagerank_vertices']} vertices",
    )


def main() -> None:
    """CLI entry point: print the fig-11 change-propagation table."""
    print(run_fig11().to_text())


if __name__ == "__main__":
    main()
