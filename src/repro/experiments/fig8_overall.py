"""Fig 8 — normalized runtime of the four iterative algorithms under the
five solutions: PlainMR recomp, HaLoop recomp, iterMR recomp,
i2MapReduce without CPC, and i2MapReduce with CPC.

Protocol (§8.1.5): 10 % of the input data is changed; all solutions start
from the previously converged state; recomputation solutions run the full
computation on the updated input while i2MapReduce processes the delta.

Expected shape: for PageRank/SSSP iterMR cuts PlainMR roughly in half,
HaLoop is at or above PlainMR (extra join job), and i2MR w/ CPC wins by a
large factor; for Kmeans i2MR falls back to iterMR (P∆ = 100 %); for
GIM-V PlainMR is the outlier (two jobs, matrix shuffled every iteration).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.algorithms.gimv import GIMV
from repro.algorithms.kmeans import Kmeans
from repro.algorithms.pagerank import PageRank
from repro.algorithms.sssp import SSSP
from repro.baselines.haloop import HaLoopDriver
from repro.baselines.plainmr import PlainMRDriver
from repro.datasets.graphs import (
    mutate_web_graph,
    mutate_weighted_graph,
    powerlaw_web_graph,
    weighted_graph_from,
)
from repro.datasets.matrices import block_matrix, mutate_matrix
from repro.datasets.points import gaussian_points, mutate_points
from repro.experiments.harness import (
    ExperimentResult,
    data_scale_for,
    make_cluster,
    scale_params,
)
from repro.inciter.engine import I2MREngine, I2MROptions
from repro.iterative.api import IterativeJob
from repro.iterative.engine import IterMREngine

#: Per-algorithm CPC filter thresholds (the paper uses FT=1 for PageRank
#: in Fig 8 and FT=0 for SSSP so its results stay precise).
CPC_THRESHOLDS = {
    "pagerank": 0.01,
    "sssp": 0.0,
    "kmeans": 0.01,
    "gimv": 0.001,
}


def _workload(name: str, params: Dict[str, Any], change_fraction: float, seed: int):
    """Build (algorithm, old_dataset, delta, new_dataset, size) for a workload."""
    if name == "pagerank":
        # payload_bytes mirrors the paper's longer-identifier trick: the
        # 36.4 GB ClueWeb structure dwarfs the rank contributions.
        graph = powerlaw_web_graph(
            params["pagerank_vertices"], 8.0, seed=seed, payload_bytes=300
        )
        delta = mutate_web_graph(graph, change_fraction, seed=seed + 1)
        return PageRank(), graph, delta.records, delta.new_graph, graph.num_vertices
    if name == "sssp":
        base = powerlaw_web_graph(
            params["sssp_vertices"], 8.0, seed=seed, payload_bytes=300
        )
        graph = weighted_graph_from(base, seed=seed)
        delta = mutate_weighted_graph(graph, change_fraction, seed=seed + 1)
        return SSSP(source=0), graph, delta.records, delta.new_graph, graph.num_vertices
    if name == "kmeans":
        points = gaussian_points(
            params["kmeans_points"],
            dim=params["kmeans_dim"],
            k=params["kmeans_k"],
            seed=seed,
        )
        delta = mutate_points(points, change_fraction, seed=seed + 1)
        return (
            Kmeans(k=params["kmeans_k"], dim=params["kmeans_dim"]),
            points,
            delta.records,
            delta.new_dataset,
            points.num_points,
        )
    if name == "gimv":
        matrix = block_matrix(
            num_blocks=params["gimv_blocks"],
            block_size=params["gimv_block_size"],
            density=0.03,
            seed=seed,
        )
        delta = mutate_matrix(matrix, change_fraction, seed=seed + 1)
        return (
            GIMV(block_size=params["gimv_block_size"]),
            matrix,
            delta.records,
            delta.new_dataset,
            params["gimv_blocks"] * params["gimv_block_size"],
        )
    raise ValueError(f"unknown workload {name!r}")


def run_workload(
    name: str,
    scale: str = "small",
    change_fraction: float = 0.10,
    seed: int = 7,
    executor: Optional[str] = None,
) -> Dict[str, float]:
    """Absolute runtimes (simulated s) of the five solutions for ``name``.

    ``executor`` selects the host execution backend (``"serial"`` /
    ``"thread"`` / ``"process"``, see :mod:`repro.execution`) for every
    solution; simulated runtimes are backend-independent, so the same
    table comes out whichever backend ran it.
    """
    params = scale_params(scale)
    iterations = params["iterations"]
    n = params["num_partitions"]
    workers = params["num_workers"]
    algorithm, old_dataset, delta_records, new_dataset, our_size = _workload(
        name, params, change_fraction, seed
    )
    data_scale = data_scale_for(name, our_size)

    # Converged state of the previous job, shared by all solutions.
    cluster, dfs = make_cluster(num_workers=workers, seed=seed, data_scale=data_scale)
    engine = I2MREngine(cluster, dfs, executor=executor)
    job = IterativeJob(algorithm, old_dataset, num_partitions=n,
                       max_iterations=3 * iterations, epsilon=1e-6)
    _, preserved = engine.run_initial(job)
    converged = dict(preserved.state)

    times: Dict[str, float] = {}

    cluster, dfs = make_cluster(num_workers=workers, seed=seed, data_scale=data_scale)
    plain_driver = PlainMRDriver(cluster, dfs, executor=executor)
    plain = plain_driver.run(
        algorithm, new_dataset, initial_state=converged, max_iterations=iterations
    )
    times["plainmr"] = plain.total_time
    plain_driver.close()

    cluster, dfs = make_cluster(num_workers=workers, seed=seed, data_scale=data_scale)
    haloop_driver = HaLoopDriver(cluster, dfs, executor=executor)
    haloop = haloop_driver.run(
        algorithm, new_dataset, initial_state=converged, max_iterations=iterations
    )
    times["haloop"] = haloop.total_time
    haloop_driver.close()

    cluster, dfs = make_cluster(num_workers=workers, seed=seed, data_scale=data_scale)
    iter_job = IterativeJob(
        algorithm, new_dataset, num_partitions=n, max_iterations=iterations
    )
    iter_engine = IterMREngine(cluster, dfs, executor=executor)
    itermr = iter_engine.run(iter_job, initial_state=converged)
    times["itermr"] = itermr.total_time
    iter_engine.close()

    # i2MR runs process the delta from the preserved state.  Each variant
    # needs its own preserved state (the incremental run mutates it).
    for label, threshold in (("i2mr_nocpc", None), ("i2mr_cpc", CPC_THRESHOLDS[name])):
        cluster, dfs = make_cluster(num_workers=workers, seed=seed, data_scale=data_scale)
        variant_engine = I2MREngine(cluster, dfs, executor=executor)
        job = IterativeJob(algorithm, old_dataset, num_partitions=n,
                           max_iterations=3 * iterations, epsilon=1e-6)
        _, prev = variant_engine.run_initial(job)
        result = variant_engine.run_incremental(
            IterativeJob(algorithm, new_dataset, num_partitions=n,
                         max_iterations=iterations),
            delta_records,
            prev,
            I2MROptions(
                filter_threshold=threshold,
                max_iterations=iterations,
                epsilon=1e-6,
            ),
        )
        times[label] = result.total_time
        prev.cleanup()
        variant_engine.close()

    preserved.cleanup()
    engine.close()
    return times


def run_fig8(
    scale: str = "small",
    change_fraction: float = 0.10,
    workloads: Optional[List[str]] = None,
    seed: int = 7,
) -> ExperimentResult:
    """Reproduce Fig 8 for the given workloads."""
    workloads = workloads or ["pagerank", "sssp", "kmeans", "gimv"]
    rows: List[Tuple] = []
    for name in workloads:
        times = run_workload(name, scale=scale, change_fraction=change_fraction, seed=seed)
        base = times["plainmr"]
        rows.append(
            (
                name,
                round(base, 1),
                round(times["haloop"] / base, 3),
                round(times["itermr"] / base, 3),
                round(times["i2mr_nocpc"] / base, 3),
                round(times["i2mr_cpc"] / base, 3),
            )
        )
    return ExperimentResult(
        name="Fig 8: normalized runtime (PlainMR recomp = 1)",
        headers=(
            "algorithm",
            "plainmr_s",
            "haloop",
            "itermr",
            "i2mr w/o cpc",
            "i2mr w/ cpc",
        ),
        rows=rows,
        notes=f"scale={scale}, {change_fraction:.0%} input changed, "
        "all solutions start from the previously converged state",
    )


def main() -> None:
    """CLI entry point: print the fig-8 overall-runtime table."""
    print(run_fig8().to_text())


if __name__ == "__main__":
    main()
