"""Table 4 — performance optimizations in the MRBG-Store.

The paper enables the store's optimization techniques one by one for
incremental iterative PageRank and reports, across all workers and
iterations: the number of I/O reads issued by the query algorithm, the
bytes read, and the elapsed time of the merge operation.

Expected shape:

- **index-only** issues the most reads but reads the fewest bytes;
- **single-fix-window** thrashes between the multi-batch file's sorted
  runs, reading orders of magnitude more bytes — the worst time;
- **multi-fix-window** (one window per batch) repairs that;
- **multi-dynamic-window** (Algorithm 1 per batch) reads the least data
  for the fewest I/Os and posts the best time.

I/O counts and byte counts are *measured* from the real on-disk store;
times are simulated from the store cost model.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.algorithms.pagerank import PageRank
from repro.common import config
from repro.datasets.graphs import mutate_web_graph, powerlaw_web_graph
from repro.experiments.harness import (
    ExperimentResult,
    data_scale_for,
    make_cluster,
    scale_params,
)
from repro.inciter.engine import I2MREngine, I2MROptions
from repro.iterative.api import IterativeJob
from repro.mrbgraph.windows import (
    IndexOnlyPolicy,
    MultiDynamicWindowPolicy,
    MultiFixedWindowPolicy,
    SingleFixedWindowPolicy,
)

#: The Table 4 rows, in the paper's order.
POLICIES: Dict[str, Callable[[], object]] = {
    "index-only": IndexOnlyPolicy,
    "single-fix-window": lambda: SingleFixedWindowPolicy(window_size=512 * config.KB),
    "multi-fix-window": lambda: MultiFixedWindowPolicy(window_size=64 * config.KB),
    "multi-dynamic-window": MultiDynamicWindowPolicy,
}


def run_table4(scale: str = "small", change_fraction: float = 0.10, seed: int = 7) -> ExperimentResult:
    """Reproduce Table 4 with each window policy."""
    params = scale_params(scale)
    iterations = params["iterations"]
    n = params["num_partitions"]
    workers = params["num_workers"]

    graph = powerlaw_web_graph(
        params["pagerank_vertices"], 8.0, seed=seed, payload_bytes=300
    )
    delta = mutate_web_graph(graph, change_fraction, seed=seed + 1)
    algorithm = PageRank()
    data_scale = data_scale_for("pagerank", graph.num_vertices)

    rows: List[tuple] = []
    for label, factory in POLICIES.items():
        cluster, dfs = make_cluster(
            num_workers=workers, seed=seed, data_scale=data_scale
        )
        engine = I2MREngine(cluster, dfs, policy_factory=factory)
        _, prev = engine.run_initial(
            IterativeJob(algorithm, graph, num_partitions=n,
                         max_iterations=3 * iterations, epsilon=1e-6)
        )
        engine.run_incremental(
            IterativeJob(algorithm, delta.new_graph, num_partitions=n,
                         max_iterations=iterations),
            delta.records,
            prev,
            I2MROptions(filter_threshold=0.01, max_iterations=iterations,
                        epsilon=1e-6),
        )
        metrics = prev.stores.store_metrics()
        merge_time = (metrics.read_time_s + metrics.write_time_s) * data_scale
        rows.append(
            (
                label,
                metrics.io_reads,
                round(metrics.bytes_read / config.MB, 2),
                round(merge_time, 1),
            )
        )
        prev.cleanup()

    return ExperimentResult(
        name="Table 4: MRBG-Store optimizations (incremental iterative PageRank)",
        headers=("technique", "#reads", "rsize_MB", "time_s"),
        rows=rows,
        notes=(
            f"scale={scale}; #reads and bytes are measured from the real "
            "on-disk store, time is the simulated merge elapsed"
        ),
    )


def main() -> None:
    """CLI entry point: print the Table-4 MRBG-Store comparison."""
    print(run_table4().to_text())


if __name__ == "__main__":
    main()
