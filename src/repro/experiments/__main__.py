"""Run every §8 experiment and print its table.

Usage::

    python -m repro.experiments [scale]

where ``scale`` is ``test`` (default), ``small`` or ``medium``.
"""

from __future__ import annotations

import sys

from repro.experiments.ablation_incoop import run_ablation
from repro.experiments.fig8_overall import run_fig8
from repro.experiments.fig9_stages import run_fig9
from repro.experiments.fig10_cpc import run_fig10
from repro.experiments.fig11_propagation import run_fig11
from repro.experiments.fig12_spark import run_fig12
from repro.experiments.fig13_faults import run_fig13
from repro.experiments.onestep_apriori import run_apriori_onestep
from repro.experiments.stream_latency import run_stream_latency
from repro.experiments.table3_datasets import run_table3
from repro.experiments.table4_mrbgstore import run_table4

EXPERIMENTS = (
    ("Table 3", run_table3),
    ("§8.2 one-step APriori", run_apriori_onestep),
    ("Fig 8", run_fig8),
    ("Fig 9", run_fig9),
    ("Table 4", run_table4),
    ("Fig 10", run_fig10),
    ("Fig 11", run_fig11),
    ("Fig 12", run_fig12),
    ("Fig 13", run_fig13),
    ("Ablation (Incoop)", run_ablation),
    ("Stream latency", run_stream_latency),
)


def main(argv: list) -> int:
    """Run every registered experiment at the given scale."""
    scale = argv[1] if len(argv) > 1 else "test"
    for label, runner in EXPERIMENTS:
        print(f"\n### {label} (scale={scale})\n")
        print(runner(scale=scale).to_text())
        sys.stdout.flush()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
