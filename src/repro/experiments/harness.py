"""Shared plumbing for the §8 experiment reproductions.

Every experiment module exposes a ``run_*`` function returning an
:class:`ExperimentResult` (headers + rows + notes) and a ``main`` that
prints it, so the same code backs the pytest benchmarks, EXPERIMENTS.md
and ad-hoc command-line runs (``python -m repro.experiments.fig8_overall``).

Scale presets keep wall-clock time laptop-friendly: ``test`` for the test
suite, ``small`` for benchmarks (the default), ``medium`` for
closer-to-paper shapes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.cluster.cluster import Cluster
from repro.cluster.costmodel import CostModel
from repro.common import config
from repro.dfs.filesystem import DistributedFS


@dataclass
class ExperimentResult:
    """A reproduced table or figure, in tabular form."""

    name: str
    headers: Sequence[str]
    rows: List[Sequence[Any]]
    notes: str = ""

    def to_text(self) -> str:
        """Render as an aligned text table."""
        return format_table(self.name, self.headers, self.rows, self.notes)

    def column(self, header: str) -> List[Any]:
        """Extract one column by header name."""
        idx = list(self.headers).index(header)
        return [row[idx] for row in self.rows]


def format_table(
    name: str,
    headers: Sequence[str],
    rows: List[Sequence[Any]],
    notes: str = "",
) -> str:
    """Plain-text table rendering used by every experiment's ``main``."""
    cells = [[_fmt(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = [f"== {name} =="]
    lines.append("  ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    if notes:
        lines.append(f"note: {notes}")
    return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def make_cluster(
    num_workers: int = 8,
    seed: int = 42,
    block_size: int = 64 * config.KB,
    data_scale: float = 1.0,
    **cost_overrides: float,
) -> Tuple[Cluster, DistributedFS]:
    """A fresh cluster + DFS pair (one per solution, to isolate paths).

    ``data_scale`` calibrates the cost model to the *paper's* data scale:
    our synthetic datasets are F times smaller than the paper's (e.g.
    ClueWeb's 20M pages vs a 4k-vertex graph), so every data-proportional
    rate — bandwidths, per-record CPU, per-request seek — is scaled by F
    while fixed costs (job startup, heartbeats) stay put.  Simulated
    runtimes then land at paper-like magnitudes and, more importantly,
    with paper-like *proportions* between startup and data movement.
    """
    base = CostModel(data_scale=data_scale)
    if cost_overrides:
        base = base.scaled(**cost_overrides)
    cluster = Cluster(num_workers=num_workers, cost_model=base, seed=seed)
    dfs = DistributedFS(cluster, block_size=block_size)
    return cluster, dfs


#: Paper dataset sizes (Table 3), used to derive ``data_scale`` factors.
PAPER_SIZES = {
    "pagerank": 20_000_000,  # ClueWeb pages
    "sssp": 20_000_000,  # ClueWeb2 pages
    "kmeans": 46_481_200,  # BigCross points
    "gimv": 100_000,  # WikiTalk rows
    "apriori": 52_233_372,  # tweets
}


def data_scale_for(workload: str, our_size: int) -> float:
    """Paper-size over our-size calibration factor for ``workload``."""
    if our_size <= 0:
        raise ValueError("our_size must be positive")
    return PAPER_SIZES[workload] / our_size


#: Scale presets: dataset sizes per workload.
SCALES: Dict[str, Dict[str, Any]] = {
    "test": {
        "pagerank_vertices": 600,
        "sssp_vertices": 600,
        "kmeans_points": 400,
        "kmeans_dim": 4,
        "kmeans_k": 4,
        "gimv_blocks": 8,
        "gimv_block_size": 16,
        "tweets": 800,
        "iterations": 5,
        "num_partitions": 4,
        "num_workers": 4,
    },
    "small": {
        "pagerank_vertices": 4000,
        "sssp_vertices": 4000,
        "kmeans_points": 3000,
        "kmeans_dim": 8,
        "kmeans_k": 8,
        "gimv_blocks": 16,
        "gimv_block_size": 24,
        "tweets": 6000,
        "iterations": 10,
        "num_partitions": 8,
        "num_workers": 8,
    },
    "medium": {
        "pagerank_vertices": 20000,
        "sssp_vertices": 20000,
        "kmeans_points": 12000,
        "kmeans_dim": 12,
        "kmeans_k": 16,
        "gimv_blocks": 24,
        "gimv_block_size": 32,
        "tweets": 30000,
        "iterations": 10,
        "num_partitions": 16,
        "num_workers": 16,
    },
}


def scale_params(scale: str) -> Dict[str, Any]:
    """Look up a scale preset.

    Raises:
        KeyError: for unknown scale names.
    """
    if scale not in SCALES:
        raise KeyError(f"unknown scale {scale!r}; expected one of {sorted(SCALES)}")
    return dict(SCALES[scale])
