"""Table 3 — data sets (with this reproduction's scaled-down stand-ins).

The paper's data sets are cluster-scale crawls; the reproduction
generates seeded synthetic equivalents whose *structure* (degree skew,
dimensionality, sparsity, vocabulary skew) matches what each algorithm
exercises.  This module reports both, side by side.
"""

from __future__ import annotations

from typing import List

from repro.algorithms.apriori import APriori
from repro.algorithms.gimv import GIMV
from repro.algorithms.kmeans import Kmeans
from repro.algorithms.pagerank import PageRank
from repro.algorithms.sssp import SSSP
from repro.common import config
from repro.common.sizeof import records_size
from repro.datasets.graphs import powerlaw_web_graph, weighted_graph_from
from repro.datasets.matrices import block_matrix
from repro.datasets.points import gaussian_points
from repro.datasets.text import zipf_tweets
from repro.experiments.harness import ExperimentResult, scale_params


def run_table3(scale: str = "small", seed: int = 7) -> ExperimentResult:
    """Generate every data set at the given scale and measure it."""
    params = scale_params(scale)
    rows: List[tuple] = []

    tweets = zipf_tweets(params["tweets"], seed=seed)
    size = records_size(sorted(tweets.tweets.items()))
    rows.append(
        ("APriori", "Twitter", "122 GB / 52,233,372 tweets",
         f"{size / config.MB:.1f} MB / {tweets.num_tweets} tweets")
    )

    graph = powerlaw_web_graph(params["pagerank_vertices"], 8.0, seed=seed,
                               payload_bytes=300)
    size = records_size(PageRank().structure_records(graph))
    rows.append(
        ("PageRank", "ClueWeb", "36.4 GB / 20M pages / 365.7M links",
         f"{size / config.MB:.1f} MB / {graph.num_vertices} pages / "
         f"{graph.num_edges} links")
    )

    wgraph = weighted_graph_from(
        powerlaw_web_graph(params["sssp_vertices"], 8.0, seed=seed,
                           payload_bytes=300),
        seed=seed,
    )
    size = records_size(SSSP().structure_records(wgraph))
    rows.append(
        ("SSSP", "ClueWeb2", "70.2 GB / 20M pages / 365.7M links",
         f"{size / config.MB:.1f} MB / {wgraph.num_vertices} pages / "
         f"{wgraph.num_edges} links")
    )

    points = gaussian_points(params["kmeans_points"], dim=params["kmeans_dim"],
                             k=params["kmeans_k"], seed=seed)
    size = records_size(Kmeans().structure_records(points))
    rows.append(
        ("Kmeans", "BigCross", "14.4 GB / 46,481,200 points x 57 dims",
         f"{size / config.MB:.1f} MB / {points.num_points} points x "
         f"{points.dim} dims")
    )

    matrix = block_matrix(params["gimv_blocks"], params["gimv_block_size"],
                          density=0.03, seed=seed)
    size = records_size(GIMV(block_size=params["gimv_block_size"])
                        .structure_records(matrix))
    rows.append(
        ("GIM-V", "WikiTalk", "5.4 GB / 100,000 rows / 1,349,584 non-0",
         f"{size / config.MB:.1f} MB / "
         f"{matrix.num_blocks * matrix.block_size} rows / {matrix.nnz} non-0")
    )

    return ExperimentResult(
        name="Table 3: data sets (paper vs this reproduction)",
        headers=("algorithm", "data set", "paper", f"ours ({scale})"),
        rows=rows,
        notes="synthetic generators preserve skew/sparsity; sizes are scaled "
        "down and re-inflated through the cost model's data_scale factor",
    )


def main() -> None:
    """CLI entry point: print the Table-3 dataset statistics."""
    print(run_table3().to_text())


if __name__ == "__main__":
    main()
