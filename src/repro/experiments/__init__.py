"""Reproductions of every table and figure in the paper's §8 evaluation.

One module per artifact:

- :mod:`repro.experiments.onestep_apriori` — §8.2 one-step 12x speedup
- :mod:`repro.experiments.fig8_overall` — Fig 8 normalized runtimes
- :mod:`repro.experiments.fig9_stages` — Fig 9 stage breakdown
- :mod:`repro.experiments.table4_mrbgstore` — Table 4 store optimizations
- :mod:`repro.experiments.fig10_cpc` — Fig 10 CPC threshold sweep
- :mod:`repro.experiments.fig11_propagation` — Fig 11 propagation (1 %)
- :mod:`repro.experiments.fig12_spark` — Fig 12 / Table 5 Spark comparison
- :mod:`repro.experiments.fig13_faults` — Fig 13 fault recovery
- :mod:`repro.experiments.table3_datasets` — Table 3 data sets
- :mod:`repro.experiments.ablation_incoop` — Incoop task-level ablation
"""

from repro.experiments.harness import (
    ExperimentResult,
    data_scale_for,
    format_table,
    make_cluster,
    scale_params,
)

__all__ = [
    "ExperimentResult",
    "data_scale_for",
    "format_table",
    "make_cluster",
    "scale_params",
]
