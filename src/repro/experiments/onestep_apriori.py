"""§8.2 (text) — incremental one-step processing with APriori.

The paper: "MapReduce re-computation takes 1608 seconds.  In contrast,
i2MapReduce takes only 131 seconds.  Fine-grain incremental processing
leads to a 12x speedup."  The delta is the last week of the two-month
Twitter crawl — 7.9 % of the input, insertions only — so the accumulator
Reduce optimization (§3.5) applies and no MRBGraph is preserved.
"""

from __future__ import annotations

from typing import Tuple

from repro.algorithms.apriori import APriori
from repro.datasets.text import new_tweets, zipf_tweets
from repro.experiments.harness import (
    ExperimentResult,
    data_scale_for,
    make_cluster,
    scale_params,
)
from repro.incremental.api import delta_to_dfs_records
from repro.incremental.engine import IncrMREngine
from repro.mapreduce.engine import MapReduceEngine


def run_apriori_onestep(
    scale: str = "small",
    delta_fraction: float = 0.079,
    seed: int = 3,
) -> ExperimentResult:
    """Recomputation vs fine-grain incremental APriori."""
    params = scale_params(scale)
    workers = params["num_workers"]
    dataset = zipf_tweets(params["tweets"], seed=seed)
    delta = new_tweets(dataset, delta_fraction, seed=seed + 1)
    data_scale = data_scale_for("apriori", dataset.num_tweets)

    apriori = APriori(dataset)

    # Initial run + incremental refresh on i2MapReduce.
    cluster, dfs = make_cluster(num_workers=workers, seed=seed, data_scale=data_scale)
    engine = IncrMREngine(cluster, dfs)
    dfs.write("/tweets", sorted(dataset.tweets.items()))
    initial_conf = apriori.jobconf(["/tweets"], "/pairs", num_reducers=workers)
    initial_result, state = engine.run_initial(initial_conf, accumulator=True)
    dfs.write("/tweets-delta", delta_to_dfs_records(delta.records))
    incr_result = engine.run_incremental(initial_conf, "/tweets-delta", state)
    incremental_s = incr_result.total_time

    # Plain MapReduce recomputation over the full updated input.
    apriori_new = APriori(delta.new_dataset)
    cluster, dfs = make_cluster(num_workers=workers, seed=seed, data_scale=data_scale)
    plain = MapReduceEngine(cluster, dfs)
    dfs.write("/tweets", sorted(delta.new_dataset.tweets.items()))
    recomp_result = plain.run(
        apriori_new.jobconf(["/tweets"], "/pairs", num_reducers=workers)
    )
    recomputation_s = recomp_result.total_time

    state.cleanup()
    speedup = recomputation_s / incremental_s if incremental_s else float("inf")
    rows = [
        ("MapReduce recomputation", round(recomputation_s, 1), 1.0),
        ("i2MapReduce incremental", round(incremental_s, 1), round(speedup, 1)),
    ]
    return ExperimentResult(
        name="§8.2: APriori one-step incremental processing",
        headers=("solution", "time_s", "speedup"),
        rows=rows,
        notes=(
            f"scale={scale}, {delta_fraction:.1%} new tweets (insert-only), "
            "accumulator Reduce — paper reports 1608 s vs 131 s (12x)"
        ),
    )


def main() -> None:
    """CLI entry point: print the one-step Apriori table."""
    print(run_apriori_onestep().to_text())


if __name__ == "__main__":
    main()
