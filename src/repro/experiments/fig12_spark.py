"""Fig 12 + Table 5 — PlainMR vs iterMR vs Spark across graph sizes.

The paper runs PageRank on four ClueWeb subsets (xs/s/m/l, Table 5) and
finds (§8.7): Spark is much faster on small inputs (in-memory, no job
startup); Spark and iterMR tie in the mid range (both ≈ 2.5x over
PlainMR); and on ClueWeb-l, whose working set exhausts the cluster's
memory, Spark degrades below iterMR.

The worker memory is set so the ``l`` graph's working set (cached
structure + live state generations + shuffle buffers) exceeds aggregate
memory while ``m`` still fits — reproducing the crossover.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.algorithms.pagerank import PageRank
from repro.baselines.plainmr import PlainMRDriver
from repro.baselines.spark import SparkLikeDriver
from repro.common.sizeof import records_size
from repro.datasets.graphs import powerlaw_web_graph
from repro.experiments.harness import (
    ExperimentResult,
    data_scale_for,
    make_cluster,
    scale_params,
)
from repro.iterative.api import IterativeJob
from repro.iterative.engine import IterMREngine

#: Graph sizes relative to the scale preset's base size (Table 5 ratios:
#: ClueWeb-xs : s : m : l = 0.1M : 1M : 10M : 20M pages).
SIZE_FACTORS: Dict[str, float] = {
    "clueweb-xs": 0.05,
    "clueweb-s": 0.25,
    "clueweb-m": 0.5,
    "clueweb-l": 1.0,
}


def run_fig12(scale: str = "small", seed: int = 7) -> ExperimentResult:
    """Reproduce the Fig 12 sweep."""
    params = scale_params(scale)
    iterations = params["iterations"]
    n = params["num_partitions"]
    workers = params["num_workers"]
    base_vertices = params["pagerank_vertices"]
    algorithm = PageRank()

    # Calibrate worker memory so clueweb-l spills but clueweb-m fits: the
    # working set is roughly structure + 2x state + shuffle; size it from
    # the l graph and grant ~70 % of it as aggregate memory (so the m
    # graph, at half the size, stays fully in memory).
    probe = powerlaw_web_graph(
        int(base_vertices * SIZE_FACTORS["clueweb-l"]), 8.0,
        seed=seed, payload_bytes=300,
    )
    structure_bytes = records_size(algorithm.structure_records(probe))
    contributions_bytes = probe.num_edges * 26
    working_estimate = structure_bytes + contributions_bytes
    worker_memory = int(working_estimate * 0.55 / workers)

    rows: List[Tuple] = []
    for label, factor in SIZE_FACTORS.items():
        vertices = max(64, int(base_vertices * factor))
        graph = powerlaw_web_graph(vertices, 8.0, seed=seed, payload_bytes=300)
        data_scale = data_scale_for("pagerank", base_vertices)

        cluster, dfs = make_cluster(
            num_workers=workers, seed=seed, data_scale=data_scale
        )
        plain = PlainMRDriver(cluster, dfs).run(
            algorithm, graph, max_iterations=iterations
        )

        cluster, dfs = make_cluster(
            num_workers=workers, seed=seed, data_scale=data_scale
        )
        itermr = IterMREngine(cluster, dfs).run(
            IterativeJob(algorithm, graph, num_partitions=n,
                         max_iterations=iterations)
        )

        cluster, dfs = make_cluster(
            num_workers=workers, seed=seed, data_scale=data_scale,
            worker_memory=worker_memory,
        )
        spark_driver = SparkLikeDriver(cluster, dfs)
        spark = spark_driver.run(algorithm, graph, max_iterations=iterations)

        rows.append(
            (
                label,
                vertices,
                round(plain.total_time, 1),
                round(itermr.total_time, 1),
                round(spark.total_time, 1),
                f"{spark_driver.last_stats.spill_fraction:.0%}",
            )
        )

    return ExperimentResult(
        name="Fig 12: PageRank across graph sizes — PlainMR vs iterMR vs Spark",
        headers=("dataset", "vertices", "plainmr_s", "itermr_s", "spark_s", "spark_spill"),
        rows=rows,
        notes=(
            f"scale={scale}; worker memory sized so clueweb-l exceeds "
            "aggregate memory (Spark spills) while clueweb-m fits"
        ),
    )


def main() -> None:
    """CLI entry point: print the fig-12 Spark-comparison table."""
    print(run_fig12().to_text())


if __name__ == "__main__":
    main()
