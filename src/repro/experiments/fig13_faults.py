"""Fig 13 — fault recovery during PageRank (§8.8).

The paper runs PageRank with 64 prime Map and 64 prime Reduce tasks on 32
workers, injecting three task failures: "(1) map task 7 of iteration 3
fails; (2) reduce task 39 of iteration 6 fails; (3) map task 58 of
iteration 7 fails.  All the failed task[s] can recover from failure
within 12 seconds and do not impact the overall performance a lot."

Recovery follows §6.1: detection on the next TaskTracker heartbeat (3 s),
dependency-aware rescheduling, checkpoint reload, re-execution.
"""

from __future__ import annotations

from typing import List

from repro.algorithms.pagerank import PageRank
from repro.datasets.graphs import powerlaw_web_graph
from repro.experiments.harness import (
    ExperimentResult,
    data_scale_for,
    make_cluster,
    scale_params,
)
from repro.faults.context import FaultContext
from repro.faults.injection import FaultInjector, FaultSpec
from repro.iterative.api import IterativeJob
from repro.iterative.engine import IterMREngine

#: The paper's three injected failures (iterations are 0-indexed here).
PAPER_FAULTS = (
    FaultSpec(iteration=2, stage="map", task_index=7, at_fraction=0.5),
    FaultSpec(iteration=5, stage="reduce", task_index=39, at_fraction=0.6),
    FaultSpec(iteration=6, stage="map", task_index=58, at_fraction=0.4),
)

#: Recovery bound the paper reports.
RECOVERY_BOUND_S = 12.0


def run_fig13(scale: str = "small", seed: int = 7, iterations: int = 7) -> ExperimentResult:
    """Reproduce the fault-recovery timeline."""
    params = scale_params(scale)
    num_tasks = 64
    workers = 32

    graph = powerlaw_web_graph(
        params["pagerank_vertices"], 8.0, seed=seed, payload_bytes=300
    )
    algorithm = PageRank()
    data_scale = data_scale_for("pagerank", graph.num_vertices)

    # Baseline run without failures.
    cluster, dfs = make_cluster(num_workers=workers, seed=seed, data_scale=data_scale)
    clean = IterMREngine(cluster, dfs).run(
        IterativeJob(algorithm, graph, num_partitions=num_tasks,
                     max_iterations=iterations)
    )

    # Faulted run.
    cluster, dfs = make_cluster(num_workers=workers, seed=seed, data_scale=data_scale)
    injector = FaultInjector(PAPER_FAULTS)
    context = FaultContext(injector)
    faulted = IterMREngine(cluster, dfs).run(
        IterativeJob(algorithm, graph, num_partitions=num_tasks,
                     max_iterations=iterations),
        fault_context=context,
    )

    rows: List[tuple] = []
    for event in context.timeline.failures():
        rows.append(
            (
                event.task_id,
                event.iteration + 1,
                round(event.failed_at, 1),
                round(event.recovery_time, 2),
                "yes" if event.recovery_time <= RECOVERY_BOUND_S else "NO",
            )
        )
    overhead = faulted.total_time - clean.total_time
    rows.append(
        (
            "(totals)",
            iterations,
            round(faulted.total_time, 1),
            round(overhead, 2),
            f"{overhead / clean.total_time:.1%} slower",
        )
    )
    return ExperimentResult(
        name="Fig 13: fault recovery in PageRank (64 map + 64 reduce tasks)",
        headers=("task", "iteration", "failed_at_s", "recovery_s", "within 12 s"),
        rows=rows,
        notes=(
            f"scale={scale}; detection = next 3 s heartbeat + checkpoint "
            f"reload; clean run {clean.total_time:.1f} s"
        ),
    )


def run_fig13_timeline(scale: str = "test", seed: int = 7, iterations: int = 7):
    """Full task timeline (the Fig 13 scatter) for examples and tests."""
    params = scale_params(scale)
    graph = powerlaw_web_graph(
        params["pagerank_vertices"], 8.0, seed=seed, payload_bytes=100
    )
    algorithm = PageRank()
    cluster, dfs = make_cluster(
        num_workers=8,
        seed=seed,
        data_scale=data_scale_for("pagerank", graph.num_vertices),
    )
    injector = FaultInjector(
        [
            FaultSpec(iteration=2, stage="map", task_index=3, at_fraction=0.5),
            FaultSpec(iteration=4, stage="reduce", task_index=9, at_fraction=0.5),
        ]
    )
    context = FaultContext(injector)
    IterMREngine(cluster, dfs).run(
        IterativeJob(algorithm, graph, num_partitions=16,
                     max_iterations=iterations),
        fault_context=context,
    )
    return context.timeline


def main() -> None:
    """CLI entry point: print the fig-13 fault-tolerance table."""
    print(run_fig13().to_text())


if __name__ == "__main__":
    main()
