"""Ablation — task-level (Incoop-style) vs kv-pair-level incremental reuse.

The paper could not compare against Incoop directly ("not publicly
available") but argues: "without careful data partition, almost all tasks
see changes in the experiments, making task-level incremental processing
less effective" (§8.1.1).  This ablation measures that claim with the
Incoop-style memoizing engine on APriori under two delta regimes:

- **append-only** — newly collected tweets land in new content-defined
  chunks; task-level reuse works well;
- **scattered updates** — the same volume of change spread as in-place
  edits across the whole input; almost every chunk's fingerprint changes
  and task-level reuse collapses, while kv-pair-level processing (which
  only touches affected reduce instances via the accumulator/state path)
  keeps its advantage.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.algorithms.apriori import APriori
from repro.baselines.incoop import IncoopEngine
from repro.datasets.text import TweetDataset, new_tweets, zipf_tweets
from repro.experiments.harness import (
    ExperimentResult,
    data_scale_for,
    make_cluster,
    scale_params,
)
from repro.incremental.api import delta_to_dfs_records
from repro.incremental.engine import IncrMREngine
from repro.common.kvpair import DeltaRecord, delete, insert


def _scattered_updates(
    dataset: TweetDataset, fraction: float, seed: int
) -> Tuple[TweetDataset, List[DeltaRecord]]:
    """Edit a fraction of tweets in place, spread across the whole input."""
    rng = np.random.RandomState(seed)
    tweets = dict(dataset.tweets)
    ids = sorted(tweets)
    count = int(round(fraction * len(ids)))
    chosen = rng.choice(len(ids), size=count, replace=False)
    records: List[DeltaRecord] = []
    for i in chosen:
        tid = ids[i]
        old = tweets[tid]
        new = old + " w0001"
        records.append(delete(tid, old))
        records.append(insert(tid, new))
        tweets[tid] = new
    return TweetDataset(tweets, dataset.candidate_pairs, dataset.vocab_size), records


def run_ablation(scale: str = "small", fraction: float = 0.079, seed: int = 5) -> ExperimentResult:
    """Measure Incoop-style task reuse under both delta regimes."""
    params = scale_params(scale)
    workers = params["num_workers"]
    dataset = zipf_tweets(params["tweets"], seed=seed)
    data_scale = data_scale_for("apriori", dataset.num_tweets)
    apriori = APriori(dataset)

    rows: List[tuple] = []
    regimes: Dict[str, TweetDataset] = {}
    appended = new_tweets(dataset, fraction, seed=seed + 1)
    regimes["append-only"] = appended.new_dataset
    scattered_ds, _ = _scattered_updates(dataset, fraction, seed + 2)
    regimes["scattered-updates"] = scattered_ds

    for regime, new_dataset in regimes.items():
        cluster, dfs = make_cluster(
            num_workers=workers, seed=seed, data_scale=data_scale
        )
        engine = IncoopEngine(cluster, dfs)
        dfs.write("/tweets-v1", sorted(dataset.tweets.items()))
        conf1 = apriori.jobconf(["/tweets-v1"], "/pairs-v1", num_reducers=workers)
        _, memo = engine.run_memoized(conf1)

        dfs.write("/tweets-v2", sorted(new_dataset.tweets.items()))
        conf2 = apriori.jobconf(["/tweets-v2"], "/pairs-v2", num_reducers=workers)
        result, memo2 = engine.run_memoized(conf2, memo)
        reused = result.metrics.counters.get("map_tasks_reused")
        executed = result.metrics.counters.get("map_tasks_executed")
        rows.append(
            (
                "incoop",
                regime,
                round(result.total_time, 1),
                f"{reused}/{reused + executed}",
            )
        )

    # kv-level (i2MapReduce accumulator path) on the append-only regime —
    # the same workload the paper's 12x headline uses.
    cluster, dfs = make_cluster(num_workers=workers, seed=seed, data_scale=data_scale)
    engine = IncrMREngine(cluster, dfs)
    dfs.write("/tweets", sorted(dataset.tweets.items()))
    conf = apriori.jobconf(["/tweets"], "/pairs", num_reducers=workers)
    _, state = engine.run_initial(conf, accumulator=True)
    dfs.write("/delta", delta_to_dfs_records(appended.records))
    incr = engine.run_incremental(conf, "/delta", state)
    rows.append(("i2mapreduce", "append-only", round(incr.total_time, 1), "kv-level"))
    state.cleanup()

    return ExperimentResult(
        name="Ablation: task-level (Incoop) vs kv-pair-level reuse on APriori",
        headers=("system", "delta regime", "time_s", "map tasks reused"),
        rows=rows,
        notes=(
            f"scale={scale}, {fraction:.1%} of input changed; scattered "
            "updates defeat task-level memoization (§8.1.1's claim)"
        ),
    )


def main() -> None:
    """CLI entry point: print the Incoop-ablation table."""
    print(run_ablation().to_text())


if __name__ == "__main__":
    main()
