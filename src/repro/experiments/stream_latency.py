"""Stream latency — micro-batch policy sweep over the continuous pipeline.

Not a paper figure: the paper refreshes a computation once per delta,
offline.  This experiment drives the same incremental engines from a
*continuous* delta stream (:mod:`repro.streaming`) and measures the
latency / backlog trade-off of four micro-batching policies on three
workloads:

- **PageRank** — iterative, fine-grain incremental (§5) over an
  evolving web crawl (bursts of rewired pages);
- **K-means** — iterative with replicated state; the P∆ auto-off trips
  (§5.2) and batches run in fallback (full recomputation) mode, so the
  fallback column is the interesting one;
- **WordCount** — one-step accumulator processing (§3.5) over newly
  collected text, the cheapest refresh path.

Every batch pays the fixed job-startup cost, so tiny batches drown in
startup overhead and the backlog grows; huge batches amortize startup
but hold their oldest record hostage.  The ``backpressure`` policy
adapts its batch target to the observed backlog and should land near
the best fixed policy on *both* columns.

All times are simulated seconds; runs are seeded and deterministic.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Sequence, Tuple

from repro.algorithms.kmeans import Kmeans
from repro.algorithms.pagerank import PageRank
from repro.algorithms.wordcount import WordCountMapper, WordCountReducer
from repro.common import config
from repro.datasets.graphs import powerlaw_web_graph
from repro.datasets.points import gaussian_points
from repro.datasets.text import zipf_tweets
from repro.experiments.harness import ExperimentResult, make_cluster, scale_params
from repro.inciter.engine import I2MROptions
from repro.iterative.api import IterativeJob
from repro.mapreduce.job import JobConf
from repro.streaming.batching import (
    BackpressureBatcher,
    BatchPolicy,
    ByteBudgetBatcher,
    CountBatcher,
    TimeWindowBatcher,
)
from repro.streaming.consumers import (
    IterativeStreamConsumer,
    OneStepStreamConsumer,
    StreamConsumer,
)
from repro.streaming.metrics import StreamRunResult
from repro.streaming.pipeline import ContinuousPipeline
from repro.streaming.sources import (
    DeltaSource,
    evolving_points_source,
    evolving_text_source,
    evolving_web_graph_source,
)

#: delta bursts per run and changed fraction per burst.
GENERATIONS = 4
CHANGE_FRACTION = 0.08
#: simulated seconds between bursts (a recrawl/refresh cadence).
PERIOD_S = 240.0

#: CPC filter thresholds per workload (mirrors fig8).
FILTER_THRESHOLDS = {"pagerank": 0.01, "kmeans": 0.01}


def _policies() -> List[Tuple[str, Callable[[], BatchPolicy]]]:
    """Fresh policy instances per run (adaptive policies carry state)."""
    return [
        ("count", lambda: CountBatcher(8)),
        ("bytes", lambda: ByteBudgetBatcher(2 * config.KB)),
        ("window", lambda: TimeWindowBatcher(PERIOD_S / 2)),
        ("backpressure", lambda: BackpressureBatcher(
            min_records=4, max_records=256, high_water=12)),
    ]


def _build_workload(
    name: str, params: Dict[str, Any], seed: int
) -> Tuple[DeltaSource, StreamConsumer]:
    """A (source, consumer) pair for one workload, freshly seeded."""
    n = params["num_partitions"]
    workers = params["num_workers"]
    iterations = params["iterations"]
    cluster, dfs = make_cluster(num_workers=workers, seed=seed)

    if name == "pagerank":
        graph = powerlaw_web_graph(
            params["pagerank_vertices"], 8.0, seed=seed
        )
        job = IterativeJob(
            PageRank(), graph, num_partitions=n,
            max_iterations=3 * iterations, epsilon=1e-6,
        )
        consumer = IterativeStreamConsumer.from_initial(
            cluster, dfs, job,
            I2MROptions(
                filter_threshold=FILTER_THRESHOLDS[name],
                max_iterations=iterations, epsilon=1e-6,
            ),
        )
        source = evolving_web_graph_source(
            graph, CHANGE_FRACTION, GENERATIONS, PERIOD_S, seed=seed + 1
        )
        return source, consumer

    if name == "kmeans":
        points = gaussian_points(
            params["kmeans_points"], dim=params["kmeans_dim"],
            k=params["kmeans_k"], seed=seed,
        )
        job = IterativeJob(
            Kmeans(k=params["kmeans_k"], dim=params["kmeans_dim"]),
            points, num_partitions=n,
            max_iterations=3 * iterations, epsilon=1e-6,
        )
        consumer = IterativeStreamConsumer.from_initial(
            cluster, dfs, job,
            I2MROptions(
                filter_threshold=FILTER_THRESHOLDS[name],
                max_iterations=iterations, epsilon=1e-6,
            ),
        )
        source = evolving_points_source(
            points, CHANGE_FRACTION, GENERATIONS, PERIOD_S, seed=seed + 1
        )
        return source, consumer

    if name == "wordcount":
        tweets = zipf_tweets(params["tweets"], seed=seed)
        dfs.write("/tweets", sorted(tweets.tweets.items()))
        conf = JobConf(
            name="wordcount", mapper=WordCountMapper,
            reducer=WordCountReducer, inputs=["/tweets"],
            output="/counts", num_reducers=n,
        )
        consumer = OneStepStreamConsumer.from_initial(
            cluster, dfs, conf, accumulator=True
        )
        source = evolving_text_source(
            tweets, CHANGE_FRACTION, GENERATIONS, PERIOD_S, seed=seed + 1
        )
        return source, consumer

    raise ValueError(f"unknown workload {name!r}")


def run_stream_workload(
    name: str,
    policy: BatchPolicy,
    scale: str = "small",
    seed: int = 7,
) -> StreamRunResult:
    """Run one workload under one batching policy to stream exhaustion."""
    params = scale_params(scale)
    source, consumer = _build_workload(name, params, seed)
    with ContinuousPipeline(source, policy, consumer) as pipe:
        return pipe.run()


def run_stream_latency(
    scale: str = "small",
    workloads: Sequence[str] = ("pagerank", "kmeans", "wordcount"),
    seed: int = 7,
) -> ExperimentResult:
    """The policy × workload sweep as one table."""
    rows: List[Tuple] = []
    for name in workloads:
        for label, make_policy in _policies():
            result = run_stream_workload(name, make_policy(), scale=scale, seed=seed)
            rows.append(
                (
                    name,
                    label,
                    result.num_batches,
                    round(result.mean_batch_records, 1),
                    round(result.mean_latency_s, 1),
                    round(result.max_latency_s, 1),
                    result.max_backlog,
                    result.num_fallbacks,
                )
            )
    return ExperimentResult(
        name="Stream latency: micro-batch policy sweep (simulated s)",
        headers=(
            "workload",
            "policy",
            "batches",
            "mean_batch",
            "mean_lat_s",
            "max_lat_s",
            "max_backlog",
            "fallback_batches",
        ),
        rows=rows,
        notes=(
            f"scale={scale}, {GENERATIONS} bursts of "
            f"{CHANGE_FRACTION:.0%} change every {PERIOD_S:.0f}s; "
            "latency = oldest-record arrival to batch completion; "
            "fallback_batches counts batches run with MRBGraph "
            "maintenance off (P-delta auto-off, section 5.2)"
        ),
    )


def main() -> None:
    """CLI entry point: print the streaming latency/backlog table."""
    print(run_stream_latency().to_text())


if __name__ == "__main__":
    main()
