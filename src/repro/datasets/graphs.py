"""Synthetic web-graph generators (ClueWeb / ClueWeb2 stand-ins).

The paper's ClueWeb data sets are 20M-page crawls; this module generates
seeded power-law graphs of laptop scale with the same structural features
PageRank and SSSP care about: skewed in-degree (a few hub pages attract
most links) and evolving structure (rewired links, page insertions and
deletions).  Deltas follow the paper's §3.3 convention — an update is a
deletion of the old record plus an insertion of the new one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.common.kvpair import DeltaRecord, Op, delete, insert


@dataclass
class WebGraph:
    """A directed web graph stored as adjacency lists.

    ``payload`` models the paper's trick of substituting node identifiers
    with longer strings "to make the structure data larger without
    changing the graph structure" (§8.1.4) — every vertex record carries
    this extra blob, inflating structure bytes relative to the
    intermediate rank contributions.
    """

    out_links: Dict[int, Tuple[int, ...]]
    payload: str = ""

    @property
    def num_vertices(self) -> int:
        """Number of vertices."""
        return len(self.out_links)

    @property
    def num_edges(self) -> int:
        """Total number of directed edges."""
        return sum(len(links) for links in self.out_links.values())

    def value_of(self, v: int) -> Tuple[Tuple[int, ...], str]:
        """The structure value ``SV`` of vertex ``v``: (links, payload)."""
        return (self.out_links[v], self.payload)

    def copy(self) -> "WebGraph":
        """Deep-enough copy (link tuples are immutable)."""
        return WebGraph(dict(self.out_links), self.payload)


@dataclass
class WeightedGraph:
    """A directed graph with edge weights (for SSSP)."""

    out_links: Dict[int, Tuple[Tuple[int, float], ...]]
    source: int = 0
    payload: str = ""

    @property
    def num_vertices(self) -> int:
        """Number of vertices."""
        return len(self.out_links)

    @property
    def num_edges(self) -> int:
        """Total number of weighted edges."""
        return sum(len(links) for links in self.out_links.values())

    def value_of(self, v: int) -> Tuple[Tuple[Tuple[int, float], ...], str]:
        """The structure value ``SV`` of vertex ``v``: (wlinks, payload)."""
        return (self.out_links[v], self.payload)

    def copy(self) -> "WeightedGraph":
        """Deep-enough copy (link tuples are immutable)."""
        return WeightedGraph(dict(self.out_links), self.source, self.payload)


@dataclass
class GraphDelta:
    """A structure delta: the mutated graph plus the +/- record stream."""

    new_graph: object
    records: List[DeltaRecord]

    @property
    def num_changed_records(self) -> int:
        """Number of ``(K1, (V1, op))`` records in the delta."""
        return len(self.records)


def _pick_targets(
    rng: np.random.RandomState,
    vertex_ids: np.ndarray,
    count: int,
    exclude: int,
) -> Tuple[int, ...]:
    """Choose link targets with a Zipf-skewed preference for low ids."""
    if count <= 0 or len(vertex_ids) <= 1:
        return ()
    # Zipf rank sampling clipped to the vertex range gives hub structure.
    ranks = rng.zipf(1.6, size=count * 2) - 1
    ranks = ranks[ranks < len(vertex_ids)]
    chosen: List[int] = []
    seen = set()
    for rank in ranks:
        target = int(vertex_ids[rank])
        if target != exclude and target not in seen:
            seen.add(target)
            chosen.append(target)
        if len(chosen) == count:
            break
    while len(chosen) < count:
        target = int(vertex_ids[rng.randint(len(vertex_ids))])
        if target != exclude and target not in seen:
            seen.add(target)
            chosen.append(target)
    return tuple(chosen)


def powerlaw_web_graph(
    num_vertices: int,
    avg_out_degree: float = 8.0,
    seed: int = 0,
    payload_bytes: int = 0,
) -> WebGraph:
    """Generate a power-law web graph.

    Out-degrees are geometric around ``avg_out_degree``; in-degrees are
    Zipf-skewed (hub pages), mirroring real web-crawl structure.
    ``payload_bytes`` inflates every vertex record (the paper's
    longer-identifier trick, §8.1.4).
    """
    if num_vertices <= 1:
        raise ValueError("num_vertices must be at least 2")
    rng = np.random.RandomState(seed)
    vertex_ids = np.arange(num_vertices)
    # Shuffle so hubs are spread across the id space (and therefore across
    # hash partitions).
    rng.shuffle(vertex_ids)
    out_links: Dict[int, Tuple[int, ...]] = {}
    degrees = rng.geometric(1.0 / avg_out_degree, size=num_vertices)
    for v in range(num_vertices):
        degree = int(min(degrees[v], max(2, num_vertices // 2)))
        out_links[v] = _pick_targets(rng, vertex_ids, degree, exclude=v)
    return WebGraph(out_links, payload="x" * payload_bytes)


def weighted_graph_from(
    graph: WebGraph,
    seed: int = 0,
    mean_weight: float = 1.0,
    std_weight: float = 0.25,
    source: int = 0,
) -> WeightedGraph:
    """Attach Gaussian edge weights to a web graph (the ClueWeb2 recipe).

    The paper built ClueWeb2 for SSSP by "adding each edge with a random
    weight following gaussian distribution"; weights are clipped to stay
    positive.
    """
    rng = np.random.RandomState(seed)
    out_links: Dict[int, Tuple[Tuple[int, float], ...]] = {}
    for v, targets in graph.out_links.items():
        weights = np.clip(
            rng.normal(mean_weight, std_weight, size=len(targets)), 0.05, None
        )
        out_links[v] = tuple(
            (int(j), float(round(w, 4))) for j, w in zip(targets, weights)
        )
    return WeightedGraph(out_links, source=source, payload=graph.payload)


def mutate_web_graph(
    graph: WebGraph,
    fraction: float,
    seed: int = 0,
    insert_fraction: float = 0.1,
    delete_fraction: float = 0.05,
) -> GraphDelta:
    """Randomly change a fraction of the graph's vertex records.

    Changes mirror the paper's Fig 3 example: most changed vertices get
    rewired out-links (a deletion of the old record plus an insertion of
    the new one), a few vertices are deleted outright (with their
    in-neighbors rewired to drop dangling links, as a recrawl would), and
    a few brand-new vertices are inserted.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be within [0, 1]")
    rng = np.random.RandomState(seed + 7919)
    pay = graph.payload
    new_links = dict(graph.out_links)
    records: List[DeltaRecord] = []
    vertices = sorted(graph.out_links)
    num_changes = int(round(fraction * len(vertices)))
    if num_changes == 0:
        return GraphDelta(WebGraph(new_links, pay), records)

    changed = rng.choice(len(vertices), size=num_changes, replace=False)
    changed_ids = [vertices[i] for i in changed]
    num_delete = int(len(changed_ids) * delete_fraction)
    num_insert = int(len(changed_ids) * insert_fraction)
    to_delete = set(changed_ids[:num_delete])
    to_rewire = set(changed_ids[num_delete:])

    # Deleting a page also rewires every in-neighbor to drop the dead link.
    in_neighbors: Dict[int, List[int]] = {}
    if to_delete:
        for v, targets in graph.out_links.items():
            for j in targets:
                if j in to_delete:
                    in_neighbors.setdefault(j, []).append(v)

    touched: Dict[int, Tuple[int, ...]] = {}

    for v in sorted(to_delete):
        records.append(delete(v, (graph.out_links[v], pay)))
        del new_links[v]
        for u in in_neighbors.get(v, ()):
            if u in to_delete:
                continue
            touched.setdefault(u, graph.out_links[u])

    for u, old in touched.items():
        pruned = tuple(j for j in new_links.get(u, old) if j not in to_delete)
        if u in new_links:
            records.append(delete(u, (new_links[u], pay)))
            records.append(insert(u, (pruned, pay)))
            new_links[u] = pruned
        to_rewire.discard(u)

    alive = np.array(sorted(new_links), dtype=np.int64)
    for v in sorted(to_rewire):
        if v not in new_links:
            continue
        old = new_links[v]
        degree = max(1, len(old) + int(rng.randint(-1, 2)))
        new = _pick_targets(rng, alive, degree, exclude=v)
        if new == old:
            continue
        records.append(delete(v, (old, pay)))
        records.append(insert(v, (new, pay)))
        new_links[v] = new

    next_id = (max(graph.out_links) + 1) if graph.out_links else 0
    for offset in range(num_insert):
        v = next_id + offset
        new = _pick_targets(rng, alive, max(1, int(rng.geometric(0.25))), exclude=v)
        records.append(insert(v, (new, pay)))
        new_links[v] = new

    return GraphDelta(WebGraph(new_links, pay), records)


def mutate_weighted_graph(
    graph: WeightedGraph,
    fraction: float,
    seed: int = 0,
) -> GraphDelta:
    """Randomly reweight/rewire a fraction of a weighted graph's records."""
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be within [0, 1]")
    rng = np.random.RandomState(seed + 104729)
    pay = graph.payload
    new_links = dict(graph.out_links)
    records: List[DeltaRecord] = []
    vertices = sorted(graph.out_links)
    num_changes = int(round(fraction * len(vertices)))
    if num_changes == 0:
        return GraphDelta(WeightedGraph(new_links, graph.source, pay), records)
    changed = rng.choice(len(vertices), size=num_changes, replace=False)
    for i in changed:
        v = vertices[i]
        old = new_links[v]
        if not old:
            continue
        new = tuple(
            (j, float(round(max(0.05, w * rng.uniform(0.5, 1.5)), 4))) for j, w in old
        )
        if new == old:
            continue
        records.append(delete(v, (old, pay)))
        records.append(insert(v, (new, pay)))
        new_links[v] = new
    return GraphDelta(WeightedGraph(new_links, graph.source, pay), records)
