"""Synthetic sparse block matrices (WikiTalk stand-in) for GIM-V.

GIM-V (§4.1) operates on an ``n × n`` matrix and a size-``n`` vector, both
divided into sub-blocks; this module generates a seeded sparse block
matrix with a Zipf-skewed non-zero distribution like the WikiTalk
communication graph, plus delta mutators that perturb a fraction of the
matrix blocks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.common.kvpair import DeltaRecord, delete, insert

#: One sparse block: a tuple of (row_in_block, col_in_block, value) triples.
BlockTriples = Tuple[Tuple[int, int, float], ...]


@dataclass
class BlockMatrixDataset:
    """A sparse block matrix plus the initial vector."""

    blocks: Dict[Tuple[int, int], BlockTriples]
    initial_vector: Dict[int, Tuple[float, ...]]
    num_blocks: int
    block_size: int

    @property
    def nnz(self) -> int:
        """Total number of nonzero entries across all blocks."""
        return sum(len(triples) for triples in self.blocks.values())

    def copy(self) -> "BlockMatrixDataset":
        """Deep-enough copy of the block map and initial vector."""
        return BlockMatrixDataset(
            dict(self.blocks), dict(self.initial_vector), self.num_blocks, self.block_size
        )


@dataclass
class MatrixDelta:
    """A mutated matrix plus its +/- record stream."""

    new_dataset: BlockMatrixDataset
    records: List[DeltaRecord]


def block_matrix(
    num_blocks: int = 8,
    block_size: int = 64,
    density: float = 0.05,
    seed: int = 0,
) -> BlockMatrixDataset:
    """Generate a sparse block matrix with column-normalized weights.

    Column normalization keeps iterated matrix-vector multiplication
    bounded, the way the paper's PageRank-like GIM-V instantiations
    behave.
    """
    if num_blocks <= 0 or block_size <= 0:
        raise ValueError("num_blocks and block_size must be positive")
    if not 0.0 < density <= 1.0:
        raise ValueError("density must be in (0, 1]")
    rng = np.random.RandomState(seed)
    n = num_blocks * block_size
    # Zipf-skewed column popularity: a few columns collect most non-zeros.
    col_weights = 1.0 / np.arange(1, n + 1) ** 0.7
    col_perm = rng.permutation(n)
    col_prob = col_weights[col_perm] / col_weights.sum()
    total_nnz = int(density * n * n)
    rows = rng.randint(0, n, size=total_nnz)
    cols = rng.choice(n, size=total_nnz, p=col_prob)

    # Deduplicate coordinates, then normalize each column by its unique
    # entry count so occupied columns sum to one.
    unique = sorted({(int(r), int(c)) for r, c in zip(rows, cols)})
    col_counts = [0] * n
    for _, c in unique:
        col_counts[c] += 1

    blocks: Dict[Tuple[int, int], List[Tuple[int, int, float]]] = {}
    for r, c in unique:
        bi, bj = r // block_size, c // block_size
        value = 1.0 / col_counts[c]
        blocks.setdefault((bi, bj), []).append(
            (r % block_size, c % block_size, value)
        )
    sealed = {key: tuple(sorted(triples)) for key, triples in blocks.items()}
    vector = {
        j: tuple(1.0 for _ in range(block_size)) for j in range(num_blocks)
    }
    return BlockMatrixDataset(
        blocks=sealed,
        initial_vector=vector,
        num_blocks=num_blocks,
        block_size=block_size,
    )


def mutate_matrix(
    dataset: BlockMatrixDataset,
    fraction: float,
    seed: int = 0,
) -> MatrixDelta:
    """Perturb a fraction of the matrix blocks (delete + insert records)."""
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be within [0, 1]")
    rng = np.random.RandomState(seed + 31)
    new_blocks = dict(dataset.blocks)
    records: List[DeltaRecord] = []
    keys = sorted(dataset.blocks)
    num_changes = int(round(fraction * len(keys)))
    if num_changes == 0:
        return MatrixDelta(
            BlockMatrixDataset(
                new_blocks, dict(dataset.initial_vector), dataset.num_blocks, dataset.block_size
            ),
            records,
        )
    chosen = rng.choice(len(keys), size=num_changes, replace=False)
    for i in chosen:
        key = keys[i]
        old = new_blocks[key]
        if not old:
            continue
        scale = rng.uniform(0.5, 1.5)
        new = tuple(
            (r, c, float(round(v * scale, 6))) for r, c, v in old
        )
        if new == old:
            continue
        records.append(delete(key, old))
        records.append(insert(key, new))
        new_blocks[key] = new
    return MatrixDelta(
        BlockMatrixDataset(
            new_blocks, dict(dataset.initial_vector), dataset.num_blocks, dataset.block_size
        ),
        records,
    )
