"""Seeded synthetic dataset generators and delta mutators (Table 3 stand-ins)."""

from repro.datasets.graphs import (
    GraphDelta,
    WebGraph,
    WeightedGraph,
    mutate_web_graph,
    mutate_weighted_graph,
    powerlaw_web_graph,
    weighted_graph_from,
)
from repro.datasets.matrices import (
    BlockMatrixDataset,
    MatrixDelta,
    block_matrix,
    mutate_matrix,
)
from repro.datasets.points import (
    PointsDataset,
    PointsDelta,
    gaussian_points,
    mutate_points,
)
from repro.datasets.text import TweetDataset, TweetDelta, new_tweets, zipf_tweets

__all__ = [
    "GraphDelta",
    "WebGraph",
    "WeightedGraph",
    "mutate_web_graph",
    "mutate_weighted_graph",
    "powerlaw_web_graph",
    "weighted_graph_from",
    "BlockMatrixDataset",
    "MatrixDelta",
    "block_matrix",
    "mutate_matrix",
    "PointsDataset",
    "PointsDelta",
    "gaussian_points",
    "mutate_points",
    "TweetDataset",
    "TweetDelta",
    "new_tweets",
    "zipf_tweets",
]
