"""Synthetic tweet streams (Twitter-crawl stand-in) for APriori.

The paper mines frequent word pairs from a two-month, 52M-tweet crawl and
uses the last week (7.9 % of the input) as the delta.  This module
generates a seeded Zipf-vocabulary tweet stream with the same shape: a
heavy-tailed word distribution so a small candidate-pair list covers most
pair occurrences, and an insert-only delta representing newly collected
tweets.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.common.kvpair import DeltaRecord, insert


@dataclass
class TweetDataset:
    """Tweets plus the candidate word-pair list mined in preprocessing."""

    tweets: Dict[int, str]
    candidate_pairs: Tuple[Tuple[str, str], ...]
    vocab_size: int

    @property
    def num_tweets(self) -> int:
        """Number of tweets."""
        return len(self.tweets)


@dataclass
class TweetDelta:
    """Newly collected tweets: an insert-only delta (§3.5 requirement)."""

    new_dataset: TweetDataset
    records: List[DeltaRecord]


def _word(index: int) -> str:
    return f"w{index:04d}"


def zipf_tweets(
    num_tweets: int,
    vocab_size: int = 500,
    words_per_tweet: int = 10,
    num_candidates: int = 200,
    seed: int = 0,
) -> TweetDataset:
    """Generate tweets whose words follow a Zipf distribution.

    ``candidate_pairs`` lists the most likely frequent word pairs — the
    output of the paper's preprocessing job that APriori's Map task loads
    into memory.
    """
    if num_tweets <= 0:
        raise ValueError("num_tweets must be positive")
    rng = np.random.RandomState(seed)
    ranks = rng.zipf(1.5, size=(num_tweets, words_per_tweet))
    ranks = np.minimum(ranks - 1, vocab_size - 1)
    tweets = {
        tid: " ".join(_word(int(r)) for r in row) for tid, row in enumerate(ranks)
    }
    # Candidate pairs: the top sqrt-ish frequent words, pairwise.
    top = int(np.ceil((2 * num_candidates) ** 0.5)) + 1
    pairs = [
        (_word(a), _word(b))
        for a, b in itertools.combinations(range(top), 2)
    ][:num_candidates]
    return TweetDataset(
        tweets=tweets, candidate_pairs=tuple(pairs), vocab_size=vocab_size
    )


def new_tweets(
    dataset: TweetDataset,
    fraction: float,
    seed: int = 0,
) -> TweetDelta:
    """Collect ``fraction`` more tweets (insert-only delta).

    The paper's delta is "the last week's messages", 7.9 % of the input.
    """
    if fraction < 0:
        raise ValueError("fraction must be non-negative")
    rng = np.random.RandomState(seed + 97)
    count = int(round(fraction * dataset.num_tweets))
    ranks = rng.zipf(1.5, size=(count, 10))
    ranks = np.minimum(ranks - 1, dataset.vocab_size - 1)
    next_id = (max(dataset.tweets) + 1) if dataset.tweets else 0
    new = dict(dataset.tweets)
    records: List[DeltaRecord] = []
    for offset, row in enumerate(ranks):
        tid = next_id + offset
        text = " ".join(_word(int(r)) for r in row)
        new[tid] = text
        records.append(insert(tid, text))
    return TweetDelta(
        TweetDataset(new, dataset.candidate_pairs, dataset.vocab_size), records
    )
