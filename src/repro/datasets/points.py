"""Synthetic clustering points (BigCross stand-in) for Kmeans.

The paper's BigCross data set is 46M points in 57 dimensions; this module
generates seeded Gaussian-mixture points of laptop scale with the same
properties Kmeans cares about: clusterable structure and an evolving point
population (insertions, deletions, movements).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.common.kvpair import DeltaRecord, delete, insert


@dataclass
class PointsDataset:
    """Points plus the initial centroid choice for Kmeans."""

    points: Dict[int, Tuple[float, ...]]
    initial_centroids: Tuple[Tuple[int, Tuple[float, ...]], ...]
    dim: int
    k: int

    @property
    def num_points(self) -> int:
        """Number of points."""
        return len(self.points)

    def copy(self) -> "PointsDataset":
        """Deep-enough copy of the points and initial centroids."""
        return PointsDataset(dict(self.points), self.initial_centroids, self.dim, self.k)


@dataclass
class PointsDelta:
    """A mutated dataset plus its +/- record stream."""

    new_dataset: PointsDataset
    records: List[DeltaRecord]


def _round_tuple(vec: np.ndarray) -> Tuple[float, ...]:
    return tuple(float(round(x, 4)) for x in vec)


def gaussian_points(
    num_points: int,
    dim: int = 8,
    k: int = 8,
    seed: int = 0,
    spread: float = 0.6,
) -> PointsDataset:
    """Generate a k-component Gaussian mixture.

    The paper "randomly pick[s] 64 points from the whole data set" as
    initial centers; here the first ``k`` generated points (which are
    random) serve the same purpose.
    """
    if num_points < k:
        raise ValueError("need at least k points")
    rng = np.random.RandomState(seed)
    centers = rng.uniform(-10.0, 10.0, size=(k, dim))
    assignments = rng.randint(0, k, size=num_points)
    coords = centers[assignments] + rng.normal(0.0, spread, size=(num_points, dim))
    points = {pid: _round_tuple(coords[pid]) for pid in range(num_points)}
    centroid_ids = rng.choice(num_points, size=k, replace=False)
    initial = tuple(
        (int(cid), points[int(pid)]) for cid, pid in enumerate(sorted(centroid_ids))
    )
    return PointsDataset(points=points, initial_centroids=initial, dim=dim, k=k)


def mutate_points(
    dataset: PointsDataset,
    fraction: float,
    seed: int = 0,
    insert_fraction: float = 0.5,
    delete_fraction: float = 0.2,
) -> PointsDelta:
    """Change a fraction of the point population.

    A mix of newly arrived points (insertions), retired points
    (deletions) and moved points (delete + insert of the same pid).
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be within [0, 1]")
    rng = np.random.RandomState(seed + 13)
    new_points = dict(dataset.points)
    records: List[DeltaRecord] = []
    num_changes = int(round(fraction * dataset.num_points))
    if num_changes == 0:
        return PointsDelta(
            PointsDataset(new_points, dataset.initial_centroids, dataset.dim, dataset.k),
            records,
        )

    num_insert = int(num_changes * insert_fraction)
    num_delete = int(num_changes * delete_fraction)
    num_move = num_changes - num_insert - num_delete

    pids = sorted(dataset.points)
    victims = rng.choice(len(pids), size=num_delete + num_move, replace=False)
    delete_ids = [pids[i] for i in victims[:num_delete]]
    move_ids = [pids[i] for i in victims[num_delete:]]

    for pid in delete_ids:
        records.append(delete(pid, new_points[pid]))
        del new_points[pid]

    for pid in move_ids:
        old = new_points[pid]
        shift = rng.normal(0.0, 1.0, size=dataset.dim)
        moved = _round_tuple(np.asarray(old) + shift)
        records.append(delete(pid, old))
        records.append(insert(pid, moved))
        new_points[pid] = moved

    next_pid = (max(dataset.points) + 1) if dataset.points else 0
    for offset in range(num_insert):
        pid = next_pid + offset
        base = np.asarray(new_points[move_ids[0]] if move_ids else (0.0,) * dataset.dim)
        fresh = _round_tuple(base + rng.normal(0.0, 5.0, size=dataset.dim))
        records.append(insert(pid, fresh))
        new_points[pid] = fresh

    return PointsDelta(
        PointsDataset(new_points, dataset.initial_centroids, dataset.dim, dataset.k),
        records,
    )
