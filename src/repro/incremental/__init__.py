"""Fine-grain incremental one-step processing (paper §3)."""

from repro.incremental.api import (
    AccumulatorReducer,
    AvgPartialReducer,
    MaxReducer,
    MinReducer,
    SumReducer,
    delta_to_dfs_records,
    dfs_records_to_delta,
)
from repro.incremental.engine import IncrMREngine
from repro.incremental.state import PreservedJobState

__all__ = [
    "AccumulatorReducer",
    "AvgPartialReducer",
    "MaxReducer",
    "MinReducer",
    "SumReducer",
    "delta_to_dfs_records",
    "dfs_records_to_delta",
    "IncrMREngine",
    "PreservedJobState",
]
