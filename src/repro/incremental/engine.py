"""Fine-grain incremental processing engine for one-step jobs (§3).

``run_initial`` executes a normal MapReduce job while preserving the
MRBGraph: the globally unique ``MK`` is generated per Map instance and
shipped with every intermediate kv-pair, and each Reduce task saves its
``(K2, MK, V2)`` chunks into a local MRBG-Store.

``run_incremental`` consumes a delta input (``+``/``-`` marked records):
the Map function runs only over delta records, the resulting delta
MRBGraph is shuffled, merged against the preserved MRBG-Store (index
nested-loop join with read-window optimization), and the Reduce function
re-runs only for the affected K2s.  The refreshed output is logically
identical to recomputing from scratch — the invariant the test suite
checks on every workload.

For accumulator Reduce functions (§3.5) the engine preserves only the
Reduce outputs and folds insert-only deltas in with ``accumulate``.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.cluster.metrics import Counters, JobMetrics
from repro.common.errors import InvalidJobConf, JobError
from repro.common.hashing import map_key
from repro.common.kvpair import Op, group_sorted, merge_sorted_runs, sort_key
from repro.common.sizeof import record_size
from repro.incremental.api import AccumulatorReducer
from repro.incremental.state import PreservedJobState
from repro.mapreduce.api import Context, Mapper, Reducer
from repro.mapreduce.engine import MapReduceEngine
from repro.mapreduce.job import JobConf, JobResult
from repro.mrbgraph.graph import DeltaEdge, Edge


class WrappedMapperFactory:
    """Picklable factory producing ``wrapper_cls(inner_factory())``.

    The engine wraps user mappers per task; using a module-level factory
    class (instead of a lambda) keeps the map payloads picklable, so the
    process execution backend can ship them to worker processes whenever
    the user's own factory pickles.
    """

    def __init__(self, wrapper_cls: type, inner_factory: Callable[[], Mapper]) -> None:
        self.wrapper_cls = wrapper_cls
        self.inner_factory = inner_factory

    def __call__(self) -> Mapper:
        return self.wrapper_cls(self.inner_factory())


class _MKTaggingMapper(Mapper):
    """Wraps a user mapper, tagging each emission with the instance MK."""

    def __init__(self, inner: Mapper) -> None:
        self.inner = inner
        self.cpu_weight = inner.cpu_weight

    def setup(self, ctx: Context) -> None:
        self.inner.setup(ctx)

    def map(self, key: Any, value: Any, ctx: Context) -> None:
        before = len(ctx.emitted)
        self.inner.map(key, value, ctx)
        emitted = ctx.emitted
        # A Map instance may emit several pairs to the same K2; (K2, MK)
        # must stay unique per edge, so repeated targets get an occurrence
        # index (re-derived identically when the record is later deleted).
        occurrence: Dict[Any, int] = {}
        for idx in range(before, len(emitted)):
            k2, v2 = emitted[idx]
            dup = occurrence.get(k2, 0)
            occurrence[k2] = dup + 1
            emitted[idx] = (k2, (map_key(key, value, dup), v2))

    def cleanup(self, ctx: Context) -> None:
        self.inner.cleanup(ctx)


class _DeltaMapper(Mapper):
    """Runs the user map over delta records, emitting tagged delta edges.

    Insertions produce ``(K2, (MK, V2, '+'))``; deletions re-run the map
    on the *old* record and produce ``(K2, (MK, '-'))`` markers — "the
    engine replaces the V2s of the deleted MRBGraph edges with '-'"
    (§3.3).
    """

    def __init__(self, inner: Mapper) -> None:
        self.inner = inner
        self.cpu_weight = inner.cpu_weight

    def setup(self, ctx: Context) -> None:
        self.inner.setup(ctx)

    def map(self, key: Any, wrapped: Any, ctx: Context) -> None:
        value, op = wrapped
        before = len(ctx.emitted)
        self.inner.map(key, value, ctx)
        emitted = ctx.emitted
        occurrence: Dict[Any, int] = {}
        if op == Op.INSERT.value:
            for idx in range(before, len(emitted)):
                k2, v2 = emitted[idx]
                dup = occurrence.get(k2, 0)
                occurrence[k2] = dup + 1
                emitted[idx] = (k2, (map_key(key, value, dup), v2, "+"))
        else:
            for idx in range(before, len(emitted)):
                k2, _ = emitted[idx]
                dup = occurrence.get(k2, 0)
                occurrence[k2] = dup + 1
                emitted[idx] = (k2, (map_key(key, value, dup), None, "-"))

    def cleanup(self, ctx: Context) -> None:
        self.inner.cleanup(ctx)


class _PreservingReducer(Reducer):
    """Unwraps ``(MK, V2)`` values and captures per-instance outputs."""

    def __init__(self, inner: Reducer, outputs: Dict[Any, List[Tuple[Any, Any]]]) -> None:
        self.inner = inner
        self.outputs = outputs
        self.cpu_weight = inner.cpu_weight

    def setup(self, ctx: Context) -> None:
        self.inner.setup(ctx)

    def reduce(self, key: Any, values: List[Any], ctx: Context) -> None:
        unwrapped = [v2 for _, v2 in values]
        before = len(ctx.emitted)
        self.inner.reduce(key, unwrapped, ctx)
        self.outputs[key] = list(ctx.emitted[before:])

    def cleanup(self, ctx: Context) -> None:
        self.inner.cleanup(ctx)


class _AccumCapturingReducer(Reducer):
    """Captures accumulator-Reduce outputs keyed by output key (§3.5)."""

    def __init__(self, inner: Reducer, acc_outputs: Dict[Any, Any]) -> None:
        self.inner = inner
        self.acc_outputs = acc_outputs
        self.cpu_weight = inner.cpu_weight

    def setup(self, ctx: Context) -> None:
        self.inner.setup(ctx)

    def reduce(self, key: Any, values: List[Any], ctx: Context) -> None:
        before = len(ctx.emitted)
        self.inner.reduce(key, values, ctx)
        for k3, v3 in ctx.emitted[before:]:
            self.acc_outputs[k3] = v3

    def cleanup(self, ctx: Context) -> None:
        self.inner.cleanup(ctx)


class IncrMREngine(MapReduceEngine):
    """The §3 fine-grain incremental processing engine."""

    # ------------------------------------------------------------------ #
    # initial run                                                        #
    # ------------------------------------------------------------------ #

    def run_initial(
        self,
        jobconf: JobConf,
        state: Optional[PreservedJobState] = None,
        accumulator: bool = False,
        num_shards: Optional[int] = None,
    ) -> Tuple[JobResult, PreservedJobState]:
        """Run job A, preserving fine-grain state for future deltas.

        ``num_shards`` splits each reduce partition's MRBG-Store into
        that many parallel-maintained shards (None = the ``REPRO_SHARDS``
        default); pass an explicit ``state`` to control sharding fully.
        """
        jobconf.validate()
        if state is None:
            state = PreservedJobState(
                num_reducers=jobconf.num_reducers,
                cost_model=self.cluster.cost_model.unscaled(),
                accumulator=accumulator,
                num_shards=num_shards,
                store_executor=self.backend_for(jobconf),
                num_workers=self.cluster.num_workers,
                compaction=jobconf.compaction,
            )
        if accumulator and not isinstance(jobconf.reducer(), AccumulatorReducer):
            raise InvalidJobConf("accumulator mode requires an AccumulatorReducer")
        if accumulator:
            return self._run_initial_accumulator(jobconf, state), state
        return self._run_initial_finegrain(jobconf, state), state

    def _run_initial_finegrain(
        self, jobconf: JobConf, state: PreservedJobState
    ) -> JobResult:
        wrapped = replace(
            jobconf,
            mapper=WrappedMapperFactory(_MKTaggingMapper, jobconf.mapper),
            combiner=None,  # combiners would merge edges before preservation
        )
        splits = self.splits_for_inputs(jobconf.inputs)
        map_result = self.map_phase(wrapped, splits)

        open_sessions: set = set()

        def sink(part: int, k2: Any, values: List[Any]) -> None:
            store = state.store_for(part)
            if part not in open_sessions:
                store.begin_merge([])
                open_sessions.add(part)
            store.put_chunk(k2, [Edge(mk, v2) for mk, v2 in values])

        user_reducer = jobconf.reducer
        reduce_result = self.reduce_phase(
            wrapped,
            map_result,
            reducer_override=lambda: _PreservingReducer(user_reducer(), state.outputs),
            group_sink=sink,
        )
        for part in open_sessions:
            store = state.store_for(part)
            store.end_merge()
            store.save_index()

        self.dfs.write(jobconf.output, state.result_records(), overwrite=True)

        metrics = JobMetrics()
        metrics.times.startup = self.cluster.cost_model.job_startup_s
        metrics.times.map = map_result.elapsed_s
        metrics.times.shuffle = reduce_result.shuffle_s
        metrics.times.sort = reduce_result.sort_s
        store_total = state.store_metrics()
        scale = self.cluster.cost_model.data_scale
        metrics.times.reduce = reduce_result.reduce_s + store_total.write_time_s * scale
        metrics.counters.merge(map_result.counters)
        metrics.counters.merge(reduce_result.counters)
        metrics.counters.add("mrbg_bytes_written", store_total.bytes_written)
        return JobResult(output=jobconf.output, metrics=metrics)

    def _run_initial_accumulator(
        self, jobconf: JobConf, state: PreservedJobState
    ) -> JobResult:
        splits = self.splits_for_inputs(jobconf.inputs)
        map_result = self.map_phase(jobconf, splits)
        user_reducer = jobconf.reducer
        reduce_result = self.reduce_phase(
            jobconf,
            map_result,
            reducer_override=lambda: _AccumCapturingReducer(
                user_reducer(), state.acc_outputs
            ),
        )
        self.dfs.write(jobconf.output, state.result_records(), overwrite=True)
        metrics = JobMetrics()
        metrics.times.startup = self.cluster.cost_model.job_startup_s
        metrics.times.map = map_result.elapsed_s
        metrics.times.shuffle = reduce_result.shuffle_s
        metrics.times.sort = reduce_result.sort_s
        metrics.times.reduce = reduce_result.reduce_s
        metrics.counters.merge(map_result.counters)
        metrics.counters.merge(reduce_result.counters)
        return JobResult(output=jobconf.output, metrics=metrics)

    # ------------------------------------------------------------------ #
    # incremental run                                                    #
    # ------------------------------------------------------------------ #

    def run_incremental(
        self,
        jobconf: JobConf,
        delta_path: str,
        state: PreservedJobState,
    ) -> JobResult:
        """Run job A' incrementally from A's preserved state.

        ``delta_path`` is a DFS file of ``(K1, (V1, '+'|'-'))`` records.
        """
        jobconf.validate()
        if state.num_reducers != jobconf.num_reducers:
            raise InvalidJobConf(
                "num_reducers must match the preserved state "
                f"({state.num_reducers} != {jobconf.num_reducers})"
            )
        if state.accumulator:
            return self._run_incremental_accumulator(jobconf, delta_path, state)
        return self._run_incremental_finegrain(jobconf, delta_path, state)

    def _run_incremental_finegrain(
        self,
        jobconf: JobConf,
        delta_path: str,
        state: PreservedJobState,
    ) -> JobResult:
        cost = self.cluster.cost_model
        wrapped = replace(
            jobconf,
            mapper=WrappedMapperFactory(_DeltaMapper, jobconf.mapper),
            combiner=None,
            inputs=[delta_path],
        )
        splits = self.splits_for_inputs([delta_path])
        map_result = self.map_phase(wrapped, splits)

        metrics = JobMetrics()
        metrics.times.startup = cost.job_startup_s
        metrics.times.map = map_result.elapsed_s
        metrics.counters.merge(map_result.counters)

        workers = self.cluster.num_workers
        shuffle_loads = [0.0] * workers
        sort_loads = [0.0] * workers
        reduce_loads = [0.0] * workers
        counters = metrics.counters

        store_snaps = state.snapshot_store_metrics()
        changed_output_bytes = 0

        for part in range(jobconf.num_reducers):
            worker = self.reduce_worker(part)
            runs: List[List[Tuple[Any, Any]]] = []
            fetch_s = 0.0
            for task in map_result.tasks:
                pairs = task.partitions.get(part)
                if not pairs:
                    continue
                nbytes = task.partition_bytes.get(part, 0)
                if task.worker == worker:
                    fetch_s += cost.disk_read_time(nbytes)
                else:
                    fetch_s += cost.net_time(nbytes)
                    counters.add("shuffle_net_bytes", nbytes)
                counters.add("shuffle_bytes", nbytes)
                runs.append(pairs)
            shuffle_loads[worker] += fetch_s
            if not runs:
                continue

            merged = merge_sorted_runs(runs)
            sort_loads[worker] += cost.sort_time(len(merged))
            counters.add("delta_edges", len(merged))

            delta_groups: List[Tuple[Any, List[DeltaEdge]]] = []
            for k2, values in group_sorted(merged):
                delta_groups.append(
                    (k2, [DeltaEdge(mk, v2, Op(op)) for mk, v2, op in values])
                )
            counters.add("affected_reduce_instances", len(delta_groups))

            store = state.store_for(part)
            reducer = jobconf.reducer()
            ctx = Context()
            reducer.setup(ctx)
            values_processed = 0
            for k2, entries in store.merge_delta(delta_groups):
                if entries:
                    before = len(ctx.emitted)
                    reducer.reduce(k2, [v2 for _, v2 in entries], ctx)
                    group_out = list(ctx.emitted[before:])
                    state.outputs[k2] = group_out
                    values_processed += len(entries)
                    changed_output_bytes += sum(
                        record_size(k3, v3) for k3, v3 in group_out
                    )
                else:
                    state.outputs.pop(k2, None)
            reducer.cleanup(ctx)
            store.save_index()
            reduce_loads[worker] += cost.cpu_time(values_processed, reducer.cpu_weight)

        store_delta = state.store_metrics_since(store_snaps)
        metrics.times.shuffle = max(shuffle_loads)
        metrics.times.sort = max(sort_loads)
        metrics.times.reduce = (
            max(reduce_loads)
            + (store_delta.read_time_s + store_delta.write_time_s) * cost.data_scale
            + cost.disk_write_time(changed_output_bytes)
        )
        counters.add("mrbg_reads", store_delta.io_reads)
        counters.add("mrbg_bytes_read", store_delta.bytes_read)
        counters.add("mrbg_bytes_written", store_delta.bytes_written)
        counters.add("changed_output_bytes", changed_output_bytes)

        self.dfs.write(jobconf.output, state.result_records(), overwrite=True)
        return JobResult(output=jobconf.output, metrics=metrics)

    def _run_incremental_accumulator(
        self,
        jobconf: JobConf,
        delta_path: str,
        state: PreservedJobState,
    ) -> JobResult:
        cost = self.cluster.cost_model
        reducer_probe = jobconf.reducer()
        if not isinstance(reducer_probe, AccumulatorReducer):
            raise InvalidJobConf("preserved state is accumulator mode")
        for _, (_, op) in self.dfs.read(delta_path):
            if op != Op.INSERT.value:
                raise JobError(
                    "accumulator incremental processing requires an "
                    "insert-only delta (§3.5)"
                )

        # Strip the op marker so the user mapper sees plain records.
        plain_records = [
            (k1, v1) for k1, (v1, _) in self.dfs.read(delta_path)
        ]
        staging = f"{delta_path}.plain"
        self.dfs.write(staging, plain_records, overwrite=True)
        splits = self.splits_for_inputs([staging])
        delta_conf = replace(jobconf, inputs=[staging])
        map_result = self.map_phase(delta_conf, splits)

        metrics = JobMetrics()
        metrics.times.startup = cost.job_startup_s
        metrics.times.map = map_result.elapsed_s
        metrics.counters.merge(map_result.counters)

        workers = self.cluster.num_workers
        shuffle_loads = [0.0] * workers
        sort_loads = [0.0] * workers
        reduce_loads = [0.0] * workers
        changed_output_bytes = 0

        for part in range(jobconf.num_reducers):
            worker = self.reduce_worker(part)
            runs: List[List[Tuple[Any, Any]]] = []
            fetch_s = 0.0
            for task in map_result.tasks:
                pairs = task.partitions.get(part)
                if not pairs:
                    continue
                nbytes = task.partition_bytes.get(part, 0)
                if task.worker == worker:
                    fetch_s += cost.disk_read_time(nbytes)
                else:
                    fetch_s += cost.net_time(nbytes)
                    metrics.counters.add("shuffle_net_bytes", nbytes)
                metrics.counters.add("shuffle_bytes", nbytes)
                runs.append(pairs)
            shuffle_loads[worker] += fetch_s
            if not runs:
                continue
            merged = merge_sorted_runs(runs)
            sort_loads[worker] += cost.sort_time(len(merged))

            reducer = jobconf.reducer()
            values_processed = 0
            for k2, values in group_sorted(merged):
                acc = values[0]
                for value in values[1:]:
                    acc = reducer.accumulate(acc, value)
                old = state.acc_outputs.get(k2)
                new = acc if old is None else reducer.accumulate(old, acc)
                state.acc_outputs[k2] = new
                values_processed += len(values)
                changed_output_bytes += record_size(k2, new)
                metrics.counters.add("affected_reduce_instances", 1)
            reduce_loads[worker] += cost.cpu_time(values_processed, reducer.cpu_weight)

        metrics.times.shuffle = max(shuffle_loads)
        metrics.times.sort = max(sort_loads)
        metrics.times.reduce = max(reduce_loads) + cost.disk_write_time(
            changed_output_bytes
        )
        metrics.counters.add("changed_output_bytes", changed_output_bytes)

        self.dfs.write(jobconf.output, state.result_records(), overwrite=True)
        return JobResult(output=jobconf.output, metrics=metrics)
