"""User-facing additions for incremental one-step processing (Table 2).

- Delta inputs are :class:`repro.common.kvpair.DeltaRecord` streams, written
  to the DFS as ``(K1, (V1, '+'|'-'))`` records.
- :class:`AccumulatorReducer` declares the distributive accumulation
  operation of §3.5 (``accumulate(V2_old, V2_new) -> V2``); for such jobs
  the engine preserves only Reduce outputs instead of the MRBGraph.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Tuple

from repro.common.errors import DeltaDecodeError
from repro.common.kvpair import DeltaRecord, Op
from repro.mapreduce.api import Context, Reducer


class AccumulatorReducer(Reducer):
    """A Reduce function that is a distributive accumulation ``⊕`` (§3.5).

    Subclasses implement :meth:`accumulate`; :meth:`reduce` is derived by
    left-folding.  The distributive property ``f(D ∪ ∆D) = f(D) ⊕ f(∆D)``
    lets the engine combine a preserved output with the delta's
    accumulation without preserving any MRBGraph state.
    """

    def accumulate(self, old: Any, new: Any) -> Any:
        """The accumulative operation ``⊕`` (must be associative)."""
        raise NotImplementedError

    def reduce(self, key: Any, values: List[Any], ctx: Context) -> None:
        """Fold the group with :meth:`accumulate` and emit the single result."""
        if not values:
            return
        acc = values[0]
        for value in values[1:]:
            acc = self.accumulate(acc, value)
        ctx.emit(key, acc)


class SumReducer(AccumulatorReducer):
    """Integer/float sum — WordCount's accumulator (§3.5)."""

    def accumulate(self, old: Any, new: Any) -> Any:
        """``old + new``."""
        return old + new


class MaxReducer(AccumulatorReducer):
    """Maximum accumulator (§3.5 lists max among the distributive ops)."""

    def accumulate(self, old: Any, new: Any) -> Any:
        """``max(old, new)``."""
        return old if old >= new else new


class MinReducer(AccumulatorReducer):
    """Minimum accumulator."""

    def accumulate(self, old: Any, new: Any) -> Any:
        """``min(old, new)``."""
        return old if old <= new else new


class AvgPartialReducer(AccumulatorReducer):
    """Average via partial (sum, count) pairs.

    §3.5: averages are not directly distributive, but carrying partial
    sums and counts makes them so.  Values are ``(sum, count)`` tuples;
    :meth:`finalize_average` recovers the mean.
    """

    def accumulate(self, old: Any, new: Any) -> Any:
        """Pairwise ``(sum, count)`` addition."""
        return (old[0] + new[0], old[1] + new[1])

    @staticmethod
    def finalize_average(partial: Tuple[float, int]) -> float:
        """Convert an accumulated ``(sum, count)`` into the average."""
        total, count = partial
        if count == 0:
            raise ValueError("cannot average an empty accumulation")
        return total / count


def delta_to_dfs_records(
    delta: Iterable[DeltaRecord],
) -> List[Tuple[Any, Tuple[Any, str]]]:
    """Encode a delta stream as DFS records ``(K1, (V1, '+'|'-'))``."""
    return [(rec.key, (rec.value, rec.op.value)) for rec in delta]


def dfs_records_to_delta(
    records: Iterable[Tuple[Any, Tuple[Any, str]]],
) -> List[DeltaRecord]:
    """Decode DFS delta records back into :class:`DeltaRecord` objects.

    Raises:
        DeltaDecodeError: when a record is not a ``(K1, (V1, op))`` pair
            or its op tag is neither ``'+'`` nor ``'-'``.
    """
    out: List[DeltaRecord] = []
    for item in records:
        try:
            key, pair = item
        except (TypeError, ValueError) as exc:
            raise DeltaDecodeError(
                item, "expected a (K1, (V1, op)) record"
            ) from exc
        # The inner pair must be a real sequence pair: a 2-char string
        # would "unpack" into (char, char) and fabricate a value.
        if not isinstance(pair, (tuple, list)) or len(pair) != 2:
            raise DeltaDecodeError(item, "expected a (K1, (V1, op)) record")
        value, op = pair
        try:
            out.append(DeltaRecord(key, value, Op(op)))
        except ValueError as exc:
            raise DeltaDecodeError(
                item, f"op tag must be '+' or '-', got {op!r}"
            ) from exc
    return out
