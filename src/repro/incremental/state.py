"""Preserved state of one incremental-capable MapReduce job.

Holds the per-Reduce-task MRBG-Stores (fine-grain mode) or the preserved
Reduce outputs (accumulator mode, §3.5), plus the last full result so an
incremental run can refresh only the changed output records.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.cluster.costmodel import CostModel
from repro.common import config
from repro.common.kvpair import sort_key
from repro.mrbgraph.sharding import ShardedMRBGStore, StoreLike
from repro.mrbgraph.store import MRBGStore, StoreMetrics
from repro.mrbgraph.windows import MultiDynamicWindowPolicy, WindowPolicy

PolicyFactory = Callable[[], WindowPolicy]


class PreservedJobState:
    """Fine-grain (or accumulator) state preserved between jobs.

    With ``num_shards > 1`` (default: ``REPRO_SHARDS`` via
    :data:`repro.common.config.DEFAULT_NUM_SHARDS`) each reduce
    partition's store is a :class:`~repro.mrbgraph.sharding.ShardedMRBGStore`
    whose maintenance fans out on ``store_executor``; the engines use
    either store kind transparently.
    """

    def __init__(
        self,
        num_reducers: int,
        root_dir: Optional[str] = None,
        policy_factory: Optional[PolicyFactory] = None,
        cost_model: Optional[CostModel] = None,
        accumulator: bool = False,
        num_shards: Optional[int] = None,
        store_executor: Any = None,
        num_workers: Optional[int] = None,
        wal_enabled: Optional[bool] = None,
        compaction: Any = None,
        fault_hook: Any = None,
    ) -> None:
        self.num_reducers = num_reducers
        self.accumulator = accumulator
        self._owns_dir = root_dir is None
        self.root_dir = root_dir or tempfile.mkdtemp(prefix="i2mr-state-")
        os.makedirs(self.root_dir, exist_ok=True)
        self._policy_factory = policy_factory or MultiDynamicWindowPolicy
        self._cost_model = cost_model or CostModel()
        self.num_shards = (
            config.DEFAULT_NUM_SHARDS if num_shards is None else num_shards
        )
        if self.num_shards <= 0:
            raise ValueError("num_shards must be positive")
        self._store_executor = store_executor
        #: simulated workers shard placement spreads over (the engines
        #: pass their cluster's size; None = DEFAULT_NUM_WORKERS).
        self._num_workers = num_workers
        #: durability knobs handed to every store this state creates
        #: (None = config defaults; see repro.mrbgraph.wal/compaction).
        self._wal_enabled = wal_enabled
        self._compaction = compaction
        self._fault_hook = fault_hook
        self._stores: Dict[int, StoreLike] = {}
        #: fine-grain mode: reduce-instance key -> that instance's outputs.
        self.outputs: Dict[Any, List[Tuple[Any, Any]]] = {}
        #: accumulator mode: output key -> accumulated value.
        self.acc_outputs: Dict[Any, Any] = {}
        self._closed = False

    # ------------------------------------------------------------------ #
    # stores                                                             #
    # ------------------------------------------------------------------ #

    def store_for(self, partition: int) -> StoreLike:
        """The MRBG-Store of reduce task ``partition`` (created lazily).

        A partition whose files were persisted by :meth:`close` is
        *reopened* (shard manifest / ``mrbg.idx`` reloaded) rather than
        recreated empty.
        """
        if partition not in self._stores:
            directory = os.path.join(self.root_dir, f"part-{partition:05d}")
            if os.path.exists(os.path.join(directory, "mrbg.shards")):
                self._stores[partition] = ShardedMRBGStore.open(
                    directory,
                    policy_factory=self._policy_factory,
                    cost_model=self._cost_model,
                    executor=self._store_executor,
                    num_workers=self._num_workers,
                    wal_enabled=self._wal_enabled,
                    compaction=self._compaction,
                    fault_hook=self._fault_hook,
                )
            elif self.num_shards > 1:
                self._stores[partition] = ShardedMRBGStore(
                    directory,
                    num_shards=self.num_shards,
                    policy_factory=self._policy_factory,
                    cost_model=self._cost_model,
                    executor=self._store_executor,
                    num_workers=self._num_workers,
                    wal_enabled=self._wal_enabled,
                    compaction=self._compaction,
                    fault_hook=self._fault_hook,
                )
            elif os.path.exists(os.path.join(directory, "mrbg.idx")) or (
                self._wal_enabled is not False
                and os.path.exists(os.path.join(directory, "mrbg.wal"))
            ):
                self._stores[partition] = MRBGStore.open(
                    directory,
                    policy=self._policy_factory(),
                    cost_model=self._cost_model,
                    wal_enabled=self._wal_enabled,
                    compaction=self._compaction,
                    fault_hook=self._fault_hook,
                )
            else:
                self._stores[partition] = MRBGStore(
                    directory,
                    policy=self._policy_factory(),
                    cost_model=self._cost_model,
                    wal_enabled=self._wal_enabled,
                    compaction=self._compaction,
                    fault_hook=self._fault_hook,
                )
        return self._stores[partition]

    @property
    def stores(self) -> Dict[int, StoreLike]:
        """All materialized stores, keyed by reduce partition."""
        return dict(self._stores)

    def store_metrics(self) -> StoreMetrics:
        """Aggregated store statistics across all partitions."""
        total = StoreMetrics()
        for store in self._stores.values():
            store.metrics.merged_into(total)
        return total

    def snapshot_store_metrics(self) -> Dict[int, StoreMetrics]:
        """Per-partition metric snapshots (for delta accounting)."""
        return {p: s.metrics.snapshot() for p, s in self._stores.items()}

    def store_metrics_since(self, snaps: Dict[int, StoreMetrics]) -> StoreMetrics:
        """Aggregate statistics accumulated since ``snaps`` was taken."""
        total = StoreMetrics()
        for p, store in self._stores.items():
            base = snaps.get(p)
            delta = store.metrics.since(base) if base else store.metrics.snapshot()
            delta.merged_into(total)
        return total

    def compact_all(self) -> None:
        """Offline reconstruction of every store (idle-time maintenance)."""
        for store in self._stores.values():
            store.compact()

    def maybe_compact_all(self) -> None:
        """Idle-time opportunity: compact only stores whose policy fires.

        Policy-gated counterpart of :meth:`compact_all` — each store's
        :class:`~repro.mrbgraph.compaction.CompactionPolicy` decides
        whether its rewrite pays for itself yet.
        """
        for store in self._stores.values():
            store.maybe_compact()

    def reset_stores(self) -> None:
        """Abandon every in-memory store object without flushing anything.

        The crash-simulation reset: after an injected (or real) crash
        killed stores mid-operation, this releases their file handles
        exactly as a dead process would; the next :meth:`store_for` of
        each partition reopens it from disk, running write-ahead-log
        recovery.
        """
        for store in self._stores.values():
            store.abandon()
        self._stores.clear()

    def checkpoint_bytes(self) -> int:
        """Bytes a full checkpoint of the preserved state would copy."""
        return sum(store.checkpoint_bytes() for store in self._stores.values())

    # ------------------------------------------------------------------ #
    # results                                                            #
    # ------------------------------------------------------------------ #

    def result_records(self) -> List[Tuple[Any, Any]]:
        """The job's full current output, in deterministic key order."""
        if self.accumulator:
            return sorted(self.acc_outputs.items(), key=lambda kv: sort_key(kv[0]))
        records: List[Tuple[Any, Any]] = []
        for key in sorted(self.outputs, key=sort_key):
            records.extend(self.outputs[key])
        return records

    # ------------------------------------------------------------------ #
    # lifecycle                                                          #
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Close stores; keeps on-disk files (reopen with ``store_for``).

        Stores killed by an injected crash are skipped — their on-disk
        state must stay exactly as the kill left it for recovery.
        """
        for store in self._stores.values():
            if getattr(store, "crashed", False):
                continue
            store.save_index()
            store.close()
        self._stores.clear()
        self._closed = True

    def cleanup(self) -> None:
        """Close and delete all on-disk state."""
        self.close()
        if self._owns_dir:
            shutil.rmtree(self.root_dir, ignore_errors=True)

    def __enter__(self) -> "PreservedJobState":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.cleanup()
