"""The simulated cluster: a pool of workers plus a cost model.

The cluster is deliberately thin — engines do the heavy lifting — but it
owns the three globals every engine needs: the worker pool, the cost
model, and a deterministic seed for anything stochastic (block placement,
failure timing).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.cluster.costmodel import CostModel
from repro.cluster.scheduler import ScheduleResult, TaskSpec, schedule_stage
from repro.common import config


@dataclass
class Cluster:
    """A deterministic simulated cluster.

    Attributes:
        num_workers: number of worker machines (the paper used 32
            m1.medium EC2 instances; laptop-scale runs default to 8).
        cost_model: conversion rates from work to simulated seconds.
        seed: seed for all stochastic placement decisions.
    """

    num_workers: int = config.DEFAULT_NUM_WORKERS
    cost_model: CostModel = field(default_factory=CostModel)
    seed: int = 42

    def __post_init__(self) -> None:
        if self.num_workers <= 0:
            raise ValueError("num_workers must be positive")
        self._rng = np.random.RandomState(self.seed)

    @property
    def workers(self) -> List[int]:
        """Worker ids, ``0 .. num_workers-1``."""
        return list(range(self.num_workers))

    def rng(self) -> np.random.RandomState:
        """The cluster's seeded random generator (shared, stateful)."""
        return self._rng

    def fresh_rng(self, salt: int = 0) -> np.random.RandomState:
        """An independent generator derived from the cluster seed."""
        return np.random.RandomState((self.seed * 1_000_003 + salt) % (2**32))

    def pick_replica_workers(self, count: int) -> List[int]:
        """Choose ``count`` distinct workers for block replicas."""
        count = min(count, self.num_workers)
        return list(self._rng.choice(self.num_workers, size=count, replace=False))

    def run_tasks(
        self,
        tasks: Sequence[TaskSpec],
        include_task_overhead: bool = True,
    ) -> ScheduleResult:
        """Schedule a stage of tasks on this cluster's workers."""
        overhead = self.cost_model.task_overhead_s if include_task_overhead else 0.0
        return schedule_stage(tasks, self.num_workers, task_overhead_s=overhead)
