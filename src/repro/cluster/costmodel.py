"""Deterministic cost model for the simulated cluster.

Every engine in this library executes *real* Python map/reduce functions
over real records; what is simulated is elapsed time.  The cost model
converts the physical work a task performs — bytes moved across disks and
the network, records parsed, sorted and processed, jobs started — into
simulated seconds.  All comparisons reported by the paper (Figs 8–13,
Table 4) are ratios of exactly these quantities, so charging them
faithfully preserves the paper's performance *shapes* even though the
absolute numbers belong to a simulator rather than 32 EC2 machines.

**Data-scale calibration.**  The synthetic datasets are laptop-sized —
``data_scale`` (paper dataset size over ours, e.g. ClueWeb's 20M pages vs
a 4k-vertex graph) recovers paper-scale proportions: every *volume*
quantity a task handles (bytes, records) stands for ``data_scale`` times
as much at paper scale, so bandwidth-, CPU-, parse- and sort-rates are
scaled by it, while *per-operation* fixed costs (a disk seek, a network
round trip, job startup, heartbeats) are charged at face value because
task and request counts do not shrink with the dataset.  The MRBG-Store
is the one exception — it operates on real bytes with real window sizes,
so it charges the unscaled model and the engines bridge its elapsed time
back with ``data_scale`` (see :meth:`CostModel.unscaled`).

The default constants are loosely calibrated to the paper's testbed (32
m1.medium EC2 instances, 2014: magnetic disks, ~100 Mbit/s instance
networking).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.common import config


@dataclass(frozen=True)
class CostModel:
    """Conversion rates from physical work to simulated seconds."""

    #: One disk seek (s).  Magnetic-disk era: ~8 ms.  Never data-scaled.
    disk_seek_s: float = 0.008
    #: Sequential disk read bandwidth (bytes/s).
    disk_read_bw: float = 120e6
    #: Sequential disk write bandwidth (bytes/s).
    disk_write_bw: float = 90e6
    #: Per-node network bandwidth (bytes/s); m1.medium ≈ 100 Mbit/s.
    net_bw: float = 12e6
    #: Fixed per-transfer network latency (s).  Never data-scaled.
    net_latency_s: float = 0.001
    #: Framework CPU cost to push one record through a Map or Reduce call (s).
    cpu_record_s: float = 2.0e-6
    #: CPU cost to parse one byte of raw (text) input (s/byte).  This is the
    #: cost iterMR avoids by caching structure data in binary form (§4.2).
    parse_byte_s: float = 20.0e-9
    #: Per-record comparison-sort constant: sort time = n log2(n) * this (s).
    sort_record_s: float = 0.3e-6
    #: Job startup cost (s); Hadoop takes "over 20 seconds" (§4.2).
    job_startup_s: float = config.DEFAULT_JOB_STARTUP_S
    #: Per-task scheduling/launch overhead (s).
    task_overhead_s: float = 0.1
    #: TaskTracker heartbeat interval (s), used for failure detection (§6.1).
    heartbeat_s: float = config.DEFAULT_HEARTBEAT_S
    #: Memory capacity per worker (bytes); only the Spark-like baseline and
    #: spill modelling consult this.  Compared against *real* (unscaled)
    #: byte counts.
    worker_memory: int = 256 * config.MB
    #: Paper-size over our-size volume calibration factor (see module doc).
    data_scale: float = 1.0
    #: Per-request overhead of one MRBG-Store window read/append (s).
    #: Store I/O is near-sequential (sorted chunks, forward-sliding
    #: windows), so a request costs far less than a full random seek —
    #: ~130 µs reproduces Table 4's measured per-read cost.
    store_io_overhead_s: float = 130e-6
    #: Base delay before the first re-execution of a failed task (s).
    retry_backoff_base_s: float = 1.0
    #: Cap on the exponential retry backoff (s).
    retry_backoff_cap_s: float = 30.0
    #: Jitter fraction subtracted from the backoff (0 = none, 0.5 = up to
    #: half); the jitter itself is a deterministic hash of the retry
    #: token, so simulated times stay reproducible.
    retry_backoff_jitter: float = 0.5

    def disk_read_time(self, nbytes: int, seeks: int = 1) -> float:
        """Time to read ``nbytes`` with ``seeks`` random repositionings."""
        return seeks * self.disk_seek_s + nbytes * self.data_scale / self.disk_read_bw

    def disk_write_time(self, nbytes: int, seeks: int = 1) -> float:
        """Time to write ``nbytes`` with ``seeks`` repositionings."""
        return seeks * self.disk_seek_s + nbytes * self.data_scale / self.disk_write_bw

    def net_time(self, nbytes: int, transfers: int = 1) -> float:
        """Time to move ``nbytes`` over the network in ``transfers`` flows."""
        return transfers * self.net_latency_s + nbytes * self.data_scale / self.net_bw

    def cpu_time(self, nrecords: int, weight: float = 1.0) -> float:
        """CPU time for ``nrecords`` user-function invocations.

        ``weight`` scales the per-record cost for algorithms whose map or
        reduce body does more work than the framework baseline (for
        example Kmeans distance evaluation against every centroid).
        """
        return nrecords * self.cpu_record_s * weight * self.data_scale

    def parse_time(self, nbytes: int) -> float:
        """CPU time to parse ``nbytes`` of raw input into records."""
        return nbytes * self.parse_byte_s * self.data_scale

    def sort_time(self, nrecords: int) -> float:
        """Comparison-sort time for ``nrecords``."""
        if nrecords <= 1:
            return 0.0
        return nrecords * math.log2(nrecords) * self.sort_record_s * self.data_scale

    def store_read_time(self, nbytes: int) -> float:
        """One MRBG-Store window read (request overhead + transfer).

        Charged at *unscaled* rates — the store operates on real bytes;
        engines bridge its elapsed time with ``data_scale``.
        """
        return self.store_io_overhead_s + nbytes / self.disk_read_bw

    def store_write_time(self, nbytes: int) -> float:
        """One MRBG-Store append-buffer flush (sequential write)."""
        return self.store_io_overhead_s + nbytes / self.disk_write_bw

    def wal_append_time(self, nbytes: int) -> float:
        """One write-ahead-log append flush (sequential journal write).

        Charged at *unscaled* rates like all MRBG-Store I/O, into the
        dedicated ``wal_*`` store metrics — like compaction, WAL
        maintenance is accounted separately from job stage times.
        """
        return self.store_io_overhead_s + nbytes / self.disk_write_bw

    def wal_replay_time(self, nbytes: int) -> float:
        """One recovery-time sequential read of a write-ahead log."""
        return self.store_io_overhead_s + nbytes / self.disk_read_bw

    def task_retry_backoff_time(self, attempt: int, token: int = 0) -> float:
        """Simulated wait before re-executing a failed task.

        Capped exponential backoff with deterministic jitter: attempt 0's
        retry waits about ``retry_backoff_base_s``, each further attempt
        doubles it up to ``retry_backoff_cap_s``, and ``token`` (a stable
        hash of the task's identity) shaves off up to
        ``retry_backoff_jitter`` of the delay so simultaneous retries
        de-synchronize without introducing host randomness.  Charged to
        the dedicated resilience account
        (:attr:`repro.execution.ExecutorStats.sim_backoff_s`), never to
        the paper's stage times — like WAL maintenance, failure handling
        is accounted separately so fault-free metrics are untouched.
        """
        if attempt < 0:
            return 0.0
        base = self.retry_backoff_base_s * (2.0 ** attempt)
        if base > self.retry_backoff_cap_s:
            base = self.retry_backoff_cap_s
        # 10-bit deterministic jitter fraction in [0, 1).
        frac = ((token ^ (token >> 17)) & 0x3FF) / 1024.0
        return base * (1.0 - self.retry_backoff_jitter * frac)

    def cross_shard_read_time(self, nbytes: int) -> float:
        """Penalty for running a shard task away from the shard's owner.

        A store shard lives on the local disk of exactly one worker; a
        maintenance task scheduled on any other worker must ship the
        shard's bytes over the network first.  Charged at *unscaled*
        rates like all MRBG-Store I/O (the store operates on real bytes;
        engines bridge elapsed time with ``data_scale``).
        """
        return self.net_latency_s + nbytes / self.net_bw

    def serving_read_time(self, local_bytes: int, remote_bytes: "tuple | list" = ()) -> float:
        """Simulated cost of one online query's shard reads.

        A query's *home* shard is read locally (one store window read);
        every other shard it touches lives on a different worker, so its
        bytes pay the store read **and** the cross-shard network hop.
        Charged at *unscaled* rates like all MRBG-Store I/O — the
        serving layer reads real bytes from the preserved state.
        """
        cost = self.store_read_time(local_bytes)
        for nbytes in remote_bytes:
            cost += self.store_read_time(nbytes)
            cost += self.cross_shard_read_time(nbytes)
        return cost

    def scaled(self, **overrides: float) -> "CostModel":
        """Return a copy with the given fields overridden."""
        return replace(self, **overrides)

    def unscaled(self) -> "CostModel":
        """Copy with ``data_scale`` reset to 1 (the MRBG-Store's view).

        The store measures genuine file I/O on real bytes; engines
        multiply its elapsed times by ``data_scale`` when folding them
        into stage times.
        """
        if self.data_scale == 1.0:
            return self
        return replace(self, data_scale=1.0)


def zero_overhead_model() -> CostModel:
    """Cost model variant without job/task fixed overheads (unit tests)."""
    return CostModel(
        job_startup_s=0.0,
        task_overhead_s=0.0,
        net_latency_s=0.0,
        disk_seek_s=0.0,
    )
