"""Task-to-worker scheduling for the simulated cluster.

A MapReduce stage runs its tasks on a fixed pool of workers; the stage's
elapsed time is the busiest worker's total load.  Map tasks prefer the
workers holding replicas of their input block (Hadoop's locality
scheduling, §2); reduce and prime tasks are pinned to fixed workers to
model i2MapReduce's co-location of interdependent prime Map and prime
Reduce tasks (§4.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass
class TaskSpec:
    """One schedulable task.

    Attributes:
        task_id: unique id within the stage.
        cost_s: simulated seconds of work the task performs.
        preferred_workers: workers holding the task's input locally; the
            scheduler tries these first (data locality).
        pinned_worker: hard placement constraint (co-location); overrides
            preferences.
    """

    task_id: str
    cost_s: float
    preferred_workers: Sequence[int] = ()
    pinned_worker: Optional[int] = None


@dataclass
class ScheduleResult:
    """Outcome of scheduling one stage."""

    elapsed_s: float
    assignment: Dict[str, int]
    worker_loads: List[float]
    locality_hits: int = 0
    locality_misses: int = 0


def schedule_stage(
    tasks: Sequence[TaskSpec],
    num_workers: int,
    task_overhead_s: float = 0.0,
) -> ScheduleResult:
    """Assign tasks to workers and compute the stage's elapsed time.

    Uses longest-processing-time-first greedy assignment with a locality
    preference: a task goes to its least-loaded preferred worker unless a
    non-preferred worker is idle enough to beat it by more than the task's
    own cost (mirroring Hadoop's willingness to run non-local tasks rather
    than leave slots idle).  Pinned tasks always run on their pinned
    worker.
    """
    if num_workers <= 0:
        raise ValueError("num_workers must be positive")
    loads = [0.0] * num_workers
    assignment: Dict[str, int] = {}
    hits = 0
    misses = 0

    ordered = sorted(tasks, key=lambda t: (-t.cost_s, t.task_id))
    for task in ordered:
        cost = task.cost_s + task_overhead_s
        if task.pinned_worker is not None:
            worker = task.pinned_worker % num_workers
        else:
            preferred = [w % num_workers for w in task.preferred_workers]
            worker = _pick_worker(loads, preferred, cost)
            if preferred:
                if worker in preferred:
                    hits += 1
                else:
                    misses += 1
        loads[worker] += cost
        assignment[task.task_id] = worker

    elapsed = max(loads) if loads else 0.0
    return ScheduleResult(
        elapsed_s=elapsed,
        assignment=assignment,
        worker_loads=loads,
        locality_hits=hits,
        locality_misses=misses,
    )


def _pick_worker(loads: List[float], preferred: Sequence[int], cost: float) -> int:
    global_best = min(range(len(loads)), key=lambda w: loads[w])
    if not preferred:
        return global_best
    local_best = min(preferred, key=lambda w: loads[w])
    # Run non-locally only when the preferred workers are so backed up that
    # shipping the data is cheaper than waiting for a local slot.
    if loads[local_best] - loads[global_best] > cost:
        return global_best
    return local_best


def parallel_time(costs: Sequence[float], num_workers: int) -> float:
    """Elapsed time of anonymous equal-priority tasks on ``num_workers``."""
    specs = [TaskSpec(task_id=str(i), cost_s=c) for i, c in enumerate(costs)]
    return schedule_stage(specs, num_workers).elapsed_s
