"""Task-to-worker scheduling for the simulated cluster.

A MapReduce stage runs its tasks on a fixed pool of workers; the stage's
elapsed time is the busiest worker's total load.  Map tasks prefer the
workers holding replicas of their input block (Hadoop's locality
scheduling, §2); reduce and prime tasks are pinned to fixed workers to
model i2MapReduce's co-location of interdependent prime Map and prime
Reduce tasks (§4.3).

Sharded MRBG-Stores add a third placement concern: each store shard
lives on the local disk of exactly one worker (its *owner*), so shard
maintenance tasks — per-shard delta merges, compactions, index flushes —
prefer the owning worker and pay a cross-shard transfer
(:meth:`repro.cluster.costmodel.CostModel.cross_shard_read_time`) when
scheduled anywhere else.  :class:`ShardPlacement` records the ownership
map and :func:`schedule_shard_stage` performs the locality-aware
assignment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.costmodel import CostModel


@dataclass
class TaskSpec:
    """One schedulable task.

    Attributes:
        task_id: unique id within the stage.
        cost_s: simulated seconds of work the task performs.
        preferred_workers: workers holding the task's input locally; the
            scheduler tries these first (data locality).
        pinned_worker: hard placement constraint (co-location); overrides
            preferences.
    """

    task_id: str
    cost_s: float
    preferred_workers: Sequence[int] = ()
    pinned_worker: Optional[int] = None


@dataclass
class ScheduleResult:
    """Outcome of scheduling one stage."""

    elapsed_s: float
    assignment: Dict[str, int]
    worker_loads: List[float]
    locality_hits: int = 0
    locality_misses: int = 0


def schedule_stage(
    tasks: Sequence[TaskSpec],
    num_workers: int,
    task_overhead_s: float = 0.0,
) -> ScheduleResult:
    """Assign tasks to workers and compute the stage's elapsed time.

    Uses longest-processing-time-first greedy assignment with a locality
    preference: a task goes to its least-loaded preferred worker unless a
    non-preferred worker is idle enough to beat it by more than the task's
    own cost (mirroring Hadoop's willingness to run non-local tasks rather
    than leave slots idle).  Pinned tasks always run on their pinned
    worker.
    """
    if num_workers <= 0:
        raise ValueError("num_workers must be positive")
    loads = [0.0] * num_workers
    assignment: Dict[str, int] = {}
    hits = 0
    misses = 0

    ordered = sorted(tasks, key=lambda t: (-t.cost_s, t.task_id))
    for task in ordered:
        cost = task.cost_s + task_overhead_s
        if task.pinned_worker is not None:
            worker = task.pinned_worker % num_workers
        else:
            preferred = [w % num_workers for w in task.preferred_workers]
            worker = _pick_worker(loads, preferred, cost)
            if preferred:
                if worker in preferred:
                    hits += 1
                else:
                    misses += 1
        loads[worker] += cost
        assignment[task.task_id] = worker

    elapsed = max(loads) if loads else 0.0
    return ScheduleResult(
        elapsed_s=elapsed,
        assignment=assignment,
        worker_loads=loads,
        locality_hits=hits,
        locality_misses=misses,
    )


def reschedule_failed_tasks(
    failed: Sequence[Tuple["ShardTaskSpec", int]],
    placement: "ShardPlacement",
    cost_model: Optional[CostModel] = None,
    blacklisted: Sequence[int] = (),
    task_overhead_s: float = 0.0,
) -> ScheduleResult:
    """Place the re-executions of failed shard-stage tasks.

    Failed shard tasks are re-scheduled with the same ownership-locality
    preference as :func:`schedule_shard_stage` — a retry still wants the
    worker holding the shard's files — with two fault-tolerance twists:

    - each re-execution first waits out its simulated retry backoff
      (:meth:`~repro.cluster.costmodel.CostModel.task_retry_backoff_time`
      for the attempt ordinal), which extends that worker's busy time;
    - ``blacklisted`` workers take no tasks at all; a shard owned by a
      blacklisted worker always pays the cross-shard transfer.

    Args:
        failed: ``(spec, attempts)`` pairs — the failed task and how many
            attempts it has already consumed (the backoff ordinal).
        placement: shard-ownership map of the store being maintained.
        cost_model: charges backoff and cross-shard transfer times.
        blacklisted: simulated workers excluded from placement.
        task_overhead_s: per-task scheduling/launch overhead.

    Returns:
        A :class:`ScheduleResult` whose ``elapsed_s`` is the retry
        round's simulated completion time (backoff included).
    """
    model = cost_model or CostModel()
    dead = set(w % placement.num_workers for w in blacklisted)
    live = [w for w in range(placement.num_workers) if w not in dead]
    if not live:
        raise ValueError("every worker is blacklisted; nothing can run")
    loads = [0.0] * placement.num_workers
    assignment: Dict[str, int] = {}
    hits = 0
    misses = 0

    ordered = sorted(failed, key=lambda item: (-item[0].cost_s, item[0].task_id))
    for spec, attempts in ordered:
        backoff = model.task_retry_backoff_time(max(attempts - 1, 0))
        cost = spec.cost_s + task_overhead_s + backoff
        owner = placement.owner(spec.shard_id)
        penalty = model.cross_shard_read_time(spec.read_bytes)
        global_best = min(live, key=lambda w: loads[w])
        if owner in dead or loads[owner] - loads[global_best] > cost + penalty:
            worker = global_best
            cost += penalty
            misses += 1
        else:
            worker = owner
            hits += 1
        loads[worker] += cost
        assignment[spec.task_id] = worker

    elapsed = max(loads) if loads else 0.0
    return ScheduleResult(
        elapsed_s=elapsed,
        assignment=assignment,
        worker_loads=loads,
        locality_hits=hits,
        locality_misses=misses,
    )


def _pick_worker(loads: List[float], preferred: Sequence[int], cost: float) -> int:
    global_best = min(range(len(loads)), key=lambda w: loads[w])
    if not preferred:
        return global_best
    local_best = min(preferred, key=lambda w: loads[w])
    # Run non-locally only when the preferred workers are so backed up that
    # shipping the data is cheaper than waiting for a local slot.
    if loads[local_best] - loads[global_best] > cost:
        return global_best
    return local_best


def parallel_time(costs: Sequence[float], num_workers: int) -> float:
    """Elapsed time of anonymous equal-priority tasks on ``num_workers``."""
    specs = [TaskSpec(task_id=str(i), cost_s=c) for i, c in enumerate(costs)]
    return schedule_stage(specs, num_workers).elapsed_s


# ---------------------------------------------------------------------- #
# shard-locality scheduling                                              #
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class ShardPlacement:
    """Which worker owns each shard of a sharded MRBG-Store.

    Ownership is round-robin (`shard i` lives on worker ``i % workers``),
    mirroring how the reduce partitions themselves are pinned
    (``partition q`` runs on worker ``q % workers``), so shard 0 of every
    partition co-locates with the reduce task that queries it.
    """

    num_shards: int
    num_workers: int

    def __post_init__(self) -> None:
        if self.num_shards <= 0:
            raise ValueError("num_shards must be positive")
        if self.num_workers <= 0:
            raise ValueError("num_workers must be positive")

    def owner(self, shard_id: int) -> int:
        """The worker holding ``shard_id``'s files on local disk."""
        return shard_id % self.num_workers


@dataclass
class ShardTaskSpec:
    """One schedulable shard-maintenance task (merge/compact/flush).

    Attributes:
        task_id: unique id within the stage.
        cost_s: simulated seconds the task's store I/O and CPU take.
        shard_id: the shard whose files the task operates on.
        read_bytes: shard bytes the task reads — shipped over the network
            (and charged via ``CostModel.cross_shard_read_time``) when
            the task is placed off the owning worker.
    """

    task_id: str
    cost_s: float
    shard_id: int
    read_bytes: int = 0


def schedule_shard_stage(
    tasks: Sequence[ShardTaskSpec],
    placement: ShardPlacement,
    cost_model: Optional[CostModel] = None,
    task_overhead_s: float = 0.0,
) -> ScheduleResult:
    """Assign shard tasks to workers, preferring each shard's owner.

    Longest-processing-time-first greedy assignment like
    :func:`schedule_stage`, with shard ownership as the locality
    preference: a task runs on its shard's owner unless that worker is
    so backed up that paying the cross-shard transfer beats waiting —
    in which case the task's cost grows by the transfer time and a
    locality miss is recorded.
    """
    model = cost_model or CostModel()
    loads = [0.0] * placement.num_workers
    assignment: Dict[str, int] = {}
    hits = 0
    misses = 0

    ordered = sorted(tasks, key=lambda t: (-t.cost_s, t.task_id))
    for task in ordered:
        cost = task.cost_s + task_overhead_s
        owner = placement.owner(task.shard_id)
        penalty = model.cross_shard_read_time(task.read_bytes)
        global_best = min(range(len(loads)), key=lambda w: loads[w])
        # Ship the shard only when the owner's queue exceeds the idle
        # worker's by more than the task itself plus the transfer.
        if loads[owner] - loads[global_best] > cost + penalty:
            worker = global_best
            cost += penalty
            misses += 1
        else:
            worker = owner
            hits += 1
        loads[worker] += cost
        assignment[task.task_id] = worker

    elapsed = max(loads) if loads else 0.0
    return ScheduleResult(
        elapsed_s=elapsed,
        assignment=assignment,
        worker_loads=loads,
        locality_hits=hits,
        locality_misses=misses,
    )
