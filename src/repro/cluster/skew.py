"""Online skew mitigation (§6.2 — the paper's future-work extension).

§6.2 sketches integrating SkewTune-style repartitioning: identify the
task with the greatest expected remaining time and proactively
repartition its unprocessed input across idle workers.  The paper leaves
the implementation to future work; this module provides the scheduling
half as an opt-in refinement over the LPT schedule:

1. run the normal LPT/locality schedule;
2. find the straggling worker (the makespan owner) and its last task;
3. once every other worker drains, split that task's remaining work
   across the whole cluster, paying a repartition overhead (state —
   for prime Reduce tasks, the MRBG-Store slice — must be split and
   moved, which is exactly the challenge §6.2 calls out).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.cluster.scheduler import ScheduleResult, TaskSpec, schedule_stage


@dataclass
class MitigatedSchedule:
    """Outcome of skew mitigation on one stage."""

    base: ScheduleResult
    elapsed_s: float
    mitigated: bool
    straggler_task: str = ""
    saved_s: float = 0.0


def schedule_with_skew_mitigation(
    tasks: Sequence[TaskSpec],
    num_workers: int,
    task_overhead_s: float = 0.0,
    repartition_overhead_s: float = 0.5,
    min_benefit_s: float = 0.0,
) -> MitigatedSchedule:
    """LPT schedule plus one SkewTune-style straggler split.

    Args:
        repartition_overhead_s: fixed cost of scanning/splitting the
            straggler's remaining input and shipping state slices.
        min_benefit_s: only mitigate when the projected saving exceeds
            this (repartitioning tiny stragglers is not worth the churn).
    """
    base = schedule_stage(tasks, num_workers, task_overhead_s=task_overhead_s)
    if not tasks or num_workers <= 1:
        return MitigatedSchedule(base=base, elapsed_s=base.elapsed_s, mitigated=False)

    loads = list(base.worker_loads)
    straggler_worker = max(range(num_workers), key=lambda w: loads[w])
    others = [loads[w] for w in range(num_workers) if w != straggler_worker]
    second = max(others) if others else 0.0
    excess = loads[straggler_worker] - second
    if excess <= 0:
        return MitigatedSchedule(base=base, elapsed_s=base.elapsed_s, mitigated=False)

    # The straggler's final task is the one SkewTune would split; only
    # its portion still running after the other workers drain can move.
    straggler_tasks = sorted(
        (task for task in tasks if base.assignment[task.task_id] == straggler_worker),
        key=lambda t: t.cost_s,
    )
    if not straggler_tasks:
        return MitigatedSchedule(base=base, elapsed_s=base.elapsed_s, mitigated=False)
    candidate = straggler_tasks[-1]
    movable = min(excess, candidate.cost_s)

    mitigated_elapsed = (
        max(second, loads[straggler_worker] - movable)
        + repartition_overhead_s
        + movable / num_workers
    )
    saved = base.elapsed_s - mitigated_elapsed
    if saved <= min_benefit_s:
        return MitigatedSchedule(base=base, elapsed_s=base.elapsed_s, mitigated=False)
    return MitigatedSchedule(
        base=base,
        elapsed_s=mitigated_elapsed,
        mitigated=True,
        straggler_task=candidate.task_id,
        saved_s=saved,
    )
