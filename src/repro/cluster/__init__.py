"""Simulated cluster: cost model, scheduler, metrics."""

from repro.cluster.cluster import Cluster
from repro.cluster.costmodel import CostModel, zero_overhead_model
from repro.cluster.metrics import Counters, JobMetrics, StageTimes
from repro.cluster.skew import MitigatedSchedule, schedule_with_skew_mitigation

__all__ = [
    "Cluster",
    "CostModel",
    "zero_overhead_model",
    "Counters",
    "JobMetrics",
    "StageTimes",
    "MitigatedSchedule",
    "schedule_with_skew_mitigation",
]
