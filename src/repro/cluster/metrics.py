"""Metric containers shared by every engine.

``StageTimes`` records simulated seconds per MapReduce stage and supports
addition so per-iteration timings roll up into job totals (Fig 9 reports
exactly these stages).  ``Counters`` is a free-form named tally used for
byte counts, record counts, I/O request counts (Table 4) and so on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Mapping, Tuple

STAGES = ("startup", "map", "shuffle", "sort", "reduce", "merge", "checkpoint")


@dataclass
class StageTimes:
    """Simulated seconds attributed to each MapReduce stage."""

    startup: float = 0.0
    map: float = 0.0
    shuffle: float = 0.0
    sort: float = 0.0
    reduce: float = 0.0
    merge: float = 0.0
    checkpoint: float = 0.0

    @property
    def total(self) -> float:
        """Total simulated seconds across all stages."""
        return sum(getattr(self, stage) for stage in STAGES)

    def add(self, other: "StageTimes") -> None:
        """Accumulate another :class:`StageTimes` into this one."""
        for stage in STAGES:
            setattr(self, stage, getattr(self, stage) + getattr(other, stage))

    def __add__(self, other: "StageTimes") -> "StageTimes":
        result = StageTimes()
        result.add(self)
        result.add(other)
        return result

    def as_dict(self) -> Dict[str, float]:
        """Stage name to seconds mapping (plus ``total``)."""
        out = {stage: getattr(self, stage) for stage in STAGES}
        out["total"] = self.total
        return out

    def scaled(self, factor: float) -> "StageTimes":
        """Return a copy with every stage multiplied by ``factor``."""
        result = StageTimes()
        for stage in STAGES:
            setattr(result, stage, getattr(self, stage) * factor)
        return result


class Counters:
    """Named integer tallies (records, bytes, I/O requests, ...)."""

    def __init__(self) -> None:
        self._values: Dict[str, int] = {}

    def add(self, name: str, amount: int = 1) -> None:
        """Increase counter ``name`` by ``amount``."""
        self._values[name] = self._values.get(name, 0) + amount

    def get(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never touched)."""
        return self._values.get(name, 0)

    def merge(self, other: "Counters") -> None:
        """Fold another counter set into this one."""
        for name, amount in other._values.items():
            self.add(name, amount)

    def items(self) -> Iterator[Tuple[str, int]]:
        """Iterate ``(name, value)`` pairs in sorted name order."""
        return iter(sorted(self._values.items()))

    def as_dict(self) -> Dict[str, int]:
        """Copy of the underlying mapping."""
        return dict(self._values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        body = ", ".join(f"{k}={v}" for k, v in self.items())
        return f"Counters({body})"


@dataclass
class JobMetrics:
    """Result metrics of one (possibly iterative) engine run."""

    times: StageTimes = field(default_factory=StageTimes)
    counters: Counters = field(default_factory=Counters)

    @property
    def total_time(self) -> float:
        """Total simulated seconds of the run."""
        return self.times.total

    def merge(self, other: "JobMetrics") -> None:
        """Accumulate another run's metrics into this one."""
        self.times.add(other.times)
        self.counters.merge(other.counters)
