"""Stream consumers: adapt the incremental engines to micro-batches.

A :class:`StreamConsumer` takes one micro-batch of delta records and
refreshes the computation, maintaining the preserved state (MRBG-Store,
converged state, accumulator outputs) *across* batches — the pipeline
equivalent of calling ``run_incremental`` once per recorded delta.

Two concrete consumers cover the library's two incremental engines:

- :class:`IterativeStreamConsumer` drives
  :meth:`repro.inciter.engine.I2MREngine.run_incremental` (§5) for
  iterative jobs (PageRank, SSSP, K-means, GIM-V);
- :class:`OneStepStreamConsumer` drives
  :meth:`repro.incremental.engine.IncrMREngine.run_incremental` (§3)
  for one-step jobs (WordCount, APriori), staging each batch as a DFS
  delta file exactly as a non-streaming caller would.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.cluster.cluster import Cluster
from repro.common.errors import StreamError
from repro.common.kvpair import DeltaRecord, Op
from repro.dfs.filesystem import DistributedFS
from repro.incremental.api import delta_to_dfs_records
from repro.incremental.engine import IncrMREngine
from repro.incremental.state import PreservedJobState
from repro.inciter.engine import I2MREngine, I2MROptions
from repro.inciter.state import PreservedIterState
from repro.iterative.api import IterativeJob
from repro.mapreduce.job import JobConf
from repro.mrbgraph.sharding import ShardedMRBGStore


@dataclass
class BatchOutcome:
    """What one micro-batch cost and caused."""

    #: simulated engine seconds spent on the batch (incl. job startup).
    processing_s: float
    #: the §5.2 P∆ auto-off tripped during this batch.
    fell_back: bool = False
    #: incremental iterations the engine ran (one-step jobs report 1).
    iterations: int = 1
    #: store shards whose files the batch touched (sharded stores only).
    shards_touched: int = 0
    #: map tasks the engine actually scheduled for the batch — a batch
    #: whose delta nets to zero schedules none.
    map_tasks: int = 0


def net_delta_records(records: List[DeltaRecord]) -> List[DeltaRecord]:
    """Cancel matched insert/delete pairs out of a micro-batch.

    A record stream may contain a deletion and an insertion of the very
    same ``(key, value)`` (e.g. a flapping upstream writes and reverts a
    row inside one batch window); the *net* effect on the structure is
    zero, so feeding both to the engine only costs work.  Survivors keep
    their original relative order — the engine observes the same
    sequence a pre-netted source would have produced.
    """
    net: Dict[Tuple[Any, str], int] = {}
    for rec in records:
        sig = (rec.key, repr(rec.value))
        net[sig] = net.get(sig, 0) + (1 if rec.op is Op.INSERT else -1)
    kept: Dict[Tuple[Any, str], int] = {}
    survivors: List[DeltaRecord] = []
    for rec in records:
        sig = (rec.key, repr(rec.value))
        balance = net[sig]
        if balance == 0:
            continue
        surviving_op = Op.INSERT if balance > 0 else Op.DELETE
        if rec.op is not surviving_op:
            continue
        if kept.get(sig, 0) < abs(balance):
            kept[sig] = kept.get(sig, 0) + 1
            survivors.append(rec)
    return survivors


def _shard_activity(state: PreservedJobState) -> Dict[Tuple[int, int], Tuple[int, int]]:
    """Per-(partition, shard) I/O odometer of a preserved state's stores.

    Only sharded stores contribute; comparing two snapshots taken around
    a batch reveals which shards the batch's delta actually reached —
    the per-shard routing the streaming layer reports per batch.
    """
    activity: Dict[Tuple[int, int], Tuple[int, int]] = {}
    for partition, store in state.stores.items():
        if not isinstance(store, ShardedMRBGStore):
            continue
        for sid, metrics in enumerate(store.shard_metrics()):
            activity[(partition, sid)] = (
                metrics.bytes_read + metrics.bytes_written,
                metrics.io_reads + metrics.io_writes,
            )
    return activity


def _shards_touched(
    before: Dict[Tuple[int, int], Tuple[int, int]],
    after: Dict[Tuple[int, int], Tuple[int, int]],
) -> int:
    """How many (partition, shard) odometers moved between snapshots."""
    return sum(
        1 for key, counters in after.items() if counters != before.get(key, (0, 0))
    )


class StreamConsumer:
    """Abstract micro-batch consumer."""

    def process_batch(self, records: List[DeltaRecord]) -> BatchOutcome:
        """Fold one micro-batch into the maintained computation."""
        raise NotImplementedError

    def state(self) -> Dict[Any, Any]:
        """The current algorithm state / output, as a plain dict."""
        raise NotImplementedError

    def close(self) -> None:
        """Release preserved on-disk state and engine pools."""


class IterativeStreamConsumer(StreamConsumer):
    """Feeds micro-batches through ``I2MREngine.run_incremental``.

    The preserved iterative state (converged state data + MRBG-Stores +
    partitioned structure) carries over from batch to batch; processing
    N batches leaves exactly the state N sequential one-shot
    ``run_incremental`` calls would.  When a batch trips the P∆ auto-off
    the stores are invalidated and later batches take the engine's full
    recomputation path — correct, just no longer fine-grain (reported
    per batch via :attr:`BatchOutcome.fell_back`).
    """

    def __init__(
        self,
        engine: I2MREngine,
        job: IterativeJob,
        prev: PreservedIterState,
        options: Optional[I2MROptions] = None,
        owns_state: bool = False,
        net_deltas: bool = False,
    ) -> None:
        self.engine = engine
        self.job = job
        self.prev = prev
        self.options = options or I2MROptions()
        self._owns_state = owns_state
        #: cancel matched insert/delete pairs before invoking the engine
        #: (:func:`net_delta_records`); a batch that nets to zero then
        #: schedules no tasks at all.
        self.net_deltas = net_deltas

    @classmethod
    def from_initial(
        cls,
        cluster: Cluster,
        dfs: DistributedFS,
        job: IterativeJob,
        options: Optional[I2MROptions] = None,
        executor: Any = None,
        num_shards: Optional[int] = None,
        net_deltas: bool = False,
    ) -> "IterativeStreamConsumer":
        """Run the initial converged job and wrap its preserved state.

        ``num_shards`` shards each partition's preserved MRBG-Store so
        batches apply their deltas shard-parallel (None = the
        ``REPRO_SHARDS`` default).
        """
        engine = I2MREngine(cluster, dfs, executor=executor, num_shards=num_shards)
        _, prev = engine.run_initial(job)
        return cls(engine, job, prev, options, owns_state=True, net_deltas=net_deltas)

    def process_batch(self, records: List[DeltaRecord]) -> BatchOutcome:
        """Run one incremental iterative job over the micro-batch.

        With :attr:`net_deltas` a batch whose records cancel out entirely
        short-circuits: the engine never runs, zero tasks are scheduled
        and the preserved state is untouched (only the pipeline's commit
        record marks the batch).
        """
        records = list(records)
        if self.net_deltas:
            records = net_delta_records(records)
            if not records:
                return BatchOutcome(processing_s=0.0, iterations=0)
        before = _shard_activity(self.prev.stores)
        result = self.engine.run_incremental(
            self.job, records, self.prev, self.options
        )
        return BatchOutcome(
            processing_s=result.total_time,
            fell_back=result.fell_back,
            iterations=result.iterations,
            shards_touched=_shards_touched(
                before, _shard_activity(self.prev.stores)
            ),
            map_tasks=sum(
                getattr(stats, "scheduled_map_tasks", 0)
                for stats in result.per_iteration
            ),
        )

    def state(self) -> Dict[Any, Any]:
        """The current converged algorithm state."""
        return dict(self.prev.state)

    def close(self) -> None:
        """Release preserved state and engine pools (when owned)."""
        if self._owns_state:
            self.prev.cleanup()
            self.engine.close()


class OneStepStreamConsumer(StreamConsumer):
    """Feeds micro-batches through ``IncrMREngine.run_incremental``.

    Each batch is written to a fresh DFS staging file
    (``<staging_prefix>/batch-<n>``) in the ``(K1, (V1, op))`` delta
    format, then processed exactly like a hand-built one-shot delta.
    Accumulator-mode preserved state (§3.5) requires insert-only batches
    — the engine raises ``JobError`` otherwise.
    """

    def __init__(
        self,
        engine: IncrMREngine,
        jobconf: JobConf,
        state: PreservedJobState,
        staging_prefix: str = "/stream/delta",
        owns_state: bool = False,
        net_deltas: bool = False,
    ) -> None:
        if not staging_prefix:
            raise StreamError("staging_prefix must be non-empty")
        self.engine = engine
        self.jobconf = jobconf
        self.preserved = state
        self.staging_prefix = staging_prefix.rstrip("/")
        self._owns_state = owns_state
        #: cancel matched insert/delete pairs before staging the batch; a
        #: batch that nets to zero never reaches the DFS or the engine.
        self.net_deltas = net_deltas
        self._seq = 0

    @classmethod
    def from_initial(
        cls,
        cluster: Cluster,
        dfs: DistributedFS,
        jobconf: JobConf,
        accumulator: bool = False,
        staging_prefix: str = "/stream/delta",
        num_shards: Optional[int] = None,
        net_deltas: bool = False,
    ) -> "OneStepStreamConsumer":
        """Run job A once and wrap its preserved fine-grain state."""
        engine = IncrMREngine(cluster, dfs)
        _, state = engine.run_initial(
            jobconf, accumulator=accumulator, num_shards=num_shards
        )
        return cls(
            engine, jobconf, state, staging_prefix, owns_state=True,
            net_deltas=net_deltas,
        )

    def process_batch(self, records: List[DeltaRecord]) -> BatchOutcome:
        """Stage the micro-batch as a DFS delta file and process it.

        With :attr:`net_deltas` a batch whose records cancel out entirely
        short-circuits before staging: no DFS file, no engine run, no
        work scheduled.
        """
        if self.net_deltas:
            records = net_delta_records(list(records))
            if not records:
                return BatchOutcome(processing_s=0.0)
        path = f"{self.staging_prefix}/batch-{self._seq:06d}"
        self._seq += 1
        dfs = self.engine.dfs
        dfs.write(path, delta_to_dfs_records(records))
        before = _shard_activity(self.preserved)
        try:
            result = self.engine.run_incremental(self.jobconf, path, self.preserved)
        finally:
            # Staging files are per-batch scratch; a long-running stream
            # must not accumulate one DFS file per batch.
            dfs.delete(path)
            staging = f"{path}.plain"  # accumulator mode stages a second file
            if dfs.exists(staging):
                dfs.delete(staging)
        return BatchOutcome(
            processing_s=result.metrics.total_time,
            shards_touched=_shards_touched(before, _shard_activity(self.preserved)),
        )

    def state(self) -> Dict[Any, Any]:
        """The job's refreshed output as a key → value dict."""
        if self.preserved.accumulator:
            return dict(self.preserved.acc_outputs)
        flat: Dict[Any, Any] = {}
        for k3, v3 in self.preserved.result_records():
            flat[k3] = v3
        return flat

    def output_records(self) -> List[Tuple[Any, Any]]:
        """The job's refreshed full output, in deterministic key order."""
        return self.preserved.result_records()

    def close(self) -> None:
        """Release the preserved on-disk state (when owned)."""
        if self._owns_state:
            self.preserved.cleanup()
