"""Micro-batching policies: when does an open batch close?

The pipeline builds a batch one record at a time and asks the policy,
before admitting each further record, whether the batch should close
first.  A policy therefore never sees an empty batch (the first record
is always admitted — every policy makes progress) and decides purely
from batch size, byte size and simulated arrival times.

Sizing a micro-batch trades latency against overhead: every batch pays
the fixed job-startup cost (~20 simulated seconds, §4.2), so tiny
batches drown in startup while huge batches hold their oldest record
hostage.  :class:`BackpressureBatcher` navigates the trade-off
dynamically — it grows its batch target while the engine is falling
behind the arrival rate (backlog growing) and shrinks it again once the
queue drains.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import StreamError


@dataclass
class BatchFeedback:
    """What the pipeline tells the policy after each processed batch."""

    #: records arrived but unprocessed when the batch completed.
    backlog_records: int
    #: simulated engine seconds the batch took.
    processing_s: float
    #: records in the processed batch.
    num_records: int
    #: end-to-end latency of the batch's oldest record.
    latency_s: float


class BatchPolicy:
    """Abstract micro-batching policy."""

    #: short label used in experiment tables.
    name: str = "policy"

    def reset(self) -> None:
        """Forget adaptive state (called once per pipeline)."""

    def should_close(
        self,
        num_records: int,
        num_bytes: int,
        first_arrival_s: float,
        next_arrival_s: float,
        next_bytes: int,
    ) -> bool:
        """Whether to close the open batch *before* the next record."""
        raise NotImplementedError

    def observe(self, feedback: BatchFeedback) -> None:
        """Feedback hook after each processed batch (default: ignore)."""


class CountBatcher(BatchPolicy):
    """Close after a fixed number of records."""

    def __init__(self, max_records: int) -> None:
        if max_records <= 0:
            raise StreamError("max_records must be positive")
        self.max_records = max_records
        self.name = f"count({max_records})"

    def should_close(
        self,
        num_records: int,
        num_bytes: int,
        first_arrival_s: float,
        next_arrival_s: float,
        next_bytes: int,
    ) -> bool:
        """Close once the open batch holds ``max_records`` records."""
        return num_records >= self.max_records


class ByteBudgetBatcher(BatchPolicy):
    """Close when admitting the next record would exceed a byte budget.

    Byte sizes are the exact-size estimator's (the same accounting every
    engine charges simulated I/O with), plus the 2-byte op marker.
    """

    def __init__(self, max_bytes: int) -> None:
        if max_bytes <= 0:
            raise StreamError("max_bytes must be positive")
        self.max_bytes = max_bytes
        self.name = f"bytes({max_bytes})"

    def should_close(
        self,
        num_records: int,
        num_bytes: int,
        first_arrival_s: float,
        next_arrival_s: float,
        next_bytes: int,
    ) -> bool:
        """Close when the next record would push the batch over budget."""
        return num_bytes + next_bytes > self.max_bytes


class TimeWindowBatcher(BatchPolicy):
    """Close when the next record falls outside a simulated-time window.

    The window opens at the batch's first arrival; a record arriving
    ``window_s`` or more later starts the next batch.  When the engine
    falls behind, several windows' worth of records may already have
    arrived — they still split at window boundaries, so batch size grows
    with the arrival rate, not with the backlog.
    """

    def __init__(self, window_s: float) -> None:
        if window_s <= 0:
            raise StreamError("window_s must be positive")
        self.window_s = window_s
        self.name = f"window({window_s:g}s)"

    def should_close(
        self,
        num_records: int,
        num_bytes: int,
        first_arrival_s: float,
        next_arrival_s: float,
        next_bytes: int,
    ) -> bool:
        """Close when the next record falls past the window boundary."""
        return next_arrival_s >= first_arrival_s + self.window_s


class BackpressureBatcher(BatchPolicy):
    """Count batcher whose target adapts to the engine's backlog.

    Starts at ``min_records`` per batch.  After each batch, if the
    backlog exceeds ``high_water`` records the target multiplies by
    ``growth`` (amortizing the fixed per-batch startup cost over more
    records); once the backlog drains to zero the target divides by
    ``growth`` again, restoring low latency.  The target is clamped to
    ``[min_records, max_records]``.
    """

    def __init__(
        self,
        min_records: int = 4,
        max_records: int = 1024,
        high_water: int = 32,
        growth: float = 2.0,
    ) -> None:
        if min_records <= 0 or max_records < min_records:
            raise StreamError("need 0 < min_records <= max_records")
        if growth <= 1.0:
            raise StreamError("growth must exceed 1.0")
        if high_water < 0:
            raise StreamError("high_water must be non-negative")
        self.min_records = min_records
        self.max_records = max_records
        self.high_water = high_water
        self.growth = growth
        self.target = min_records
        self.name = f"backpressure({min_records}..{max_records})"

    def reset(self) -> None:
        """Return the adaptive target to ``min_records``."""
        self.target = self.min_records

    def should_close(
        self,
        num_records: int,
        num_bytes: int,
        first_arrival_s: float,
        next_arrival_s: float,
        next_bytes: int,
    ) -> bool:
        """Close once the open batch reaches the current adaptive target."""
        return num_records >= self.target

    def observe(self, feedback: BatchFeedback) -> None:
        """Grow the target under backlog pressure, shrink once drained."""
        if feedback.backlog_records > self.high_water:
            self.target = min(
                self.max_records, max(self.target + 1, int(self.target * self.growth))
            )
        elif feedback.backlog_records == 0:
            self.target = max(
                self.min_records, int(self.target / self.growth)
            )
