"""Per-batch and per-run metrics of a continuous pipeline.

All times are *simulated* seconds on the same clock the cost model uses
everywhere else in the library: record arrival times come from the
delta source, processing times from the engines' :class:`JobMetrics`.
Wall-clock never enters, so a stream run is exactly reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


@dataclass
class StreamBatchMetrics:
    """What happened to one micro-batch, end to end."""

    #: 0-based batch sequence number.
    index: int
    #: number of delta records in the batch.
    num_records: int
    #: encoded byte size of the batch (exact-size estimator).
    num_bytes: int
    #: simulated arrival time of the batch's first record.
    first_arrival_s: float
    #: simulated arrival time of the batch's last record (batch-ready time).
    ready_s: float
    #: when the engine actually started the batch (>= ready_s when the
    #: engine was still busy with an earlier batch).
    start_s: float
    #: simulated engine time spent processing the batch.
    processing_s: float
    #: completion time (``start_s + processing_s``, plus any simulated
    #: retry backoff the batch accumulated).
    done_s: float
    #: records already arrived but still unprocessed at completion time —
    #: the queue the *next* batches must drain.
    backlog_records: int
    #: whether this batch tripped the §5.2 P∆ auto-off (MRBGraph
    #: maintenance disabled; later batches run as full recomputation).
    fell_back: bool = False
    #: incremental iterations the engine ran for this batch (iterative
    #: consumers; one-step consumers report 1).
    iterations: int = 1
    #: map tasks the engine scheduled for this batch, summed over its
    #: incremental iterations (0 for consumers that don't report task
    #: counts, and for netted batches whose delta cancelled to zero —
    #: those never reach the engine at all).
    map_tasks: int = 0
    #: store shards whose files this batch touched, summed over the
    #: preserved stores of every reduce partition.  0 when the consumer
    #: maintains unsharded stores (or none at all, e.g. accumulator
    #: mode); with sharded stores the count shows how widely the batch's
    #: delta spread — shards not touched were free to serve other work.
    shards_touched: int = 0
    #: consumer re-executions this batch needed before succeeding (0 on
    #: a clean first attempt).
    retries: int = 0
    #: consumer failures observed while processing this batch (equals
    #: ``retries`` when the batch eventually succeeded; ``retries + 1``
    #: when it was dead-lettered).
    failures: int = 0
    #: the batch exhausted its retry budget and was skipped; its error
    #: is preserved in :attr:`ContinuousPipeline.dead_letters
    #: <repro.streaming.pipeline.ContinuousPipeline.dead_letters>`.
    dead_lettered: bool = False
    #: simulated seconds spent backing off between retry attempts —
    #: charged to the batch's completion time, never to
    #: ``processing_s``, so fault-free metrics are unchanged.
    retry_backoff_s: float = 0.0

    @property
    def wait_s(self) -> float:
        """How long the ready batch queued behind earlier batches."""
        return self.start_s - self.ready_s

    @property
    def latency_s(self) -> float:
        """End-to-end latency of the batch's *oldest* record."""
        return self.done_s - self.first_arrival_s


@dataclass
class StreamRunResult:
    """Summary of one :class:`ContinuousPipeline.run` invocation."""

    batches: List[StreamBatchMetrics] = field(default_factory=list)

    @property
    def num_batches(self) -> int:
        """Number of micro-batches processed so far."""
        return len(self.batches)

    @property
    def num_records(self) -> int:
        """Total delta records across all batches."""
        return sum(b.num_records for b in self.batches)

    @property
    def num_fallbacks(self) -> int:
        """Batches run with MRBGraph maintenance off (P∆ auto-off)."""
        return sum(1 for b in self.batches if b.fell_back)

    @property
    def num_retries(self) -> int:
        """Total consumer re-executions across all batches."""
        return sum(b.retries for b in self.batches)

    @property
    def num_failures(self) -> int:
        """Total consumer failures observed across all batches."""
        return sum(b.failures for b in self.batches)

    @property
    def num_dead_lettered(self) -> int:
        """Batches that exhausted their retry budget and were skipped."""
        return sum(1 for b in self.batches if b.dead_lettered)

    @property
    def total_retry_backoff_s(self) -> float:
        """Total simulated backoff seconds spent between retry attempts."""
        return sum(b.retry_backoff_s for b in self.batches)

    @property
    def total_map_tasks(self) -> int:
        """Total map tasks scheduled across all batches."""
        return sum(b.map_tasks for b in self.batches)

    @property
    def max_backlog(self) -> int:
        """Deepest completion-time backlog any batch observed."""
        return max((b.backlog_records for b in self.batches), default=0)

    @property
    def mean_shards_touched(self) -> float:
        """Mean store shards touched per batch (0 for unsharded stores)."""
        if not self.batches:
            return 0.0
        return sum(b.shards_touched for b in self.batches) / len(self.batches)

    @property
    def mean_batch_records(self) -> float:
        """Mean records per batch."""
        if not self.batches:
            return 0.0
        return self.num_records / len(self.batches)

    @property
    def mean_latency_s(self) -> float:
        """Mean end-to-end latency of each batch's oldest record."""
        if not self.batches:
            return 0.0
        return sum(b.latency_s for b in self.batches) / len(self.batches)

    @property
    def max_latency_s(self) -> float:
        """Worst end-to-end latency across batches."""
        return max((b.latency_s for b in self.batches), default=0.0)

    @property
    def total_processing_s(self) -> float:
        """Total simulated engine seconds across batches."""
        return sum(b.processing_s for b in self.batches)

    @property
    def makespan_s(self) -> float:
        """First arrival to last completion, in simulated seconds."""
        if not self.batches:
            return 0.0
        return self.batches[-1].done_s - self.batches[0].first_arrival_s

    @property
    def throughput_records_per_s(self) -> float:
        """Records per simulated second over the whole run."""
        span = self.makespan_s
        if span <= 0.0:
            return 0.0
        return self.num_records / span
