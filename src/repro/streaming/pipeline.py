"""The continuous pipeline driver: source → batches → engine → metrics.

:class:`ContinuousPipeline` pulls timestamped delta records from a
:class:`repro.streaming.sources.DeltaSource`, cuts them into
micro-batches under a :class:`repro.streaming.batching.BatchPolicy`,
feeds each batch to a :class:`repro.streaming.consumers.StreamConsumer`
(which drives ``run_incremental`` on one of the incremental engines),
and records a :class:`repro.streaming.metrics.StreamBatchMetrics` per
batch.

Time is the library's simulated clock: a batch is *ready* when its last
record has arrived, *starts* once the engine is free, and completes
after the engine's simulated processing time.  Records that arrive while
the engine is busy queue up as *backlog*; the backlog depth at each
batch's completion is reported to the policy (backpressure policies use
it to grow their batch target) and recorded in the metrics.

When the consumer maintains sharded MRBG-Stores
(:class:`repro.mrbgraph.sharding.ShardedMRBGStore`), each batch's delta
routes to the shards owning its affected ``K2`` groups and independent
shards apply their slices concurrently on the store's execution
backend; the number of shards a batch actually touched is recorded in
:attr:`repro.streaming.metrics.StreamBatchMetrics.shards_touched`.

``run`` may be called repeatedly — the simulated clock, the source
position and the consumer state all persist, so a caller can interleave
pipeline pulls with out-of-band work (e.g. writing more DFS delta files
for a tailing source to pick up).

With ``batch_retries > 0`` the pipeline is *resilient*: a consumer
failure is retried (after a simulated exponential backoff charged to
the batch's completion time, never its ``processing_s``) and a batch
that fails every attempt is dead-lettered — recorded in
``pipeline.dead_letters`` with its final error — instead of killing the
stream.  Fault-free runs produce byte-identical metrics either way.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Iterator, List, Optional, Tuple

from repro.cluster.costmodel import CostModel
from repro.common.errors import DeadLetteredBatch
from repro.common.hashing import stable_hash
from repro.common.sizeof import record_size
from repro.streaming.batching import BatchFeedback, BatchPolicy
from repro.streaming.consumers import BatchOutcome, StreamConsumer
from repro.streaming.metrics import StreamBatchMetrics, StreamRunResult
from repro.streaming.sources import ArrivedRecord, DeltaSource

#: Encoded overhead of the +/- op marker on a delta record — the same
#: charge the incremental engines apply per delta record.
_OP_BYTES = 2

#: Batch-listener signature: called with (pipeline, batch_metrics) after
#: every batch's metrics are recorded (dead-lettered batches included —
#: listeners check ``metrics.dead_lettered`` when they only want
#: committed work, as the serving bridge does).
BatchListener = Callable[["ContinuousPipeline", StreamBatchMetrics], None]


def delta_record_size(record) -> int:
    """Encoded bytes of one delta record (payload + op marker)."""
    return record_size(record.key, record.value) + _OP_BYTES


class ContinuousPipeline:
    """Drive an incremental engine from a continuous delta stream."""

    def __init__(
        self,
        source: DeltaSource,
        policy: BatchPolicy,
        consumer: StreamConsumer,
        batch_retries: int = 0,
        cost_model: Optional[CostModel] = None,
        batch_listeners: Optional[List[BatchListener]] = None,
    ) -> None:
        if batch_retries < 0:
            raise ValueError("batch_retries must be >= 0")
        self.source = source
        self.policy = policy
        self.consumer = consumer
        #: consumer re-executions each batch may consume before being
        #: dead-lettered.  0 (the default) preserves the historical
        #: fail-fast behaviour: the first consumer error propagates.
        self.batch_retries = batch_retries
        #: charges the simulated backoff between retry attempts.
        self.cost_model = cost_model or CostModel()
        #: poison batches that exhausted their retry budget — one
        #: :class:`repro.common.errors.DeadLetteredBatch` per skipped
        #: batch, carrying the batch index, attempts and final error.
        self.dead_letters: List[DeadLetteredBatch] = []
        #: callbacks invoked with ``(pipeline, metrics)`` after every
        #: batch commits its metrics — the hook the serving layer uses
        #: to publish a new epoch per committed micro-batch.
        self.batch_listeners: List[BatchListener] = list(batch_listeners or ())
        self.result = StreamRunResult()
        policy.reset()
        self._events: Optional[Iterator[ArrivedRecord]] = None
        self._pending: Optional[ArrivedRecord] = None
        self._buffer: Deque[ArrivedRecord] = deque()
        #: simulated time at which the engine finishes its current work.
        self.engine_free_s = 0.0

    # ------------------------------------------------------------------ #
    # source plumbing                                                    #
    # ------------------------------------------------------------------ #

    def _pull(self) -> Optional[ArrivedRecord]:
        """Next record straight from the source, or None when drained."""
        item = self._peek_source()
        self._pending = None
        return item

    def _peek_source(self) -> Optional[ArrivedRecord]:
        if self._pending is None:
            if self._events is None:
                self._events = iter(self.source)
            self._pending = next(self._events, None)
            if self._pending is None:
                # Exhausted for now — drop the iterator so the next ask
                # re-enters events(); sources resume, so a tailing
                # source gets to surface data that appeared since.
                self._events = None
        return self._pending

    def _peek(self) -> Optional[ArrivedRecord]:
        """Next record to batch (buffered backlog first, then source)."""
        if self._buffer:
            return self._buffer[0]
        return self._peek_source()

    def _pop(self) -> Optional[ArrivedRecord]:
        if self._buffer:
            return self._buffer.popleft()
        return self._pull()

    def _absorb_arrivals(self, until_s: float) -> None:
        """Move records that arrived by ``until_s`` into the backlog."""
        while True:
            nxt = self._peek_source()
            if nxt is None or nxt.arrival_s > until_s:
                return
            self._buffer.append(self._pull())

    # ------------------------------------------------------------------ #
    # the drive loop                                                     #
    # ------------------------------------------------------------------ #

    def _next_batch(self) -> Tuple[List[ArrivedRecord], int]:
        """Cut the next micro-batch under the policy (may be empty)."""
        batch: List[ArrivedRecord] = []
        num_bytes = 0
        first_arrival = 0.0
        while True:
            nxt = self._peek()
            if nxt is None:
                return batch, num_bytes
            nxt_bytes = delta_record_size(nxt.record)
            if batch and self.policy.should_close(
                len(batch), num_bytes, first_arrival, nxt.arrival_s, nxt_bytes
            ):
                return batch, num_bytes
            if not batch:
                first_arrival = nxt.arrival_s
            batch.append(self._pop())
            num_bytes += nxt_bytes

    def _process_with_retries(
        self, index: int, records: List
    ) -> Tuple[BatchOutcome, int, bool, float]:
        """Run one batch through the consumer's retry budget.

        Returns ``(outcome, failures, dead_lettered, backoff_s)``.  A
        batch that fails its first attempt is retried up to
        ``batch_retries`` times, each retry preceded by the cost model's
        simulated exponential backoff (deterministic per (batch,
        attempt), so a replayed stream backs off identically).  A batch
        that fails every attempt is *dead-lettered*: its final error is
        wrapped in :class:`~repro.common.errors.DeadLetteredBatch`,
        appended to :attr:`dead_letters`, and the pipeline moves on —
        one poison batch must not stall the stream behind it.

        With ``batch_retries == 0`` the first error propagates to the
        caller unchanged (the historical fail-fast contract).
        """
        backoff_s = 0.0
        failures = 0
        while True:
            try:
                return self.consumer.process_batch(records), failures, False, backoff_s
            except Exception as exc:
                if self.batch_retries == 0:
                    raise
                failures += 1
                if failures > self.batch_retries:
                    self.dead_letters.append(
                        DeadLetteredBatch(index, failures, repr(exc))
                    )
                    return BatchOutcome(processing_s=0.0), failures, True, backoff_s
                backoff_s += self.cost_model.task_retry_backoff_time(
                    failures - 1, stable_hash((index, failures))
                )

    def add_batch_listener(self, listener: BatchListener) -> None:
        """Register a callback run after each batch's metrics commit."""
        self.batch_listeners.append(listener)

    def run(self, max_batches: Optional[int] = None) -> StreamRunResult:
        """Process batches until the source drains (or a batch budget).

        Returns the cumulative :class:`StreamRunResult` across *all*
        ``run`` calls on this pipeline.
        """
        done = 0
        while max_batches is None or done < max_batches:
            batch, num_bytes = self._next_batch()
            if not batch:
                break
            records = [item.record for item in batch]
            first_arrival_s = batch[0].arrival_s
            ready_s = batch[-1].arrival_s
            start_s = max(ready_s, self.engine_free_s)
            index = self.result.num_batches
            outcome, failures, dead, backoff_s = self._process_with_retries(
                index, records
            )
            done_s = start_s + backoff_s + outcome.processing_s
            self.engine_free_s = done_s
            self._absorb_arrivals(done_s)
            metrics = StreamBatchMetrics(
                index=index,
                num_records=len(records),
                num_bytes=num_bytes,
                first_arrival_s=first_arrival_s,
                ready_s=ready_s,
                start_s=start_s,
                processing_s=outcome.processing_s,
                done_s=done_s,
                backlog_records=len(self._buffer),
                fell_back=outcome.fell_back,
                iterations=outcome.iterations,
                map_tasks=outcome.map_tasks,
                shards_touched=outcome.shards_touched,
                retries=failures - 1 if dead else failures,
                failures=failures,
                dead_lettered=dead,
                retry_backoff_s=backoff_s,
            )
            self.result.batches.append(metrics)
            for listener in self.batch_listeners:
                listener(self, metrics)
            self.policy.observe(
                BatchFeedback(
                    backlog_records=metrics.backlog_records,
                    processing_s=metrics.processing_s,
                    num_records=metrics.num_records,
                    latency_s=metrics.latency_s,
                )
            )
            done += 1
        return self.result

    def close(self) -> None:
        """Release the consumer's preserved state (when it owns it)."""
        self.consumer.close()

    def __enter__(self) -> "ContinuousPipeline":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
