"""Delta sources: where a continuous pipeline's records come from.

A :class:`DeltaSource` yields :class:`ArrivedRecord` items — a delta
record plus its *simulated* arrival time — in non-decreasing arrival
order.  Three families are provided:

- :class:`ReplaySource` replays a recorded delta stream at a fixed
  arrival rate (the "log replay" shape);
- :class:`DFSTailSource` tails delta files in the simulated DFS (the
  shape a real deployment has: an ingest job appends delta files under
  a directory and the pipeline consumes them in order);
- :class:`SyntheticEvolvingSource` generates an evolving workload on
  the fly by repeatedly mutating a dataset with the library's seeded
  mutators (``mutate_web_graph``, ``mutate_weighted_graph``,
  ``mutate_points``, ``new_tweets``), each generation arriving as a
  burst — the recrawl/refresh shape of the paper's §8 experiments.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, List, NamedTuple

from repro.common.errors import StreamSourceError
from repro.common.kvpair import DeltaRecord
from repro.dfs.filesystem import DistributedFS
from repro.incremental.api import dfs_records_to_delta


class ArrivedRecord(NamedTuple):
    """One delta record stamped with its simulated arrival time."""

    record: DeltaRecord
    arrival_s: float


class DeltaSource:
    """Abstract source of timestamped delta records.

    Subclasses implement :meth:`events`; iteration must yield records in
    non-decreasing ``arrival_s`` order (the pipeline relies on it for
    batching and backlog accounting) and must *resume*: a new
    ``events()`` pass continues after the last record a previous pass
    yielded, yielding nothing when no new data exists.  The pipeline
    re-enters ``events()`` after exhaustion, which is how a tailing
    source picks up data that appeared between two ``run`` calls.
    """

    def events(self) -> Iterator[ArrivedRecord]:
        """Yield :class:`ArrivedRecord` items in arrival order."""
        raise NotImplementedError

    def __iter__(self) -> Iterator[ArrivedRecord]:
        return self.events()


class ReplaySource(DeltaSource):
    """Replay a recorded delta stream at a fixed arrival rate.

    Like every source, iteration *resumes*: a second ``events()`` pass
    starts after the last record the previous pass yielded (and yields
    nothing once the recording is exhausted), so a pipeline that drains
    the source and asks again does not see duplicates.  ``extend``
    appends more records to the recording; they arrive on the same
    fixed-rate schedule and are picked up by the next pass.

    Args:
        records: the delta records, in stream order.
        rate: arrival rate in records per simulated second; record ``i``
            arrives at ``start_s + i / rate``.
        start_s: simulated time of the first arrival.
    """

    def __init__(
        self,
        records: Iterable[DeltaRecord],
        rate: float = 1.0,
        start_s: float = 0.0,
    ) -> None:
        if rate <= 0:
            raise StreamSourceError("replay rate must be positive")
        self.records = list(records)
        self.rate = rate
        self.start_s = start_s
        self._position = 0

    def extend(self, records: Iterable[DeltaRecord]) -> None:
        """Append more records to the recording (arrive after the rest)."""
        self.records.extend(records)

    def events(self) -> Iterator[ArrivedRecord]:
        """Yield the recorded records at the fixed rate, resuming."""
        gap = 1.0 / self.rate
        while self._position < len(self.records):
            i = self._position
            self._position += 1
            yield ArrivedRecord(self.records[i], self.start_s + i * gap)


class DFSTailSource(DeltaSource):
    """Tail delta files under a DFS path prefix, in path order.

    Files are the ``(K1, (V1, '+'|'-'))`` record files that
    :func:`repro.incremental.api.delta_to_dfs_records` produces.  Each
    file is one burst: all of its records arrive together, bursts spaced
    ``period_s`` apart (a crawler dropping one delta file per refresh).

    The source re-lists the prefix whenever its known files are
    exhausted, so files written *between* two ``run`` calls of the same
    pipeline are picked up by the next call — tail semantics.  Paths are
    consumed at most once.

    Raises:
        repro.common.errors.DeltaDecodeError: when a tailed file does
            not hold well-formed delta records.
    """

    def __init__(
        self,
        dfs: DistributedFS,
        prefix: str,
        period_s: float = 60.0,
        start_s: float = 0.0,
    ) -> None:
        if period_s <= 0:
            raise StreamSourceError("period_s must be positive")
        self.dfs = dfs
        self.prefix = prefix
        self.period_s = period_s
        self.start_s = start_s
        self._consumed: set = set()
        self._next_burst_s = start_s

    def pending_paths(self) -> List[str]:
        """Paths under the prefix not yet consumed, in tail order."""
        return [p for p in self.dfs.ls(self.prefix) if p not in self._consumed]

    def events(self) -> Iterator[ArrivedRecord]:
        """Yield one burst per new delta file under the prefix."""
        while True:
            fresh = self.pending_paths()
            if not fresh:
                return
            for path in fresh:
                burst_s = self._next_burst_s
                self._next_burst_s += self.period_s
                self._consumed.add(path)
                for rec in dfs_records_to_delta(self.dfs.read(path)):
                    yield ArrivedRecord(rec, burst_s)


class SyntheticEvolvingSource(DeltaSource):
    """Generate an evolving workload by repeatedly mutating a dataset.

    Args:
        dataset: the starting dataset (``WebGraph``, ``WeightedGraph``,
            ``PointsDataset``, ``TweetDataset``, ...).
        mutate: a seeded mutator ``mutate(dataset, fraction, seed=...)``
            returning a delta object exposing ``records`` and the
            mutated dataset (``new_graph`` or ``new_dataset``).
        fraction: fraction of the dataset changed per generation.
        generations: how many delta bursts to produce.
        period_s: simulated seconds between generation bursts.
        seed: base seed; generation ``g`` uses ``seed + g``.
        start_s: simulated time of the first burst.

    The mutated dataset is tracked across generations and exposed as
    :attr:`current_dataset`, so a test can recompute from scratch on the
    final dataset and compare against the pipeline's incremental state.
    """

    def __init__(
        self,
        dataset: Any,
        mutate: Callable[..., Any],
        fraction: float,
        generations: int,
        period_s: float = 60.0,
        seed: int = 0,
        start_s: float = 0.0,
    ) -> None:
        if generations < 0:
            raise StreamSourceError("generations must be non-negative")
        if period_s <= 0:
            raise StreamSourceError("period_s must be positive")
        self.current_dataset = dataset
        self.mutate = mutate
        self.fraction = fraction
        self.generations = generations
        self.period_s = period_s
        self.seed = seed
        self.start_s = start_s
        self._generation = 0

    @staticmethod
    def _new_dataset(delta: Any) -> Any:
        for attr in ("new_graph", "new_dataset"):
            if hasattr(delta, attr):
                return getattr(delta, attr)
        raise StreamSourceError(
            f"mutator returned {type(delta).__name__} with neither "
            "new_graph nor new_dataset"
        )

    def events(self) -> Iterator[ArrivedRecord]:
        """Yield each generation's mutation burst as it is generated."""
        while self._generation < self.generations:
            g = self._generation
            self._generation += 1
            delta = self.mutate(
                self.current_dataset, self.fraction, seed=self.seed + g
            )
            self.current_dataset = self._new_dataset(delta)
            burst_s = self.start_s + g * self.period_s
            for rec in delta.records:
                yield ArrivedRecord(rec, burst_s)


def evolving_web_graph_source(
    graph: Any,
    fraction: float = 0.05,
    generations: int = 3,
    period_s: float = 60.0,
    seed: int = 0,
) -> SyntheticEvolvingSource:
    """An evolving web crawl (wraps :func:`mutate_web_graph`)."""
    from repro.datasets.graphs import mutate_web_graph

    return SyntheticEvolvingSource(
        graph, mutate_web_graph, fraction, generations, period_s, seed
    )


def evolving_weighted_graph_source(
    graph: Any,
    fraction: float = 0.05,
    generations: int = 3,
    period_s: float = 60.0,
    seed: int = 0,
) -> SyntheticEvolvingSource:
    """An evolving weighted graph (wraps :func:`mutate_weighted_graph`)."""
    from repro.datasets.graphs import mutate_weighted_graph

    return SyntheticEvolvingSource(
        graph, mutate_weighted_graph, fraction, generations, period_s, seed
    )


def evolving_points_source(
    points: Any,
    fraction: float = 0.05,
    generations: int = 3,
    period_s: float = 60.0,
    seed: int = 0,
) -> SyntheticEvolvingSource:
    """An evolving point population (wraps :func:`mutate_points`)."""
    from repro.datasets.points import mutate_points

    return SyntheticEvolvingSource(
        points, mutate_points, fraction, generations, period_s, seed
    )


def evolving_text_source(
    tweets: Any,
    fraction: float = 0.05,
    generations: int = 3,
    period_s: float = 60.0,
    seed: int = 0,
) -> SyntheticEvolvingSource:
    """Newly collected text (wraps :func:`new_tweets`; insert-only, so
    it feeds accumulator one-step jobs like WordCount/APriori, §3.5)."""
    from repro.datasets.text import new_tweets

    return SyntheticEvolvingSource(
        tweets, new_tweets, fraction, generations, period_s, seed
    )
