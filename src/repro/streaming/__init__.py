"""Continuous delta ingestion and micro-batched incremental pipelines.

The paper's engines refresh a computation for *one* hand-built delta.
This subsystem turns them into a long-running service: a
:class:`DeltaSource` produces timestamped delta records, a
:class:`BatchPolicy` cuts them into micro-batches, and a
:class:`ContinuousPipeline` feeds each batch through
``run_incremental`` while the MRBG-Store and converged state persist
across batches.  Per-batch latency, queueing and backlog are recorded
in simulated time, so runs are exactly reproducible.

Quickstart::

    from repro.streaming import (
        ContinuousPipeline, CountBatcher,
        IterativeStreamConsumer, evolving_web_graph_source,
    )

    source = evolving_web_graph_source(graph, fraction=0.05, generations=3)
    consumer = IterativeStreamConsumer.from_initial(cluster, dfs, job)
    with ContinuousPipeline(source, CountBatcher(64), consumer) as pipe:
        result = pipe.run()
    print(result.mean_latency_s, result.max_backlog)
"""

from repro.streaming.batching import (
    BackpressureBatcher,
    BatchFeedback,
    BatchPolicy,
    ByteBudgetBatcher,
    CountBatcher,
    TimeWindowBatcher,
)
from repro.streaming.consumers import (
    BatchOutcome,
    IterativeStreamConsumer,
    OneStepStreamConsumer,
    StreamConsumer,
    net_delta_records,
)
from repro.streaming.metrics import StreamBatchMetrics, StreamRunResult
from repro.streaming.pipeline import ContinuousPipeline, delta_record_size
from repro.streaming.sources import (
    ArrivedRecord,
    DeltaSource,
    DFSTailSource,
    ReplaySource,
    SyntheticEvolvingSource,
    evolving_points_source,
    evolving_text_source,
    evolving_web_graph_source,
    evolving_weighted_graph_source,
)

__all__ = [
    "BackpressureBatcher",
    "BatchFeedback",
    "BatchPolicy",
    "ByteBudgetBatcher",
    "CountBatcher",
    "TimeWindowBatcher",
    "BatchOutcome",
    "IterativeStreamConsumer",
    "OneStepStreamConsumer",
    "StreamConsumer",
    "net_delta_records",
    "StreamBatchMetrics",
    "StreamRunResult",
    "ContinuousPipeline",
    "delta_record_size",
    "ArrivedRecord",
    "DeltaSource",
    "DFSTailSource",
    "ReplaySource",
    "SyntheticEvolvingSource",
    "evolving_points_source",
    "evolving_text_source",
    "evolving_web_graph_source",
    "evolving_weighted_graph_source",
]
