"""i2MapReduce — incremental MapReduce for mining evolving big data.

A from-scratch reproduction of Zhang, Chen, Wang & Yu (ICDE), built as a
production-quality Python library:

- :mod:`repro.mapreduce` — a Hadoop-like MapReduce engine over a
  deterministic simulated cluster (:mod:`repro.cluster`) and a
  block-structured DFS (:mod:`repro.dfs`);
- :mod:`repro.mrbgraph` — the MRBGraph abstraction and the real on-disk
  MRBG-Store with its four read-window policies (paper sections 3.2-3.4, 5.2);
- :mod:`repro.incremental` — fine-grain incremental one-step processing
  and the accumulator-Reduce fast path (section 3);
- :mod:`repro.iterative` — the general-purpose iterative model with the
  Project API and dependency-aware co-partitioning (section 4);
- :mod:`repro.inciter` — incremental iterative processing with change
  propagation control and the P-delta auto-off (section 5);
- :mod:`repro.execution` — pluggable host execution backends (serial /
  thread / process) every engine dispatches its task batches through;
- :mod:`repro.streaming` — continuous delta ingestion: delta sources,
  micro-batching policies (count / bytes / time-window / backpressure)
  and the :class:`ContinuousPipeline` driver that keeps the incremental
  engines running over an evolving stream;
- :mod:`repro.serving` — the online read path over preserved state:
  epoch-pinned snapshot-isolated queries (point / multi-get / range /
  prefix / incrementally-maintained top-k), a delta-invalidated result
  cache, and the :class:`ServingBridge` that turns every committed
  micro-batch into a served epoch;
- :mod:`repro.faults` — checkpoint-based fault tolerance (section 6);
- :mod:`repro.baselines` — PlainMR recomputation, HaLoop, a Spark-like
  in-memory engine and an Incoop-like task-level memoizer (section 8.1.1);
- :mod:`repro.algorithms` — PageRank, SSSP, Kmeans, GIM-V, APriori and
  WordCount, each with reference implementations (section 8.1.3);
- :mod:`repro.datasets` — seeded synthetic stand-ins for Table 3's data;
- :mod:`repro.experiments` — one module per table/figure in section 8.

Quickstart::

    from repro import (
        Cluster, DistributedFS, JobConf, IncrMREngine,
        Mapper, SumReducer, insert, delta_to_dfs_records,
    )

    class TokenMapper(Mapper):
        def map(self, key, text, ctx):
            for word in text.split():
                ctx.emit(word, 1)

    cluster = Cluster(num_workers=4)
    dfs = DistributedFS(cluster)
    dfs.write("/docs", [(0, "a b a"), (1, "b c")])
    engine = IncrMREngine(cluster, dfs)
    conf = JobConf("wordcount", TokenMapper, SumReducer,
                   inputs=["/docs"], output="/counts", num_reducers=2)
    result, state = engine.run_initial(conf, accumulator=True)
    dfs.write("/delta", delta_to_dfs_records([insert(2, "c c")]))
    engine.run_incremental(conf, "/delta", state)
    print(dict(dfs.read("/counts")))   # {'a': 2, 'b': 2, 'c': 3}
"""

from repro.algorithms import GIMV, APriori, Kmeans, PageRank, SSSP
from repro.baselines import HaLoopDriver, HaLoopEngine, PlainMRDriver
from repro.baselines.incoop import IncoopEngine
from repro.baselines.spark import SparkLikeDriver
from repro.cluster import Cluster, CostModel
from repro.common.kvpair import DeltaRecord, Op, delete, insert, update
from repro.dfs import DistributedFS
from repro.execution import (
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    resolve_executor,
)
from repro.faults import FaultContext, FaultInjector, FaultSpec
from repro.inciter import I2MREngine, I2MROptions
from repro.incremental import (
    AccumulatorReducer,
    IncrMREngine,
    PreservedJobState,
    SumReducer,
    delta_to_dfs_records,
)
from repro.iterative import Dependency, IterativeJob, IterMREngine
from repro.mapreduce import (
    Context,
    JobConf,
    Mapper,
    MapReduceEngine,
    Reducer,
)
from repro.mrbgraph import (
    HashShardRouter,
    MRBGStore,
    RangeShardRouter,
    ShardedMRBGStore,
    ShardRouter,
)
from repro.serving import (
    EpochManager,
    EpochSnapshot,
    LoadGenerator,
    QueryMix,
    QueryResult,
    QueryServer,
    ResultCache,
    ServingBridge,
)
from repro.streaming import (
    BackpressureBatcher,
    ByteBudgetBatcher,
    ContinuousPipeline,
    CountBatcher,
    DeltaSource,
    DFSTailSource,
    IterativeStreamConsumer,
    OneStepStreamConsumer,
    ReplaySource,
    TimeWindowBatcher,
)

__version__ = "1.3.0"

__all__ = [
    "GIMV",
    "APriori",
    "Kmeans",
    "PageRank",
    "SSSP",
    "HaLoopDriver",
    "HaLoopEngine",
    "PlainMRDriver",
    "IncoopEngine",
    "SparkLikeDriver",
    "Cluster",
    "CostModel",
    "DeltaRecord",
    "Op",
    "delete",
    "insert",
    "update",
    "DistributedFS",
    "ExecutionBackend",
    "ProcessBackend",
    "SerialBackend",
    "ThreadBackend",
    "resolve_executor",
    "FaultContext",
    "FaultInjector",
    "FaultSpec",
    "I2MREngine",
    "I2MROptions",
    "AccumulatorReducer",
    "IncrMREngine",
    "PreservedJobState",
    "SumReducer",
    "delta_to_dfs_records",
    "Dependency",
    "IterativeJob",
    "IterMREngine",
    "Context",
    "JobConf",
    "Mapper",
    "MapReduceEngine",
    "Reducer",
    "MRBGStore",
    "HashShardRouter",
    "RangeShardRouter",
    "ShardRouter",
    "ShardedMRBGStore",
    "EpochManager",
    "EpochSnapshot",
    "LoadGenerator",
    "QueryMix",
    "QueryResult",
    "QueryServer",
    "ResultCache",
    "ServingBridge",
    "BackpressureBatcher",
    "ByteBudgetBatcher",
    "ContinuousPipeline",
    "CountBatcher",
    "DeltaSource",
    "DFSTailSource",
    "IterativeStreamConsumer",
    "OneStepStreamConsumer",
    "ReplaySource",
    "TimeWindowBatcher",
    "__version__",
]
