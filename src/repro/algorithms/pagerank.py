"""PageRank (Algorithm 2 of the paper), one-to-one dependency.

Structure kv-pairs are ``(i, N_i)`` (vertex and its out-neighbor tuple);
state kv-pairs are ``(i, R_i)`` (the evolving rank).  The paper's update
rule is ``R_j = d * sum_i R_{i,j} + (1 - d)`` with all ranks initialized
to one (so computed scores are ``|N|`` times larger than the probabilistic
formulation — footnote 2 of the paper).

Also provided: the vanilla-MapReduce formulation (Algorithm 2 with
structure data riding through the shuffle) and the HaLoop two-job
formulation (Algorithm 5: join job + aggregation job with reducer-input
caching).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.algorithms.base import (
    HaLoopFormulation,
    IterativeAlgorithm,
    PlainFormulation,
)
from repro.datasets.graphs import WebGraph
from repro.iterative.api import Dependency
from repro.mapreduce.api import Context, IdentityMapper, Mapper, Reducer
from repro.mapreduce.job import JobConf


class PageRank(IterativeAlgorithm):
    """PageRank with the paper's damping convention."""

    name = "pagerank"
    dependency = Dependency.ONE_TO_ONE

    def __init__(self, damping: float = 0.8) -> None:
        if not 0.0 < damping < 1.0:
            raise ValueError("damping must be in (0, 1)")
        self.damping = damping

    # ------------------------------ §4 API ---------------------------- #

    def project(self, sk: Any) -> Any:
        """Identity: vertex ``i`` is both structure and state key."""
        return sk

    def map_instance(self, sk: Any, sv: Any, dk: Any, dv: Any) -> List[Tuple[Any, Any]]:
        """Distribute the rank ``dv`` evenly over the vertex's out-links."""
        links = sv[0]
        if not links:
            return []
        share = dv / len(links)
        return [(j, share) for j in links]

    def reduce_instance(self, k2: Any, values: List[Any]) -> Any:
        """Damped sum of incoming rank shares: ``d * sum + (1 - d)``."""
        return self.damping * sum(values) + (1.0 - self.damping)

    def difference(self, dv_curr: Any, dv_prev: Any) -> float:
        """Absolute rank change."""
        return abs(dv_curr - dv_prev)

    def init_state_value(self, dk: Any) -> Any:
        """New vertices start at rank 1.0 (paper footnote 2)."""
        return 1.0

    # ---------------------------- data model -------------------------- #

    def structure_records(self, dataset: WebGraph) -> List[Tuple[Any, Any]]:
        """``(i, (links, payload))`` for every vertex, sorted."""
        return [(v, dataset.value_of(v)) for v in sorted(dataset.out_links)]

    def initial_state(self, dataset: WebGraph) -> Dict[Any, Any]:
        """All ranks start at 1.0."""
        return {v: 1.0 for v in dataset.out_links}

    # ---------------------------- reference --------------------------- #

    def reference(self, dataset: WebGraph, iterations: int) -> Dict[Any, Any]:
        """Exact dict-based power iteration matching the engine semantics."""
        state = self.initial_state(dataset)
        return self.reference_from(dataset, state, iterations)

    def reference_from(
        self,
        dataset: WebGraph,
        state: Dict[Any, Any],
        iterations: int,
    ) -> Dict[Any, Any]:
        """Reference continuation from an arbitrary starting state."""
        ranks = dict(state)
        for v in dataset.out_links:
            ranks.setdefault(v, 1.0)
        for stale in [v for v in ranks if v not in dataset.out_links]:
            del ranks[stale]
        for _ in range(iterations):
            sums: Dict[Any, float] = {v: 0.0 for v in dataset.out_links}
            for i, links in dataset.out_links.items():
                if not links:
                    continue
                share = ranks[i] / len(links)
                for j in links:
                    if j in sums:
                        sums[j] += share
            ranks = {
                j: self.damping * total + (1.0 - self.damping)
                for j, total in sums.items()
            }
        return ranks

    # ----------------------- baseline formulations -------------------- #

    def plain_formulation(self, dataset: WebGraph) -> "PageRankPlainFormulation":
        """Vanilla-MapReduce PageRank (Algorithm 2)."""
        return PageRankPlainFormulation(self, dataset)

    def haloop_formulation(self, dataset: WebGraph) -> "PageRankHaLoopFormulation":
        """HaLoop join + aggregation PageRank (Algorithm 5)."""
        return PageRankHaLoopFormulation(self, dataset)


# ---------------------------------------------------------------------- #
# vanilla MapReduce formulation (Algorithm 2)                             #
# ---------------------------------------------------------------------- #


class _PlainPageRankMapper(Mapper):
    """Map phase of Algorithm 2: re-emit structure, spread rank shares."""

    def map(self, key: Any, value: Any, ctx: Context) -> None:
        sv, rank = value
        links = sv[0]
        ctx.emit(key, ("S", sv))
        if links:
            share = rank / len(links)
            for j in links:
                ctx.emit(j, ("R", share))


class _PlainPageRankReducer(Reducer):
    """Reduce phase of Algorithm 2: rebuild ``(N_j, R_j)`` records."""

    def __init__(self, damping: float) -> None:
        self.damping = damping

    def reduce(self, key: Any, values: List[Any], ctx: Context) -> None:
        sv: Any = ((), "")
        total = 0.0
        has_structure = False
        for tag, payload in values:
            if tag == "S":
                sv = payload
                has_structure = True
            else:
                total += payload
        if not has_structure:
            # Contribution to a vertex without a record (possible only in
            # malformed graphs); drop it like Hadoop PageRank does.
            return
        ctx.emit(key, (sv, self.damping * total + (1.0 - self.damping)))


class PageRankPlainFormulation(PlainFormulation):
    """One MapReduce job per iteration over mixed structure+state records."""

    def __init__(self, algorithm: PageRank, dataset: WebGraph, num_reducers: int = 8) -> None:
        self.algorithm = algorithm
        self.dataset = dataset
        self.num_reducers = num_reducers
        self._dfs = None
        self._iteration = 0
        self._base = f"/{algorithm.name}/plain"

    def prepare(self, dfs: Any, state: Dict[Any, Any]) -> None:
        """Write the rank-annotated graph file for iteration 0."""
        self._dfs = dfs
        records = [
            (i, (self.dataset.value_of(i), state.get(i, self.algorithm.init_state_value(i))))
            for i in sorted(self.dataset.out_links)
        ]
        dfs.write(f"{self._base}/iter0", records, overwrite=True)
        self._iteration = 0

    def run_iteration(self, engine: Any, iteration: int) -> Any:
        """One rank-update job (structure rides through the shuffle)."""
        damping = self.algorithm.damping
        jobconf = JobConf(
            name=f"{self.algorithm.name}-plain-{iteration}",
            mapper=_PlainPageRankMapper,
            reducer=lambda: _PlainPageRankReducer(damping),
            inputs=[f"{self._base}/iter{iteration}"],
            output=f"{self._base}/iter{iteration + 1}",
            num_reducers=self.num_reducers,
        )
        result = engine.run(jobconf)
        self._iteration = iteration + 1
        return result.metrics

    def current_state(self) -> Dict[Any, Any]:
        """Ranks after the last completed iteration."""
        assert self._dfs is not None, "prepare() must run first"
        return {
            i: rank
            for i, (_, rank) in self._dfs.read(f"{self._base}/iter{self._iteration}")
        }


# ---------------------------------------------------------------------- #
# HaLoop formulation (Algorithm 5)                                        #
# ---------------------------------------------------------------------- #


class _HaLoopJoinReducer(Reducer):
    """Reduce phase 1 of Algorithm 5: join rank with out-links, emit shares.

    Also emits a zero contribution to the vertex itself so every vertex
    reaches the aggregation job (keeping HaLoop's results identical to the
    other engines for vertices without in-links).
    """

    def reduce(self, key: Any, values: List[Any], ctx: Context) -> None:
        links: Tuple[Any, ...] = ()
        rank = 1.0
        for tag, payload in values:
            if tag == "N":
                links = payload[0]
            else:
                rank = payload
        ctx.emit(key, ("R", 0.0))
        if links:
            share = rank / len(links)
            for j in links:
                ctx.emit(j, ("R", share))


class _HaLoopAggReducer(Reducer):
    """Reduce phase 2 of Algorithm 5: ``R_j = d * sum + (1 - d)``."""

    def __init__(self, damping: float) -> None:
        self.damping = damping

    def reduce(self, key: Any, values: List[Any], ctx: Context) -> None:
        total = sum(payload for _, payload in values)
        ctx.emit(key, ("R", self.damping * total + (1.0 - self.damping)))


class PageRankHaLoopFormulation(HaLoopFormulation):
    """Two jobs per iteration; the join job's structure input is cached."""

    def __init__(self, algorithm: PageRank, dataset: WebGraph, num_reducers: int = 8) -> None:
        self.algorithm = algorithm
        self.dataset = dataset
        self.num_reducers = num_reducers
        self._dfs = None
        self._iteration = 0
        self._base = f"/{algorithm.name}/haloop"

    @property
    def structure_path(self) -> str:
        """DFS path of the cached structure file."""
        return f"{self._base}/structure"

    def prepare(self, dfs: Any, state: Dict[Any, Any]) -> None:
        """Write the structure and initial-rank files to the DFS."""
        self._dfs = dfs
        structure = [
            (i, ("N", self.dataset.value_of(i))) for i in sorted(self.dataset.out_links)
        ]
        dfs.write(self.structure_path, structure, overwrite=True)
        state_records = [
            (i, ("R", state.get(i, self.algorithm.init_state_value(i))))
            for i in sorted(self.dataset.out_links)
        ]
        dfs.write(f"{self._base}/state0", state_records, overwrite=True)
        self._iteration = 0

    def run_iteration(self, engine: Any, iteration: int) -> Any:
        """Join job + rank-aggregation job for one iteration."""
        damping = self.algorithm.damping
        join_job = JobConf(
            name=f"{self.algorithm.name}-haloop-join-{iteration}",
            mapper=IdentityMapper,
            reducer=_HaLoopJoinReducer,
            inputs=[self.structure_path, f"{self._base}/state{iteration}"],
            output=f"{self._base}/contrib{iteration}",
            num_reducers=self.num_reducers,
        )
        metrics = engine.run_loop_job(
            join_job,
            loop_id=f"{self.algorithm.name}-join",
            iteration=iteration,
            reducer_cached_inputs=[self.structure_path],
        ).metrics
        agg_job = JobConf(
            name=f"{self.algorithm.name}-haloop-agg-{iteration}",
            mapper=IdentityMapper,
            reducer=lambda: _HaLoopAggReducer(damping),
            inputs=[f"{self._base}/contrib{iteration}"],
            output=f"{self._base}/state{iteration + 1}",
            num_reducers=self.num_reducers,
        )
        metrics.merge(
            engine.run_loop_job(
                agg_job,
                loop_id=f"{self.algorithm.name}-agg",
                iteration=iteration,
            ).metrics
        )
        self._iteration = iteration + 1
        return metrics

    def current_state(self) -> Dict[Any, Any]:
        """Ranks after the last completed iteration."""
        assert self._dfs is not None, "prepare() must run first"
        return {
            i: rank
            for i, (_, rank) in self._dfs.read(f"{self._base}/state{self._iteration}")
        }
