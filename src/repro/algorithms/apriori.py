"""APriori frequent word-pair mining (§8.1.3), a one-step algorithm.

After a preprocessing job produces the candidate list of frequent word
pairs, APriori runs one MapReduce job: the Map task loads the candidate
list, identifies candidate pairs in each tweet and emits
``(word_pair, count)``; the Reduce task aggregates local counts into
global frequencies with an integer sum — a textbook **accumulator
Reduce** (§3.5), so incremental processing preserves only the Reduce
outputs and folds the insert-only delta (newly collected tweets) in with
``accumulate``.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Tuple

from repro.datasets.text import TweetDataset
from repro.incremental.api import SumReducer
from repro.mapreduce.api import Context, Mapper
from repro.mapreduce.job import JobConf


class APrioriMapper(Mapper):
    """Counts candidate word-pair occurrences per tweet."""

    def __init__(self, candidate_pairs: Iterable[Tuple[str, str]]) -> None:
        self.candidates = tuple(candidate_pairs)
        self.candidate_words = frozenset(
            word for pair in self.candidates for word in pair
        )
        # The map body scans the candidate list per record; weight the
        # simulated CPU with the list size.
        self.cpu_weight = max(1.0, len(self.candidates) / 100.0)

    def map(self, key: Any, value: Any, ctx: Context) -> None:
        """Emit each candidate itemset found in the record's word set."""
        words = frozenset(value.split()) & self.candidate_words
        if len(words) < 2:
            return
        for a, b in self.candidates:
            if a in words and b in words:
                ctx.emit((a, b), 1)


class APrioriReducer(SumReducer):
    """Global pair frequency: an integer-sum accumulator Reduce."""


class APriori:
    """Driver-side helper bundling the APriori job pieces."""

    name = "apriori"

    def __init__(self, dataset: TweetDataset) -> None:
        self.dataset = dataset

    def jobconf(
        self,
        inputs: List[str],
        output: str,
        num_reducers: int = 8,
    ) -> JobConf:
        """Build the counting job for the given inputs."""
        candidates = self.dataset.candidate_pairs
        return JobConf(
            name=self.name,
            mapper=lambda: APrioriMapper(candidates),
            reducer=APrioriReducer,
            inputs=inputs,
            output=output,
            num_reducers=num_reducers,
        )

    def reference_counts(
        self, tweets: Dict[int, str]
    ) -> Dict[Tuple[str, str], int]:
        """Exact pair counts for correctness checks."""
        counts: Dict[Tuple[str, str], int] = {}
        candidate_words = frozenset(
            word for pair in self.dataset.candidate_pairs for word in pair
        )
        for text in tweets.values():
            words = frozenset(text.split()) & candidate_words
            if len(words) < 2:
                continue
            for pair in self.dataset.candidate_pairs:
                if pair[0] in words and pair[1] in words:
                    counts[pair] = counts.get(pair, 0) + 1
        return counts
