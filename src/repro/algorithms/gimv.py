"""GIM-V: Generalized Iterated Matrix-Vector multiplication (§4.1).

GIM-V abstracts graph-mining algorithms as block matrix-vector operations
(Algorithm 4): ``mv_{i,j} = combine2(m_{i,j}, v_j)``,
``v'_i = combineAll_i({mv_{i,j}})``, ``v_i = assign(v_i, v'_i)``.

Structure kv-pairs are ``((i, j), m_{i,j})`` matrix blocks, state kv-pairs
are ``(j, v_j)`` vector blocks; ``project((i, j)) = j`` is a many-to-one
dependency.  The concrete instantiation follows the paper (§8.1.3):
iterated matrix-vector multiplication — here a PageRank-style damped
multiplication so the iteration converges.

Under i2MapReduce each iteration is a *single* job; vanilla MapReduce and
HaLoop need two jobs (the first assigns vector blocks to matrix blocks),
which is exactly the overhead Fig 8 shows GIM-V suffering on plainMR.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.algorithms.base import (
    HaLoopFormulation,
    IterativeAlgorithm,
    PlainFormulation,
)
from repro.datasets.matrices import BlockMatrixDataset
from repro.iterative.api import Dependency
from repro.mapreduce.api import Context, IdentityMapper, Mapper, Reducer
from repro.mapreduce.job import JobConf


class GIMV(IterativeAlgorithm):
    """Damped iterated matrix-vector multiplication via GIM-V."""

    name = "gimv"
    dependency = Dependency.MANY_TO_ONE

    def __init__(self, block_size: int = 64, beta: float = 0.85) -> None:
        if not 0.0 < beta < 1.0:
            raise ValueError("beta must be in (0, 1)")
        self.block_size = block_size
        self.beta = beta
        self.map_cpu_weight = 2.0
        self.reduce_cpu_weight = 1.5

    # --------------------------- GIM-V ops ---------------------------- #

    def combine2(self, block: Any, vj: Any) -> Tuple[float, ...]:
        """Sparse block times vector block."""
        mv = [0.0] * self.block_size
        for r, c, value in block:
            mv[r] += value * vj[c]
        return tuple(mv)

    def combine_all(self, values: List[Any]) -> Tuple[float, ...]:
        """Element-wise sum of partial products."""
        acc = [0.0] * self.block_size
        for mv in values:
            for idx, x in enumerate(mv):
                acc[idx] += x
        return tuple(acc)

    def assign(self, vi_old: Any, vi_new: Tuple[float, ...]) -> Tuple[float, ...]:
        """Damped update keeping the iteration bounded (PageRank-style)."""
        return tuple(self.beta * x + (1.0 - self.beta) for x in vi_new)

    # ------------------------------ §4 API ---------------------------- #

    def project(self, sk: Any) -> Any:
        """Block column ``j`` of ``sk = (i, j)`` is the state key."""
        return sk[1]

    def map_instance(self, sk: Any, sv: Any, dk: Any, dv: Any) -> List[Tuple[Any, Any]]:
        """Partial block product ``combine2(M_ij, v_j)`` keyed by row ``i``."""
        i, _ = sk
        return [(i, self.combine2(sv, dv))]

    def reduce_instance(self, k2: Any, values: List[Any]) -> Any:
        """``assign`` applied to the element-wise combined partial products."""
        return self.assign(None, self.combine_all(values))

    def difference(self, dv_curr: Any, dv_prev: Any) -> float:
        """L1 distance between two vector blocks."""
        return sum(abs(a - b) for a, b in zip(dv_curr, dv_prev))

    def init_state_value(self, dk: Any) -> Any:
        """All-ones vector block for a newly seen block row."""
        return tuple(1.0 for _ in range(self.block_size))

    # ---------------------------- data model -------------------------- #

    def structure_records(self, dataset: BlockMatrixDataset) -> List[Tuple[Any, Any]]:
        """``((i, j), block)`` for every matrix block, sorted."""
        return sorted(dataset.blocks.items())

    def initial_state(self, dataset: BlockMatrixDataset) -> Dict[Any, Any]:
        """The dataset's initial vector blocks."""
        return dict(dataset.initial_vector)

    # ---------------------------- reference --------------------------- #

    def reference(self, dataset: BlockMatrixDataset, iterations: int) -> Dict[Any, Any]:
        """Single-machine GIM-V iterations for correctness checks."""
        state = self.initial_state(dataset)
        return self.reference_from(dataset, state, iterations)

    def reference_from(
        self,
        dataset: BlockMatrixDataset,
        state: Dict[Any, Any],
        iterations: int,
    ) -> Dict[Any, Any]:
        """Exact block multiplication matching engine semantics."""
        vector = dict(state)
        for j in dataset.initial_vector:
            vector.setdefault(j, self.init_state_value(j))
        for _ in range(iterations):
            sums: Dict[Any, List[float]] = {
                i: [0.0] * self.block_size for i in vector
            }
            for (i, j), block in dataset.blocks.items():
                if i not in sums or j not in vector:
                    continue
                vj = vector[j]
                acc = sums[i]
                for r, c, value in block:
                    acc[r] += value * vj[c]
            vector = {
                i: tuple(self.beta * x + (1.0 - self.beta) for x in acc)
                for i, acc in sums.items()
            }
        return vector

    # ----------------------- baseline formulations -------------------- #

    def plain_formulation(self, dataset: BlockMatrixDataset) -> "GIMVPlainFormulation":
        """Two-job vanilla-MapReduce GIM-V pipeline."""
        return GIMVPlainFormulation(self, dataset)

    def haloop_formulation(self, dataset: BlockMatrixDataset) -> "GIMVHaLoopFormulation":
        """HaLoop GIM-V pipeline with reducer-input caching."""
        return GIMVHaLoopFormulation(self, dataset)


# ---------------------------------------------------------------------- #
# two-job formulations (Algorithm 4)                                      #
# ---------------------------------------------------------------------- #


class _VectorAssignMapper(Mapper):
    """Map phase 1: route each vector block to every row block (line 4:
    "for all i blocks in j's row")."""

    def __init__(self, num_blocks: int) -> None:
        self.num_blocks = num_blocks

    def map(self, key: Any, value: Any, ctx: Context) -> None:
        tag, payload = value
        if tag == "M":
            ctx.emit(key, value)
        else:
            j = key
            for i in range(self.num_blocks):
                ctx.emit((i, j), ("V", payload))


class _Combine2Reducer(Reducer):
    """Reduce phase 1: ``combine2`` plus forwarding the vector block."""

    def __init__(self, algorithm: GIMV) -> None:
        self.algorithm = algorithm
        self.cpu_weight = algorithm.reduce_cpu_weight

    def reduce(self, key: Any, values: List[Any], ctx: Context) -> None:
        i, j = key
        block = None
        vj = None
        for tag, payload in values:
            if tag == "M":
                block = payload
            else:
                vj = payload
        if vj is None:
            return
        ctx.emit(j, ("V", vj))
        if block is not None:
            ctx.emit(i, ("MV", self.algorithm.combine2(block, vj)))


class _CombineAllReducer(Reducer):
    """Reduce phase 2: ``combineAll`` + ``assign``."""

    def __init__(self, algorithm: GIMV) -> None:
        self.algorithm = algorithm
        self.cpu_weight = algorithm.reduce_cpu_weight

    def reduce(self, key: Any, values: List[Any], ctx: Context) -> None:
        mvs = [payload for tag, payload in values if tag == "MV"]
        result = self.algorithm.assign(None, self.algorithm.combine_all(mvs))
        ctx.emit(key, ("V", result))


class GIMVPlainFormulation(PlainFormulation):
    """Two full MapReduce jobs per iteration, matrix shuffled every time."""

    def __init__(self, algorithm: GIMV, dataset: BlockMatrixDataset, num_reducers: int = 8) -> None:
        self.algorithm = algorithm
        self.dataset = dataset
        self.num_reducers = num_reducers
        self._dfs = None
        self._iteration = 0
        self._base = f"/{algorithm.name}/plain"

    @property
    def matrix_path(self) -> str:
        """DFS path of the matrix block file."""
        return f"{self._base}/matrix"

    def prepare(self, dfs: Any, state: Dict[Any, Any]) -> None:
        """Write matrix blocks and the initial vector to the DFS."""
        self._dfs = dfs
        dfs.write(
            self.matrix_path,
            [(key, ("M", block)) for key, block in sorted(self.dataset.blocks.items())],
            overwrite=True,
        )
        dfs.write(
            f"{self._base}/vector0",
            [(j, ("V", state[j])) for j in sorted(state)],
            overwrite=True,
        )
        self._iteration = 0

    def _jobs(self, iteration: int) -> Tuple[JobConf, JobConf]:
        algorithm = self.algorithm
        num_blocks = self.dataset.num_blocks
        job1 = JobConf(
            name=f"gimv-plain-combine2-{iteration}",
            mapper=lambda: _VectorAssignMapper(num_blocks),
            reducer=lambda: _Combine2Reducer(algorithm),
            inputs=[self.matrix_path, f"{self._base}/vector{iteration}"],
            output=f"{self._base}/mv{iteration}",
            num_reducers=self.num_reducers,
        )
        job2 = JobConf(
            name=f"gimv-plain-combineall-{iteration}",
            mapper=IdentityMapper,
            reducer=lambda: _CombineAllReducer(algorithm),
            inputs=[f"{self._base}/mv{iteration}"],
            output=f"{self._base}/vector{iteration + 1}",
            num_reducers=self.num_reducers,
        )
        return job1, job2

    def run_iteration(self, engine: Any, iteration: int) -> Any:
        """combine2 job + combineAll/assign job for one iteration."""
        job1, job2 = self._jobs(iteration)
        metrics = engine.run(job1).metrics
        metrics.merge(engine.run(job2).metrics)
        self._iteration = iteration + 1
        return metrics

    def current_state(self) -> Dict[Any, Any]:
        """Vector blocks after the last completed iteration."""
        assert self._dfs is not None, "prepare() must run first"
        return {
            j: vec
            for j, (_, vec) in self._dfs.read(
                f"{self._base}/vector{self._iteration}"
            )
        }


class GIMVHaLoopFormulation(GIMVPlainFormulation):
    """Same two jobs, but HaLoop caches the matrix at the first job's
    reducers and pays startup once."""

    def __init__(self, algorithm: GIMV, dataset: BlockMatrixDataset, num_reducers: int = 8) -> None:
        super().__init__(algorithm, dataset, num_reducers)
        self._base = f"/{algorithm.name}/haloop"

    def run_iteration(self, engine: Any, iteration: int) -> Any:
        """Join job (cached matrix) + aggregation job for one iteration."""
        job1, job2 = self._jobs(iteration)
        metrics = engine.run_loop_job(
            job1,
            loop_id="gimv-combine2",
            iteration=iteration,
            reducer_cached_inputs=[self.matrix_path],
        ).metrics
        metrics.merge(
            engine.run_loop_job(
                job2, loop_id="gimv-combineall", iteration=iteration
            ).metrics
        )
        self._iteration = iteration + 1
        return metrics
