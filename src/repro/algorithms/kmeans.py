"""Kmeans clustering, all-to-one dependency (§4.1, Algorithm 3).

Structure kv-pairs are ``(pid, pval)`` points; the state is a *single*
kv-pair ``(1, {(cid, cval), ...})`` holding every centroid, so each Map
instance depends on the whole state (all-to-one).  Per §4.3 the engine
replicates the small state to every partition instead of co-partitioning.

Per §5.2, any input change moves every centroid, so ``P∆ = 100 %`` and
i2MapReduce auto-disables MRBGraph maintenance, falling back to the
iterative engine — the experiments reproduce exactly that behaviour.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Tuple

from repro.algorithms.base import (
    HaLoopFormulation,
    IterativeAlgorithm,
    PlainFormulation,
)
from repro.datasets.points import PointsDataset
from repro.iterative.api import Dependency
from repro.mapreduce.api import Context, Mapper, Reducer
from repro.mapreduce.job import JobConf

#: The single state key of the all-to-one dependency (Table 1: "unique key 1").
STATE_KEY = 1


def _nearest_centroid(pval: Tuple[float, ...], centroids: Any) -> Any:
    """Index of the closest centroid (squared Euclidean, lowest-cid ties)."""
    best_cid = None
    best_dist = math.inf
    for cid, cval in centroids:
        dist = 0.0
        for a, b in zip(pval, cval):
            d = a - b
            dist += d * d
        if dist < best_dist:
            best_dist = dist
            best_cid = cid
    return best_cid


def _mean(values: List[Tuple[Tuple[float, ...], int]]) -> Tuple[float, ...]:
    """Weighted mean of ``(vector, count)`` partial aggregates."""
    total_count = 0
    dim = len(values[0][0])
    sums = [0.0] * dim
    for vec, count in values:
        total_count += count
        for idx in range(dim):
            sums[idx] += vec[idx]
    return tuple(s / total_count for s in sums)


class Kmeans(IterativeAlgorithm):
    """Lloyd's algorithm on the iterative MapReduce model."""

    name = "kmeans"
    dependency = Dependency.ALL_TO_ONE

    def __init__(self, k: int = 8, dim: int = 8) -> None:
        self.k = k
        self.dim = dim
        # One map call scans all k centroids over dim dimensions; weight
        # the simulated CPU accordingly (framework baseline ~ 1 unit).
        self.map_cpu_weight = max(1.0, k * dim / 16.0)

    # ------------------------------ §4 API ---------------------------- #

    def project(self, sk: Any) -> Any:
        """Every point depends on the single composite centroid-state key."""
        return STATE_KEY

    def map_instance(self, sk: Any, sv: Any, dk: Any, dv: Any) -> List[Tuple[Any, Any]]:
        """Assign the point to its nearest centroid."""
        cid = _nearest_centroid(sv, dv)
        if cid is None:
            return []
        return [(cid, (sv, 1))]

    def reduce_instance(self, k2: Any, values: List[Any]) -> Any:
        """New centroid: mean of the points assigned to cluster ``k2``."""
        if not values:
            return None
        return _mean(values)

    def difference(self, dv_curr: Any, dv_prev: Any) -> float:
        """Maximum centroid movement (Euclidean) between two states."""
        prev = dict(dv_prev)
        worst = 0.0
        for cid, cval in dv_curr:
            old = prev.get(cid)
            if old is None:
                continue
            dist = math.sqrt(sum((a - b) ** 2 for a, b in zip(cval, old)))
            worst = max(worst, dist)
        return worst

    def assemble_state(
        self,
        state: Dict[Any, Any],
        outputs: List[Tuple[Any, Any]],
    ) -> None:
        """Pack per-cluster centroids into the single composite state value."""
        centroids = dict(state.get(STATE_KEY, ()))
        for cid, cval in outputs:
            if cval is not None:
                centroids[cid] = cval
        state[STATE_KEY] = tuple(sorted(centroids.items()))

    # ---------------------------- data model -------------------------- #

    def structure_records(self, dataset: PointsDataset) -> List[Tuple[Any, Any]]:
        """``(pid, coords)`` for every point, sorted."""
        return sorted(dataset.points.items())

    def initial_state(self, dataset: PointsDataset) -> Dict[Any, Any]:
        """The dataset's initial centroids under the composite key."""
        return {STATE_KEY: dataset.initial_centroids}

    # ---------------------------- reference --------------------------- #

    def reference(self, dataset: PointsDataset, iterations: int) -> Dict[Any, Any]:
        """Single-machine Lloyd iterations for correctness checks."""
        state = self.initial_state(dataset)
        return self.reference_from(dataset, state, iterations)

    def reference_from(
        self,
        dataset: PointsDataset,
        state: Dict[Any, Any],
        iterations: int,
    ) -> Dict[Any, Any]:
        """Exact Lloyd iterations matching the engine's tie-breaking."""
        centroids = dict(state[STATE_KEY])
        for _ in range(iterations):
            sums: Dict[Any, List[float]] = {}
            counts: Dict[Any, int] = {}
            cent_items = tuple(sorted(centroids.items()))
            for _, pval in sorted(dataset.points.items()):
                cid = _nearest_centroid(pval, cent_items)
                if cid is None:
                    continue
                if cid not in sums:
                    sums[cid] = [0.0] * len(pval)
                    counts[cid] = 0
                counts[cid] += 1
                acc = sums[cid]
                for idx, x in enumerate(pval):
                    acc[idx] += x
            for cid, acc in sums.items():
                centroids[cid] = tuple(x / counts[cid] for x in acc)
        return {STATE_KEY: tuple(sorted(centroids.items()))}

    # ----------------------- baseline formulations -------------------- #

    def plain_formulation(self, dataset: PointsDataset) -> "KmeansPlainFormulation":
        """One-job-per-iteration vanilla-MapReduce k-means pipeline."""
        return KmeansPlainFormulation(self, dataset)

    def haloop_formulation(self, dataset: PointsDataset) -> "KmeansHaLoopFormulation":
        """HaLoop k-means pipeline with cached points."""
        return KmeansHaLoopFormulation(self, dataset)


# ---------------------------------------------------------------------- #
# vanilla MapReduce formulation (Algorithm 3)                             #
# ---------------------------------------------------------------------- #


class _PlainKmeansMapper(Mapper):
    """Map phase of Algorithm 3; centroids arrive via the side channel
    (Hadoop's distributed cache)."""

    def __init__(self, centroids: Any, cpu_weight: float) -> None:
        self.centroids = centroids
        self.cpu_weight = cpu_weight

    def map(self, key: Any, value: Any, ctx: Context) -> None:
        cid = _nearest_centroid(value, self.centroids)
        if cid is not None:
            ctx.emit(cid, (value, 1))


class _PlainKmeansReducer(Reducer):
    def reduce(self, key: Any, values: List[Any], ctx: Context) -> None:
        ctx.emit(key, _mean(values))


class KmeansPlainFormulation(PlainFormulation):
    """One job per iteration; points re-read and re-parsed every time."""

    def __init__(self, algorithm: Kmeans, dataset: PointsDataset, num_reducers: int = 4) -> None:
        self.algorithm = algorithm
        self.dataset = dataset
        self.num_reducers = num_reducers
        self._dfs = None
        self._centroids = None
        self._base = f"/{algorithm.name}/plain"

    @property
    def points_path(self) -> str:
        """DFS path of the points file."""
        return f"{self._base}/points"

    def prepare(self, dfs: Any, state: Dict[Any, Any]) -> None:
        """Write the points file and capture the starting centroids."""
        self._dfs = dfs
        dfs.write(self.points_path, sorted(self.dataset.points.items()), overwrite=True)
        self._centroids = state[STATE_KEY]

    def run_iteration(self, engine: Any, iteration: int) -> Any:
        """One assign-and-recompute job; returns its metrics."""
        centroids = self._centroids
        weight = self.algorithm.map_cpu_weight
        jobconf = JobConf(
            name=f"kmeans-plain-{iteration}",
            mapper=lambda: _PlainKmeansMapper(centroids, weight),
            reducer=_PlainKmeansReducer,
            inputs=[self.points_path],
            output=f"{self._base}/centroids{iteration + 1}",
            num_reducers=self.num_reducers,
        )
        result = engine.run(jobconf)
        updated = dict(centroids)
        for cid, cval in self._dfs.read(jobconf.output):
            updated[cid] = cval
        self._centroids = tuple(sorted(updated.items()))
        return result.metrics

    def current_state(self) -> Dict[Any, Any]:
        """Centroids after the last completed iteration."""
        return {STATE_KEY: self._centroids}


class KmeansHaLoopFormulation(HaLoopFormulation):
    """Same job shape, but HaLoop caches the points at the mappers and
    keeps the job alive across iterations."""

    def __init__(self, algorithm: Kmeans, dataset: PointsDataset, num_reducers: int = 4) -> None:
        self.algorithm = algorithm
        self.dataset = dataset
        self.num_reducers = num_reducers
        self._dfs = None
        self._centroids = None
        self._base = f"/{algorithm.name}/haloop"

    @property
    def points_path(self) -> str:
        """DFS path of the cached points file."""
        return f"{self._base}/points"

    def prepare(self, dfs: Any, state: Dict[Any, Any]) -> None:
        """Write the points file and capture the starting centroids."""
        self._dfs = dfs
        dfs.write(self.points_path, sorted(self.dataset.points.items()), overwrite=True)
        self._centroids = state[STATE_KEY]

    def run_iteration(self, engine: Any, iteration: int) -> Any:
        """One assign-and-recompute job over the cached points."""
        centroids = self._centroids
        weight = self.algorithm.map_cpu_weight
        jobconf = JobConf(
            name=f"kmeans-haloop-{iteration}",
            mapper=lambda: _PlainKmeansMapper(centroids, weight),
            reducer=_PlainKmeansReducer,
            inputs=[self.points_path],
            output=f"{self._base}/centroids{iteration + 1}",
            num_reducers=self.num_reducers,
        )
        result = engine.run_loop_job(
            jobconf,
            loop_id="kmeans",
            iteration=iteration,
            mapper_cached_inputs=[self.points_path],
        )
        updated = dict(centroids)
        for cid, cval in self._dfs.read(jobconf.output):
            updated[cid] = cval
        self._centroids = tuple(sorted(updated.items()))
        return result.metrics

    def current_state(self) -> Dict[Any, Any]:
        """Centroids after the last completed iteration."""
        return {STATE_KEY: self._centroids}
