"""WordCount — the canonical accumulator-Reduce example (§3.5)."""

from __future__ import annotations

from typing import Any, Dict, Iterable, Tuple

from repro.incremental.api import SumReducer
from repro.mapreduce.api import Context, Mapper


class WordCountMapper(Mapper):
    """Emits ``(word, 1)`` per word occurrence."""

    def map(self, key: Any, value: Any, ctx: Context) -> None:
        """Emit ``(word, 1)`` for every whitespace-separated token."""
        for word in value.split():
            ctx.emit(word, 1)


class WordCountReducer(SumReducer):
    """Integer-sum accumulator (WordCount "satisfies the distributive
    property", §3.5)."""


def reference_wordcount(documents: Iterable[Tuple[Any, str]]) -> Dict[str, int]:
    """Exact counts for correctness checks."""
    counts: Dict[str, int] = {}
    for _, text in documents:
        for word in text.split():
            counts[word] = counts.get(word, 0) + 1
    return counts
