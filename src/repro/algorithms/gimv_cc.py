"""Connected components as a GIM-V instantiation (§4.1).

The paper notes GIM-V abstracts "PageRank, spectral clustering, diameter
estimation, connected components".  HCC (PEGASUS's connected-components
algorithm) instantiates the three operations as:

- ``combine2(m_{i,j}, v_j)``  = element-wise min of the component ids
  reachable through the block's edges;
- ``combineAll``              = element-wise min of the partial results;
- ``assign(v_i, v'_i)``       = element-wise min with the current ids.

Every vertex converges to the minimum vertex id of its (weakly)
connected component.  Unlike the damped matrix-vector instantiation,
``assign`` here needs the *old* state value, which the enhanced Reduce
obtains from the chunk's self-edge — each block row emits its own
current ids (the standard HCC trick).
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Tuple

from repro.algorithms.base import IterativeAlgorithm
from repro.datasets.matrices import BlockMatrixDataset
from repro.iterative.api import Dependency

_INF = math.inf


class GIMVConnectedComponents(IterativeAlgorithm):
    """HCC: min-id label propagation over a block adjacency matrix."""

    name = "gimv-cc"
    dependency = Dependency.MANY_TO_ONE

    def __init__(self, block_size: int = 64) -> None:
        self.block_size = block_size
        self.map_cpu_weight = 2.0

    # ------------------------------ GIM-V ops -------------------------- #

    def combine2(self, block: Any, vj: Any) -> Tuple[float, ...]:
        """Minimum reachable component id per row of the block."""
        mins = [_INF] * self.block_size
        for r, c, _ in block:
            if vj[c] < mins[r]:
                mins[r] = vj[c]
        return tuple(mins)

    def combine_all(self, values: List[Any]) -> Tuple[float, ...]:
        """Element-wise minimum of the partial id vectors."""
        mins = [_INF] * self.block_size
        for mv in values:
            for idx, x in enumerate(mv):
                if x < mins[idx]:
                    mins[idx] = x
        return tuple(mins)

    # ------------------------------ §4 API ----------------------------- #

    def project(self, sk: Any) -> Any:
        """Block column ``j`` of ``sk = (i, j)`` is the state key."""
        return sk[1]

    def map_instance(self, sk: Any, sv: Any, dk: Any, dv: Any) -> List[Tuple[Any, Any]]:
        """Propagate min-ids; diagonal blocks also re-emit the row's own ids."""
        i, j = sk
        out = [(i, self.combine2(sv, dv))]
        if i == j:
            # Diagonal blocks also carry the row's own current ids, so
            # assign's min-with-self happens inside the Reduce instance.
            out.append((i, tuple(dv)))
        return out

    def reduce_instance(self, k2: Any, values: List[Any]) -> Any:
        """Element-wise minimum of the partials and the block's initial ids."""
        if not values:
            return self.init_state_value(k2)
        merged = self.combine_all(values)
        base = self.init_state_value(k2)
        return tuple(min(m, b) for m, b in zip(merged, base))

    def difference(self, dv_curr: Any, dv_prev: Any) -> float:
        """Number of component ids that changed in the block."""
        return float(sum(1 for a, b in zip(dv_curr, dv_prev) if a != b))

    def init_state_value(self, dk: Any) -> Any:
        """Every vertex starts in its own component (id = global index)."""
        return tuple(
            float(dk * self.block_size + r) for r in range(self.block_size)
        )

    # ----------------------------- data model -------------------------- #

    def structure_records(self, dataset: BlockMatrixDataset) -> List[Tuple[Any, Any]]:
        """Symmetrized blocks (HCC works on the undirected graph), with
        every diagonal block present so self-ids always flow."""
        sym: Dict[Tuple[int, int], set] = {}
        for (i, j), triples in dataset.blocks.items():
            for r, c, _ in triples:
                sym.setdefault((i, j), set()).add((r, c, 1.0))
                sym.setdefault((j, i), set()).add((c, r, 1.0))
        num_blocks = dataset.num_blocks
        for d in range(num_blocks):
            sym.setdefault((d, d), set())
        return sorted((key, tuple(sorted(triples))) for key, triples in sym.items())

    def initial_state(self, dataset: BlockMatrixDataset) -> Dict[Any, Any]:
        """One initial id-vector block per block row."""
        return {
            j: self.init_state_value(j) for j in range(dataset.num_blocks)
        }

    # ----------------------------- reference --------------------------- #

    def reference(self, dataset: BlockMatrixDataset, iterations: int) -> Dict[Any, Any]:
        """Exact union-find labels (the fixpoint HCC converges to)."""
        n = dataset.num_blocks * dataset.block_size
        parent = list(range(n))

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        def union(a: int, b: int) -> None:
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[max(ra, rb)] = min(ra, rb)

        bs = dataset.block_size
        for (bi, bj), triples in dataset.blocks.items():
            for r, c, _ in triples:
                union(bi * bs + r, bj * bs + c)
        labels = [float(find(x)) for x in range(n)]
        return {
            j: tuple(labels[j * bs : (j + 1) * bs])
            for j in range(dataset.num_blocks)
        }
