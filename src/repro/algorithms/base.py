"""Algorithm adapter base class.

Each mining algorithm (PageRank, SSSP, Kmeans, GIM-V) implements this
interface once and every engine — iterMR, i2MapReduce incremental, plain
MapReduce recomputation, HaLoop, the Spark-like baseline — runs it without
algorithm-specific code.  The interface mirrors the paper's enhanced API
(Table 2):

- ``project(SK) -> DK``            (the Projector class)
- ``map_instance(SK, SV, DK, DV)`` (the enhanced Mapper)
- ``reduce_instance(K2, {V2})``    (the Reducer; returns the new DV)
- ``init_state_value(DK)``         (``init(DK) -> DV``)
- ``difference(DV_curr, DV_prev)`` (change-propagation metric)

Baseline formulations (plain MapReduce and HaLoop job pipelines) are also
supplied per algorithm because the paper implements each algorithm
separately on each system (§8.1.1).
"""

from __future__ import annotations

import abc
from typing import Any, Dict, List, Optional, Tuple

from repro.iterative.api import Dependency


class IterativeAlgorithm(abc.ABC):
    """One iterative mining algorithm, engine-agnostic."""

    #: Short identifier used in output paths and reports.
    name: str = "algorithm"
    #: Structure-to-state dependency type (Table 1).
    dependency: Dependency = Dependency.ONE_TO_ONE
    #: Relative CPU weight of one map_instance call.
    map_cpu_weight: float = 1.0
    #: Relative CPU weight of one reduced value.
    reduce_cpu_weight: float = 1.0

    # ------------------------------------------------------------------ #
    # §4 API                                                             #
    # ------------------------------------------------------------------ #

    @abc.abstractmethod
    def project(self, sk: Any) -> Any:
        """The Project function: interdependent state key of ``sk``."""

    @abc.abstractmethod
    def map_instance(self, sk: Any, sv: Any, dk: Any, dv: Any) -> List[Tuple[Any, Any]]:
        """One enhanced-Map call; returns the emitted ``(K2, V2)`` pairs."""

    @abc.abstractmethod
    def reduce_instance(self, k2: Any, values: List[Any]) -> Any:
        """One Reduce call; returns the new state value for ``DK == K2``."""

    @abc.abstractmethod
    def difference(self, dv_curr: Any, dv_prev: Any) -> float:
        """Magnitude of a state change (Table 2 ``difference``)."""

    def init_state_value(self, dk: Any) -> Any:
        """Initial DV for a state key first seen mid-computation."""
        raise NotImplementedError(f"{self.name} does not define init_state_value")

    def assemble_state(
        self,
        state: Dict[Any, Any],
        outputs: List[Tuple[Any, Any]],
    ) -> None:
        """Fold prime-Reduce outputs into the state dict, in place.

        The default treats each Reduce output ``(DK, DV)`` as a direct
        state update.  All-to-one algorithms (Kmeans) override this to
        pack per-group outputs into their single composite state kv-pair.
        """
        for dk, dv in outputs:
            state[dk] = dv

    # ------------------------------------------------------------------ #
    # data model                                                          #
    # ------------------------------------------------------------------ #

    @abc.abstractmethod
    def structure_records(self, dataset: Any) -> List[Tuple[Any, Any]]:
        """Loop-invariant structure kv-pairs ``(SK, SV)`` of the dataset."""

    @abc.abstractmethod
    def initial_state(self, dataset: Any) -> Dict[Any, Any]:
        """Initial loop-variant state ``{DK: DV}``."""

    # ------------------------------------------------------------------ #
    # reference implementation                                            #
    # ------------------------------------------------------------------ #

    @abc.abstractmethod
    def reference(self, dataset: Any, iterations: int) -> Dict[Any, Any]:
        """Exact single-machine implementation for correctness checks."""

    # ------------------------------------------------------------------ #
    # baseline formulations                                               #
    # ------------------------------------------------------------------ #

    def plain_formulation(self, dataset: Any) -> "PlainFormulation":
        """Vanilla-MapReduce job pipeline for this algorithm (§8.1.1)."""
        raise NotImplementedError(f"{self.name} has no plain MapReduce formulation")

    def haloop_formulation(self, dataset: Any) -> "HaLoopFormulation":
        """HaLoop two-job formulation (§8.6, Algorithm 5)."""
        raise NotImplementedError(f"{self.name} has no HaLoop formulation")


class PlainFormulation(abc.ABC):
    """Vanilla-MapReduce pipeline: one or more jobs per iteration.

    Implementations own their DFS paths and evolving inputs; the driver
    (:mod:`repro.baselines.plainmr`) just loops and sums metrics.
    """

    @abc.abstractmethod
    def prepare(self, dfs: Any, state: Dict[Any, Any]) -> None:
        """Write iteration-0 inputs to the DFS."""

    @abc.abstractmethod
    def run_iteration(self, engine: Any, iteration: int) -> Any:
        """Run this iteration's job(s); returns merged :class:`JobMetrics`."""

    @abc.abstractmethod
    def current_state(self) -> Dict[Any, Any]:
        """Extract the state after the last completed iteration."""


class HaLoopFormulation(abc.ABC):
    """HaLoop pipeline: join job + compute job with reducer-input caching."""

    @abc.abstractmethod
    def prepare(self, dfs: Any, state: Dict[Any, Any]) -> None:
        """Write iteration-0 inputs to the DFS."""

    @abc.abstractmethod
    def run_iteration(self, engine: Any, iteration: int) -> Any:
        """Run this iteration's jobs under HaLoop caching rules."""

    @abc.abstractmethod
    def current_state(self) -> Dict[Any, Any]:
        """Extract the state after the last completed iteration."""
