"""Mining algorithms evaluated by the paper (§8.1.3)."""

from repro.algorithms.apriori import APriori, APrioriMapper, APrioriReducer
from repro.algorithms.base import (
    HaLoopFormulation,
    IterativeAlgorithm,
    PlainFormulation,
)
from repro.algorithms.gimv import GIMV
from repro.algorithms.gimv_cc import GIMVConnectedComponents
from repro.algorithms.kmeans import Kmeans
from repro.algorithms.pagerank import PageRank
from repro.algorithms.sssp import SSSP
from repro.algorithms.wordcount import (
    WordCountMapper,
    WordCountReducer,
    reference_wordcount,
)

__all__ = [
    "APriori",
    "APrioriMapper",
    "APrioriReducer",
    "HaLoopFormulation",
    "IterativeAlgorithm",
    "PlainFormulation",
    "GIMV",
    "GIMVConnectedComponents",
    "Kmeans",
    "PageRank",
    "SSSP",
    "WordCountMapper",
    "WordCountReducer",
    "reference_wordcount",
]
