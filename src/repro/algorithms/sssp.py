"""Single-Source Shortest Path (SSSP), one-to-one dependency (§8.1.3).

Structure kv-pairs are ``(i, ((j, w), ...))`` — a vertex and its weighted
out-edges; state kv-pairs are ``(i, d_i)`` — the current distance from the
source.  Each iteration performs one synchronous Bellman-Ford relaxation:
``d_j = min_i (d_i + w_ij)``, with the source pinned at distance zero.
Unreachable vertices carry ``inf``.

The paper runs SSSP with a change-propagation filter threshold of 0, so
"nodes without any changes will be filtered out" and results stay precise
(§8.2).
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Tuple

from repro.algorithms.base import (
    HaLoopFormulation,
    IterativeAlgorithm,
    PlainFormulation,
)
from repro.datasets.graphs import WeightedGraph
from repro.iterative.api import Dependency
from repro.mapreduce.api import Context, IdentityMapper, Mapper, Reducer
from repro.mapreduce.job import JobConf

INF = float("inf")

#: Finite stand-in for an infinite distance change, so convergence sums
#: and CPC accumulations stay arithmetic.
_BIG_CHANGE = 1.0e18


class SSSP(IterativeAlgorithm):
    """Bellman-Ford style SSSP on the iterative MapReduce model."""

    name = "sssp"
    dependency = Dependency.ONE_TO_ONE

    def __init__(self, source: int = 0) -> None:
        self.source = source

    # ------------------------------ §4 API ---------------------------- #

    def project(self, sk: Any) -> Any:
        """Identity: vertex ``i`` is both structure and state key."""
        return sk

    def map_instance(self, sk: Any, sv: Any, dk: Any, dv: Any) -> List[Tuple[Any, Any]]:
        """Relax every out-edge: emit ``(j, dist(i) + w(i, j))``."""
        links = sv[0]
        if dv == INF or not links:
            return []
        return [(j, dv + w) for j, w in links]

    def reduce_instance(self, k2: Any, values: List[Any]) -> Any:
        """Minimum candidate distance (always 0 at the source)."""
        if k2 == self.source:
            return 0.0
        return min(values) if values else INF

    def difference(self, dv_curr: Any, dv_prev: Any) -> float:
        """Distance change; transitions to/from infinity count as a big change."""
        if dv_curr == dv_prev:
            return 0.0
        if math.isinf(dv_curr) or math.isinf(dv_prev):
            return _BIG_CHANGE
        return abs(dv_curr - dv_prev)

    def init_state_value(self, dk: Any) -> Any:
        """0 at the source, infinity elsewhere."""
        return 0.0 if dk == self.source else INF

    # ---------------------------- data model -------------------------- #

    def structure_records(self, dataset: WeightedGraph) -> List[Tuple[Any, Any]]:
        """``(v, (wlinks, payload))`` for every vertex, sorted."""
        return [(v, dataset.value_of(v)) for v in sorted(dataset.out_links)]

    def initial_state(self, dataset: WeightedGraph) -> Dict[Any, Any]:
        """Source at distance 0, every other vertex at infinity."""
        return {
            v: (0.0 if v == dataset.source else INF) for v in dataset.out_links
        }

    # ---------------------------- reference --------------------------- #

    def reference(self, dataset: WeightedGraph, iterations: int) -> Dict[Any, Any]:
        """Single-machine Bellman-Ford-style iterations for checks."""
        state = self.initial_state(dataset)
        return self.reference_from(dataset, state, iterations)

    def reference_from(
        self,
        dataset: WeightedGraph,
        state: Dict[Any, Any],
        iterations: int,
    ) -> Dict[Any, Any]:
        """Synchronous Bellman-Ford continuation from ``state``."""
        dist = dict(state)
        for v in dataset.out_links:
            dist.setdefault(v, 0.0 if v == dataset.source else INF)
        for stale in [v for v in dist if v not in dataset.out_links]:
            del dist[stale]
        for _ in range(iterations):
            best: Dict[Any, float] = {v: INF for v in dataset.out_links}
            for i, links in dataset.out_links.items():
                di = dist[i]
                if di == INF:
                    continue
                for j, w in links:
                    cand = di + w
                    if j in best and cand < best[j]:
                        best[j] = cand
            if self.source in best:
                best[self.source] = 0.0
            dist = best
        return dist

    # ----------------------- baseline formulations -------------------- #

    def plain_formulation(self, dataset: WeightedGraph) -> "SSSPPlainFormulation":
        """Vanilla-MapReduce SSSP pipeline."""
        return SSSPPlainFormulation(self, dataset)

    def haloop_formulation(self, dataset: WeightedGraph) -> "SSSPHaLoopFormulation":
        """HaLoop SSSP pipeline with cached structure."""
        return SSSPHaLoopFormulation(self, dataset)


# ---------------------------------------------------------------------- #
# vanilla MapReduce formulation                                           #
# ---------------------------------------------------------------------- #


class _PlainSSSPMapper(Mapper):
    def map(self, key: Any, value: Any, ctx: Context) -> None:
        sv, dist = value
        ctx.emit(key, ("S", sv))
        if dist != INF:
            for j, w in sv[0]:
                ctx.emit(j, ("D", dist + w))


class _PlainSSSPReducer(Reducer):
    def __init__(self, source: int) -> None:
        self.source = source

    def reduce(self, key: Any, values: List[Any], ctx: Context) -> None:
        sv: Any = ((), "")
        best = INF
        has_structure = False
        for tag, payload in values:
            if tag == "S":
                sv = payload
                has_structure = True
            elif payload < best:
                best = payload
        if not has_structure:
            return
        if key == self.source:
            best = 0.0
        ctx.emit(key, (sv, best))


class SSSPPlainFormulation(PlainFormulation):
    """One MapReduce job per Bellman-Ford relaxation."""

    def __init__(self, algorithm: SSSP, dataset: WeightedGraph, num_reducers: int = 8) -> None:
        self.algorithm = algorithm
        self.dataset = dataset
        self.num_reducers = num_reducers
        self._dfs = None
        self._iteration = 0
        self._base = f"/{algorithm.name}/plain"

    def prepare(self, dfs: Any, state: Dict[Any, Any]) -> None:
        """Write the distance-annotated graph file for iteration 0."""
        self._dfs = dfs
        records = [
            (i, (self.dataset.value_of(i), state.get(i, self.algorithm.init_state_value(i))))
            for i in sorted(self.dataset.out_links)
        ]
        dfs.write(f"{self._base}/iter0", records, overwrite=True)
        self._iteration = 0

    def run_iteration(self, engine: Any, iteration: int) -> Any:
        """One relaxation job; returns its metrics."""
        source = self.algorithm.source
        jobconf = JobConf(
            name=f"sssp-plain-{iteration}",
            mapper=_PlainSSSPMapper,
            reducer=lambda: _PlainSSSPReducer(source),
            inputs=[f"{self._base}/iter{iteration}"],
            output=f"{self._base}/iter{iteration + 1}",
            num_reducers=self.num_reducers,
        )
        result = engine.run(jobconf)
        self._iteration = iteration + 1
        return result.metrics

    def current_state(self) -> Dict[Any, Any]:
        """Distances after the last completed iteration."""
        assert self._dfs is not None, "prepare() must run first"
        return {
            i: dist
            for i, (_, dist) in self._dfs.read(f"{self._base}/iter{self._iteration}")
        }


# ---------------------------------------------------------------------- #
# HaLoop formulation                                                      #
# ---------------------------------------------------------------------- #


class _HaLoopSSSPJoinReducer(Reducer):
    def reduce(self, key: Any, values: List[Any], ctx: Context) -> None:
        links: Tuple[Any, ...] = ()
        dist = INF
        for tag, payload in values:
            if tag == "N":
                links = payload[0]
            else:
                dist = payload
        ctx.emit(key, ("D", INF))
        if dist != INF:
            for j, w in links:
                ctx.emit(j, ("D", dist + w))


class _HaLoopSSSPAggReducer(Reducer):
    def __init__(self, source: int) -> None:
        self.source = source

    def reduce(self, key: Any, values: List[Any], ctx: Context) -> None:
        best = min(payload for _, payload in values)
        if key == self.source:
            best = 0.0
        ctx.emit(key, ("D", best))


class SSSPHaLoopFormulation(HaLoopFormulation):
    """Join job (cached structure) + aggregation job per iteration."""

    def __init__(self, algorithm: SSSP, dataset: WeightedGraph, num_reducers: int = 8) -> None:
        self.algorithm = algorithm
        self.dataset = dataset
        self.num_reducers = num_reducers
        self._dfs = None
        self._iteration = 0
        self._base = f"/{algorithm.name}/haloop"

    @property
    def structure_path(self) -> str:
        """DFS path of the cached structure file."""
        return f"{self._base}/structure"

    def prepare(self, dfs: Any, state: Dict[Any, Any]) -> None:
        """Write the structure and initial-distance files to the DFS."""
        self._dfs = dfs
        dfs.write(
            self.structure_path,
            [(i, ("N", self.dataset.value_of(i))) for i in sorted(self.dataset.out_links)],
            overwrite=True,
        )
        dfs.write(
            f"{self._base}/state0",
            [
                (i, ("D", state.get(i, self.algorithm.init_state_value(i))))
                for i in sorted(self.dataset.out_links)
            ],
            overwrite=True,
        )
        self._iteration = 0

    def run_iteration(self, engine: Any, iteration: int) -> Any:
        """Join job + relaxation job for one iteration."""
        source = self.algorithm.source
        join_job = JobConf(
            name=f"sssp-haloop-join-{iteration}",
            mapper=IdentityMapper,
            reducer=_HaLoopSSSPJoinReducer,
            inputs=[self.structure_path, f"{self._base}/state{iteration}"],
            output=f"{self._base}/contrib{iteration}",
            num_reducers=self.num_reducers,
        )
        metrics = engine.run_loop_job(
            join_job,
            loop_id="sssp-join",
            iteration=iteration,
            reducer_cached_inputs=[self.structure_path],
        ).metrics
        agg_job = JobConf(
            name=f"sssp-haloop-agg-{iteration}",
            mapper=IdentityMapper,
            reducer=lambda: _HaLoopSSSPAggReducer(source),
            inputs=[f"{self._base}/contrib{iteration}"],
            output=f"{self._base}/state{iteration + 1}",
            num_reducers=self.num_reducers,
        )
        metrics.merge(
            engine.run_loop_job(
                agg_job, loop_id="sssp-agg", iteration=iteration
            ).metrics
        )
        self._iteration = iteration + 1
        return metrics

    def current_state(self) -> Dict[Any, Any]:
        """Distances after the last completed iteration."""
        assert self._dfs is not None, "prepare() must run first"
        return {
            i: dist
            for i, (_, dist) in self._dfs.read(
                f"{self._base}/state{self._iteration}"
            )
        }
