"""Workset-driven delta iteration: stop touching the converged frontier.

The paper's CPC (§5.3) prunes converged *values*, but every engine in
this library still sweeps every structure partition each superstep — the
execution layer never shrinks.  This module implements workset (delta)
iterations in the style of Ewen et al., *Spinning Fast Iterative Data
Flows* (see PAPERS.md): each superstep re-maps only the state keys whose
value changed in the previous superstep (the *dirty frontier*, held in a
:class:`Workset`), schedules prime Map tasks only for the shard
partitions that actually hold dirty members (placed through
:class:`repro.cluster.scheduler.ShardPlacement` /
:func:`repro.cluster.scheduler.schedule_shard_stage`), and terminates
when the workset drains empty instead of on a fixed round count or a
global-delta check.

Exactness contract
------------------

A workset superstep produces results identical to a full sweep because
the runner maintains a per-``K2`` *edge cache*: the multiset of
intermediate ``(K2, MK, V2)`` contributions, insertion-ordered exactly as
a full sweep's shuffle would deliver them (map partitions ascending,
DK-sorted groups, per-pair emission order).  A dirty source's re-emission
replaces its old contributions *in place* (same cache slot), so Reduce
re-runs observe each ``K2``'s value list in the very order the full-sweep
:func:`repro.common.kvpair.sort_records` stable sort yields — bitwise
identical reduce inputs, hence bitwise identical outputs for
deterministic reduce functions.  Unaffected ``K2`` groups keep their old
outputs untouched, which full sweep reproduces by recomputation (pure
reduce over unchanged inputs).

Termination contract
--------------------

A key enters the next workset iff its post-reduce state change passes
the algorithm's convergence predicate — the same
:class:`repro.inciter.cpc.ChangePropagationControl` the incremental
engine uses (``threshold=None`` propagates every non-zero change, i.e.
the exact fixpoint).  An empty workset therefore certifies that one more
full sweep would change nothing, so stopping early is safe; conversely
the ``total_difference`` series matches the full-sweep engine's, so an
``epsilon`` stop fires on the same iteration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from repro.cluster.cluster import Cluster
from repro.cluster.metrics import Counters, StageTimes
from repro.cluster.scheduler import (
    ShardPlacement,
    ShardTaskSpec,
    schedule_shard_stage,
)
from repro.common.hashing import map_key, partition_for
from repro.common.kvpair import sort_key
from repro.common.sizeof import record_size
from repro.execution import ExecutionBackend, SerialBackend
from repro.inciter.cpc import ChangePropagationControl
from repro.iterative.api import IterationStats
from repro.iterative.partitioning import PartitionedStructure
from repro.mrbgraph.sharding import HashShardRouter, ShardRouter

#: Fallback backend when no executor is supplied.
_SERIAL = SerialBackend()

#: An edge's identity within one K2 cache bucket: the globally unique MK
#: of the emitting Map instance plus an occurrence index, because one Map
#: instance may legally emit the same ``(K2, MK)`` more than once (GIM-V
#: emits two records for a diagonal block from a single structure pair).
EdgeId = Tuple[int, int]


class Workset:
    """The dirty frontier: state keys whose change must still propagate.

    A thin deterministic set — iteration order is always the library's
    canonical :func:`repro.common.kvpair.sort_key` order so every backend
    sees identical task batches.
    """

    def __init__(self, keys: Iterable[Any] = ()) -> None:
        self._keys: Set[Any] = set(keys)

    def add(self, key: Any) -> None:
        """Mark ``key`` dirty."""
        self._keys.add(key)

    def discard(self, key: Any) -> None:
        """Unmark ``key`` (no-op when absent)."""
        self._keys.discard(key)

    def clear(self) -> None:
        """Drain the frontier."""
        self._keys.clear()

    def keys(self) -> List[Any]:
        """Dirty keys in canonical sort order."""
        return sorted(self._keys, key=sort_key)

    def partition_map(self, router: ShardRouter) -> Dict[int, List[Any]]:
        """Group the dirty keys by the shard that owns them.

        Returns ``{shard_id: [keys...]}`` with shard ids ascending and
        keys in canonical order — exactly the partitions whose map tasks
        the scheduler must materialize this superstep.
        """
        by_shard: Dict[int, List[Any]] = {}
        for key in self.keys():
            by_shard.setdefault(router.shard_for(key), []).append(key)
        return {shard: by_shard[shard] for shard in sorted(by_shard)}

    def __len__(self) -> int:
        return len(self._keys)

    def __bool__(self) -> bool:
        return bool(self._keys)

    def __contains__(self, key: Any) -> bool:
        return key in self._keys

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Workset size={len(self._keys)}>"


class PartitionRouter(HashShardRouter):
    """Engine-partition routing exposed through the shard-router API.

    The prime-task partitioner (:func:`repro.common.hashing.partition_for`)
    and :class:`repro.mrbgraph.sharding.HashShardRouter` compute the same
    ``stable_hash(key) % n``; this subclass makes the identity explicit
    so :meth:`Workset.partition_map` and the store routers share one code
    path, and the property suite can assert a dirty key's shard under the
    router equals the partition whose task gets scheduled.
    """

    kind = "partition"

    def shard_for(self, key: Any) -> int:
        """The prime-task partition owning ``key``."""
        return partition_for(key, self.num_shards)


def workset_task_specs(
    partition_map: Dict[int, List[Any]],
    costs: Dict[int, float],
    read_bytes: Dict[int, int],
    stage: str,
    iteration: int,
) -> List[ShardTaskSpec]:
    """Build shard-locality task specs for one workset stage.

    One task per partition that holds dirty members; partitions absent
    from ``partition_map`` get no task at all — that is the whole point
    of workset execution.
    """
    return [
        ShardTaskSpec(
            task_id=f"ws-{stage}-{iteration:04d}-{shard:04d}",
            cost_s=costs.get(shard, 0.0),
            shard_id=shard,
            read_bytes=read_bytes.get(shard, 0),
        )
        for shard in sorted(partition_map)
    ]


# ---------------------------------------------------------------------- #
# task payloads + task functions (module-level so they pickle)           #
# ---------------------------------------------------------------------- #


@dataclass
class WorksetMapPayload:
    """One workset Map task: a partition's *dirty* structure groups."""

    partition: int
    #: ``(DK, DV-or-None, [(SK, SV), ...])`` — the dirty groups only;
    #: ``None`` state values fall back to the algorithm's initial value,
    #: mirroring :func:`repro.iterative.engine.execute_iter_map_task`.
    groups: List[Tuple[Any, Any, List[Tuple[Any, Any]]]]
    algorithm: Any


@dataclass
class WorksetMapRun:
    """Per-source emissions of one workset Map task, in emission order."""

    partition: int
    #: ``(DK, [(K2, MK, V2), ...])`` per dirty source group.
    per_source: List[Tuple[Any, List[Tuple[Any, int, Any]]]]
    emitted: int
    emitted_bytes: int
    read_bytes: int
    pairs_done: int


def execute_workset_map_task(payload: WorksetMapPayload) -> WorksetMapRun:
    """Re-map one partition's dirty groups; pure function of its payload."""
    algorithm = payload.algorithm
    per_source: List[Tuple[Any, List[Tuple[Any, int, Any]]]] = []
    emitted = 0
    emitted_bytes = 0
    read_bytes = 0
    pairs_done = 0
    for dk, dv, pairs in payload.groups:
        if dv is None:
            dv = algorithm.init_state_value(dk)
        read_bytes += record_size(dk, dv)
        emissions: List[Tuple[Any, int, Any]] = []
        for sk, sv in pairs:
            mk = map_key(sk, sv)
            read_bytes += record_size(sk, sv)
            pairs_done += 1
            for k2, v2 in algorithm.map_instance(sk, sv, dk, dv):
                emissions.append((k2, mk, v2))
                emitted += 1
                emitted_bytes += record_size(k2, v2)
        per_source.append((dk, emissions))
    return WorksetMapRun(
        partition=payload.partition,
        per_source=per_source,
        emitted=emitted,
        emitted_bytes=emitted_bytes,
        read_bytes=read_bytes,
        pairs_done=pairs_done,
    )


@dataclass
class WorksetReducePayload:
    """One workset Reduce task: the affected K2 groups of a partition."""

    partition: int
    #: ``(K2, [V2...], has_edges, in_state)`` — values in cache order.
    groups: List[Tuple[Any, List[Any], bool, bool]]
    algorithm: Any
    replicated: bool


@dataclass
class WorksetReduceRun:
    """Outputs of one workset Reduce task."""

    partition: int
    outputs: List[Tuple[Any, Any]]
    #: K2s that no longer earn a Reduce instance (all edges gone and —
    #: for co-partitioned state — not a state key either); their cached
    #: outputs must be forgotten.
    dropped: List[Any]
    values_processed: int
    out_bytes: int


def execute_workset_reduce_task(payload: WorksetReducePayload) -> WorksetReduceRun:
    """Re-reduce affected groups; pure function of its payload.

    Mirrors the full-sweep key plan of
    :func:`repro.iterative.engine.execute_iter_reduce_task`: with
    replicated state only grouped K2s reduce; with co-partitioned state
    every state key reduces even on empty input.
    """
    algorithm = payload.algorithm
    outputs: List[Tuple[Any, Any]] = []
    dropped: List[Any] = []
    values_processed = 0
    out_bytes = 0
    for k2, values, has_edges, in_state in payload.groups:
        live = has_edges if payload.replicated else (has_edges or in_state)
        if not live:
            dropped.append(k2)
            continue
        dv_new = algorithm.reduce_instance(k2, values)
        outputs.append((k2, dv_new))
        values_processed += len(values) + 1
        out_bytes += record_size(k2, dv_new)
    return WorksetReduceRun(
        partition=payload.partition,
        outputs=outputs,
        dropped=dropped,
        values_processed=values_processed,
        out_bytes=out_bytes,
    )


# ---------------------------------------------------------------------- #
# the runner                                                             #
# ---------------------------------------------------------------------- #


class WorksetRunner:
    """Drives one iterative computation as workset supersteps.

    Owns the mutable pieces a delta iteration needs across supersteps:
    the insertion-ordered per-K2 edge cache, the per-source emission
    bookkeeping, the cached reduce outputs, the dirty frontier and the
    convergence filter.  :meth:`seed` runs the mandatory first full sweep
    (every vertex is dirty at iteration 0); :meth:`step` runs one delta
    superstep over the current workset.

    Args:
        algorithm: the iterative algorithm (map/reduce/difference).
        parts: the partitioned structure (shared with the caller; the
            runner observes in-place delta mutations made between steps).
        state: the live state dict — mutated in place each superstep.
        cluster: supplies the cost model and worker count.
        executor: host execution backend for task batches.
        threshold: CPC filter threshold; ``None`` (the default) keeps the
            exact fixpoint — every non-zero change stays dirty.
    """

    def __init__(
        self,
        algorithm: Any,
        parts: PartitionedStructure,
        state: Dict[Any, Any],
        cluster: Cluster,
        executor: Optional[ExecutionBackend] = None,
        threshold: Optional[float] = None,
    ) -> None:
        self.algorithm = algorithm
        self.parts = parts
        self.state = state
        self.cluster = cluster
        self.backend = executor or _SERIAL
        self.router = PartitionRouter(parts.num_partitions)
        self.placement = ShardPlacement(
            num_shards=parts.num_partitions,
            num_workers=cluster.num_workers,
        )
        self.cpc = ChangePropagationControl(threshold)
        self.workset = Workset()
        self.counters = Counters()
        #: K2 -> insertion-ordered ``{EdgeId: V2}`` — the live multiset of
        #: contributions, in full-sweep shuffle order.
        self._edges: Dict[Any, Dict[EdgeId, Any]] = {}
        #: (partition, DK) -> ``[(K2, EdgeId), ...]`` emission bookkeeping.
        self._sources: Dict[Tuple[int, Any], List[Tuple[Any, EdgeId]]] = {}
        #: K2 -> latest reduce output (dropped when the group dies).
        self._outputs: Dict[Any, Any] = {}
        self._iteration = 0

    # ------------------------------- cache ----------------------------- #

    def _apply_source(
        self,
        partition: int,
        dk: Any,
        emissions: List[Tuple[Any, int, Any]],
        affected: Set[Any],
    ) -> None:
        """Fold one source group's re-emission into the edge cache.

        Existing edge slots are overwritten in place (order preserved),
        brand-new edges append at the bucket tail, and edges the source
        no longer emits are deleted; every K2 whose bucket changed lands
        in ``affected``.
        """
        source = (partition, dk)
        old_list = self._sources.get(source, [])
        new_list: List[Tuple[Any, EdgeId]] = []
        occurrence: Dict[Tuple[Any, int], int] = {}
        for k2, mk, v2 in emissions:
            seq = occurrence.get((k2, mk), 0)
            occurrence[(k2, mk)] = seq + 1
            edge_id: EdgeId = (mk, seq)
            new_list.append((k2, edge_id))
            bucket = self._edges.setdefault(k2, {})
            if edge_id in bucket:
                if bucket[edge_id] != v2:
                    bucket[edge_id] = v2
                    affected.add(k2)
            else:
                bucket[edge_id] = v2
                affected.add(k2)
        new_set = set(new_list)
        for k2, edge_id in old_list:
            if (k2, edge_id) in new_set:
                continue
            bucket = self._edges.get(k2)
            if bucket is not None and edge_id in bucket:
                del bucket[edge_id]
                affected.add(k2)
                if not bucket:
                    del self._edges[k2]
        if new_list:
            self._sources[source] = new_list
        else:
            self._sources.pop(source, None)

    # ------------------------------ stages ----------------------------- #

    def _run_map_stage(
        self,
        per_partition: Dict[int, List[Any]],
        times: StageTimes,
    ) -> Tuple[Set[Any], int, int]:
        """Map the selected dirty groups and fold emissions into the cache.

        Returns ``(affected K2s, scheduled map tasks, touched vertices)``.
        """
        cost = self.cluster.cost_model
        payloads: List[WorksetMapPayload] = []
        touched = 0
        for p in sorted(per_partition):
            group_items: List[Tuple[Any, Any, List[Tuple[Any, Any]]]] = []
            part = self.parts.groups[p]
            for dk in sorted(per_partition[p], key=sort_key):
                pairs = part.get(dk)
                if not pairs:
                    continue
                group_items.append((dk, self.state.get(dk), list(pairs)))
                touched += 1
            if group_items:
                payloads.append(
                    WorksetMapPayload(
                        partition=p,
                        groups=group_items,
                        algorithm=self.algorithm,
                    )
                )
        runs = self.backend.run_tasks(execute_workset_map_task, payloads)

        affected: Set[Any] = set()
        costs: Dict[int, float] = {}
        reads: Dict[int, int] = {}
        scheduled = {p: None for p in (r.partition for r in runs)}
        for run in sorted(runs, key=lambda r: r.partition):
            for dk, emissions in run.per_source:
                self._apply_source(run.partition, dk, emissions, affected)
            task_cost = cost.disk_read_time(run.read_bytes)
            task_cost += cost.cpu_time(run.pairs_done, self.algorithm.map_cpu_weight)
            task_cost += cost.sort_time(run.emitted)
            task_cost += cost.disk_write_time(run.emitted_bytes)
            costs[run.partition] = task_cost
            reads[run.partition] = run.read_bytes
            self.counters.add("map_output_records", run.emitted)
            self.counters.add("map_output_bytes", run.emitted_bytes)
            self.counters.add("map_input_pairs", run.pairs_done)
        specs = workset_task_specs(
            {p: [] for p in scheduled}, costs, reads, "map", self._iteration
        )
        if specs:
            times.map = schedule_shard_stage(
                specs, self.placement, cost
            ).elapsed_s
        return affected, len(specs), touched

    def _run_reduce_stage(
        self,
        affected: Set[Any],
        times: StageTimes,
    ) -> Tuple[List[Tuple[Any, Any]], int]:
        """Re-reduce the affected K2 groups and refresh the output cache.

        Returns the refreshed ``(K2, DV)`` outputs in full-sweep order
        (reduce partitions ascending, K2-sorted within each) and the
        number of reduce tasks scheduled.
        """
        cost = self.cluster.cost_model
        n = self.parts.num_partitions
        replicated = self.parts.replicated_state
        per_q: Dict[int, List[Any]] = {}
        for k2 in sorted(affected, key=sort_key):
            per_q.setdefault(partition_for(k2, n), []).append(k2)

        payloads: List[WorksetReducePayload] = []
        shuffle_bytes: Dict[int, int] = {}
        shuffle_records: Dict[int, int] = {}
        for q in sorted(per_q):
            groups: List[Tuple[Any, List[Any], bool, bool]] = []
            volume = 0
            records = 0
            for k2 in per_q[q]:
                bucket = self._edges.get(k2)
                values = list(bucket.values()) if bucket else []
                volume += sum(record_size(k2, v2) for v2 in values)
                records += len(values)
                groups.append(
                    (
                        k2,
                        values,
                        bool(bucket),
                        (not replicated) and k2 in self.state,
                    )
                )
            shuffle_bytes[q] = volume
            shuffle_records[q] = records
            payloads.append(
                WorksetReducePayload(
                    partition=q,
                    groups=groups,
                    algorithm=self.algorithm,
                    replicated=replicated,
                )
            )
        runs = self.backend.run_tasks(execute_workset_reduce_task, payloads)

        outputs: List[Tuple[Any, Any]] = []
        costs: Dict[int, float] = {}
        reads: Dict[int, int] = {}
        for run in sorted(runs, key=lambda r: r.partition):
            q = run.partition
            for k2, dv in run.outputs:
                self._outputs[k2] = dv
            for k2 in run.dropped:
                self._outputs.pop(k2, None)
            outputs.extend(run.outputs)
            volume = shuffle_bytes.get(q, 0)
            fetch = cost.disk_read_time(volume // max(1, n)) + cost.net_time(
                volume - volume // max(1, n), transfers=max(1, n - 1)
            )
            task_cost = fetch
            task_cost += cost.sort_time(shuffle_records.get(q, 0))
            task_cost += cost.cpu_time(
                run.values_processed, self.algorithm.reduce_cpu_weight
            )
            task_cost += cost.disk_write_time(run.out_bytes)
            costs[q] = task_cost
            reads[q] = volume
            self.counters.add("shuffle_bytes", volume)
            self.counters.add("reduce_groups", len(run.outputs))
            self.counters.add("reduce_values", run.values_processed)
        specs = workset_task_specs(
            {q: [] for q in per_q}, costs, reads, "reduce", self._iteration
        )
        if specs:
            times.reduce = schedule_shard_stage(
                specs, self.placement, cost
            ).elapsed_s
        if replicated and outputs:
            state_total = sum(
                record_size(dk, dv) for dk, dv in self.state.items()
            )
            times.reduce += cost.net_time(state_total * max(0, n - 1))
            self.counters.add(
                "state_broadcast_bytes", state_total * max(0, n - 1)
            )
        return outputs, len(specs)

    # ----------------------------- supersteps -------------------------- #

    def seed(self) -> IterationStats:
        """Superstep 0: the mandatory full sweep that primes the caches.

        Every structure group maps and every candidate key reduces —
        byte-identical to :func:`repro.iterative.engine.run_full_iteration`
        — and the first dirty frontier is derived from the resulting state
        changes.
        """
        per_partition: Dict[int, List[Any]] = {}
        for p in range(self.parts.num_partitions):
            dks = list(self.parts.groups[p])
            if dks:
                per_partition[p] = dks
        times = StageTimes()
        affected, map_tasks, touched = self._run_map_stage(per_partition, times)
        candidates: Set[Any] = set(self._edges)
        if not self.parts.replicated_state:
            candidates.update(self.state)
        stats = self._finish(candidates, times, map_tasks, touched)
        return stats

    def step(self) -> IterationStats:
        """One delta superstep over the current workset.

        Safe on an empty workset (returns an all-zero record and leaves
        the frontier empty); callers normally stop as soon as
        ``runner.workset`` is falsy.
        """
        dirty = self.workset.keys()
        self.workset.clear()
        per_partition: Dict[int, List[Any]] = {}
        if self.parts.replicated_state:
            for p in range(self.parts.num_partitions):
                part = self.parts.groups[p]
                members = [dk for dk in dirty if dk in part]
                if members:
                    per_partition[p] = members
        else:
            for dk in dirty:
                p = partition_for(dk, self.parts.num_partitions)
                if dk in self.parts.groups[p]:
                    per_partition.setdefault(p, []).append(dk)
        times = StageTimes()
        affected, map_tasks, touched = self._run_map_stage(per_partition, times)
        return self._finish(affected, times, map_tasks, touched)

    def _finish(
        self,
        affected: Set[Any],
        times: StageTimes,
        map_tasks: int,
        touched: int,
    ) -> IterationStats:
        """Reduce the affected groups, fold state, derive the next frontier."""
        outputs, reduce_tasks = self._run_reduce_stage(affected, times)
        algorithm = self.algorithm
        total_difference = 0.0
        next_dirty: List[Any] = []
        if self.parts.replicated_state:
            prev_state = dict(self.state)
            algorithm.assemble_state(self.state, outputs)
            for dk, dv in self.state.items():
                old = prev_state.get(dk)
                if old is None:
                    next_dirty.append(dk)
                    continue
                diff = algorithm.difference(dv, old)
                total_difference += diff
                if self.cpc.offer(dk, diff):
                    next_dirty.append(dk)
        else:
            for dk, dv in outputs:
                old = self.state.get(dk)
                if old is None:
                    next_dirty.append(dk)
                    continue
                diff = algorithm.difference(dv, old)
                total_difference += diff
                if self.cpc.offer(dk, diff):
                    next_dirty.append(dk)
            algorithm.assemble_state(self.state, outputs)
        for dk in next_dirty:
            self.workset.add(dk)
        self.counters.add("workset_map_tasks", map_tasks)
        self.counters.add("workset_reduce_tasks", reduce_tasks)
        self.counters.add("workset_touched_vertices", touched)
        stats = IterationStats(
            iteration=self._iteration,
            times=times,
            changed_keys=len(outputs),
            propagated_kv_pairs=len(outputs),
            total_difference=total_difference,
            scheduled_map_tasks=map_tasks,
            scheduled_reduce_tasks=reduce_tasks,
            touched_vertices=touched,
            workset_size=len(self.workset),
        )
        self._iteration += 1
        return stats

    # ------------------------------ deltas ----------------------------- #

    def mark_dirty(self, keys: Iterable[Any]) -> None:
        """Seed the frontier externally (streaming micro-batch deltas).

        Incremental consumers call this after mutating ``parts`` in
        place, so the next :meth:`step` re-maps exactly the state keys
        the delta touched.
        """
        for key in keys:
            self.workset.add(key)
