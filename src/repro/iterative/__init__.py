"""General-purpose iterative MapReduce support (paper §4)."""

from repro.iterative.api import Dependency, IterationStats, IterativeJob, regroup_keys
from repro.iterative.engine import (
    FullIterationResult,
    IterMREngine,
    IterMRResult,
    run_full_iteration,
)
from repro.iterative.partitioning import (
    PartitionedStructure,
    partition_structure,
    state_partition,
)

__all__ = [
    "Dependency",
    "IterationStats",
    "IterativeJob",
    "regroup_keys",
    "FullIterationResult",
    "IterMREngine",
    "IterMRResult",
    "run_full_iteration",
    "PartitionedStructure",
    "partition_structure",
    "state_partition",
]
