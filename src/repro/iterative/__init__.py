"""General-purpose iterative MapReduce support (paper §4)."""

from repro.iterative.api import Dependency, IterationStats, IterativeJob, regroup_keys
from repro.iterative.engine import (
    FullIterationResult,
    IterMREngine,
    IterMRResult,
    run_full_iteration,
)
from repro.iterative.partitioning import (
    PartitionedStructure,
    partition_structure,
    state_partition,
)

# Imported after the engine: repro.iterative.workset pulls in
# repro.inciter.cpc, whose package imports the inciter engine, which
# imports the iterative modules above.
from repro.iterative.workset import (  # noqa: E402  (documented order)
    PartitionRouter,
    Workset,
    WorksetRunner,
)

__all__ = [
    "Dependency",
    "IterationStats",
    "IterativeJob",
    "regroup_keys",
    "FullIterationResult",
    "IterMREngine",
    "IterMRResult",
    "run_full_iteration",
    "PartitionedStructure",
    "partition_structure",
    "state_partition",
    "PartitionRouter",
    "Workset",
    "WorksetRunner",
]
