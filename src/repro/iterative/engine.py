"""The iterMR engine: general-purpose iterative MapReduce (§4).

Improvements over vanilla MapReduce, as the paper describes:

- **job reuse** — startup cost is paid once, not per iteration;
- **structure caching** — structure data is partitioned, sorted by
  ``project(SK)`` and cached in binary form on local disks during a
  preprocessing job, so iterations re-read it locally without parsing and
  never shuffle it;
- **co-location** — prime Reduce task *i* runs on the same worker as
  prime Map task *i* and produces exactly the state partition *i*, so
  updated state flows to the next iteration without network traffic.

The per-iteration computation lives in :func:`run_full_iteration`, shared
with the incremental-iterative engine (which falls back to it when the
delta proportion ``P∆`` trips the MRBGraph auto-off, §5.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.cluster.cluster import Cluster
from repro.cluster.metrics import Counters, JobMetrics, StageTimes
from repro.common import config
from repro.common.hashing import map_key, partition_for
from repro.common.kvpair import sort_key, sort_records
from repro.common.sizeof import record_size
from repro.dfs.filesystem import DistributedFS
from repro.execution import (
    ExecutionBackend,
    ExecutorSelector,
    ExecutorSpec,
    SerialBackend,
)
from repro.iterative.api import Dependency, IterationStats, IterativeJob
from repro.iterative.partitioning import (
    PartitionedStructure,
    partition_job_cost,
    partition_structure,
    state_bytes_by_partition,
)
from repro.resilience.policy import RetryPolicy

#: Encoded overhead of shipping the globally unique MK with each
#: intermediate kv-pair (one tagged 64-bit int), charged only when the
#: MRBGraph is being maintained (§3.3: "transfers the globally unique MK
#: along with <K2, V2> during the shuffle phase").
MK_BYTES = 9

#: Fallback backend when no executor is supplied.
_SERIAL = SerialBackend()


# ---------------------------------------------------------------------- #
# prime task payloads + task functions (module-level so they pickle)     #
# ---------------------------------------------------------------------- #


@dataclass
class IterMapPayload:
    """One prime Map task: a partition's structure groups + state slice."""

    partition: int
    #: ``(DK, [(SK, SV), ...])`` groups in DK-sorted order.
    groups: List[Tuple[Any, List[Tuple[Any, Any]]]]
    #: state values for exactly the DKs appearing in ``groups``.
    state_slice: Dict[Any, Any]
    algorithm: Any
    num_partitions: int
    capture_chunks: bool


@dataclass
class IterMapRun:
    """Emissions of one prime Map task, pre-bucketed by reduce partition."""

    partition: int
    #: reduce partition q -> emitted ``(K2, MK, V2)`` in emission order.
    per_q: Dict[int, List[Tuple[Any, int, Any]]]
    emitted: int
    emitted_bytes: int


def execute_iter_map_task(payload: IterMapPayload) -> IterMapRun:
    """Run one prime Map task; pure function of its payload."""
    algorithm = payload.algorithm
    n = payload.num_partitions
    per_q: Dict[int, List[Tuple[Any, int, Any]]] = {}
    emitted = 0
    emitted_bytes = 0
    for dk, pairs in payload.groups:
        dv = payload.state_slice.get(dk)
        if dv is None:
            dv = algorithm.init_state_value(dk)
        for sk, sv in pairs:
            mk = map_key(sk, sv) if payload.capture_chunks else 0
            for k2, v2 in algorithm.map_instance(sk, sv, dk, dv):
                q = partition_for(k2, n)
                per_q.setdefault(q, []).append((k2, mk, v2))
                emitted += 1
                emitted_bytes += record_size(k2, v2)
    if payload.capture_chunks:
        emitted_bytes += emitted * MK_BYTES
    return IterMapRun(
        partition=payload.partition,
        per_q=per_q,
        emitted=emitted,
        emitted_bytes=emitted_bytes,
    )


@dataclass
class IterReducePayload:
    """One prime Reduce task: a partition's shuffled records + key plan."""

    partition: int
    #: shuffled ``(K2, MK, V2)`` records, unsorted.
    records: List[Tuple[Any, int, Any]]
    algorithm: Any
    #: state keys owed a Reduce instance even with empty input
    #: (co-partitioned algorithms only; empty when state is replicated).
    extra_keys: List[Any]
    replicated: bool
    capture_chunks: bool


@dataclass
class IterReduceRun:
    """Outputs of one prime Reduce task."""

    partition: int
    outputs: List[Tuple[Any, Any]]
    #: K2-sorted ``[(K2, [(MK, V2), ...])]`` — only with capture_chunks.
    chunk_list: Optional[List[Tuple[Any, List[Tuple[int, Any]]]]]
    values_processed: int
    out_bytes: int


def execute_iter_reduce_task(payload: IterReducePayload) -> IterReduceRun:
    """Run one prime Reduce task; pure function of its payload."""
    algorithm = payload.algorithm
    records = sort_records(payload.records)
    grouped: Dict[Any, List[Tuple[int, Any]]] = {}
    for k2, mk, v2 in records:
        grouped.setdefault(k2, []).append((mk, v2))

    if payload.replicated:
        reduce_keys = sorted(grouped, key=sort_key)
    else:
        # Every state kv-pair of this partition gets a Reduce instance
        # (empty-input groups produce the algorithm's base value), plus
        # any brand-new K2s that received contributions.
        key_set = set(payload.extra_keys)
        key_set.update(grouped)
        reduce_keys = sorted(key_set, key=sort_key)

    outputs: List[Tuple[Any, Any]] = []
    chunk_list: Optional[List[Tuple[Any, List[Tuple[int, Any]]]]] = (
        [] if payload.capture_chunks else None
    )
    values_processed = 0
    out_bytes = 0
    for k2 in reduce_keys:
        entries = grouped.get(k2, [])
        values = [v2 for _, v2 in entries]
        dv_new = algorithm.reduce_instance(k2, values)
        outputs.append((k2, dv_new))
        values_processed += len(values) + 1
        out_bytes += record_size(k2, dv_new)
        if payload.capture_chunks and entries:
            chunk_list.append((k2, entries))
    return IterReduceRun(
        partition=payload.partition,
        outputs=outputs,
        chunk_list=chunk_list,
        values_processed=values_processed,
        out_bytes=out_bytes,
    )


@dataclass
class FullIterationResult:
    """Output of one full (non-incremental) iteration."""

    new_state: Dict[Any, Any]
    outputs: List[Tuple[Any, Any]]
    times: StageTimes
    counters: Counters
    total_difference: float
    #: per reduce partition: K2-sorted ``[(K2, [(MK, V2), ...])]`` —
    #: captured only when the caller maintains a MRBG-Store.
    chunks: Optional[List[List[Tuple[Any, List[Tuple[int, Any]]]]]] = None


def run_full_iteration(
    algorithm: Any,
    parts: PartitionedStructure,
    state: Dict[Any, Any],
    cluster: Cluster,
    capture_chunks: bool = False,
    fault_context: Optional[Any] = None,
    executor: Optional[ExecutionBackend] = None,
) -> FullIterationResult:
    """Execute one complete iteration over every structure kv-pair.

    Runs the real map/reduce functions and charges per-stage simulated
    time.  With ``capture_chunks`` the per-Reduce-instance edge lists
    (the MRBGraph chunks) are returned and the MK shuffle overhead is
    charged.  Prime Map and prime Reduce task batches run on
    ``executor`` (default: inline serial); results are merged in
    partition order, so everything but host wall-clock is
    backend-independent.
    """
    cost = cluster.cost_model
    n = parts.num_partitions
    workers = cluster.num_workers
    counters = Counters()
    times = StageTimes()
    replicated = parts.replicated_state
    backend = executor or _SERIAL

    state_sizes = state_bytes_by_partition(state, n, replicated)

    # ------------------------------ map ------------------------------ #
    # intermediate[q] collects (K2, MK, V2) destined for reduce task q.
    intermediate: List[List[Tuple[Any, int, Any]]] = [[] for _ in range(n)]
    map_loads = [0.0] * workers
    map_task_costs: List[float] = []

    map_payloads: List[IterMapPayload] = []
    for p in range(n):
        group_items = list(parts.iter_groups(p))
        state_slice = {
            dk: state[dk] for dk, _ in group_items if dk in state
        }
        map_payloads.append(
            IterMapPayload(
                partition=p,
                groups=group_items,
                state_slice=state_slice,
                algorithm=algorithm,
                num_partitions=n,
                capture_chunks=capture_chunks,
            )
        )
    map_runs = backend.run_tasks(execute_iter_map_task, map_payloads)

    for run in sorted(map_runs, key=lambda r: r.partition):
        p = run.partition
        for q in sorted(run.per_q):
            intermediate[q].extend(run.per_q[q])
        task_cost = cost.disk_read_time(parts.structure_bytes[p] + state_sizes[p])
        task_cost += cost.cpu_time(parts.num_pairs[p], algorithm.map_cpu_weight)
        task_cost += cost.sort_time(run.emitted)
        task_cost += cost.disk_write_time(run.emitted_bytes)
        map_loads[p % workers] += task_cost
        map_task_costs.append(task_cost)
        counters.add("map_output_records", run.emitted)
        counters.add("map_output_bytes", run.emitted_bytes)
    counters.add("map_input_pairs", parts.total_pairs())
    times.map = max(map_loads)

    # ---------------------------- shuffle ----------------------------- #
    shuffle_loads = [0.0] * workers
    reduce_task_costs = [0.0] * n
    for q in range(n):
        # Volume from each map partition p; records were produced
        # partition-at-a-time so we approximate the per-source split by
        # charging local transfer for the co-located source only.
        total_bytes = sum(
            record_size(k2, v2) + (MK_BYTES if capture_chunks else 0)
            for k2, _, v2 in intermediate[q]
        )
        local_fraction = 1.0 / max(1, n)
        local_bytes = int(total_bytes * local_fraction)
        remote_bytes = total_bytes - local_bytes
        fetch = cost.disk_read_time(local_bytes) + cost.net_time(
            remote_bytes, transfers=max(1, n - 1)
        )
        shuffle_loads[q % workers] += fetch
        reduce_task_costs[q] += fetch
        counters.add("shuffle_bytes", total_bytes)
        counters.add("shuffle_net_bytes", remote_bytes)
    times.shuffle = max(shuffle_loads)

    # ------------------------------ sort ------------------------------ #
    # The physical sort happens inside each reduce task; the cost is
    # charged here per partition so the stage split matches Fig 9.
    sort_loads = [0.0] * workers
    for q in range(n):
        sort_s = cost.sort_time(len(intermediate[q]))
        sort_loads[q % workers] += sort_s
        reduce_task_costs[q] += sort_s
    times.sort = max(sort_loads)

    # ----------------------------- reduce ----------------------------- #
    reduce_loads = [0.0] * workers
    outputs: List[Tuple[Any, Any]] = []
    chunks: Optional[List[List[Tuple[Any, List[Tuple[int, Any]]]]]] = (
        [[] for _ in range(n)] if capture_chunks else None
    )
    new_state = dict(state)
    total_difference = 0.0

    state_keys_by_part: List[List[Any]] = [[] for _ in range(n)]
    if not replicated:
        for dk in state:
            state_keys_by_part[partition_for(dk, n)].append(dk)

    reduce_payloads = [
        IterReducePayload(
            partition=q,
            records=intermediate[q],
            algorithm=algorithm,
            extra_keys=state_keys_by_part[q],
            replicated=replicated,
            capture_chunks=capture_chunks,
        )
        for q in range(n)
    ]
    reduce_runs = backend.run_tasks(execute_iter_reduce_task, reduce_payloads)

    for run in sorted(reduce_runs, key=lambda r: r.partition):
        q = run.partition
        outputs.extend(run.outputs)
        if capture_chunks:
            chunks[q] = run.chunk_list

        task_cost = cost.cpu_time(run.values_processed, algorithm.reduce_cpu_weight)
        task_cost += cost.disk_write_time(run.out_bytes)
        reduce_loads[q % workers] += task_cost
        reduce_task_costs[q] += task_cost
        counters.add("reduce_groups", len(run.outputs))
        counters.add("reduce_values", run.values_processed)

    # Fold outputs into the state and measure the total change.
    if replicated:
        prev_state = dict(state)
        algorithm.assemble_state(new_state, outputs)
        for dk, dv in new_state.items():
            old = prev_state.get(dk)
            if old is not None:
                total_difference += algorithm.difference(dv, old)
    else:
        for dk, dv in outputs:
            old = state.get(dk)
            if old is not None:
                total_difference += algorithm.difference(dv, old)
        algorithm.assemble_state(new_state, outputs)
        # Replicating the small state back to every partition costs one
        # broadcast; co-partitioned algorithms pay nothing (§4.3).
    if replicated:
        state_total = sum(record_size(dk, dv) for dk, dv in new_state.items())
        broadcast = cost.net_time(state_total * max(0, n - 1))
        reduce_loads[0] += broadcast
        counters.add("state_broadcast_bytes", state_total * max(0, n - 1))
    times.reduce = max(reduce_loads)

    if fault_context is not None:
        times = fault_context.apply(
            map_task_costs=map_task_costs,
            reduce_task_costs=reduce_task_costs,
            times=times,
            cluster=cluster,
        )

    return FullIterationResult(
        new_state=new_state,
        outputs=outputs,
        times=times,
        counters=counters,
        total_difference=total_difference,
        chunks=chunks,
    )


@dataclass
class IterMRResult:
    """Result of an iterMR run."""

    state: Dict[Any, Any]
    iterations: int
    converged: bool
    per_iteration: List[IterationStats]
    metrics: JobMetrics
    preprocess_s: float
    parts: Optional[PartitionedStructure] = None

    @property
    def total_time(self) -> float:
        """Total simulated seconds including startup and preprocessing."""
        return self.metrics.total_time


class IterMREngine:
    """Runs :class:`IterativeJob` computations with the §4 optimizations.

    Args:
        executor: engine-wide default host execution backend; individual
            jobs override it via ``IterativeJob.executor``.
    """

    def __init__(
        self,
        cluster: Cluster,
        dfs: DistributedFS,
        executor: ExecutorSpec = None,
    ) -> None:
        self.cluster = cluster
        self.dfs = dfs
        self.executors = ExecutorSelector(executor, cost_model=cluster.cost_model)

    def backend_for(self, job: IterativeJob) -> ExecutionBackend:
        """The execution backend this job's prime task batches run on.

        Wrapped in a :class:`repro.resilience.ResilientExecutor`
        enforcing the job's retry/timeout/speculation knobs.
        """
        return self.executors.get(
            job.executor, job.max_workers, resilience=RetryPolicy.for_job(job)
        )

    def close(self) -> None:
        """Shut down any host worker pools the engine created."""
        self.executors.close()

    def run(
        self,
        job: IterativeJob,
        structure_path: Optional[str] = None,
        initial_state: Optional[Dict[Any, Any]] = None,
        parts: Optional[PartitionedStructure] = None,
        charge_preprocess: bool = True,
        fault_context: Optional[Any] = None,
    ) -> IterMRResult:
        """Run the iterative computation to convergence or the budget.

        Args:
            structure_path: DFS path of the raw structure input (written
                from the dataset when absent); used to charge the
                preprocessing partition job.
            initial_state: starting state (defaults to the algorithm's
                initial state for the dataset).
            parts: pre-partitioned structure (skips partitioning work).
            charge_preprocess: include the partition job in the reported
                time (Fig 8 includes it; Fig 9 excludes it).
        """
        job.validate()
        algorithm = job.algorithm
        cost = self.cluster.cost_model

        if structure_path is None:
            structure_path = f"/{algorithm.name}/structure"
        if not self.dfs.exists(structure_path):
            self.dfs.write(structure_path, algorithm.structure_records(job.dataset))
        dfs_file = self.dfs.file(structure_path)

        preprocess_s = 0.0
        if parts is None:
            records = self.dfs.read_all(structure_path)
            parts = partition_structure(algorithm, records, job.num_partitions)
            preprocess_s = partition_job_cost(
                cost,
                self.cluster.num_workers,
                dfs_file.size_bytes,
                dfs_file.num_records,
                job.num_partitions,
            )

        state = dict(
            initial_state
            if initial_state is not None
            else algorithm.initial_state(job.dataset)
        )

        metrics = JobMetrics()
        metrics.times.startup = cost.job_startup_s
        if charge_preprocess:
            metrics.times.startup += preprocess_s

        backend = self.backend_for(job)
        per_iteration: List[IterationStats] = []
        converged = False
        iterations = 0
        use_workset = (
            job.workset if job.workset is not None else config.DEFAULT_WORKSET
        )
        if use_workset:
            # Workset-driven delta iteration (Ewen et al.): superstep 0
            # is the priming full sweep; later supersteps re-map only
            # the dirty frontier and the loop stops when it drains empty
            # (the exact fixpoint) — fault_context is a full-sweep-only
            # feature and is ignored here.
            from repro.iterative.workset import WorksetRunner

            runner = WorksetRunner(
                algorithm,
                parts,
                state,
                self.cluster,
                executor=backend,
                threshold=job.workset_threshold,
            )
            for it in range(job.max_iterations):
                stats = runner.seed() if it == 0 else runner.step()
                iterations = it + 1
                metrics.times.add(stats.times)
                per_iteration.append(stats)
                if job.epsilon is not None and stats.total_difference <= job.epsilon:
                    converged = True
                    break
                if not runner.workset:
                    converged = True
                    break
            metrics.counters.merge(runner.counters)
            return IterMRResult(
                state=runner.state,
                iterations=iterations,
                converged=converged,
                per_iteration=per_iteration,
                metrics=metrics,
                preprocess_s=preprocess_s,
                parts=parts,
            )

        full_touched = sum(len(g) for g in parts.groups)
        for it in range(job.max_iterations):
            result = run_full_iteration(
                algorithm,
                parts,
                state,
                self.cluster,
                fault_context=fault_context,
                executor=backend,
            )
            state = result.new_state
            iterations = it + 1
            metrics.times.add(result.times)
            metrics.counters.merge(result.counters)
            per_iteration.append(
                IterationStats(
                    iteration=it,
                    times=result.times,
                    changed_keys=len(result.outputs),
                    propagated_kv_pairs=len(result.outputs),
                    total_difference=result.total_difference,
                    scheduled_map_tasks=parts.num_partitions,
                    scheduled_reduce_tasks=parts.num_partitions,
                    touched_vertices=full_touched,
                )
            )
            if job.epsilon is not None and result.total_difference <= job.epsilon:
                converged = True
                break

        return IterMRResult(
            state=state,
            iterations=iterations,
            converged=converged,
            per_iteration=per_iteration,
            metrics=metrics,
            preprocess_s=preprocess_s,
            parts=parts,
        )
