"""Dependency-aware data partitioning (§4.3).

Structure kv-pairs are partitioned by ``hash(project(SK))`` and state
kv-pairs by ``hash(DK)`` with the *same* hash function, so interdependent
pairs land in the same partition and the prime Map task can merge-join
them without network traffic.  All-to-one algorithms (Kmeans) partition
structure by ``hash(SK)`` instead and replicate the (small) state to every
partition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Tuple

from repro.cluster.costmodel import CostModel
from repro.common.hashing import partition_for
from repro.common.kvpair import sort_key
from repro.common.sizeof import record_size
from repro.iterative.api import Dependency


@dataclass
class PartitionedStructure:
    """Structure data split into prime-Map partitions.

    Attributes:
        num_partitions: partition (= prime task) count ``n``.
        replicated_state: True for all-to-one dependencies, where state is
            replicated instead of co-partitioned.
        groups: per partition, ``{DK: [(SK, SV), ...]}`` — the structure
            kv-pairs grouped by their interdependent state key.
        structure_bytes: per-partition encoded byte size (maintained
            incrementally under delta mutations).
        num_pairs: per-partition structure kv-pair count.
    """

    num_partitions: int
    replicated_state: bool
    groups: List[Dict[Any, List[Tuple[Any, Any]]]]
    structure_bytes: List[int]
    num_pairs: List[int]

    def iter_groups(self, partition: int) -> Iterator[Tuple[Any, List[Tuple[Any, Any]]]]:
        """Iterate ``(DK, pairs)`` groups of a partition in DK-sorted order.

        The structure file is kept sorted by ``project(SK)`` (§4.3) so the
        prime Map matches structure and state in one sequential pass; the
        sorted iteration order reproduces that behaviour.
        """
        part = self.groups[partition]
        for dk in sorted(part, key=sort_key):
            yield dk, part[dk]

    def insert_pair(self, algorithm: Any, sk: Any, sv: Any) -> int:
        """Insert one structure kv-pair; returns its partition."""
        partition = self.partition_of(algorithm, sk)
        dk = algorithm.project(sk)
        self.groups[partition].setdefault(dk, []).append((sk, sv))
        self.structure_bytes[partition] += record_size(sk, sv)
        self.num_pairs[partition] += 1
        return partition

    def delete_pair(self, algorithm: Any, sk: Any, sv: Any) -> int:
        """Delete one structure kv-pair (matched by key and value).

        Returns the partition; raises ``KeyError`` when the pair is absent
        (a malformed delta input).
        """
        partition = self.partition_of(algorithm, sk)
        dk = algorithm.project(sk)
        pairs = self.groups[partition].get(dk, [])
        try:
            pairs.remove((sk, sv))
        except ValueError:
            raise KeyError(f"structure pair ({sk!r}, ...) not found for deletion") from None
        if not pairs:
            self.groups[partition].pop(dk, None)
        self.structure_bytes[partition] -= record_size(sk, sv)
        self.num_pairs[partition] -= 1
        return partition

    def partition_of(self, algorithm: Any, sk: Any) -> int:
        """Partition holding the structure kv-pair with key ``sk``."""
        if self.replicated_state:
            return partition_for(sk, self.num_partitions)
        return partition_for(algorithm.project(sk), self.num_partitions)

    def total_pairs(self) -> int:
        """Total structure kv-pairs across partitions."""
        return sum(self.num_pairs)


def partition_structure(
    algorithm: Any,
    records: List[Tuple[Any, Any]],
    num_partitions: int,
) -> PartitionedStructure:
    """Partition structure records per the §4.3 scheme."""
    replicated = algorithm.dependency is Dependency.ALL_TO_ONE
    groups: List[Dict[Any, List[Tuple[Any, Any]]]] = [
        {} for _ in range(num_partitions)
    ]
    structure_bytes = [0] * num_partitions
    num_pairs = [0] * num_partitions
    for sk, sv in records:
        dk = algorithm.project(sk)
        if replicated:
            partition = partition_for(sk, num_partitions)
        else:
            partition = partition_for(dk, num_partitions)
        groups[partition].setdefault(dk, []).append((sk, sv))
        structure_bytes[partition] += record_size(sk, sv)
        num_pairs[partition] += 1
    return PartitionedStructure(
        num_partitions=num_partitions,
        replicated_state=replicated,
        groups=groups,
        structure_bytes=structure_bytes,
        num_pairs=num_pairs,
    )


def state_partition(dk: Any, num_partitions: int) -> int:
    """Partition of a state kv-pair: ``hash(DK, n)`` (Equation 1)."""
    return partition_for(dk, num_partitions)


def state_bytes_by_partition(
    state: Dict[Any, Any],
    num_partitions: int,
    replicated: bool,
) -> List[int]:
    """Encoded state bytes each prime Map task reads per iteration."""
    if replicated:
        total = sum(record_size(dk, dv) for dk, dv in state.items())
        return [total] * num_partitions
    sizes = [0] * num_partitions
    for dk, dv in state.items():
        sizes[partition_for(dk, num_partitions)] += record_size(dk, dv)
    return sizes


def partition_job_cost(
    cost_model: CostModel,
    num_workers: int,
    file_bytes: int,
    num_records: int,
    num_partitions: int,
) -> float:
    """Simulated cost of the preprocessing partition job (§4.3).

    Reads and parses the raw input once, shuffles it by the partition
    function (a ``(W-1)/W`` fraction crosses the network), sorts each
    partition by ``project(SK)`` and writes it to the local file system.
    """
    if num_workers <= 0:
        raise ValueError("num_workers must be positive")
    per_worker_bytes = file_bytes / num_workers
    per_worker_records = max(1, num_records // num_workers)
    remote_fraction = (num_workers - 1) / num_workers
    time_s = cost_model.disk_read_time(int(per_worker_bytes))
    time_s += cost_model.parse_time(int(per_worker_bytes))
    time_s += cost_model.cpu_time(per_worker_records)
    time_s += cost_model.net_time(int(per_worker_bytes * remote_fraction))
    time_s += cost_model.sort_time(per_worker_records)
    time_s += cost_model.disk_write_time(int(per_worker_bytes))
    return time_s
