"""Iterative MapReduce API (§4.2, Table 2).

i2MapReduce separates loop-invariant **structure** kv-pairs ``(SK, SV)``
from loop-variant **state** kv-pairs ``(DK, DV)``.  The enhanced Map
function takes both::

    map(SK, SV, DK, DV) -> [(K2, V2)]

and a new ``project(SK) -> DK`` function declares which state kv-pair each
structure kv-pair depends on.  After the Fig 5 regrouping transformation,
every structure kv-pair depends on exactly one state kv-pair, so only
one-to-one, many-to-one and all-to-one dependencies remain.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.common.errors import InvalidJobConf
from repro.execution import BACKENDS, EXECUTOR_NAMES, ExecutionBackend, ExecutorSpec


class Dependency(enum.Enum):
    """Dependency type between structure and state kv-pairs (Fig 5)."""

    ONE_TO_ONE = "one-to-one"
    MANY_TO_ONE = "many-to-one"
    #: Special case of many-to-one where every structure kv-pair depends
    #: on a single state kv-pair (Kmeans); the engine replicates the state
    #: to every partition instead of co-partitioning (§4.3).
    ALL_TO_ONE = "all-to-one"


def regroup_keys(
    pairs: List[Tuple[Any, Any]],
    group_of: Callable[[Any], Any],
) -> List[Tuple[Any, Any]]:
    """The Fig 5 transformation: convert one-to-many / many-to-many
    dependencies into one-to-one / many-to-one by merging the state
    kv-pairs that share a group into one composite state kv-pair.

    Args:
        pairs: state kv-pairs ``(DK, DV)``.
        group_of: maps each original DK to its group key.

    Returns:
        composite state kv-pairs ``(group_key, {DK: DV})``.
    """
    groups: Dict[Any, Dict[Any, Any]] = {}
    for dk, dv in pairs:
        groups.setdefault(group_of(dk), {})[dk] = dv
    return sorted(groups.items(), key=lambda item: repr(item[0]))


@dataclass
class IterativeJob:
    """Runtime configuration of one iterative computation.

    Attributes:
        algorithm: an :class:`repro.algorithms.base.IterativeAlgorithm`
            supplying project / map / reduce / difference.
        dataset: the algorithm-specific dataset object.
        num_partitions: number of prime Map (= prime Reduce) tasks.
        max_iterations: iteration budget.
        epsilon: optional convergence threshold on the summed state
            difference; ``None`` runs exactly ``max_iterations``.
        executor: host execution backend for prime Map/Reduce task
            batches (``"serial"`` / ``"thread"`` / ``"process"``, a
            backend instance, or ``None`` for the engine default); see
            :mod:`repro.execution`.  Never changes results or simulated
            times, only host wall-clock.
        max_workers: worker cap for pool backends.
        task_retries: failed task attempts transparently re-executed
            before the failure propagates (``None`` = the
            ``REPRO_TASK_RETRIES`` default).
        task_timeout_s: host-clock straggler threshold per attempt
            (``None`` = the ``REPRO_TASK_TIMEOUT`` default).
        speculation: whether stragglers are speculatively duplicated
            with first-result-wins semantics (``None`` = the
            ``REPRO_SPECULATION`` default).
        workset: run workset-driven delta iterations
            (:mod:`repro.iterative.workset`) — each superstep re-maps
            only the dirty frontier and the run terminates on an empty
            workset.  ``None`` defers to the ``REPRO_WORKSET``
            environment default (off: full sweeps).
        workset_threshold: CPC filter threshold applied to the workset
            frontier (``None`` keeps the exact fixpoint — every non-zero
            change stays dirty).
    """

    algorithm: Any
    dataset: Any
    num_partitions: int = 8
    max_iterations: int = 10
    epsilon: Optional[float] = None
    executor: ExecutorSpec = None
    max_workers: Optional[int] = None
    task_retries: Optional[int] = None
    task_timeout_s: Optional[float] = None
    speculation: Optional[bool] = None
    workset: Optional[bool] = None
    workset_threshold: Optional[float] = None

    def validate(self) -> None:
        """Raise :class:`InvalidJobConf` on an unusable configuration."""
        if self.num_partitions <= 0:
            raise InvalidJobConf("num_partitions must be positive")
        if self.max_iterations <= 0:
            raise InvalidJobConf("max_iterations must be positive")
        if self.epsilon is not None and self.epsilon < 0:
            raise InvalidJobConf("epsilon must be non-negative")
        for attr in ("project", "map_instance", "reduce_instance", "difference"):
            if not callable(getattr(self.algorithm, attr, None)):
                raise InvalidJobConf(f"algorithm lacks required method {attr}")
        if self.executor is not None and not isinstance(self.executor, ExecutionBackend):
            if self.executor not in BACKENDS:
                raise InvalidJobConf(
                    f"unknown executor {self.executor!r}; "
                    f"expected one of {EXECUTOR_NAMES}"
                )
        if self.max_workers is not None and self.max_workers <= 0:
            raise InvalidJobConf("max_workers must be positive")
        if self.task_retries is not None and self.task_retries < 0:
            raise InvalidJobConf("task_retries must be non-negative")
        if self.task_timeout_s is not None and self.task_timeout_s <= 0:
            raise InvalidJobConf("task_timeout_s must be positive")
        if self.workset_threshold is not None and self.workset_threshold < 0:
            raise InvalidJobConf("workset_threshold must be non-negative")


@dataclass
class IterationStats:
    """Per-iteration record kept by the iterative engines.

    The last four fields describe the superstep's *execution footprint*:
    how many map/reduce tasks the scheduler actually materialized, how
    many state vertices the map stage touched, and how many keys stayed
    dirty afterwards.  Full sweeps fill them with the constant
    partition-wide counts; workset supersteps show them collapsing as
    the computation converges (the ``BENCH_workset.json`` series).
    """

    iteration: int
    times: "StageTimes"
    changed_keys: int = 0
    propagated_kv_pairs: int = 0
    total_difference: float = 0.0
    mrbg_maintained: bool = False
    scheduled_map_tasks: int = 0
    scheduled_reduce_tasks: int = 0
    touched_vertices: int = 0
    workset_size: int = 0


# Imported late to avoid a cycle with repro.cluster.metrics type hints.
from repro.cluster.metrics import StageTimes  # noqa: E402  (documented order)
