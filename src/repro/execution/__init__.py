"""Pluggable parallel execution backends.

The simulated cluster decides *how much time a task is charged*; an
:class:`ExecutionBackend` decides *where the task's Python code actually
runs on the host*: inline (``serial``), on a thread pool (``thread``) or
on a process pool (``process``).  Results are merged in task-index
order, so every backend produces byte-identical outputs, counters and
simulated times — only host wall-clock changes.

Selection flows through job configuration::

    conf = JobConf(..., executor="process", max_workers=8)
    job = IterativeJob(..., executor="thread")

or engine-wide::

    engine = MapReduceEngine(cluster, dfs, executor="process")

with :data:`repro.common.config.DEFAULT_EXECUTOR` (overridable via the
``REPRO_EXECUTOR`` environment variable) as the fallback.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple, Union

from repro.common import config
from repro.execution.base import ExecutionBackend, ExecutorStats
from repro.execution.processes import ProcessBackend
from repro.execution.serial import SerialBackend
from repro.execution.threads import ThreadBackend

#: Name -> backend class registry (aliases included).
BACKENDS = {
    "serial": SerialBackend,
    "thread": ThreadBackend,
    "threads": ThreadBackend,
    "process": ProcessBackend,
    "processes": ProcessBackend,
}

#: Canonical backend names, for error messages and validation.
EXECUTOR_NAMES = ("serial", "thread", "process")

#: What callers may pass wherever an executor is selected.
ExecutorSpec = Union[None, str, ExecutionBackend]


def resolve_executor(
    spec: ExecutorSpec = None,
    max_workers: Optional[int] = None,
) -> ExecutionBackend:
    """Turn an executor specification into a live backend.

    Args:
        spec: a backend name from :data:`BACKENDS`, an already
            constructed :class:`ExecutionBackend` (returned unchanged),
            or ``None`` for :data:`repro.common.config.DEFAULT_EXECUTOR`.
        max_workers: worker cap for pool backends (``None`` = one per
            host CPU, per :data:`repro.common.config.DEFAULT_MAX_WORKERS`).

    Raises:
        ValueError: for an unknown backend name.
    """
    if isinstance(spec, ExecutionBackend):
        return spec
    name = spec or config.DEFAULT_EXECUTOR
    try:
        backend_cls = BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown executor {name!r}; expected one of {EXECUTOR_NAMES}"
        ) from None
    return backend_cls(max_workers=max_workers or config.DEFAULT_MAX_WORKERS)


class ExecutorSelector:
    """Per-engine cache of backends so pools persist across phases.

    An engine owns one selector; each job may override the engine-wide
    default through ``JobConf.executor`` / ``IterativeJob.executor``.
    Backends the selector constructs are cached by ``(name,
    max_workers)`` and shut down together by :meth:`close`; backends the
    caller constructed are passed through and never closed here.

    When a job carries a :class:`repro.resilience.RetryPolicy` (see
    :meth:`get`'s ``resilience`` argument), the selector wraps the
    cached backend in a :class:`repro.resilience.ResilientExecutor` —
    one wrapper per ``(name, max_workers, policy)``, sharing the
    underlying pool — and refreshes the wrapper's ``fault_hook`` from
    :attr:`task_fault_hook` on every call.
    """

    def __init__(self, default: ExecutorSpec = None, cost_model=None) -> None:
        self._default = default
        #: Cost model resilient wrappers charge simulated backoff to.
        self.cost_model = cost_model
        #: Parent-side task fault hook (see
        #: :meth:`repro.faults.context.FaultContext.task_hook`) handed to
        #: every resilient wrapper this selector builds.
        self.task_fault_hook = None
        self._cache: Dict[Tuple[str, Optional[int]], ExecutionBackend] = {}
        self._wrappers: Dict[Tuple, ExecutionBackend] = {}

    def get(
        self,
        spec: ExecutorSpec = None,
        max_workers: Optional[int] = None,
        resilience=None,
    ) -> ExecutionBackend:
        """Backend for one job: ``spec`` wins, then the engine default.

        Args:
            spec: backend name, live backend, or ``None`` for the default.
            max_workers: worker cap for pool backends.
            resilience: a :class:`repro.resilience.RetryPolicy` to
                enforce — the returned backend is then a
                :class:`repro.resilience.ResilientExecutor` wrapping the
                cached pool.  ``None`` returns the raw backend.
        """
        spec = spec if spec is not None else self._default
        if isinstance(spec, ExecutionBackend):
            return spec
        name = spec or config.DEFAULT_EXECUTOR
        key = (name, max_workers)
        backend = self._cache.get(key)
        if backend is None:
            backend = resolve_executor(name, max_workers)
            self._cache[key] = backend
        if resilience is None:
            return backend
        from repro.resilience.executor import ResilientExecutor

        wrapper_key = (name, max_workers, resilience)
        wrapper = self._wrappers.get(wrapper_key)
        if wrapper is None:
            wrapper = ResilientExecutor(
                backend,
                policy=resilience,
                cost_model=self.cost_model,
                fault_hook=self.task_fault_hook,
            )
            self._wrappers[wrapper_key] = wrapper
        else:
            wrapper.fault_hook = self.task_fault_hook
        return wrapper

    def close(self) -> None:
        """Shut down every backend and wrapper this selector created."""
        for wrapper in self._wrappers.values():
            wrapper.close()
        self._wrappers.clear()
        for backend in self._cache.values():
            backend.close()
        self._cache.clear()


__all__ = [
    "BACKENDS",
    "EXECUTOR_NAMES",
    "ExecutionBackend",
    "ExecutorSelector",
    "ExecutorSpec",
    "ExecutorStats",
    "ProcessBackend",
    "SerialBackend",
    "ThreadBackend",
    "resolve_executor",
]
