"""The serial backend: run every task inline on the calling thread.

This is the default and the reference semantics — parallel backends must
produce results indistinguishable from this one.
"""

from __future__ import annotations

from typing import Any, Callable, List

from repro.execution.base import ExecutionBackend


class SerialBackend(ExecutionBackend):
    """Executes tasks one after another in the calling thread."""

    name = "serial"

    def __init__(self, max_workers: int = 1) -> None:
        # max_workers is accepted (and ignored) so every backend shares
        # one constructor signature.
        super().__init__()
        self.max_workers = 1

    def _run_batch(
        self,
        fn: Callable[[Any], Any],
        payloads: List[Any],
        picklable: bool,
    ) -> List[Any]:
        return self._run_inline(fn, payloads)
