"""The process-pool backend: true multi-core parallelism.

Task payloads cross a process boundary, so the function and every
payload must pickle.  The engines build their payloads from plain data
(records, factories that are module-level classes, frozen cost-model
dataclasses) precisely so this backend can ship them; anything that
doesn't pickle — a lambda factory, a closure, an open store handle —
makes the batch fall back to in-process execution rather than fail,
which keeps results identical and merely forfeits the speedup (the
``stats.inproc_fallbacks`` counter records it).
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, List, Optional

from repro.execution.base import ExecutionBackend


class ProcessBackend(ExecutionBackend):
    """Executes task batches on a lazily created process pool."""

    name = "process"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        super().__init__()
        self.max_workers = max_workers or (os.cpu_count() or 1)
        self._pool: Optional[ProcessPoolExecutor] = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
        return self._pool

    def _run_batch(
        self,
        fn: Callable[[Any], Any],
        payloads: List[Any],
        picklable: bool,
    ) -> List[Any]:
        if not picklable or len(payloads) == 1 or not self._can_ship(fn, payloads[0]):
            self.stats.inproc_fallbacks += 1
            return self._run_inline(fn, payloads)
        chunksize = max(1, len(payloads) // (self.max_workers * 4))
        try:
            return list(self._ensure_pool().map(fn, payloads, chunksize=chunksize))
        except (BrokenProcessPool, pickle.PicklingError, AttributeError, TypeError):
            # A worker died (OOM, signal) or a later payload in a batch
            # the probe approved turned out unpicklable.  Task functions
            # are pure, so recovering the whole batch in-process is safe;
            # drop the (possibly broken) pool so it rebuilds lazily.
            self.close()
            self.stats.inproc_fallbacks += 1
            return self._run_inline(fn, payloads)

    @staticmethod
    def _can_ship(fn: Callable[[Any], Any], sample_payload: Any) -> bool:
        """Probe-pickle the task before committing it to the pool.

        A pickling failure inside ``pool.map`` can break futures or the
        pool, so the common failure modes (lambda factory, closure-
        holding algorithm) are caught up front.  Engine batches are
        homogeneous, so one representative payload is probed rather than
        the whole batch — a rare payload-specific failure deeper in the
        batch is still recovered by the except clause in ``_run_batch``.
        """
        try:
            pickle.dumps(fn)
            pickle.dumps(sample_payload)
        except Exception:
            return False
        return True

    def close(self) -> None:
        """Shut down the process pool."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
