"""Executor abstraction: how task batches run on the *host* machine.

Every engine in this library separates two notions of time:

- **simulated cluster time** — what the paper measures; derived from the
  cost model and the physical work each task performs; and
- **host wall-clock time** — how long the Python process takes to
  execute the real user map/reduce functions.

An :class:`ExecutionBackend` only affects the second.  Engines hand a
batch of *independent, side-effect-free* task payloads to
:meth:`ExecutionBackend.run_tasks` and merge the returned results in
task-index order, so simulated times, counters and outputs are
byte-identical no matter which backend executed the batch — the
invariant ``tests/test_executors.py`` checks on every engine.

Backends are selected by name (``"serial"``, ``"thread"``,
``"process"``) via :func:`repro.execution.resolve_executor`, usually
through ``JobConf(executor=..., max_workers=...)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Sequence


@dataclass
class ExecutorStats:
    """Host-side execution statistics of one backend instance."""

    #: Total tasks executed through :meth:`ExecutionBackend.run_tasks`.
    tasks_run: int = 0
    #: Number of ``run_tasks`` batches dispatched.
    batches: int = 0
    #: Batches a parallel backend executed in-process instead (payloads
    #: not picklable, or the caller flagged them as in-process only).
    inproc_fallbacks: int = 0
    #: Task attempts that ended in failure (injected or real); maintained
    #: by :class:`repro.resilience.ResilientExecutor`.
    task_failures: int = 0
    #: Failed attempts that were re-executed (each charged simulated
    #: backoff into :attr:`sim_backoff_s`).
    retries: int = 0
    #: Straggler speculations whose duplicate finished first.
    speculative_wins: int = 0
    #: Batches completed on a lower rung of the degradation ladder
    #: (process → thread → serial) after a pool died mid-batch.
    degraded_batches: int = 0
    #: Simulated workers blacklisted after repeated failures.
    workers_blacklisted: int = 0
    #: Total *simulated* seconds of retry backoff — a dedicated account,
    #: never folded into the paper's stage times (fault-free metrics stay
    #: byte-identical under any fault schedule).
    sim_backoff_s: float = 0.0


class ExecutionBackend:
    """Runs a batch of independent task functions; results stay ordered.

    Subclasses override :meth:`_run_batch`; the public :meth:`run_tasks`
    handles statistics and the (backend-specific) fallback rules.
    """

    #: Registry name of the backend (``"serial"`` / ``"thread"`` / ...).
    name: str = "abstract"

    def __init__(self) -> None:
        self.stats = ExecutorStats()

    # ------------------------------------------------------------------ #
    # public API                                                         #
    # ------------------------------------------------------------------ #

    def run_tasks(
        self,
        fn: Callable[[Any], Any],
        payloads: Sequence[Any],
        picklable: bool = True,
    ) -> List[Any]:
        """Execute ``fn(payload)`` for every payload; results in order.

        Args:
            fn: a top-level (importable) function; must be free of side
                effects on shared state for parallel backends.
            payloads: one argument object per task.
            picklable: whether ``fn`` and the payloads can cross a
                process boundary.  Backends that need pickling run the
                batch in-process when this is False.

        Returns:
            ``[fn(p) for p in payloads]`` — the i-th result always
            corresponds to the i-th payload, whatever the completion
            order was.
        """
        payloads = list(payloads)
        self.stats.batches += 1
        self.stats.tasks_run += len(payloads)
        if not payloads:
            return []
        return self._run_batch(fn, payloads, picklable)

    def close(self) -> None:
        """Release any host resources (pools); idempotent."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r}>"

    # ------------------------------------------------------------------ #
    # subclass hook                                                      #
    # ------------------------------------------------------------------ #

    def _run_batch(
        self,
        fn: Callable[[Any], Any],
        payloads: List[Any],
        picklable: bool,
    ) -> List[Any]:
        raise NotImplementedError

    # Shared helper: the in-process path every backend can fall back to.
    @staticmethod
    def _run_inline(fn: Callable[[Any], Any], payloads: List[Any]) -> List[Any]:
        return [fn(payload) for payload in payloads]
