"""The thread-pool backend.

Tasks run on a shared :class:`concurrent.futures.ThreadPoolExecutor`.
Python threads share the interpreter, so payloads need not be picklable;
the GIL limits speedups for pure-Python map/reduce functions but I/O and
C-extension work (parsing, sorting large lists) overlap well, and the
backend doubles as a concurrency-correctness check for the task
decomposition (shared-state bugs surface here first).
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, List, Optional

from repro.execution.base import ExecutionBackend


class ThreadBackend(ExecutionBackend):
    """Executes task batches on a lazily created thread pool."""

    name = "thread"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        super().__init__()
        self.max_workers = max_workers or (os.cpu_count() or 1)
        self._pool: Optional[ThreadPoolExecutor] = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.max_workers,
                thread_name_prefix="repro-task",
            )
        return self._pool

    def _run_batch(
        self,
        fn: Callable[[Any], Any],
        payloads: List[Any],
        picklable: bool,
    ) -> List[Any]:
        if len(payloads) == 1:
            return self._run_inline(fn, payloads)
        # Executor.map preserves argument order in its results.
        return list(self._ensure_pool().map(fn, payloads))

    def close(self) -> None:
        """Shut down the thread pool."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
