"""PlainMR recomputation driver (§8.1.1 solution (i)).

Re-runs the algorithm's vanilla MapReduce formulation from scratch on the
*updated* input — one (or more, for GIM-V) full MapReduce jobs per
iteration, paying job startup every time and shuffling structure data
through every iteration.  Per §8.1.5, recomputation starts from the
previously converged state to keep the comparison fair.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.cluster.cluster import Cluster
from repro.cluster.metrics import JobMetrics
from repro.dfs.filesystem import DistributedFS
from repro.execution import ExecutorSpec
from repro.mapreduce.engine import MapReduceEngine


@dataclass
class RecompResult:
    """Result of a recomputation (PlainMR or HaLoop) run."""

    state: Dict[Any, Any]
    iterations: int
    converged: bool
    metrics: JobMetrics
    per_iteration: List[JobMetrics] = field(default_factory=list)

    @property
    def total_time(self) -> float:
        """Total simulated seconds."""
        return self.metrics.total_time


class PlainMRDriver:
    """Loops an algorithm's :class:`PlainFormulation` to convergence."""

    def __init__(
        self,
        cluster: Cluster,
        dfs: DistributedFS,
        executor: ExecutorSpec = None,
    ) -> None:
        self.cluster = cluster
        self.dfs = dfs
        self.engine = MapReduceEngine(cluster, dfs, executor=executor)

    def close(self) -> None:
        """Shut down any host worker pools the driver's engine created."""
        self.engine.close()

    def run(
        self,
        algorithm: Any,
        dataset: Any,
        initial_state: Optional[Dict[Any, Any]] = None,
        max_iterations: int = 10,
        epsilon: Optional[float] = None,
    ) -> RecompResult:
        """Run recomputation on ``dataset`` starting from ``initial_state``."""
        formulation = algorithm.plain_formulation(dataset)
        state = dict(
            initial_state if initial_state is not None else algorithm.initial_state(dataset)
        )
        formulation.prepare(self.dfs, state)

        total = JobMetrics()
        per_iteration: List[JobMetrics] = []
        prev_state = state
        converged = False
        iterations = 0
        for it in range(max_iterations):
            metrics = formulation.run_iteration(self.engine, it)
            total.merge(metrics)
            per_iteration.append(metrics)
            iterations = it + 1
            if epsilon is not None:
                new_state = formulation.current_state()
                diff = _state_difference(algorithm, new_state, prev_state)
                prev_state = new_state
                if diff <= epsilon:
                    converged = True
                    break
        return RecompResult(
            state=formulation.current_state(),
            iterations=iterations,
            converged=converged,
            metrics=total,
            per_iteration=per_iteration,
        )


def _state_difference(
    algorithm: Any,
    new_state: Dict[Any, Any],
    old_state: Dict[Any, Any],
) -> float:
    total = 0.0
    for dk, dv in new_state.items():
        old = old_state.get(dk)
        if old is not None:
            total += algorithm.difference(dv, old)
    return total
