"""HaLoop-style engine and driver (§8.1.1 solution (iii), §8.6).

HaLoop improves iterative MapReduce with a loop-aware task scheduler
(job startup is paid once) and caching:

- **reducer-input cache** — a loop-invariant input (PageRank's structure
  file in Algorithm 5's join job) is shuffled once in the first iteration
  and re-read from the reduce workers' local disks afterwards;
- **mapper-input cache** — a loop-invariant map input (Kmeans points) is
  re-read locally in binary form, skipping parse and locality misses.

What HaLoop does *not* avoid is the extra join job per iteration: unlike
i2MapReduce's Project-based co-partitioning, structure and state are
matched by a full MapReduce job (Algorithm 5), which is why HaLoop can
lose to plain MapReduce when the structure data is not large (§8.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.cluster.cluster import Cluster
from repro.cluster.metrics import JobMetrics
from repro.dfs.filesystem import DistributedFS
from repro.execution import ExecutorSpec
from repro.mapreduce.engine import MapInputSplit, MapReduceEngine
from repro.mapreduce.job import JobConf, JobResult

from repro.baselines.plainmr import RecompResult, _state_difference

#: Cached reducer input: per reduce partition, a list of (sorted run, bytes).
CacheEntry = Dict[int, List[Tuple[List[Tuple[Any, Any]], int]]]


class HaLoopEngine(MapReduceEngine):
    """MapReduce engine with HaLoop's loop-aware scheduling and caches."""

    def __init__(
        self,
        cluster: Cluster,
        dfs: DistributedFS,
        executor: ExecutorSpec = None,
    ) -> None:
        super().__init__(cluster, dfs, executor=executor)
        self._reducer_cache: Dict[str, CacheEntry] = {}

    def run_loop_job(
        self,
        jobconf: JobConf,
        loop_id: str,
        iteration: int,
        reducer_cached_inputs: Sequence[str] = (),
        mapper_cached_inputs: Sequence[str] = (),
    ) -> JobResult:
        """Run one job of a loop body under HaLoop's caching rules.

        Args:
            loop_id: identifies the loop body position across iterations
                (each position keeps its own reducer-input cache).
            reducer_cached_inputs: loop-invariant input paths whose
                shuffled form is cached at the reducers after iteration 0.
            mapper_cached_inputs: loop-invariant input paths re-read
                locally in binary form from iteration 1 on.
        """
        jobconf.validate()
        cached_paths = set(reducer_cached_inputs)
        mapper_cached = set(mapper_cached_inputs)

        splits: List[MapInputSplit] = []
        split_paths: List[str] = []
        for path in jobconf.inputs:
            if iteration > 0 and path in cached_paths:
                continue
            for block in self.dfs.file(path).blocks:
                split = MapInputSplit.from_block(block)
                if iteration > 0 and path in mapper_cached:
                    split = MapInputSplit(
                        records=split.records,
                        size_bytes=split.size_bytes,
                        locations=(),
                        parse_needed=False,
                    )
                splits.append(split)
                split_paths.append(path)

        map_result = self.map_phase(jobconf, splits)

        cached_runs: Optional[CacheEntry] = None
        if cached_paths:
            if iteration == 0:
                self._reducer_cache[loop_id] = self._collect_cache(
                    map_result, split_paths, cached_paths
                )
            else:
                cached_runs = self._reducer_cache.get(loop_id, {})

        reduce_result = self.reduce_phase(jobconf, map_result, cached_runs=cached_runs)

        output_records: List[Tuple[Any, Any]] = []
        for partition in sorted(reduce_result.outputs):
            output_records.extend(reduce_result.outputs[partition])
        self.dfs.write(jobconf.output, output_records, overwrite=True)

        metrics = JobMetrics()
        if iteration == 0:
            # The loop-aware scheduler keeps tasks alive across iterations.
            metrics.times.startup = self.cluster.cost_model.job_startup_s
        metrics.times.map = map_result.elapsed_s
        metrics.times.shuffle = reduce_result.shuffle_s
        metrics.times.sort = reduce_result.sort_s
        metrics.times.reduce = reduce_result.reduce_s
        metrics.counters.merge(map_result.counters)
        metrics.counters.merge(reduce_result.counters)
        return JobResult(output=jobconf.output, metrics=metrics)

    @staticmethod
    def _collect_cache(
        map_result: Any,
        split_paths: List[str],
        cached_paths: set,
    ) -> CacheEntry:
        cache: CacheEntry = {}
        for task in map_result.tasks:
            if split_paths[task.task_index] not in cached_paths:
                continue
            for part, pairs in task.partitions.items():
                nbytes = task.partition_bytes.get(part, 0)
                cache.setdefault(part, []).append((pairs, nbytes))
        return cache


class HaLoopDriver:
    """Loops an algorithm's :class:`HaLoopFormulation` to convergence."""

    def __init__(
        self,
        cluster: Cluster,
        dfs: DistributedFS,
        executor: ExecutorSpec = None,
    ) -> None:
        self.cluster = cluster
        self.dfs = dfs
        self.engine = HaLoopEngine(cluster, dfs, executor=executor)

    def close(self) -> None:
        """Shut down any host worker pools the driver's engine created."""
        self.engine.close()

    def run(
        self,
        algorithm: Any,
        dataset: Any,
        initial_state: Optional[Dict[Any, Any]] = None,
        max_iterations: int = 10,
        epsilon: Optional[float] = None,
    ) -> RecompResult:
        """Run HaLoop recomputation starting from ``initial_state``."""
        formulation = algorithm.haloop_formulation(dataset)
        state = dict(
            initial_state if initial_state is not None else algorithm.initial_state(dataset)
        )
        formulation.prepare(self.dfs, state)

        total = JobMetrics()
        per_iteration: List[JobMetrics] = []
        prev_state = state
        converged = False
        iterations = 0
        for it in range(max_iterations):
            metrics = formulation.run_iteration(self.engine, it)
            total.merge(metrics)
            per_iteration.append(metrics)
            iterations = it + 1
            if epsilon is not None:
                new_state = formulation.current_state()
                diff = _state_difference(algorithm, new_state, prev_state)
                prev_state = new_state
                if diff <= epsilon:
                    converged = True
                    break
        return RecompResult(
            state=formulation.current_state(),
            iterations=iterations,
            converged=converged,
            metrics=total,
            per_iteration=per_iteration,
        )
