"""Comparison systems: PlainMR recomputation, HaLoop, Spark-like, Incoop-like."""

from repro.baselines.haloop import HaLoopDriver, HaLoopEngine
from repro.baselines.plainmr import PlainMRDriver, RecompResult

__all__ = ["HaLoopDriver", "HaLoopEngine", "PlainMRDriver", "RecompResult"]
