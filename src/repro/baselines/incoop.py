"""Incoop-like task-level incremental baseline (§8.1.1).

Incoop was unavailable to the paper's authors too; this implementation
lets the library *measure* the claim they substantiate with statistics:
"without careful data partition, almost all tasks see changes in the
experiments, making task-level incremental processing less effective."

The model memoizes at task granularity:

- input records are cut into **content-defined chunks** (a boundary falls
  where a record's stable hash is 0 modulo the target chunk size, like
  Inc-HDFS), so insertions do not shift every later split;
- a map task whose chunk fingerprint is unchanged reuses its memoized
  output at zero compute cost;
- a reduce task re-runs in full when *any* contributing map output for
  its partition changed — but unchanged map outputs are fetched from the
  memoization cache on local disk rather than shuffled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.cluster.metrics import Counters, JobMetrics
from repro.common.hashing import stable_hash
from repro.common.kvpair import group_sorted, sort_records
from repro.common.sizeof import record_size
from repro.execution import ExecutorSpec
from repro.mapreduce.api import Context
from repro.mapreduce.engine import (
    MapInputSplit,
    MapReduceEngine,
    MapTaskPayload,
    execute_map_task,
)
from repro.mapreduce.job import JobConf, JobResult


@dataclass
class _MemoEntry:
    partitions: Dict[int, List[Tuple[Any, Any]]]
    partition_bytes: Dict[int, int]


@dataclass
class IncoopState:
    """Memoized task-level state of the previous run."""

    map_memo: Dict[int, _MemoEntry] = field(default_factory=dict)
    reduce_memo: Dict[int, List[Tuple[Any, Any]]] = field(default_factory=dict)
    reduce_fingerprint: Dict[int, int] = field(default_factory=dict)


def content_defined_chunks(
    records: List[Tuple[Any, Any]],
    target_records: int = 256,
) -> List[List[Tuple[Any, Any]]]:
    """Split records into stable chunks (Inc-HDFS style).

    A chunk boundary falls after a record whose stable hash is divisible
    by ``target_records``; a hard cap of ``4 * target_records`` bounds the
    worst case.  Content-defined boundaries keep unchanged regions in
    identical chunks across runs even when records are inserted earlier
    in the file.
    """
    if target_records <= 0:
        raise ValueError("target_records must be positive")
    chunks: List[List[Tuple[Any, Any]]] = []
    current: List[Tuple[Any, Any]] = []
    cap = 4 * target_records
    for record in records:
        current.append(record)
        if stable_hash(record[0]) % target_records == 0 or len(current) >= cap:
            chunks.append(current)
            current = []
    if current:
        chunks.append(current)
    return chunks


def _fingerprint(records: List[Tuple[Any, Any]]) -> int:
    acc = 0x1505
    for key, value in records:
        acc = (acc * 33 + stable_hash((key, value))) & 0x7FFFFFFFFFFFFFFF
    return acc


class IncoopEngine(MapReduceEngine):
    """Task-level memoizing MapReduce engine."""

    def __init__(
        self,
        cluster: Any,
        dfs: Any,
        chunk_records: int = 256,
        executor: ExecutorSpec = None,
    ) -> None:
        super().__init__(cluster, dfs, executor=executor)
        self.chunk_records = chunk_records

    def run_memoized(
        self,
        jobconf: JobConf,
        state: Optional[IncoopState] = None,
    ) -> Tuple[JobResult, IncoopState]:
        """Run the job, reusing memoized task results where possible.

        Pass the previous run's state to get incremental behaviour; pass
        ``None`` for the initial run.
        """
        jobconf.validate()
        cost = self.cluster.cost_model
        prev = state or IncoopState()
        new_state = IncoopState()
        counters = Counters()

        records: List[Tuple[Any, Any]] = []
        for path in jobconf.inputs:
            records.extend(self.dfs.read(path))
        chunks = content_defined_chunks(records, self.chunk_records)

        # ----------------------------- map ----------------------------- #
        # Unchanged chunks reuse their memoized output; the rest form one
        # task batch dispatched through the job's execution backend.
        map_loads = [0.0] * self.cluster.num_workers
        reused = 0
        entries_by_index: Dict[int, _MemoEntry] = {}
        pending: List[Tuple[int, List[Tuple[Any, Any]], int]] = []
        for index, chunk in enumerate(chunks):
            fp = _fingerprint(chunk)
            memo = prev.map_memo.get(fp)
            if memo is not None:
                new_state.map_memo[fp] = memo
                entries_by_index[index] = memo
                reused += 1
            else:
                pending.append((index, chunk, fp))

        payloads = [
            MapTaskPayload(
                task_index=index,
                mapper_factory=jobconf.mapper,
                records=chunk,
                size_bytes=sum(record_size(k, v) for k, v in chunk),
                num_reducers=jobconf.num_reducers,
                partitioner=jobconf.partitioner,
                combiner_factory=None,
            )
            for index, chunk, _ in pending
        ]
        runs = self.backend_for(jobconf).run_tasks(execute_map_task, payloads)

        for (index, chunk, fp), run in zip(pending, runs):
            entry = _MemoEntry(run.partitions, run.partition_bytes)
            new_state.map_memo[fp] = entry
            entries_by_index[index] = entry

            chunk_bytes = sum(record_size(k, v) for k, v in chunk)
            task_cost = cost.disk_read_time(chunk_bytes)
            task_cost += cost.parse_time(chunk_bytes)
            task_cost += cost.cpu_time(len(chunk), run.cpu_weight)
            task_cost += cost.sort_time(run.emitted_records)
            task_cost += cost.disk_write_time(sum(run.partition_bytes.values()))
            map_loads[index % self.cluster.num_workers] += task_cost
        all_outputs = [entries_by_index[index] for index in range(len(chunks))]
        counters.add("map_tasks_reused", reused)
        counters.add("map_tasks_executed", len(pending))

        # ------------------------- shuffle+reduce ---------------------- #
        shuffle_loads = [0.0] * self.cluster.num_workers
        sort_loads = [0.0] * self.cluster.num_workers
        reduce_loads = [0.0] * self.cluster.num_workers
        outputs: List[Tuple[Any, Any]] = []
        reduce_reused = 0
        for part in range(jobconf.num_reducers):
            worker = self.reduce_worker(part)
            runs = [
                entry.partitions[part]
                for entry in all_outputs
                if part in entry.partitions
            ]
            merged: List[Tuple[Any, Any]] = []
            for run in runs:
                merged.extend(run)
            merged = sort_records(merged)
            fp = _fingerprint(merged)
            new_state.reduce_fingerprint[part] = fp

            if prev.reduce_fingerprint.get(part) == fp and part in prev.reduce_memo:
                new_state.reduce_memo[part] = prev.reduce_memo[part]
                outputs.extend(prev.reduce_memo[part])
                reduce_reused += 1
                continue

            nbytes = sum(
                entry.partition_bytes.get(part, 0)
                for entry in all_outputs
                if part in entry.partitions
            )
            shuffle_loads[worker] += cost.disk_read_time(nbytes)
            sort_loads[worker] += cost.sort_time(len(merged))

            reducer = jobconf.reducer()
            ctx = Context()
            reducer.setup(ctx)
            for key, values in group_sorted(merged):
                reducer.reduce(key, values, ctx)
            reducer.cleanup(ctx)
            emitted = ctx.take()
            new_state.reduce_memo[part] = emitted
            outputs.extend(emitted)
            reduce_loads[worker] += cost.cpu_time(len(merged), reducer.cpu_weight)
            reduce_loads[worker] += cost.disk_write_time(
                sum(record_size(k, v) for k, v in emitted)
            )
        counters.add("reduce_tasks_reused", reduce_reused)

        self.dfs.write(jobconf.output, outputs, overwrite=True)

        metrics = JobMetrics()
        metrics.times.startup = cost.job_startup_s
        metrics.times.map = max(map_loads)
        metrics.times.shuffle = max(shuffle_loads)
        metrics.times.sort = max(sort_loads)
        metrics.times.reduce = max(reduce_loads)
        metrics.counters.merge(counters)
        return JobResult(output=jobconf.output, metrics=metrics), new_state
