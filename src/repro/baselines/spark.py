"""Spark-like in-memory baseline (§8.7).

A minimal RDD-style execution model: the structure data is loaded and
parsed once, co-partitioned with ``partitionBy`` and cached in memory;
each iteration maps over the cached partitions, shuffles contributions
and reduces into a *new* state RDD (RDDs are read-only, §8.7).

The cost model captures what Fig 12 measures:

- no per-iteration job startup (a lightweight scheduler tick instead);
- in-memory reads are free of disk cost while the working set fits the
  cluster's aggregate memory;
- when the working set (cached structure + a couple of live state RDD
  generations + shuffle buffers) exceeds aggregate memory, the excess
  fraction spills: it is written and re-read from disk every iteration
  with a serialization penalty — Spark's performance "is not
  satisfactory" on ClueWeb-l exactly because of this (§8.7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.baselines.plainmr import RecompResult
from repro.cluster.cluster import Cluster
from repro.cluster.metrics import JobMetrics, StageTimes
from repro.common.hashing import partition_for
from repro.common.sizeof import record_size
from repro.dfs.filesystem import DistributedFS
from repro.execution import ExecutorSelector, ExecutorSpec

#: Spark keeps the current and previous state RDD generations (plus
#: lineage bookkeeping) alive across an iteration boundary.
_STATE_GENERATIONS = 2

#: Serialization/GC penalty multiplier on spilled bytes.
_SPILL_PENALTY = 3.0

#: Whole-iteration slowdown per unit of spill fraction: memory pressure
#: degrades everything (GC churn, eviction-driven recomputation), not
#: just the spilled bytes (§8.7: "the performance of Spark is not
#: satisfactory" once the working set exceeds memory).
_PRESSURE_SLOWDOWN = 6.0

#: Per-iteration scheduler overhead in seconds (no job startup).
_SCHEDULER_TICK_S = 0.5


@dataclass
class SparkMapPayload:
    """One RDD map task: a contiguous slice of the cached partitions."""

    index: int
    #: ``(DK, DV, [(SK, SV), ...])`` groups with the state value joined in.
    groups: List[Tuple[Any, Any, List[Tuple[Any, Any]]]]
    algorithm: Any


@dataclass
class SparkMapRun:
    """Contributions of one RDD map task."""

    index: int
    contributions: Dict[Any, List[Any]]
    emitted: int
    emitted_bytes: int
    num_pairs: int


def execute_spark_map_task(payload: SparkMapPayload) -> SparkMapRun:
    """Map one slice of the cached structure RDD; pure function."""
    algorithm = payload.algorithm
    contributions: Dict[Any, List[Any]] = {}
    emitted = 0
    emitted_bytes = 0
    num_pairs = 0
    for dk, dv, pairs in payload.groups:
        for sk, sv in pairs:
            num_pairs += 1
            for k2, v2 in algorithm.map_instance(sk, sv, dk, dv):
                contributions.setdefault(k2, []).append(v2)
                emitted += 1
                emitted_bytes += record_size(k2, v2)
    return SparkMapRun(
        index=payload.index,
        contributions=contributions,
        emitted=emitted,
        emitted_bytes=emitted_bytes,
        num_pairs=num_pairs,
    )


@dataclass
class SparkRunStats:
    """Memory accounting of a Spark-like run."""

    structure_bytes: int = 0
    state_bytes: int = 0
    shuffle_bytes_per_iter: int = 0
    working_set_bytes: int = 0
    memory_bytes: int = 0
    spill_fraction: float = 0.0


class SparkLikeDriver:
    """Runs an :class:`IterativeAlgorithm` under the Spark cost model."""

    def __init__(
        self,
        cluster: Cluster,
        dfs: DistributedFS,
        executor: ExecutorSpec = None,
    ) -> None:
        self.cluster = cluster
        self.dfs = dfs
        self.executors = ExecutorSelector(executor)
        self.executor = self.executors.get()
        self.last_stats = SparkRunStats()

    def close(self) -> None:
        """Shut down any host worker pools the driver created."""
        self.executors.close()

    def run(
        self,
        algorithm: Any,
        dataset: Any,
        initial_state: Optional[Dict[Any, Any]] = None,
        max_iterations: int = 10,
        epsilon: Optional[float] = None,
        structure_path: Optional[str] = None,
    ) -> RecompResult:
        """Run the iterative computation in the in-memory model."""
        cost = self.cluster.cost_model
        workers = self.cluster.num_workers

        if structure_path is None:
            structure_path = f"/{algorithm.name}/spark-input"
        if not self.dfs.exists(structure_path):
            self.dfs.write(structure_path, algorithm.structure_records(dataset))
        dfs_file = self.dfs.file(structure_path)

        records = self.dfs.read_all(structure_path)
        groups: Dict[Any, List[Tuple[Any, Any]]] = {}
        for sk, sv in records:
            groups.setdefault(algorithm.project(sk), []).append((sk, sv))

        state = dict(
            initial_state if initial_state is not None else algorithm.initial_state(dataset)
        )

        metrics = JobMetrics()
        # Load + partitionBy: read and parse once, shuffle across workers.
        structure_bytes = dfs_file.size_bytes
        load = StageTimes()
        per_worker = structure_bytes / workers
        load.startup = (
            cost.disk_read_time(int(per_worker))
            + cost.parse_time(int(per_worker))
            + cost.net_time(int(per_worker * (workers - 1) / workers))
            + _SCHEDULER_TICK_S
        )
        metrics.times.add(load)

        per_iteration: List[JobMetrics] = []
        converged = False
        iterations = 0
        total_memory = cost.worker_memory * workers

        for it in range(max_iterations):
            iterations = it + 1
            times = StageTimes()
            # ----------------------------- map --------------------------- #
            # One RDD map task per contiguous slice of the cached
            # partitions, dispatched through the execution backend;
            # merging contributions in slice order reproduces exactly
            # the serial iteration order.
            joined = []
            for dk, pairs in groups.items():
                dv = state.get(dk)
                if dv is None:
                    dv = algorithm.init_state_value(dk)
                joined.append((dk, dv, pairs))
            slice_size = max(1, -(-len(joined) // max(1, workers)))
            payloads = [
                SparkMapPayload(
                    index=i,
                    groups=joined[start : start + slice_size],
                    algorithm=algorithm,
                )
                for i, start in enumerate(range(0, len(joined), slice_size))
            ]
            map_runs = self.executor.run_tasks(execute_spark_map_task, payloads)

            contributions: Dict[Any, List[Any]] = {}
            emitted = 0
            emitted_bytes = 0
            num_pairs = 0
            for run in sorted(map_runs, key=lambda r: r.index):
                for k2, values in run.contributions.items():
                    contributions.setdefault(k2, []).extend(values)
                emitted += run.emitted
                emitted_bytes += run.emitted_bytes
                num_pairs += run.num_pairs
            times.map = cost.cpu_time(num_pairs, algorithm.map_cpu_weight) / workers

            # --------------------------- shuffle ------------------------- #
            remote = int(emitted_bytes * (workers - 1) / workers)
            times.shuffle = cost.net_time(remote, transfers=workers) / workers

            # --------------------------- reduce -------------------------- #
            outputs: List[Tuple[Any, Any]] = []
            replicated = getattr(algorithm, "dependency", None) is not None and (
                algorithm.dependency.value == "all-to-one"
            )
            if replicated:
                reduce_keys = sorted(contributions, key=repr)
            else:
                reduce_keys = sorted(set(state) | set(contributions), key=repr)
            values_processed = 0
            for k2 in reduce_keys:
                values = contributions.get(k2, [])
                outputs.append((k2, algorithm.reduce_instance(k2, values)))
                values_processed += len(values) + 1
            times.reduce = (
                cost.cpu_time(values_processed, algorithm.reduce_cpu_weight) / workers
            )

            new_state = dict(state)
            total_difference = 0.0
            prev_values = dict(state)
            algorithm.assemble_state(new_state, outputs)
            for dk, dv in new_state.items():
                old = prev_values.get(dk)
                if old is not None:
                    total_difference += algorithm.difference(dv, old)

            # ------------------------ memory model ----------------------- #
            state_bytes = sum(record_size(k, v) for k, v in new_state.items())
            working = (
                structure_bytes
                + state_bytes * _STATE_GENERATIONS
                + emitted_bytes
            )
            spill_fraction = 0.0
            if working > total_memory:
                spill_fraction = (working - total_memory) / working
                spilled = int(working * spill_fraction)
                per_worker_spill = spilled / workers
                times.merge = _SPILL_PENALTY * (
                    cost.disk_write_time(int(per_worker_spill))
                    + cost.disk_read_time(int(per_worker_spill))
                )
                pressure = 1.0 + _PRESSURE_SLOWDOWN * spill_fraction
                times.map *= pressure
                times.shuffle *= pressure
                times.reduce *= pressure
            times.startup = _SCHEDULER_TICK_S

            self.last_stats = SparkRunStats(
                structure_bytes=structure_bytes,
                state_bytes=state_bytes,
                shuffle_bytes_per_iter=emitted_bytes,
                working_set_bytes=working,
                memory_bytes=total_memory,
                spill_fraction=spill_fraction,
            )

            state = new_state
            metrics.times.add(times)
            iter_metrics = JobMetrics()
            iter_metrics.times.add(times)
            per_iteration.append(iter_metrics)
            if epsilon is not None and total_difference <= epsilon:
                converged = True
                break

        return RecompResult(
            state=state,
            iterations=iterations,
            converged=converged,
            metrics=metrics,
            per_iteration=per_iteration,
        )
