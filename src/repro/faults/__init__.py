"""Fault tolerance: checkpointing costs, failure injection, recovery (§6)."""

from repro.faults.context import FaultContext
from repro.faults.injection import (
    CrashDirective,
    CrashPoint,
    FaultInjector,
    FaultSpec,
    InjectedCrash,
    InjectedTaskFault,
    InjectedWorkerDeath,
    TaskFault,
    TaskFaultDirective,
)
from repro.faults.timeline import TaskEvent, Timeline

__all__ = [
    "CrashDirective",
    "CrashPoint",
    "FaultContext",
    "FaultInjector",
    "FaultSpec",
    "InjectedCrash",
    "InjectedTaskFault",
    "InjectedWorkerDeath",
    "TaskEvent",
    "TaskFault",
    "TaskFaultDirective",
    "Timeline",
]
