"""Fault tolerance: checkpointing costs, failure injection, recovery (§6)."""

from repro.faults.context import FaultContext
from repro.faults.injection import FaultInjector, FaultSpec
from repro.faults.timeline import TaskEvent, Timeline

__all__ = ["FaultContext", "FaultInjector", "FaultSpec", "TaskEvent", "Timeline"]
