"""Fault tolerance: checkpointing costs, failure injection, recovery (§6)."""

from repro.faults.context import FaultContext
from repro.faults.injection import (
    CrashDirective,
    CrashPoint,
    FaultInjector,
    FaultSpec,
    InjectedCrash,
)
from repro.faults.timeline import TaskEvent, Timeline

__all__ = [
    "CrashDirective",
    "CrashPoint",
    "FaultContext",
    "FaultInjector",
    "FaultSpec",
    "InjectedCrash",
    "TaskEvent",
    "Timeline",
]
