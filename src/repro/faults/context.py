"""Failure application and recovery timing (§6.1).

The iterative engines hand each iteration's per-task costs to a
:class:`FaultContext`; it replays the stage schedules task-by-task in
simulated global time, injects the declared failures, and charges the
paper's recovery sequence:

1. the TaskTracker detects the failure and reports it on the next
   heartbeat (3 s interval by default);
2. the master looks up the task-to-tracker table and reschedules the task
   on the worker holding its dependency (checkpointed state data for
   prime Maps, MRBGraph file for prime Reduces);
3. the task reloads the checkpoint and re-executes.

The resulting :class:`Timeline` is exactly what Fig 13 plots.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from repro.cluster.cluster import Cluster
from repro.cluster.metrics import StageTimes
from repro.faults.injection import CrashDirective, FaultInjector, TaskFaultDirective
from repro.faults.timeline import TaskEvent, Timeline


class FaultContext:
    """Stateful per-run fault application (one instance per engine run)."""

    def __init__(
        self,
        injector: FaultInjector,
        checkpoint_reload_s: float = 2.0,
    ) -> None:
        self.injector = injector
        self.checkpoint_reload_s = checkpoint_reload_s
        self.timeline = Timeline()
        self.clock = 0.0
        self.iteration = 0
        #: per-(point, shard) hit counters for store crash sites.
        self._store_hits: dict = {}
        #: ``(point, shard, occurrence)`` triples of crashes that fired.
        self.store_crash_log: list = []
        #: per-task_index consult counters for executor task faults.
        self._task_hits: dict = {}
        #: ``(task_index, occurrence, kind)`` triples of task faults fired.
        self.task_fault_log: list = []

    # ------------------------------------------------------------------ #
    # store crashes                                                      #
    # ------------------------------------------------------------------ #

    def store_hook(self):
        """The crash-injection hook MRBG-Stores consult at durability sites.

        Pass the returned callable as the ``fault_hook`` of an
        :class:`~repro.mrbgraph.store.MRBGStore`,
        :class:`~repro.mrbgraph.sharding.ShardedMRBGStore` or
        :class:`~repro.incremental.state.PreservedJobState`.  Every hit
        of a ``(point, shard)`` site increments a deterministic counter;
        when the counter matches a registered
        :class:`~repro.faults.injection.CrashPoint` occurrence the hook
        answers a :class:`~repro.faults.injection.CrashDirective` and the
        store kills the operation there (raising
        :class:`~repro.faults.injection.InjectedCrash`).  Fig 13's
        map/reduce/worker semantics are untouched — this is a separate,
        store-only channel.
        """

        def hook(point: str, shard: int = 0, nbytes=None):
            key = (point, shard)
            occurrence = self._store_hits.get(key, 0)
            self._store_hits[key] = occurrence + 1
            crash = self.injector.crash_for(point, shard, occurrence)
            if crash is None:
                return None
            self.store_crash_log.append((point, shard, occurrence))
            return CrashDirective(byte_offset=crash.byte_offset, occurrence=occurrence)

        return hook

    def reset_stores(self) -> None:
        """Restart the store crash-site occurrence counters.

        A recovered store reopened for another crash/recover cycle
        replays the same durability sites from scratch; resetting lets
        one context — and any hooks it already issued, which read the
        counters live — drive several cycles with occurrence ordinals
        counted per cycle.  :attr:`store_crash_log` is preserved, so the
        full cross-cycle crash history stays observable.
        """
        self._store_hits.clear()

    # ------------------------------------------------------------------ #
    # executor task faults                                                #
    # ------------------------------------------------------------------ #

    def task_hook(self):
        """The fault hook resilient executors consult before each attempt.

        Assign the returned callable to an
        :class:`~repro.execution.ExecutorSelector`'s ``task_fault_hook``
        (or pass it directly to a
        :class:`~repro.resilience.ResilientExecutor`).  The executor
        consults the hook in the *parent* process once per attempt of
        each task index; every consult increments a deterministic
        per-index counter, and when the counter matches a registered
        :class:`~repro.faults.injection.TaskFault` occurrence the hook
        answers a :class:`~repro.faults.injection.TaskFaultDirective`
        that the executor embeds in the guarded payload.  The directive
        fires *before* the user function runs, so a faulted attempt has
        no partial side effects and retrying it is always safe.
        """

        def hook(task_index: int) -> "TaskFaultDirective | None":
            occurrence = self._task_hits.get(task_index, 0)
            self._task_hits[task_index] = occurrence + 1
            fault = self.injector.task_fault_for(task_index, occurrence)
            if fault is None:
                return None
            self.task_fault_log.append((task_index, occurrence, fault.kind))
            return TaskFaultDirective(
                kind=fault.kind, slow_s=fault.slow_s, occurrence=occurrence
            )

        return hook

    def apply(
        self,
        map_task_costs: Sequence[float],
        reduce_task_costs: Sequence[float],
        times: StageTimes,
        cluster: Cluster,
    ) -> StageTimes:
        """Replay one iteration's schedule with failures; returns adjusted
        stage times (map and reduce elapsed may grow)."""
        heartbeat = cluster.cost_model.heartbeat_s
        workers = cluster.num_workers

        map_elapsed = self._run_stage(
            "map", map_task_costs, self.clock, workers, heartbeat
        )
        mid = self.clock + map_elapsed + times.shuffle + times.sort
        reduce_elapsed = self._run_stage(
            "reduce", reduce_task_costs, mid, workers, heartbeat
        )

        adjusted = StageTimes(
            startup=times.startup,
            map=map_elapsed,
            shuffle=times.shuffle,
            sort=times.sort,
            reduce=reduce_elapsed,
            merge=times.merge,
            checkpoint=times.checkpoint,
        )
        self.clock = mid + reduce_elapsed + times.merge + times.checkpoint
        self.iteration += 1
        return adjusted

    def _run_stage(
        self,
        kind: str,
        task_costs: Sequence[float],
        stage_start: float,
        workers: int,
        heartbeat: float,
    ) -> float:
        worker_time = [stage_start] * workers
        for index, cost in enumerate(task_costs):
            worker = index % workers
            start = worker_time[worker]
            fault = self.injector.fault_for(self.iteration, kind, index)
            if fault is None:
                end = start + cost
                event = TaskEvent(
                    task_id=f"{kind}-{index}",
                    kind=kind,
                    iteration=self.iteration,
                    worker=worker,
                    start=start,
                    end=end,
                )
            else:
                failed_at = start + cost * fault.at_fraction
                # Detection on the next heartbeat boundary after failure.
                beats = math.floor(failed_at / heartbeat) + 1
                detected_at = beats * heartbeat
                recovered_at = detected_at + self.checkpoint_reload_s
                end = recovered_at + cost
                event = TaskEvent(
                    task_id=f"{kind}-{index}",
                    kind=kind,
                    iteration=self.iteration,
                    worker=worker,
                    start=start,
                    end=end,
                    failed_at=failed_at,
                    recovered_at=recovered_at,
                )
            self.timeline.add(event)
            worker_time[worker] = event.end
        return max(worker_time) - stage_start
