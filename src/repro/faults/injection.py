"""Failure injection for the iterative engines (§6.1, Fig 13) and the store.

The paper "manually and randomly inject[s] some errors" into prime Map
and prime Reduce tasks; here failures are declared as :class:`FaultSpec`
entries (or drawn from a seeded generator) and applied deterministically
by the :class:`repro.faults.context.FaultContext`.

Beyond the paper's task-level failures, the ``"store"`` stage injects
*crashes into MRBG-Store operations*: a :class:`CrashPoint` names one of
the store's durability-protocol sites (``wal-append``,
``pre-index-swap``, ``mid-compact-write``, ``post-compact-pre-swap``)
and kills the operation there — optionally tearing a WAL append at a
byte offset — so the durability suite can prove byte-identical recovery
at every point.  Store crashes surface as :class:`InjectedCrash`; the
crashed store releases its file handles without flushing anything
further, exactly like a killed process, and the next ``open()`` runs
recovery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

VALID_STAGES = ("map", "reduce", "worker", "store")

#: Named crash sites inside the MRBG-Store durability protocol.
VALID_CRASH_POINTS = (
    "wal-append",
    "pre-index-swap",
    "mid-compact-write",
    "post-compact-pre-swap",
)


class InjectedCrash(Exception):
    """A store operation was killed by an injected :class:`CrashPoint`.

    Raised out of the store operation that hit the crash site; the store
    has already released its file handles without flushing anything
    further.  Callers simulating recovery discard the store object and
    reopen the directory.
    """

    def __init__(self, point: str, shard: int, occurrence: int) -> None:
        super().__init__(
            f"injected crash at {point!r} (shard {shard}, occurrence {occurrence})"
        )
        self.point = point
        self.shard = shard
        self.occurrence = occurrence


@dataclass(frozen=True)
class CrashDirective:
    """What a store fault hook answers when a crash point fires.

    Attributes:
        byte_offset: for ``wal-append`` — how many bytes of the record
            being appended reach the file before the kill (``None``
            means the record never makes it at all).  Ignored at the
            other crash points.
        occurrence: which hit of the crash site fired (echoed into the
            resulting :class:`InjectedCrash` for diagnostics).
    """

    byte_offset: Optional[int] = None
    occurrence: int = 0


@dataclass(frozen=True)
class CrashPoint:
    """One injected store crash: kill an operation at a named point.

    Attributes:
        point: crash site, one of :data:`VALID_CRASH_POINTS`.
        shard: shard index the crash applies to (0 for unsharded stores).
        occurrence: which hit of this (point, shard) site crashes — the
            first hit is occurrence 0; earlier hits proceed normally.
        byte_offset: for ``wal-append``, tear the record at this byte
            offset instead of dropping it whole.
    """

    point: str
    shard: int = 0
    occurrence: int = 0
    byte_offset: Optional[int] = None

    def __post_init__(self) -> None:
        if self.point not in VALID_CRASH_POINTS:
            raise ValueError(f"point must be one of {VALID_CRASH_POINTS}")
        if self.shard < 0 or self.occurrence < 0:
            raise ValueError("shard and occurrence must be non-negative")
        if self.byte_offset is not None and self.byte_offset < 0:
            raise ValueError("byte_offset must be non-negative")


@dataclass(frozen=True)
class FaultSpec:
    """One injected failure.

    Attributes:
        iteration: iteration index in which the task fails.  For the
            ``"store"`` stage this is the crash *occurrence* ordinal
            (the Nth hit of the crash point crashes).
        stage: ``"map"``, ``"reduce"``, ``"worker"`` (a worker failure
            kills both co-located prime tasks, §6.1 case iii), or
            ``"store"`` (an MRBG-Store operation crash).
        task_index: prime task index (= partition index).  For the
            ``"store"`` stage this is the shard index.
        at_fraction: fraction of the task's work done when it fails
            (Fig 13 stages only).
        crash_point: ``"store"`` stage only — the named crash site, one
            of :data:`VALID_CRASH_POINTS`.
        byte_offset: ``"store"`` stage only — tear the WAL append at
            this byte offset (``wal-append`` point).
    """

    iteration: int
    stage: str
    task_index: int
    at_fraction: float = 0.5
    crash_point: Optional[str] = None
    byte_offset: Optional[int] = None

    def __post_init__(self) -> None:
        if self.stage not in VALID_STAGES:
            raise ValueError(f"stage must be one of {VALID_STAGES}")
        if not 0.0 <= self.at_fraction <= 1.0:
            raise ValueError("at_fraction must be within [0, 1]")
        if self.iteration < 0 or self.task_index < 0:
            raise ValueError("iteration and task_index must be non-negative")
        if self.stage == "store":
            if self.crash_point not in VALID_CRASH_POINTS:
                raise ValueError(
                    f"store faults need crash_point in {VALID_CRASH_POINTS}"
                )
        elif self.crash_point is not None or self.byte_offset is not None:
            raise ValueError("crash_point/byte_offset apply to the store stage only")

    def as_crash_point(self) -> CrashPoint:
        """The :class:`CrashPoint` view of a ``"store"`` stage fault."""
        if self.stage != "store":
            raise ValueError("not a store fault")
        return CrashPoint(
            point=self.crash_point,
            shard=self.task_index,
            occurrence=self.iteration,
            byte_offset=self.byte_offset,
        )


class FaultInjector:
    """Deterministic lookup of injected failures per (iteration, stage)."""

    def __init__(self, faults: Iterable[FaultSpec] = ()) -> None:
        self._by_key: Dict[Tuple[int, str], Dict[int, FaultSpec]] = {}
        self._crash_points: Dict[Tuple[str, int], Dict[int, CrashPoint]] = {}
        for fault in faults:
            self.add(fault)

    def add(self, fault: FaultSpec) -> None:
        """Register one failure (worker failures expand to map+reduce)."""
        if fault.stage == "store":
            self.add_crash_point(fault.as_crash_point())
            return
        if fault.stage == "worker":
            for stage in ("map", "reduce"):
                expanded = FaultSpec(
                    fault.iteration, stage, fault.task_index, fault.at_fraction
                )
                self._by_key.setdefault(
                    (fault.iteration, stage), {}
                )[fault.task_index] = expanded
            return
        self._by_key.setdefault((fault.iteration, fault.stage), {})[
            fault.task_index
        ] = fault

    def add_crash_point(self, crash: CrashPoint) -> None:
        """Register one store crash site."""
        self._crash_points.setdefault((crash.point, crash.shard), {})[
            crash.occurrence
        ] = crash

    def crash_for(self, point: str, shard: int, occurrence: int):
        """The store crash injected at this hit of (point, shard), or None."""
        return self._crash_points.get((point, shard), {}).get(occurrence)

    def fault_for(self, iteration: int, stage: str, task_index: int):
        """The failure injected into this task, or None."""
        return self._by_key.get((iteration, stage), {}).get(task_index)

    def num_faults(self) -> int:
        """Total registered task failures (store crashes included)."""
        return sum(len(v) for v in self._by_key.values()) + sum(
            len(v) for v in self._crash_points.values()
        )

    @classmethod
    def random(
        cls,
        num_faults: int,
        num_iterations: int,
        num_tasks: int,
        seed: int = 0,
        stages: Tuple[str, ...] = ("map", "reduce"),
    ) -> "FaultInjector":
        """Seeded random failures, like the paper's manual injection."""
        rng = np.random.RandomState(seed)
        faults: List[FaultSpec] = []
        for _ in range(num_faults):
            faults.append(
                FaultSpec(
                    iteration=int(rng.randint(0, num_iterations)),
                    stage=stages[int(rng.randint(0, len(stages)))],
                    task_index=int(rng.randint(0, num_tasks)),
                    at_fraction=float(rng.uniform(0.1, 0.9)),
                )
            )
        return cls(faults)
