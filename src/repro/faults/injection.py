"""Failure injection for the iterative engines (§6.1, Fig 13) and the store.

The paper "manually and randomly inject[s] some errors" into prime Map
and prime Reduce tasks; here failures are declared as :class:`FaultSpec`
entries (or drawn from a seeded generator) and applied deterministically
by the :class:`repro.faults.context.FaultContext`.

Beyond the paper's task-level failures, the ``"store"`` stage injects
*crashes into MRBG-Store operations*: a :class:`CrashPoint` names one of
the store's durability-protocol sites (``wal-append``,
``pre-index-swap``, ``mid-compact-write``, ``post-compact-pre-swap``)
and kills the operation there — optionally tearing a WAL append at a
byte offset — so the durability suite can prove byte-identical recovery
at every point.  Store crashes surface as :class:`InjectedCrash`; the
crashed store releases its file handles without flushing anything
further, exactly like a killed process, and the next ``open()`` runs
recovery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

VALID_STAGES = ("map", "reduce", "worker", "store", "task")

#: Named crash sites inside the MRBG-Store durability protocol.
VALID_CRASH_POINTS = (
    "wal-append",
    "pre-index-swap",
    "pre-dir-fsync",
    "mid-compact-write",
    "post-compact-pre-swap",
)

#: Fault kinds the ``"task"`` stage can inject into executor task attempts.
VALID_TASK_FAULT_KINDS = ("transient", "worker-kill", "slowdown")


class InjectedTaskFault(Exception):
    """A task attempt was killed by an injected transient fault.

    Raised inside the guarded task wrapper *before* the user function
    runs (so no partial side effects exist), captured by
    :class:`repro.resilience.ResilientExecutor` and converted into a
    retry with simulated backoff.
    """

    def __init__(self, task_index: int, occurrence: int) -> None:
        super().__init__(
            f"injected transient fault in task {task_index} "
            f"(occurrence {occurrence})"
        )
        self.task_index = task_index
        self.occurrence = occurrence


class InjectedWorkerDeath(Exception):
    """An injected ``worker-kill`` directive took the executing worker down.

    Inside a real process-pool child the guard calls ``os._exit`` instead
    (producing a genuine ``BrokenProcessPool``); this exception is the
    in-process form that escapes the guard so the resilient executor can
    run its degradation ladder (process → thread → serial).
    """

    def __init__(self, task_index: int, occurrence: int) -> None:
        super().__init__(
            f"injected worker death while running task {task_index} "
            f"(occurrence {occurrence})"
        )
        self.task_index = task_index
        self.occurrence = occurrence


class InjectedCrash(Exception):
    """A store operation was killed by an injected :class:`CrashPoint`.

    Raised out of the store operation that hit the crash site; the store
    has already released its file handles without flushing anything
    further.  Callers simulating recovery discard the store object and
    reopen the directory.
    """

    def __init__(self, point: str, shard: int, occurrence: int) -> None:
        super().__init__(
            f"injected crash at {point!r} (shard {shard}, occurrence {occurrence})"
        )
        self.point = point
        self.shard = shard
        self.occurrence = occurrence


@dataclass(frozen=True)
class CrashDirective:
    """What a store fault hook answers when a crash point fires.

    Attributes:
        byte_offset: for ``wal-append`` — how many bytes of the record
            being appended reach the file before the kill (``None``
            means the record never makes it at all).  Ignored at the
            other crash points.
        occurrence: which hit of the crash site fired (echoed into the
            resulting :class:`InjectedCrash` for diagnostics).
    """

    byte_offset: Optional[int] = None
    occurrence: int = 0


@dataclass(frozen=True)
class TaskFaultDirective:
    """What a task fault hook answers when an injected task fault fires.

    Consulted by :class:`repro.resilience.ResilientExecutor` in the
    *parent* process before dispatching each attempt; the directive is
    plain data so it can ride inside a picklable guarded payload.

    Attributes:
        kind: one of :data:`VALID_TASK_FAULT_KINDS` — ``"transient"``
            raises :class:`InjectedTaskFault` before the user function
            runs (retryable), ``"worker-kill"`` takes the executing
            worker down (``os._exit`` in a real pool child, otherwise
            :class:`InjectedWorkerDeath`), ``"slowdown"`` sleeps
            ``slow_s`` host seconds before running normally (straggler).
        slow_s: host-clock sleep for ``"slowdown"`` directives.
        occurrence: which consult of this task index fired (echoed into
            the resulting exception for diagnostics).
    """

    kind: str
    slow_s: float = 0.0
    occurrence: int = 0


@dataclass(frozen=True)
class TaskFault:
    """One injected executor-level task fault.

    Attributes:
        kind: fault kind, one of :data:`VALID_TASK_FAULT_KINDS`.
        task_index: index of the task within its submitted batch.
        occurrence: which *consult* of this task index fires — the
            first attempt of a task is occurrence 0, its first retry is
            occurrence 1, and so on; earlier consults proceed normally.
        slow_s: for ``"slowdown"`` — how long the attempt sleeps on the
            host clock before running (long enough to trip a straggler
            timeout).
    """

    kind: str
    task_index: int
    occurrence: int = 0
    slow_s: float = 0.05

    def __post_init__(self) -> None:
        if self.kind not in VALID_TASK_FAULT_KINDS:
            raise ValueError(f"kind must be one of {VALID_TASK_FAULT_KINDS}")
        if self.task_index < 0 or self.occurrence < 0:
            raise ValueError("task_index and occurrence must be non-negative")
        if self.slow_s < 0:
            raise ValueError("slow_s must be non-negative")

    def directive(self) -> TaskFaultDirective:
        """The plain-data directive handed to the guarded payload."""
        return TaskFaultDirective(
            kind=self.kind, slow_s=self.slow_s, occurrence=self.occurrence
        )


@dataclass(frozen=True)
class CrashPoint:
    """One injected store crash: kill an operation at a named point.

    Attributes:
        point: crash site, one of :data:`VALID_CRASH_POINTS`.
        shard: shard index the crash applies to (0 for unsharded stores).
        occurrence: which hit of this (point, shard) site crashes — the
            first hit is occurrence 0; earlier hits proceed normally.
        byte_offset: for ``wal-append``, tear the record at this byte
            offset instead of dropping it whole.
    """

    point: str
    shard: int = 0
    occurrence: int = 0
    byte_offset: Optional[int] = None

    def __post_init__(self) -> None:
        if self.point not in VALID_CRASH_POINTS:
            raise ValueError(f"point must be one of {VALID_CRASH_POINTS}")
        if self.shard < 0 or self.occurrence < 0:
            raise ValueError("shard and occurrence must be non-negative")
        if self.byte_offset is not None and self.byte_offset < 0:
            raise ValueError("byte_offset must be non-negative")


@dataclass(frozen=True)
class FaultSpec:
    """One injected failure.

    Attributes:
        iteration: iteration index in which the task fails.  For the
            ``"store"`` stage this is the crash *occurrence* ordinal
            (the Nth hit of the crash point crashes).
        stage: ``"map"``, ``"reduce"``, ``"worker"`` (a worker failure
            kills both co-located prime tasks, §6.1 case iii),
            ``"store"`` (an MRBG-Store operation crash), or ``"task"``
            (an executor-level task-attempt fault).
        task_index: prime task index (= partition index).  For the
            ``"store"`` stage this is the shard index; for the
            ``"task"`` stage the index within the submitted batch.
        at_fraction: fraction of the task's work done when it fails
            (Fig 13 stages only).
        crash_point: ``"store"`` stage only — the named crash site, one
            of :data:`VALID_CRASH_POINTS`.
        byte_offset: ``"store"`` stage only — tear the WAL append at
            this byte offset (``wal-append`` point).
        task_kind: ``"task"`` stage only — fault kind, one of
            :data:`VALID_TASK_FAULT_KINDS`.  For the ``"task"`` stage
            ``iteration`` is the *consult occurrence* (the Nth attempt
            of the task faults).
        slow_s: ``"task"`` stage only — host sleep for ``"slowdown"``.
    """

    iteration: int
    stage: str
    task_index: int
    at_fraction: float = 0.5
    crash_point: Optional[str] = None
    byte_offset: Optional[int] = None
    task_kind: Optional[str] = None
    slow_s: float = 0.05

    def __post_init__(self) -> None:
        if self.stage not in VALID_STAGES:
            raise ValueError(f"stage must be one of {VALID_STAGES}")
        if not 0.0 <= self.at_fraction <= 1.0:
            raise ValueError("at_fraction must be within [0, 1]")
        if self.iteration < 0 or self.task_index < 0:
            raise ValueError("iteration and task_index must be non-negative")
        if self.stage == "store":
            if self.crash_point not in VALID_CRASH_POINTS:
                raise ValueError(
                    f"store faults need crash_point in {VALID_CRASH_POINTS}"
                )
        elif self.crash_point is not None or self.byte_offset is not None:
            raise ValueError("crash_point/byte_offset apply to the store stage only")
        if self.stage == "task":
            if self.task_kind not in VALID_TASK_FAULT_KINDS:
                raise ValueError(
                    f"task faults need task_kind in {VALID_TASK_FAULT_KINDS}"
                )
        elif self.task_kind is not None:
            raise ValueError("task_kind applies to the task stage only")

    def as_crash_point(self) -> CrashPoint:
        """The :class:`CrashPoint` view of a ``"store"`` stage fault."""
        if self.stage != "store":
            raise ValueError("not a store fault")
        return CrashPoint(
            point=self.crash_point,
            shard=self.task_index,
            occurrence=self.iteration,
            byte_offset=self.byte_offset,
        )

    def as_task_fault(self) -> TaskFault:
        """The :class:`TaskFault` view of a ``"task"`` stage fault."""
        if self.stage != "task":
            raise ValueError("not a task fault")
        return TaskFault(
            kind=self.task_kind,
            task_index=self.task_index,
            occurrence=self.iteration,
            slow_s=self.slow_s,
        )


class FaultInjector:
    """Deterministic lookup of injected failures per (iteration, stage)."""

    def __init__(self, faults: Iterable[FaultSpec] = ()) -> None:
        self._by_key: Dict[Tuple[int, str], Dict[int, FaultSpec]] = {}
        self._crash_points: Dict[Tuple[str, int], Dict[int, CrashPoint]] = {}
        self._task_faults: Dict[int, Dict[int, TaskFault]] = {}
        for fault in faults:
            self.add(fault)

    def add(self, fault: FaultSpec) -> None:
        """Register one failure (worker failures expand to map+reduce)."""
        if fault.stage == "store":
            self.add_crash_point(fault.as_crash_point())
            return
        if fault.stage == "task":
            self.add_task_fault(fault.as_task_fault())
            return
        if fault.stage == "worker":
            for stage in ("map", "reduce"):
                expanded = FaultSpec(
                    fault.iteration, stage, fault.task_index, fault.at_fraction
                )
                self._by_key.setdefault(
                    (fault.iteration, stage), {}
                )[fault.task_index] = expanded
            return
        self._by_key.setdefault((fault.iteration, fault.stage), {})[
            fault.task_index
        ] = fault

    def add_crash_point(self, crash: CrashPoint) -> None:
        """Register one store crash site."""
        self._crash_points.setdefault((crash.point, crash.shard), {})[
            crash.occurrence
        ] = crash

    def crash_for(self, point: str, shard: int, occurrence: int):
        """The store crash injected at this hit of (point, shard), or None."""
        return self._crash_points.get((point, shard), {}).get(occurrence)

    def add_task_fault(self, fault: TaskFault) -> None:
        """Register one executor-level task fault."""
        self._task_faults.setdefault(fault.task_index, {})[
            fault.occurrence
        ] = fault

    def task_fault_for(self, task_index: int, occurrence: int):
        """The task fault injected at this consult of ``task_index``, or None."""
        return self._task_faults.get(task_index, {}).get(occurrence)

    def fault_for(self, iteration: int, stage: str, task_index: int):
        """The failure injected into this task, or None."""
        return self._by_key.get((iteration, stage), {}).get(task_index)

    def num_faults(self) -> int:
        """Total registered failures (store crashes and task faults included)."""
        return (
            sum(len(v) for v in self._by_key.values())
            + sum(len(v) for v in self._crash_points.values())
            + sum(len(v) for v in self._task_faults.values())
        )

    @classmethod
    def random(
        cls,
        num_faults: int,
        num_iterations: int,
        num_tasks: int,
        seed: int = 0,
        stages: Tuple[str, ...] = ("map", "reduce"),
    ) -> "FaultInjector":
        """Seeded random failures, like the paper's manual injection."""
        rng = np.random.RandomState(seed)
        faults: List[FaultSpec] = []
        for _ in range(num_faults):
            faults.append(
                FaultSpec(
                    iteration=int(rng.randint(0, num_iterations)),
                    stage=stages[int(rng.randint(0, len(stages)))],
                    task_index=int(rng.randint(0, num_tasks)),
                    at_fraction=float(rng.uniform(0.1, 0.9)),
                )
            )
        return cls(faults)
