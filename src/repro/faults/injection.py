"""Failure injection for the iterative engines (§6.1, Fig 13).

The paper "manually and randomly inject[s] some errors" into prime Map
and prime Reduce tasks; here failures are declared as :class:`FaultSpec`
entries (or drawn from a seeded generator) and applied deterministically
by the :class:`repro.faults.context.FaultContext`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

import numpy as np

VALID_STAGES = ("map", "reduce", "worker")


@dataclass(frozen=True)
class FaultSpec:
    """One injected failure.

    Attributes:
        iteration: iteration index in which the task fails.
        stage: ``"map"``, ``"reduce"``, or ``"worker"`` (a worker failure
            kills both co-located prime tasks, §6.1 case iii).
        task_index: prime task index (= partition index).
        at_fraction: fraction of the task's work done when it fails.
    """

    iteration: int
    stage: str
    task_index: int
    at_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.stage not in VALID_STAGES:
            raise ValueError(f"stage must be one of {VALID_STAGES}")
        if not 0.0 <= self.at_fraction <= 1.0:
            raise ValueError("at_fraction must be within [0, 1]")
        if self.iteration < 0 or self.task_index < 0:
            raise ValueError("iteration and task_index must be non-negative")


class FaultInjector:
    """Deterministic lookup of injected failures per (iteration, stage)."""

    def __init__(self, faults: Iterable[FaultSpec] = ()) -> None:
        self._by_key: Dict[Tuple[int, str], Dict[int, FaultSpec]] = {}
        for fault in faults:
            self.add(fault)

    def add(self, fault: FaultSpec) -> None:
        """Register one failure (worker failures expand to map+reduce)."""
        if fault.stage == "worker":
            for stage in ("map", "reduce"):
                expanded = FaultSpec(
                    fault.iteration, stage, fault.task_index, fault.at_fraction
                )
                self._by_key.setdefault(
                    (fault.iteration, stage), {}
                )[fault.task_index] = expanded
            return
        self._by_key.setdefault((fault.iteration, fault.stage), {})[
            fault.task_index
        ] = fault

    def fault_for(self, iteration: int, stage: str, task_index: int):
        """The failure injected into this task, or None."""
        return self._by_key.get((iteration, stage), {}).get(task_index)

    def num_faults(self) -> int:
        """Total registered task failures."""
        return sum(len(v) for v in self._by_key.values())

    @classmethod
    def random(
        cls,
        num_faults: int,
        num_iterations: int,
        num_tasks: int,
        seed: int = 0,
        stages: Tuple[str, ...] = ("map", "reduce"),
    ) -> "FaultInjector":
        """Seeded random failures, like the paper's manual injection."""
        rng = np.random.RandomState(seed)
        faults: List[FaultSpec] = []
        for _ in range(num_faults):
            faults.append(
                FaultSpec(
                    iteration=int(rng.randint(0, num_iterations)),
                    stage=stages[int(rng.randint(0, len(stages)))],
                    task_index=int(rng.randint(0, num_tasks)),
                    at_fraction=float(rng.uniform(0.1, 0.9)),
                )
            )
        return cls(faults)
