"""Task execution timelines (the data behind Fig 13)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class TaskEvent:
    """One task execution interval in simulated global time."""

    task_id: str
    kind: str
    iteration: int
    worker: int
    start: float
    end: float
    failed_at: Optional[float] = None
    recovered_at: Optional[float] = None

    @property
    def failed(self) -> bool:
        """Whether this event includes an injected failure."""
        return self.failed_at is not None

    @property
    def recovery_time(self) -> float:
        """Seconds from failure to resumed execution (0 if no failure)."""
        if self.failed_at is None or self.recovered_at is None:
            return 0.0
        return self.recovered_at - self.failed_at


@dataclass
class Timeline:
    """All task events of a run, in insertion order."""

    events: List[TaskEvent] = field(default_factory=list)

    def add(self, event: TaskEvent) -> None:
        """Append one task event."""
        self.events.append(event)

    def failures(self) -> List[TaskEvent]:
        """Events that include an injected failure."""
        return [event for event in self.events if event.failed]

    def max_recovery_time(self) -> float:
        """Worst failure-to-recovery latency across the run."""
        return max((event.recovery_time for event in self.failures()), default=0.0)

    def duration(self) -> float:
        """End time of the last task."""
        return max((event.end for event in self.events), default=0.0)

    def rows(self) -> List[tuple]:
        """Tabular form for reports: one row per event."""
        return [
            (
                event.task_id,
                event.kind,
                event.iteration,
                event.worker,
                round(event.start, 2),
                round(event.end, 2),
                round(event.failed_at, 2) if event.failed_at is not None else None,
                round(event.recovery_time, 2) if event.failed else None,
            )
            for event in self.events
        ]
