"""Hadoop-like MapReduce engine over the simulated cluster."""

from repro.mapreduce.api import (
    Context,
    IdentityMapper,
    IdentityReducer,
    Mapper,
    Reducer,
    default_partitioner,
)
from repro.mapreduce.engine import MapInputSplit, MapReduceEngine
from repro.mapreduce.job import JobConf, JobResult

__all__ = [
    "Context",
    "IdentityMapper",
    "IdentityReducer",
    "Mapper",
    "Reducer",
    "default_partitioner",
    "MapInputSplit",
    "MapReduceEngine",
    "JobConf",
    "JobResult",
]
