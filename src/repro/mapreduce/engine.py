"""The vanilla (Hadoop-like) MapReduce execution engine.

The engine executes real user map/reduce functions over real records and
charges simulated time per the cluster cost model:

- **map**: read the input block (local disk if the task was scheduled on a
  replica holder, network otherwise), parse it, invoke ``map`` per record,
  partition + sort the intermediate output, and spill it to local disk;
- **shuffle**: each reduce task fetches its partition from every map task
  (free of network cost when map and reduce ran on the same worker);
- **sort**: reduce-side merge of the sorted map spills;
- **reduce**: invoke ``reduce`` per group and write the output to the DFS.

The phases are exposed individually (``map_phase`` / ``reduce_phase``) so
the incremental and iterative engines can recompose them.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.cluster.cluster import Cluster
from repro.cluster.metrics import Counters, JobMetrics, StageTimes
from repro.cluster.scheduler import TaskSpec, schedule_stage
from repro.common.kvpair import group_sorted, sort_key
from repro.common.sizeof import record_size
from repro.dfs.filesystem import Block, DistributedFS
from repro.mapreduce.api import Context, Mapper, Reducer
from repro.mapreduce.job import JobConf, JobResult

#: A source of map input: records plus their physical placement metadata.
@dataclass
class MapInputSplit:
    """One map task's input: a record list plus placement/size metadata."""

    records: Sequence[Tuple[Any, Any]]
    size_bytes: int
    locations: Sequence[int] = ()
    parse_needed: bool = True

    @classmethod
    def from_block(cls, block: Block) -> "MapInputSplit":
        return cls(
            records=block.records,
            size_bytes=block.size_bytes,
            locations=block.locations,
        )


@dataclass
class MapTaskOutput:
    """Intermediate state produced by one map task."""

    task_index: int
    worker: int
    #: partition index -> key-sorted list of (K2, V2)
    partitions: Dict[int, List[Tuple[Any, Any]]]
    partition_bytes: Dict[int, int]
    cost_s: float


@dataclass
class MapPhaseResult:
    """Aggregate result of the map phase."""

    tasks: List[MapTaskOutput]
    elapsed_s: float
    counters: Counters


@dataclass
class ReducePhaseResult:
    """Aggregate result of shuffle + sort + reduce."""

    outputs: Dict[int, List[Tuple[Any, Any]]]
    shuffle_s: float
    sort_s: float
    reduce_s: float
    counters: Counters


class MapReduceEngine:
    """Runs :class:`JobConf` jobs on a simulated cluster."""

    def __init__(self, cluster: Cluster, dfs: DistributedFS) -> None:
        self.cluster = cluster
        self.dfs = dfs

    # ------------------------------------------------------------------ #
    # public entry point                                                 #
    # ------------------------------------------------------------------ #

    def run(self, jobconf: JobConf, charge_startup: bool = True) -> JobResult:
        """Execute one MapReduce job and write its output to the DFS."""
        jobconf.validate()
        splits = self.splits_for_inputs(jobconf.inputs)
        map_result = self.map_phase(jobconf, splits)
        reduce_result = self.reduce_phase(jobconf, map_result)

        output_records: List[Tuple[Any, Any]] = []
        for partition in sorted(reduce_result.outputs):
            output_records.extend(reduce_result.outputs[partition])
        self.dfs.write(jobconf.output, output_records, overwrite=True)

        metrics = JobMetrics()
        if charge_startup:
            metrics.times.startup = self.cluster.cost_model.job_startup_s
        metrics.times.map = map_result.elapsed_s
        metrics.times.shuffle = reduce_result.shuffle_s
        metrics.times.sort = reduce_result.sort_s
        metrics.times.reduce = reduce_result.reduce_s
        metrics.counters.merge(map_result.counters)
        metrics.counters.merge(reduce_result.counters)
        return JobResult(output=jobconf.output, metrics=metrics)

    # ------------------------------------------------------------------ #
    # map phase                                                          #
    # ------------------------------------------------------------------ #

    def splits_for_inputs(self, inputs: Sequence[str]) -> List[MapInputSplit]:
        """One map input split per DFS block of the input paths."""
        splits: List[MapInputSplit] = []
        for path in inputs:
            for block in self.dfs.file(path).blocks:
                splits.append(MapInputSplit.from_block(block))
        return splits

    def map_phase(
        self,
        jobconf: JobConf,
        splits: Sequence[MapInputSplit],
    ) -> MapPhaseResult:
        """Run one map task per split; returns sorted partitioned output."""
        cost = self.cluster.cost_model
        counters = Counters()
        raw_tasks: List[MapTaskOutput] = []
        specs: List[TaskSpec] = []

        for index, split in enumerate(splits):
            mapper = jobconf.mapper()
            ctx = Context()
            mapper.setup(ctx)
            for key, value in split.records:
                mapper.map(key, value, ctx)
            mapper.cleanup(ctx)
            emitted = ctx.take()
            counters.merge(ctx.counters)
            counters.add("map_input_records", len(split.records))
            counters.add("map_input_bytes", split.size_bytes)
            counters.add("map_output_records", len(emitted))

            partitions, partition_bytes = self._partition_and_sort(
                emitted, jobconf, counters
            )

            task_cost = cost.disk_read_time(split.size_bytes)
            if split.parse_needed:
                task_cost += cost.parse_time(split.size_bytes)
            task_cost += cost.cpu_time(len(split.records), jobconf.mapper().cpu_weight)
            task_cost += cost.sort_time(len(emitted))
            spill_bytes = sum(partition_bytes.values())
            task_cost += cost.disk_write_time(spill_bytes)
            counters.add("map_spill_bytes", spill_bytes)

            raw_tasks.append(
                MapTaskOutput(
                    task_index=index,
                    worker=-1,
                    partitions=partitions,
                    partition_bytes=partition_bytes,
                    cost_s=task_cost,
                )
            )
            specs.append(
                TaskSpec(
                    task_id=str(index),
                    cost_s=task_cost,
                    preferred_workers=list(split.locations),
                )
            )

        schedule = self.cluster.run_tasks(specs)
        counters.add("map_locality_misses", schedule.locality_misses)

        # Non-local tasks pay a network transfer of their input on top of
        # the locally-computed cost.
        loads = list(schedule.worker_loads)
        for index, split in enumerate(splits):
            worker = schedule.assignment[str(index)]
            raw_tasks[index].worker = worker
            if split.locations and worker not in split.locations:
                extra = cost.net_time(split.size_bytes)
                loads[worker] += extra
                counters.add("map_remote_input_bytes", split.size_bytes)
        elapsed = max(loads) if loads else 0.0
        return MapPhaseResult(tasks=raw_tasks, elapsed_s=elapsed, counters=counters)

    def _partition_and_sort(
        self,
        emitted: List[Tuple[Any, Any]],
        jobconf: JobConf,
        counters: Counters,
    ) -> Tuple[Dict[int, List[Tuple[Any, Any]]], Dict[int, int]]:
        partitions: Dict[int, List[Tuple[Any, Any]]] = {}
        for key, value in emitted:
            part = jobconf.partitioner(key, jobconf.num_reducers)
            partitions.setdefault(part, []).append((key, value))
        partition_bytes: Dict[int, int] = {}
        for part, pairs in partitions.items():
            pairs.sort(key=lambda kv: sort_key(kv[0]))
            if jobconf.combiner is not None:
                pairs = self._apply_combiner(jobconf, pairs, counters)
                partitions[part] = pairs
            partition_bytes[part] = sum(record_size(k, v) for k, v in pairs)
        return partitions, partition_bytes

    def _apply_combiner(
        self,
        jobconf: JobConf,
        pairs: List[Tuple[Any, Any]],
        counters: Counters,
    ) -> List[Tuple[Any, Any]]:
        combiner = jobconf.combiner()
        ctx = Context()
        combiner.setup(ctx)
        for key, values in group_sorted(pairs):
            combiner.reduce(key, values, ctx)
        combiner.cleanup(ctx)
        combined = ctx.take()
        combined.sort(key=lambda kv: sort_key(kv[0]))
        counters.add("combine_input_records", len(pairs))
        counters.add("combine_output_records", len(combined))
        return combined

    # ------------------------------------------------------------------ #
    # shuffle + sort + reduce                                            #
    # ------------------------------------------------------------------ #

    def reduce_worker(self, partition: int) -> int:
        """Deterministic placement of reduce task ``partition``."""
        return partition % self.cluster.num_workers

    def reduce_phase(
        self,
        jobconf: JobConf,
        map_result: MapPhaseResult,
        reducer_override: Optional[Callable[[], Reducer]] = None,
        group_sink: Optional[Callable[[int, Any, List[Any]], None]] = None,
        cached_runs: Optional[Dict[int, List[Tuple[List[Tuple[Any, Any]], int]]]] = None,
    ) -> ReducePhaseResult:
        """Shuffle, merge and reduce the map phase's output.

        Args:
            reducer_override: substitute reducer factory (used by engines
                that wrap the user reducer).
            group_sink: optional callback invoked per ``(partition, key,
                values)`` group *before* the reducer runs; the incremental
                engine uses it to persist MRBGraph chunks.
            cached_runs: per-partition sorted runs already materialized on
                the reduce worker's local disk (HaLoop's reducer-input
                cache); charged as local reads instead of shuffle traffic.
        """
        cost = self.cluster.cost_model
        counters = Counters()
        reducer_factory = reducer_override or jobconf.reducer

        shuffle_loads = [0.0] * self.cluster.num_workers
        sort_loads = [0.0] * self.cluster.num_workers
        reduce_loads = [0.0] * self.cluster.num_workers
        outputs: Dict[int, List[Tuple[Any, Any]]] = {}

        for part in range(jobconf.num_reducers):
            worker = self.reduce_worker(part)
            runs: List[List[Tuple[Any, Any]]] = []
            fetch_s = 0.0
            total_bytes = 0
            for task in map_result.tasks:
                pairs = task.partitions.get(part)
                if not pairs:
                    continue
                nbytes = task.partition_bytes.get(part, 0)
                total_bytes += nbytes
                if task.worker == worker:
                    fetch_s += cost.disk_read_time(nbytes)
                else:
                    fetch_s += cost.net_time(nbytes)
                    counters.add("shuffle_net_bytes", nbytes)
                runs.append(pairs)
            if cached_runs is not None:
                for run, nbytes in cached_runs.get(part, []):
                    runs.append(run)
                    total_bytes += nbytes
                    fetch_s += cost.disk_read_time(nbytes)
                    counters.add("reducer_cache_bytes", nbytes)
            counters.add("shuffle_bytes", total_bytes)
            shuffle_loads[worker] += fetch_s

            merged = list(heapq.merge(*runs, key=lambda kv: sort_key(kv[0])))
            sort_loads[worker] += cost.sort_time(len(merged))
            counters.add("reduce_input_records", len(merged))

            reducer = reducer_factory()
            ctx = Context()
            reducer.setup(ctx)
            groups = 0
            for key, values in group_sorted(merged):
                groups += 1
                if group_sink is not None:
                    group_sink(part, key, values)
                reducer.reduce(key, values, ctx)
            reducer.cleanup(ctx)
            emitted = ctx.take()
            counters.merge(ctx.counters)
            counters.add("reduce_input_groups", groups)
            counters.add("reduce_output_records", len(emitted))
            out_bytes = sum(record_size(k, v) for k, v in emitted)
            counters.add("reduce_output_bytes", out_bytes)

            reduce_loads[worker] += cost.cpu_time(len(merged), reducer.cpu_weight)
            reduce_loads[worker] += cost.disk_write_time(out_bytes)
            if self.dfs.replication > 1:
                reduce_loads[worker] += cost.net_time(
                    out_bytes * (self.dfs.replication - 1)
                )
            outputs[part] = emitted

        return ReducePhaseResult(
            outputs=outputs,
            shuffle_s=max(shuffle_loads),
            sort_s=max(sort_loads),
            reduce_s=max(reduce_loads),
            counters=counters,
        )
