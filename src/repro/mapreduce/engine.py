"""The vanilla (Hadoop-like) MapReduce execution engine.

The engine executes real user map/reduce functions over real records and
charges simulated time per the cluster cost model:

- **map**: read the input block (local disk if the task was scheduled on a
  replica holder, network otherwise), parse it, invoke ``map`` per record,
  partition + sort the intermediate output, and spill it to local disk;
- **shuffle**: each reduce task fetches its partition from every map task
  (free of network cost when map and reduce ran on the same worker);
- **sort**: reduce-side merge of the sorted map spills;
- **reduce**: invoke ``reduce`` per group and write the output to the DFS.

The phases are exposed individually (``map_phase`` / ``reduce_phase``) so
the incremental and iterative engines can recompose them.

Task batches are dispatched through a pluggable host execution backend
(:mod:`repro.execution`): each map/reduce task is a self-contained,
picklable payload executed by a module-level function, and per-task
results (partitions, counters, byte counts) are merged deterministically
in task-index order after the batch completes.  Simulated cluster time
is computed from the merged results in the parent, so it is identical
whether tasks ran serially, on threads or on processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.cluster.cluster import Cluster
from repro.cluster.metrics import Counters, JobMetrics, StageTimes
from repro.cluster.scheduler import TaskSpec, schedule_stage
from repro.common.kvpair import group_sorted, merge_sorted_runs, sort_records
from repro.common.sizeof import record_size
from repro.dfs.filesystem import Block, DistributedFS
from repro.execution import ExecutorSelector, ExecutorSpec
from repro.mapreduce.api import Context, Mapper, Partitioner, Reducer
from repro.mapreduce.job import JobConf, JobResult, MapperFactory, ReducerFactory
from repro.resilience.policy import RetryPolicy

#: A source of map input: records plus their physical placement metadata.
@dataclass
class MapInputSplit:
    """One map task's input: a record list plus placement/size metadata."""

    records: Sequence[Tuple[Any, Any]]
    size_bytes: int
    locations: Sequence[int] = ()
    parse_needed: bool = True

    @classmethod
    def from_block(cls, block: Block) -> "MapInputSplit":
        """Build a split covering one DFS block."""
        return cls(
            records=block.records,
            size_bytes=block.size_bytes,
            locations=block.locations,
        )


@dataclass
class MapTaskOutput:
    """Intermediate state produced by one map task."""

    task_index: int
    worker: int
    #: partition index -> key-sorted list of (K2, V2)
    partitions: Dict[int, List[Tuple[Any, Any]]]
    partition_bytes: Dict[int, int]
    cost_s: float


@dataclass
class MapPhaseResult:
    """Aggregate result of the map phase."""

    tasks: List[MapTaskOutput]
    elapsed_s: float
    counters: Counters


@dataclass
class ReducePhaseResult:
    """Aggregate result of shuffle + sort + reduce."""

    outputs: Dict[int, List[Tuple[Any, Any]]]
    shuffle_s: float
    sort_s: float
    reduce_s: float
    counters: Counters


# ---------------------------------------------------------------------- #
# task payloads + task functions (module-level so they pickle)           #
# ---------------------------------------------------------------------- #


@dataclass
class MapTaskPayload:
    """Everything one map task needs, free of engine references."""

    task_index: int
    mapper_factory: MapperFactory
    records: Sequence[Tuple[Any, Any]]
    size_bytes: int
    num_reducers: int
    partitioner: Partitioner
    combiner_factory: Optional[ReducerFactory] = None


@dataclass
class MapTaskRun:
    """What one map task hands back to the engine."""

    task_index: int
    partitions: Dict[int, List[Tuple[Any, Any]]]
    partition_bytes: Dict[int, int]
    counters: Counters
    #: pre-combiner emission count (what the map-side sort is charged on).
    emitted_records: int
    cpu_weight: float


def execute_map_task(payload: MapTaskPayload) -> MapTaskRun:
    """Run one map task: map every record, partition + sort + combine.

    Pure function of its payload — no engine or cluster state — so any
    :class:`repro.execution.ExecutionBackend` may run it anywhere.
    """
    counters = Counters()
    mapper = payload.mapper_factory()
    ctx = Context()
    mapper.setup(ctx)
    for key, value in payload.records:
        mapper.map(key, value, ctx)
    mapper.cleanup(ctx)
    emitted = ctx.take()
    counters.merge(ctx.counters)
    counters.add("map_input_records", len(payload.records))
    counters.add("map_input_bytes", payload.size_bytes)
    counters.add("map_output_records", len(emitted))

    partitions, partition_bytes = partition_and_sort(
        emitted,
        payload.num_reducers,
        payload.partitioner,
        payload.combiner_factory,
        counters,
    )
    counters.add("map_spill_bytes", sum(partition_bytes.values()))
    return MapTaskRun(
        task_index=payload.task_index,
        partitions=partitions,
        partition_bytes=partition_bytes,
        counters=counters,
        emitted_records=len(emitted),
        cpu_weight=mapper.cpu_weight,
    )


def partition_and_sort(
    emitted: List[Tuple[Any, Any]],
    num_reducers: int,
    partitioner: Partitioner,
    combiner_factory: Optional[ReducerFactory],
    counters: Counters,
) -> Tuple[Dict[int, List[Tuple[Any, Any]]], Dict[int, int]]:
    """Map-side spill: partition, key-sort and (optionally) combine."""
    partitions: Dict[int, List[Tuple[Any, Any]]] = {}
    for key, value in emitted:
        part = partitioner(key, num_reducers)
        partitions.setdefault(part, []).append((key, value))
    partition_bytes: Dict[int, int] = {}
    for part, pairs in partitions.items():
        pairs = sort_records(pairs)
        partitions[part] = pairs
        if combiner_factory is not None:
            pairs = _apply_combiner(combiner_factory, pairs, counters)
            partitions[part] = pairs
        partition_bytes[part] = sum(record_size(k, v) for k, v in pairs)
    return partitions, partition_bytes


def _apply_combiner(
    combiner_factory: ReducerFactory,
    pairs: List[Tuple[Any, Any]],
    counters: Counters,
) -> List[Tuple[Any, Any]]:
    combiner = combiner_factory()
    ctx = Context()
    combiner.setup(ctx)
    for key, values in group_sorted(pairs):
        combiner.reduce(key, values, ctx)
    combiner.cleanup(ctx)
    combined = ctx.take()
    combined = sort_records(combined)
    counters.add("combine_input_records", len(pairs))
    counters.add("combine_output_records", len(combined))
    return combined


@dataclass
class ReduceTaskPayload:
    """Everything one reduce task needs after the shuffle was planned."""

    partition: int
    runs: List[List[Tuple[Any, Any]]]
    reducer_factory: ReducerFactory
    #: optional per-group callback; forces in-process serial execution
    #: because it mutates caller state (see :meth:`reduce_phase`).
    group_sink: Optional[Callable[[int, Any, List[Any]], None]] = None


@dataclass
class ReduceTaskRun:
    """What one reduce task hands back to the engine."""

    partition: int
    emitted: List[Tuple[Any, Any]]
    counters: Counters
    merged_records: int
    out_bytes: int
    cpu_weight: float


def execute_reduce_task(payload: ReduceTaskPayload) -> ReduceTaskRun:
    """Run one reduce task: merge sorted runs, group, reduce."""
    counters = Counters()
    merged = merge_sorted_runs(payload.runs)
    counters.add("reduce_input_records", len(merged))

    reducer = payload.reducer_factory()
    ctx = Context()
    reducer.setup(ctx)
    groups = 0
    for key, values in group_sorted(merged):
        groups += 1
        if payload.group_sink is not None:
            payload.group_sink(payload.partition, key, values)
        reducer.reduce(key, values, ctx)
    reducer.cleanup(ctx)
    emitted = ctx.take()
    counters.merge(ctx.counters)
    counters.add("reduce_input_groups", groups)
    counters.add("reduce_output_records", len(emitted))
    out_bytes = sum(record_size(k, v) for k, v in emitted)
    counters.add("reduce_output_bytes", out_bytes)
    return ReduceTaskRun(
        partition=payload.partition,
        emitted=emitted,
        counters=counters,
        merged_records=len(merged),
        out_bytes=out_bytes,
        cpu_weight=reducer.cpu_weight,
    )


class MapReduceEngine:
    """Runs :class:`JobConf` jobs on a simulated cluster.

    Args:
        executor: engine-wide default host execution backend (name,
            backend instance, or ``None`` for the library default);
            individual jobs override it via ``JobConf.executor``.
    """

    def __init__(
        self,
        cluster: Cluster,
        dfs: DistributedFS,
        executor: ExecutorSpec = None,
    ) -> None:
        self.cluster = cluster
        self.dfs = dfs
        self.executors = ExecutorSelector(executor, cost_model=cluster.cost_model)

    def backend_for(self, jobconf: JobConf):
        """The execution backend this job's task batches run on.

        The returned backend is a
        :class:`repro.resilience.ResilientExecutor` enforcing the job's
        retry/timeout/speculation knobs (environment defaults when the
        job does not set them).
        """
        return self.executors.get(
            jobconf.executor,
            jobconf.max_workers,
            resilience=RetryPolicy.for_job(jobconf),
        )

    def close(self) -> None:
        """Shut down any host worker pools the engine created."""
        self.executors.close()

    # ------------------------------------------------------------------ #
    # public entry point                                                 #
    # ------------------------------------------------------------------ #

    def run(self, jobconf: JobConf, charge_startup: bool = True) -> JobResult:
        """Execute one MapReduce job and write its output to the DFS."""
        jobconf.validate()
        splits = self.splits_for_inputs(jobconf.inputs)
        map_result = self.map_phase(jobconf, splits)
        reduce_result = self.reduce_phase(jobconf, map_result)

        output_records: List[Tuple[Any, Any]] = []
        for partition in sorted(reduce_result.outputs):
            output_records.extend(reduce_result.outputs[partition])
        self.dfs.write(jobconf.output, output_records, overwrite=True)

        metrics = JobMetrics()
        if charge_startup:
            metrics.times.startup = self.cluster.cost_model.job_startup_s
        metrics.times.map = map_result.elapsed_s
        metrics.times.shuffle = reduce_result.shuffle_s
        metrics.times.sort = reduce_result.sort_s
        metrics.times.reduce = reduce_result.reduce_s
        metrics.counters.merge(map_result.counters)
        metrics.counters.merge(reduce_result.counters)
        return JobResult(output=jobconf.output, metrics=metrics)

    # ------------------------------------------------------------------ #
    # map phase                                                          #
    # ------------------------------------------------------------------ #

    def splits_for_inputs(self, inputs: Sequence[str]) -> List[MapInputSplit]:
        """One map input split per DFS block of the input paths."""
        splits: List[MapInputSplit] = []
        for path in inputs:
            for block in self.dfs.file(path).blocks:
                splits.append(MapInputSplit.from_block(block))
        return splits

    def map_phase(
        self,
        jobconf: JobConf,
        splits: Sequence[MapInputSplit],
    ) -> MapPhaseResult:
        """Run one map task per split; returns sorted partitioned output.

        Tasks execute through the job's execution backend; results are
        merged and costed in task-index order, so the returned phase
        result is identical across backends.
        """
        cost = self.cluster.cost_model
        counters = Counters()
        raw_tasks: List[MapTaskOutput] = []
        specs: List[TaskSpec] = []

        payloads = [
            MapTaskPayload(
                task_index=index,
                mapper_factory=jobconf.mapper,
                records=split.records,
                size_bytes=split.size_bytes,
                num_reducers=jobconf.num_reducers,
                partitioner=jobconf.partitioner,
                combiner_factory=jobconf.combiner,
            )
            for index, split in enumerate(splits)
        ]
        runs = self.backend_for(jobconf).run_tasks(execute_map_task, payloads)

        for run in sorted(runs, key=lambda r: r.task_index):
            index = run.task_index
            split = splits[index]
            counters.merge(run.counters)

            task_cost = cost.disk_read_time(split.size_bytes)
            if split.parse_needed:
                task_cost += cost.parse_time(split.size_bytes)
            task_cost += cost.cpu_time(len(split.records), run.cpu_weight)
            task_cost += cost.sort_time(run.emitted_records)
            spill_bytes = sum(run.partition_bytes.values())
            task_cost += cost.disk_write_time(spill_bytes)

            raw_tasks.append(
                MapTaskOutput(
                    task_index=index,
                    worker=-1,
                    partitions=run.partitions,
                    partition_bytes=run.partition_bytes,
                    cost_s=task_cost,
                )
            )
            specs.append(
                TaskSpec(
                    task_id=str(index),
                    cost_s=task_cost,
                    preferred_workers=list(split.locations),
                )
            )

        schedule = self.cluster.run_tasks(specs)
        counters.add("map_locality_misses", schedule.locality_misses)

        # Non-local tasks pay a network transfer of their input on top of
        # the locally-computed cost.
        loads = list(schedule.worker_loads)
        for index, split in enumerate(splits):
            worker = schedule.assignment[str(index)]
            raw_tasks[index].worker = worker
            if split.locations and worker not in split.locations:
                extra = cost.net_time(split.size_bytes)
                loads[worker] += extra
                counters.add("map_remote_input_bytes", split.size_bytes)
        elapsed = max(loads) if loads else 0.0
        return MapPhaseResult(tasks=raw_tasks, elapsed_s=elapsed, counters=counters)

    # ------------------------------------------------------------------ #
    # shuffle + sort + reduce                                            #
    # ------------------------------------------------------------------ #

    def reduce_worker(self, partition: int) -> int:
        """Deterministic placement of reduce task ``partition``."""
        return partition % self.cluster.num_workers

    def reduce_phase(
        self,
        jobconf: JobConf,
        map_result: MapPhaseResult,
        reducer_override: Optional[Callable[[], Reducer]] = None,
        group_sink: Optional[Callable[[int, Any, List[Any]], None]] = None,
        cached_runs: Optional[Dict[int, List[Tuple[List[Tuple[Any, Any]], int]]]] = None,
    ) -> ReducePhaseResult:
        """Shuffle, merge and reduce the map phase's output.

        Args:
            reducer_override: substitute reducer factory (used by engines
                that wrap the user reducer).
            group_sink: optional callback invoked per ``(partition, key,
                values)`` group *before* the reducer runs; the incremental
                engine uses it to persist MRBGraph chunks.
            cached_runs: per-partition sorted runs already materialized on
                the reduce worker's local disk (HaLoop's reducer-input
                cache); charged as local reads instead of shuffle traffic.

        Reduce tasks are dispatched through the job's execution backend
        only when they are side-effect free; a ``group_sink`` or a
        ``reducer_override`` typically mutates caller-owned state (MRBG
        stores, preserved-output dicts), so those runs stay on the
        calling thread in partition order.  Either way, results are
        merged in partition order, keeping simulated times and counters
        backend-independent.
        """
        cost = self.cluster.cost_model
        counters = Counters()
        reducer_factory = reducer_override or jobconf.reducer

        shuffle_loads = [0.0] * self.cluster.num_workers
        sort_loads = [0.0] * self.cluster.num_workers
        reduce_loads = [0.0] * self.cluster.num_workers
        outputs: Dict[int, List[Tuple[Any, Any]]] = {}

        payloads: List[ReduceTaskPayload] = []
        for part in range(jobconf.num_reducers):
            worker = self.reduce_worker(part)
            runs: List[List[Tuple[Any, Any]]] = []
            fetch_s = 0.0
            total_bytes = 0
            for task in map_result.tasks:
                pairs = task.partitions.get(part)
                if not pairs:
                    continue
                nbytes = task.partition_bytes.get(part, 0)
                total_bytes += nbytes
                if task.worker == worker:
                    fetch_s += cost.disk_read_time(nbytes)
                else:
                    fetch_s += cost.net_time(nbytes)
                    counters.add("shuffle_net_bytes", nbytes)
                runs.append(pairs)
            if cached_runs is not None:
                for run, nbytes in cached_runs.get(part, []):
                    runs.append(run)
                    total_bytes += nbytes
                    fetch_s += cost.disk_read_time(nbytes)
                    counters.add("reducer_cache_bytes", nbytes)
            counters.add("shuffle_bytes", total_bytes)
            shuffle_loads[worker] += fetch_s
            payloads.append(
                ReduceTaskPayload(
                    partition=part,
                    runs=runs,
                    reducer_factory=reducer_factory,
                    group_sink=group_sink,
                )
            )

        parallel_safe = group_sink is None and reducer_override is None
        if parallel_safe:
            runs_out = self.backend_for(jobconf).run_tasks(
                execute_reduce_task, payloads
            )
        else:
            runs_out = [execute_reduce_task(payload) for payload in payloads]

        for run in sorted(runs_out, key=lambda r: r.partition):
            worker = self.reduce_worker(run.partition)
            sort_loads[worker] += cost.sort_time(run.merged_records)
            counters.merge(run.counters)
            reduce_loads[worker] += cost.cpu_time(run.merged_records, run.cpu_weight)
            reduce_loads[worker] += cost.disk_write_time(run.out_bytes)
            if self.dfs.replication > 1:
                reduce_loads[worker] += cost.net_time(
                    run.out_bytes * (self.dfs.replication - 1)
                )
            outputs[run.partition] = run.emitted

        return ReducePhaseResult(
            outputs=outputs,
            shuffle_s=max(shuffle_loads),
            sort_s=max(sort_loads),
            reduce_s=max(reduce_loads),
            counters=counters,
        )
