"""Job configuration and results for the vanilla MapReduce engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence

from repro.cluster.metrics import JobMetrics
from repro.common.errors import InvalidJobConf
from repro.mapreduce.api import Mapper, Partitioner, Reducer, default_partitioner

MapperFactory = Callable[[], Mapper]
ReducerFactory = Callable[[], Reducer]


@dataclass
class JobConf:
    """Configuration of one MapReduce job.

    Attributes:
        name: human-readable job name (used in output paths and logs).
        mapper: zero-argument factory producing a :class:`Mapper` per task
            (pass the class itself for stateless mappers).
        reducer: factory producing a :class:`Reducer` per task.
        inputs: DFS input paths; one map task runs per block.
        output: DFS output path.
        num_reducers: number of reduce tasks.
        combiner: optional reducer factory applied map-side per partition.
        partitioner: shuffle partition function on K2.
    """

    name: str
    mapper: MapperFactory
    reducer: ReducerFactory
    inputs: Sequence[str]
    output: str
    num_reducers: int = 4
    combiner: Optional[ReducerFactory] = None
    partitioner: Partitioner = default_partitioner

    def validate(self) -> None:
        """Raise :class:`InvalidJobConf` on an unusable configuration."""
        if not self.name:
            raise InvalidJobConf("job name must be non-empty")
        if not self.inputs:
            raise InvalidJobConf("job needs at least one input path")
        if not self.output:
            raise InvalidJobConf("job needs an output path")
        if self.num_reducers <= 0:
            raise InvalidJobConf("num_reducers must be positive")
        if not callable(self.mapper) or not callable(self.reducer):
            raise InvalidJobConf("mapper and reducer must be factories")


@dataclass
class JobResult:
    """Outcome of one engine run."""

    output: str
    metrics: JobMetrics = field(default_factory=JobMetrics)

    @property
    def total_time(self) -> float:
        """Total simulated seconds."""
        return self.metrics.total_time
