"""Job configuration and results for the vanilla MapReduce engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence

from repro.cluster.metrics import JobMetrics
from repro.common.errors import InvalidJobConf
from repro.execution import BACKENDS, EXECUTOR_NAMES, ExecutionBackend, ExecutorSpec
from repro.mapreduce.api import Mapper, Partitioner, Reducer, default_partitioner

MapperFactory = Callable[[], Mapper]
ReducerFactory = Callable[[], Reducer]


@dataclass
class JobConf:
    """Configuration of one MapReduce job.

    Attributes:
        name: human-readable job name (used in output paths and logs).
        mapper: zero-argument factory producing a :class:`Mapper` per task
            (pass the class itself for stateless mappers).
        reducer: factory producing a :class:`Reducer` per task.
        inputs: DFS input paths; one map task runs per block.
        output: DFS output path.
        num_reducers: number of reduce tasks.
        combiner: optional reducer factory applied map-side per partition.
        partitioner: shuffle partition function on K2.
        executor: host execution backend for this job's task batches —
            a name (``"serial"`` / ``"thread"`` / ``"process"``), a live
            :class:`repro.execution.ExecutionBackend`, or ``None`` for
            the engine default.  Backend choice never changes outputs,
            counters or simulated times, only host wall-clock.
        max_workers: worker cap for pool backends (``None`` = one per
            host CPU).
        compaction: MRBG-Store compaction policy for state this job
            preserves — ``"full"`` / ``"size-tiered"`` / ``"leveled"``
            (see :mod:`repro.mrbgraph.compaction`), or ``None`` for the
            ``REPRO_COMPACTION`` default.  Only the incremental engines
            consult it; a policy never changes on-disk formats, only
            *when* idle-time compaction rewrites a store.
        task_retries: failed task attempts transparently re-executed
            before the failure propagates (``None`` = the
            ``REPRO_TASK_RETRIES`` default).  Retries charge simulated
            backoff to a dedicated account and never change outputs.
        task_timeout_s: host-clock straggler threshold per attempt
            (``None`` = the ``REPRO_TASK_TIMEOUT`` default).
        speculation: whether stragglers are speculatively duplicated
            with first-result-wins semantics (``None`` = the
            ``REPRO_SPECULATION`` default).
    """

    name: str
    mapper: MapperFactory
    reducer: ReducerFactory
    inputs: Sequence[str]
    output: str
    num_reducers: int = 4
    combiner: Optional[ReducerFactory] = None
    partitioner: Partitioner = default_partitioner
    executor: ExecutorSpec = None
    max_workers: Optional[int] = None
    compaction: Optional[str] = None
    task_retries: Optional[int] = None
    task_timeout_s: Optional[float] = None
    speculation: Optional[bool] = None

    def validate(self) -> None:
        """Raise :class:`InvalidJobConf` on an unusable configuration."""
        if not self.name:
            raise InvalidJobConf("job name must be non-empty")
        if not self.inputs:
            raise InvalidJobConf("job needs at least one input path")
        if not self.output:
            raise InvalidJobConf("job needs an output path")
        if self.num_reducers <= 0:
            raise InvalidJobConf("num_reducers must be positive")
        if not callable(self.mapper) or not callable(self.reducer):
            raise InvalidJobConf("mapper and reducer must be factories")
        if self.executor is not None and not isinstance(self.executor, ExecutionBackend):
            if self.executor not in BACKENDS:
                raise InvalidJobConf(
                    f"unknown executor {self.executor!r}; "
                    f"expected one of {EXECUTOR_NAMES}"
                )
        if self.max_workers is not None and self.max_workers <= 0:
            raise InvalidJobConf("max_workers must be positive")
        if self.compaction is not None:
            from repro.mrbgraph.compaction import POLICIES

            if self.compaction not in POLICIES:
                raise InvalidJobConf(
                    f"unknown compaction policy {self.compaction!r}; "
                    f"expected one of {sorted(POLICIES)}"
                )
        if self.task_retries is not None and self.task_retries < 0:
            raise InvalidJobConf("task_retries must be non-negative")
        if self.task_timeout_s is not None and self.task_timeout_s <= 0:
            raise InvalidJobConf("task_timeout_s must be positive")


@dataclass
class JobResult:
    """Outcome of one engine run."""

    output: str
    metrics: JobMetrics = field(default_factory=JobMetrics)

    @property
    def total_time(self) -> float:
        """Total simulated seconds."""
        return self.metrics.total_time
