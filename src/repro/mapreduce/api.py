"""User-facing MapReduce API, mirroring Hadoop's Mapper/Reducer classes.

A program supplies a :class:`Mapper` and a :class:`Reducer` (§2):

    ``map(K1, V1) -> [(K2, V2)]``
    ``reduce(K2, [V2]) -> [(K3, V3)]``

Instances are created per task, so ``setup`` can load per-task state (the
way the paper's APriori mapper loads the candidate-pair list).  Emission
goes through the :class:`Context` rather than return values, exactly like
Hadoop's ``Context.write``.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional, Tuple

from repro.cluster.metrics import Counters
from repro.common.hashing import partition_for


class Context:
    """Per-task emission and counter sink passed to user functions."""

    def __init__(self) -> None:
        self._emitted: List[Tuple[Any, Any]] = []
        self.counters = Counters()

    def emit(self, key: Any, value: Any) -> None:
        """Emit one output ``(key, value)`` pair."""
        self._emitted.append((key, value))

    def take(self) -> List[Tuple[Any, Any]]:
        """Drain and return everything emitted since the last take."""
        emitted = self._emitted
        self._emitted = []
        return emitted

    @property
    def emitted(self) -> List[Tuple[Any, Any]]:
        """Everything currently buffered (without draining)."""
        return self._emitted


class Mapper:
    """Base Map function.  Subclass and override :meth:`map`.

    Attributes:
        cpu_weight: relative CPU cost of one ``map`` call versus the
            framework baseline; the cost model multiplies by this.
    """

    cpu_weight: float = 1.0

    def setup(self, ctx: Context) -> None:
        """Called once per task before any :meth:`map` call."""

    def map(self, key: Any, value: Any, ctx: Context) -> None:
        """Process one input record; emit via ``ctx.emit``."""
        raise NotImplementedError

    def cleanup(self, ctx: Context) -> None:
        """Called once per task after the last :meth:`map` call."""


class Reducer:
    """Base Reduce function.  Subclass and override :meth:`reduce`.

    Attributes:
        cpu_weight: relative CPU cost of processing one grouped value.
    """

    cpu_weight: float = 1.0

    def setup(self, ctx: Context) -> None:
        """Called once per task before any :meth:`reduce` call."""

    def reduce(self, key: Any, values: List[Any], ctx: Context) -> None:
        """Process one group; emit via ``ctx.emit``."""
        raise NotImplementedError

    def cleanup(self, ctx: Context) -> None:
        """Called once per task after the last :meth:`reduce` call."""


class IdentityMapper(Mapper):
    """Emits every input record unchanged (Hadoop's default mapper)."""

    def map(self, key: Any, value: Any, ctx: Context) -> None:
        """Emit the record unchanged."""
        ctx.emit(key, value)


class IdentityReducer(Reducer):
    """Emits every grouped value unchanged under its key."""

    def reduce(self, key: Any, values: List[Any], ctx: Context) -> None:
        """Emit every grouped value unchanged under its key."""
        for value in values:
            ctx.emit(key, value)


#: A partitioner maps ``(key, num_partitions)`` to a partition index.
Partitioner = Callable[[Any, int], int]

default_partitioner: Partitioner = partition_for
