"""Retry/timeout/speculation policy carried from job configuration.

A :class:`RetryPolicy` is the frozen bundle of fault-tolerance knobs a
:class:`repro.resilience.ResilientExecutor` enforces for one job.  It is
hashable so executor selectors can cache one wrapper per ``(backend,
policy)`` combination, and it defaults to the library-wide environment
knobs (``REPRO_TASK_RETRIES`` / ``REPRO_TASK_TIMEOUT`` /
``REPRO_SPECULATION`` / ``REPRO_BLACKLIST_AFTER``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.common import config


@dataclass(frozen=True)
class RetryPolicy:
    """Fault-tolerance contract for one job's task batches.

    Attributes:
        max_retries: failed attempts re-executed per task before the
            failure propagates as
            :class:`repro.common.errors.RetriesExhausted`.
        timeout_s: host-clock seconds after which a *completed* attempt
            counts as a straggler (``None`` disables detection).
        speculation: whether stragglers get a speculative duplicate with
            first-result-wins semantics (pure payloads make the winner's
            value identical either way).
        blacklist_after: consecutive failures on one simulated worker
            before it is blacklisted and its tasks re-route.
        num_sim_workers: size of the simulated worker pool used for
            blacklisting bookkeeping (defaults to the paper's cluster
            width via :data:`repro.common.config.DEFAULT_NUM_WORKERS`).
    """

    max_retries: int = config.DEFAULT_TASK_RETRIES
    timeout_s: Optional[float] = config.DEFAULT_TASK_TIMEOUT_S
    speculation: bool = config.DEFAULT_SPECULATION
    blacklist_after: int = config.DEFAULT_BLACKLIST_AFTER
    num_sim_workers: int = config.DEFAULT_NUM_WORKERS

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive (or None)")
        if self.blacklist_after < 1:
            raise ValueError("blacklist_after must be at least 1")
        if self.num_sim_workers < 1:
            raise ValueError("num_sim_workers must be at least 1")

    @property
    def active(self) -> bool:
        """Whether this policy asks for any fault-tolerance machinery."""
        return (
            self.max_retries > 0
            or self.timeout_s is not None
            or self.speculation
        )

    @classmethod
    def for_job(cls, conf: Any) -> "RetryPolicy":
        """Policy for a job configuration (``JobConf`` / ``IterativeJob``).

        Reads the configuration's ``task_retries`` / ``task_timeout_s``
        / ``speculation`` attributes, falling back to the environment
        defaults for anything the configuration does not carry.
        """
        retries = getattr(conf, "task_retries", None)
        timeout = getattr(conf, "task_timeout_s", None)
        speculation = getattr(conf, "speculation", None)
        return cls(
            max_retries=(
                config.DEFAULT_TASK_RETRIES if retries is None else retries
            ),
            timeout_s=(
                config.DEFAULT_TASK_TIMEOUT_S if timeout is None else timeout
            ),
            speculation=(
                config.DEFAULT_SPECULATION if speculation is None else speculation
            ),
        )

    @classmethod
    def from_config(cls) -> "RetryPolicy":
        """Policy built purely from the environment defaults."""
        return cls()

    @classmethod
    def disabled(cls) -> "RetryPolicy":
        """Policy that turns every fault-tolerance feature off."""
        return cls(max_retries=0, timeout_s=None, speculation=False)
