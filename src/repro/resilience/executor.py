"""The resilient executor: retries, speculation, degradation, blacklists.

:class:`ResilientExecutor` wraps any
:class:`repro.execution.base.ExecutionBackend` and gives engine task
batches the MapReduce fault-tolerance contract:

- **retry with backoff** — a failed attempt is re-executed up to
  ``RetryPolicy.max_retries`` times; each retry charges capped
  exponential backoff with deterministic jitter to the *simulated* clock
  (:meth:`repro.cluster.costmodel.CostModel.task_retry_backoff_time`),
  accumulated in the dedicated ``ExecutorStats.sim_backoff_s`` account
  so the paper's stage times stay byte-identical under faults;
- **straggler speculation** — a completed attempt that overran
  ``RetryPolicy.timeout_s`` on the host clock is a straggler; with
  speculation on, a duplicate runs in the next round and the faster
  result wins (payloads are pure, so both values are identical);
- **worker blacklisting** — each task maps to a simulated worker; a
  worker accumulating ``RetryPolicy.blacklist_after`` consecutive
  failures is blacklisted and later tasks re-route to the survivors;
- **graceful degradation** — a worker death mid-batch (a genuine
  ``BrokenProcessPool`` or an injected
  :class:`~repro.faults.injection.InjectedWorkerDeath`) moves the batch
  down the ladder process → thread → serial and redispatches, so the
  run completes instead of raising.

Every fault pathway is provable under injection: the executor consults
its ``fault_hook`` (see :meth:`repro.faults.context.FaultContext.task_hook`)
in the *parent* process once per dispatched attempt and embeds the
resulting plain-data directive in the guarded payload.  Directives fire
*before* the user function runs, so a faulted attempt leaves no partial
side effects and retrying is safe even for impure (non-picklable)
batches.  Real exceptions are only retried for picklable batches — the
engines' purity contract — and propagate unchanged otherwise.

The guard never changes task *results*: under any fault schedule the
values returned by :meth:`ResilientExecutor.run_tasks` are byte-identical
to a fault-free run, which is the invariant ``tests/test_resilience.py``
proves across backends and engines.
"""

from __future__ import annotations

import os
import time
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence

from repro.cluster.costmodel import CostModel
from repro.common import config
from repro.common.errors import RetriesExhausted
from repro.common.hashing import stable_hash
from repro.execution.base import ExecutionBackend
from repro.execution.serial import SerialBackend
from repro.execution.threads import ThreadBackend
from repro.faults.injection import (
    InjectedTaskFault,
    InjectedWorkerDeath,
    TaskFaultDirective,
)
from repro.resilience.policy import RetryPolicy


@dataclass(frozen=True)
class GuardedPayload:
    """One task attempt as shipped to the inner backend.

    Plain data plus the (picklable, module-level) task function, so the
    guarded batch crosses a process boundary whenever the original batch
    could.

    Attributes:
        fn: the engine's task function.
        payload: the engine's task argument.
        index: task index within the submitted batch.
        attempt: 0-based attempt ordinal for this task.
        directive: injected fault to apply before running, or ``None``.
        parent_pid: pid of the dispatching process — lets a
            ``worker-kill`` directive distinguish a real pool child
            (``os._exit``) from in-process execution (raise
            :class:`~repro.faults.injection.InjectedWorkerDeath`).
        capture: whether real exceptions are captured into the attempt
            result (pure picklable batches) or propagate unchanged
            (impure batches keep their status-quo error behavior).
        speculative: whether this is a straggler's duplicate attempt.
    """

    fn: Callable[[Any], Any]
    payload: Any
    index: int
    attempt: int
    directive: Optional[TaskFaultDirective] = None
    parent_pid: int = 0
    capture: bool = True
    speculative: bool = False


@dataclass
class TaskAttempt:
    """Outcome of one guarded task attempt."""

    #: Task index within the submitted batch.
    index: int
    #: 0-based attempt ordinal.
    attempt: int
    #: Whether the attempt produced a value.
    ok: bool
    #: The task function's return value (``None`` on failure).
    value: Any = None
    #: ``"Type: message"`` description of the failure (``None`` on success).
    error: Optional[str] = None
    #: Host-clock seconds the attempt spent inside the guard.
    duration_s: float = 0.0
    #: Whether the failure was an injected fault (always retryable).
    injected: bool = False
    #: Whether this was a speculative duplicate.
    speculative: bool = False


def _run_guarded(gp: GuardedPayload) -> TaskAttempt:
    """Execute one guarded attempt; always returns a :class:`TaskAttempt`.

    Injected directives fire *before* ``gp.fn`` runs.  ``worker-kill``
    takes the process down (``os._exit`` in a real pool child, otherwise
    :class:`~repro.faults.injection.InjectedWorkerDeath` escapes to the
    resilient executor); every other failure is either captured into the
    attempt result or — real exceptions of impure batches — re-raised.
    """
    start = time.perf_counter()
    directive = gp.directive
    try:
        if directive is not None:
            if directive.kind == "worker-kill":
                if gp.parent_pid and os.getpid() != gp.parent_pid:
                    os._exit(1)
                raise InjectedWorkerDeath(gp.index, directive.occurrence)
            if directive.kind == "transient":
                raise InjectedTaskFault(gp.index, directive.occurrence)
            if directive.kind == "slowdown":
                time.sleep(directive.slow_s)
        value = gp.fn(gp.payload)
    except InjectedWorkerDeath:
        raise
    except InjectedTaskFault as exc:
        return TaskAttempt(
            index=gp.index,
            attempt=gp.attempt,
            ok=False,
            error=f"{type(exc).__name__}: {exc}",
            duration_s=time.perf_counter() - start,
            injected=True,
            speculative=gp.speculative,
        )
    except Exception as exc:
        if not gp.capture:
            raise
        return TaskAttempt(
            index=gp.index,
            attempt=gp.attempt,
            ok=False,
            error=f"{type(exc).__name__}: {exc}",
            duration_s=time.perf_counter() - start,
            speculative=gp.speculative,
        )
    return TaskAttempt(
        index=gp.index,
        attempt=gp.attempt,
        ok=True,
        value=value,
        duration_s=time.perf_counter() - start,
        speculative=gp.speculative,
    )


class ResilientExecutor(ExecutionBackend):
    """Fault-tolerant wrapper around any execution backend.

    Attributes:
        inner: the wrapped backend (top rung of the degradation ladder).
        policy: the :class:`~repro.resilience.policy.RetryPolicy` enforced.
        cost_model: charges simulated retry backoff
            (:attr:`~repro.execution.base.ExecutorStats.sim_backoff_s`).
        fault_hook: parent-side injection hook, consulted once per
            dispatched attempt with the task index (see
            :meth:`repro.faults.context.FaultContext.task_hook`).
        last_batch_failures: ``(task_index, failures)`` pairs of the most
            recent batch's tasks that needed at least one retry — what
            shard-stage rescheduling consumes.
        last_stragglers: task indices of the most recent batch whose
            winning attempt overran ``policy.timeout_s``.
    """

    def __init__(
        self,
        inner: ExecutionBackend,
        policy: Optional[RetryPolicy] = None,
        cost_model: Optional[CostModel] = None,
        fault_hook: Optional[Callable[[int], Optional[TaskFaultDirective]]] = None,
    ) -> None:
        super().__init__()
        self.inner = inner
        self.name = inner.name
        self.policy = policy or RetryPolicy()
        self.cost_model = cost_model or CostModel()
        self.fault_hook = fault_hook
        #: Chaos-mode configuration (see ``REPRO_CHAOS_SEED`` in config).
        self.chaos_seed = config.CHAOS_SEED
        self.chaos_rate = config.CHAOS_RATE
        self._ladder: List[ExecutionBackend] = [inner]
        self._owned: List[ExecutionBackend] = []
        self._rung = 0
        self._live_workers = list(range(self.policy.num_sim_workers))
        self._worker_strikes: dict = {}
        self.last_batch_failures: List[tuple] = []
        self.last_stragglers: List[int] = []

    # ------------------------------------------------------------------ #
    # plumbing                                                           #
    # ------------------------------------------------------------------ #

    @property
    def max_workers(self) -> int:
        """Worker cap of the wrapped backend."""
        return getattr(self.inner, "max_workers", 1)

    def current_backend(self) -> ExecutionBackend:
        """The ladder rung batches currently dispatch to."""
        return self._ladder[self._rung]

    def close(self) -> None:
        """Shut down ladder rungs this wrapper created (not ``inner``)."""
        for backend in self._owned:
            backend.close()

    def _degrade(self) -> bool:
        """Move one rung down the ladder; False when already at serial."""
        current = self._ladder[self._rung]
        if self._rung + 1 < len(self._ladder):
            self._rung += 1
            return True
        if current.name == "serial":
            return False
        if current.name == "process":
            nxt: ExecutionBackend = ThreadBackend(
                max_workers=getattr(current, "max_workers", None)
            )
        else:
            nxt = SerialBackend()
        self._ladder.append(nxt)
        self._owned.append(nxt)
        self._rung += 1
        return True

    # ------------------------------------------------------------------ #
    # simulated-worker blacklisting                                       #
    # ------------------------------------------------------------------ #

    def _sim_worker(self, index: int) -> int:
        """The simulated worker a task index currently routes to."""
        live = self._live_workers
        return live[index % len(live)]

    def _note_worker_failure(self, index: int) -> None:
        worker = self._sim_worker(index)
        strikes = self._worker_strikes.get(worker, 0) + 1
        self._worker_strikes[worker] = strikes
        if strikes >= self.policy.blacklist_after and len(self._live_workers) > 1:
            self._live_workers.remove(worker)
            self.stats.workers_blacklisted += 1

    def _note_worker_success(self, index: int) -> None:
        worker = self._sim_worker(index)
        if self._worker_strikes.get(worker):
            self._worker_strikes[worker] = 0

    # ------------------------------------------------------------------ #
    # fault consultation                                                  #
    # ------------------------------------------------------------------ #

    def _consult(
        self, index: int, attempt: int, picklable: bool
    ) -> Optional[TaskFaultDirective]:
        """Injected directive for this attempt (parent-side), or None."""
        directive = None
        if self.fault_hook is not None:
            directive = self.fault_hook(index)
        if directive is None and self.chaos_seed is not None and attempt == 0:
            token = stable_hash(
                (int(self.chaos_seed), int(self.stats.batches), int(index))
            )
            if (token % 1_000_000) < int(self.chaos_rate * 1_000_000):
                directive = TaskFaultDirective(kind="transient", occurrence=0)
        if (
            directive is not None
            and directive.kind == "worker-kill"
            and not picklable
        ):
            # A worker death forces the whole round to redispatch, which
            # would re-apply the completed tasks of an impure batch —
            # downgrade to a (pre-execution, side-effect-free) transient.
            directive = TaskFaultDirective(
                kind="transient", occurrence=directive.occurrence
            )
        return directive

    def _charge_failure(
        self, index: int, cause: str, batch_ordinal: int, failures: List[int]
    ) -> None:
        """Record one failed attempt; raises when the budget is gone."""
        failures[index] += 1
        self.stats.task_failures += 1
        self._note_worker_failure(index)
        if failures[index] > self.policy.max_retries:
            raise RetriesExhausted(index, failures[index], cause)
        token = stable_hash((batch_ordinal, index, failures[index]))
        self.stats.sim_backoff_s += self.cost_model.task_retry_backoff_time(
            failures[index] - 1, token
        )
        self.stats.retries += 1

    # ------------------------------------------------------------------ #
    # the batch loop                                                      #
    # ------------------------------------------------------------------ #

    def _run_batch(
        self,
        fn: Callable[[Any], Any],
        payloads: List[Any],
        picklable: bool,
    ) -> List[Any]:
        self.last_batch_failures = []
        self.last_stragglers = []
        if (
            not self.policy.active
            and self.fault_hook is None
            and self.chaos_seed is None
        ):
            # Nothing to enforce: zero-overhead passthrough.
            return self.current_backend().run_tasks(fn, payloads, picklable)

        policy = self.policy
        n = len(payloads)
        batch_ordinal = self.stats.batches
        parent_pid = os.getpid()
        values: List[Any] = [None] * n
        done = [False] * n
        durations = [0.0] * n
        attempts = [0] * n
        failures = [0] * n
        speculated = [False] * n
        pending = list(range(n))
        speculating: List[int] = []

        while pending or speculating:
            gps: List[GuardedPayload] = []
            for index in pending:
                directive = self._consult(index, attempts[index], picklable)
                gps.append(
                    GuardedPayload(
                        fn=fn,
                        payload=payloads[index],
                        index=index,
                        attempt=attempts[index],
                        directive=directive,
                        parent_pid=parent_pid,
                        capture=picklable,
                    )
                )
                attempts[index] += 1
            for index in speculating:
                gps.append(
                    GuardedPayload(
                        fn=fn,
                        payload=payloads[index],
                        index=index,
                        attempt=attempts[index],
                        parent_pid=parent_pid,
                        capture=True,
                        speculative=True,
                    )
                )
                attempts[index] += 1

            try:
                results = self.current_backend().run_tasks(
                    _run_guarded, gps, picklable
                )
            except (InjectedWorkerDeath, BrokenProcessPool) as death:
                moved = self._degrade()
                if moved:
                    self.stats.degraded_batches += 1
                indices = [gp.index for gp in gps if not gp.speculative]
                killed = getattr(death, "task_index", None)
                if moved:
                    # The round redispatches one rung down; only the task
                    # the death struck is charged a failed attempt.
                    charge = [killed] if killed in indices else []
                else:
                    # Already at serial: a worker death is a whole-round
                    # failure, bounded by each task's retry budget.
                    charge = indices
                for index in charge:
                    self._charge_failure(
                        index, str(death), batch_ordinal, failures
                    )
                pending = indices
                speculating = []
                continue

            next_pending: List[int] = []
            for result in results:
                index = result.index
                if result.speculative:
                    if (
                        result.ok
                        and done[index]
                        and result.duration_s < durations[index]
                    ):
                        # First-result-wins: identical value (payloads
                        # are pure), but the speculative copy was faster.
                        values[index] = result.value
                        durations[index] = result.duration_s
                        self.stats.speculative_wins += 1
                    continue
                if result.ok:
                    values[index] = result.value
                    durations[index] = result.duration_s
                    done[index] = True
                    self._note_worker_success(index)
                else:
                    self._charge_failure(
                        index, result.error or "task failed", batch_ordinal, failures
                    )
                    next_pending.append(index)

            speculating = []
            if policy.timeout_s is not None:
                for result in results:
                    index = result.index
                    if (
                        result.ok
                        and not result.speculative
                        and result.duration_s > policy.timeout_s
                    ):
                        self.last_stragglers.append(index)
                        if policy.speculation and picklable and not speculated[index]:
                            speculated[index] = True
                            speculating.append(index)
            pending = next_pending

        self.last_batch_failures = [
            (index, count) for index, count in enumerate(failures) if count
        ]
        return values
