"""Task-level fault tolerance for the execution layer.

The MapReduce model this library reproduces is defined as much by its
fault-tolerance contract — failed tasks are transparently re-executed,
stragglers are speculatively duplicated — as by its programming model.
This package supplies that contract for the host execution backends:
:class:`ResilientExecutor` wraps any
:class:`repro.execution.base.ExecutionBackend` with retry/backoff,
straggler speculation, simulated-worker blacklisting and a
process → thread → serial degradation ladder, all governed by a
:class:`RetryPolicy` derived from job configuration and the
``REPRO_TASK_*`` environment knobs.
"""

from repro.resilience.executor import (
    GuardedPayload,
    ResilientExecutor,
    TaskAttempt,
)
from repro.resilience.policy import RetryPolicy

__all__ = [
    "GuardedPayload",
    "ResilientExecutor",
    "RetryPolicy",
    "TaskAttempt",
]
