"""Library-wide configuration defaults.

These constants mirror the defaults stated in the paper:

- the MRBG-Store read-window gap threshold ``T`` is 100 KB (§3.4),
- the change-propagation filter threshold defaults to 1 (§8.5 notes all
  earlier experiments use FT = 1),
- MRBGraph maintenance auto-disables when the delta-state proportion
  ``P∆`` exceeds 50 % (§5.2),
- Hadoop job startup is "over 20 seconds" (§4.2), and
- TaskTracker heartbeats arrive every 3 seconds (§6.1).
"""

from __future__ import annotations

import os

KB = 1024
MB = 1024 * 1024
GB = 1024 * 1024 * 1024


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    return int(raw) if raw else default


#: MRBG-Store dynamic read-window gap threshold ``T`` (bytes), paper §3.4.
DEFAULT_GAP_THRESHOLD = 100 * KB

#: MRBG-Store read cache capacity (bytes).
DEFAULT_READ_CACHE_SIZE = 4 * MB

#: MRBG-Store append buffer capacity (bytes) before a sequential flush.
#: Overridable via the ``REPRO_APPEND_BUFFER_SIZE`` environment variable.
DEFAULT_APPEND_BUFFER_SIZE = _env_int("REPRO_APPEND_BUFFER_SIZE", 1 * MB)

#: How many upcoming queried chunks of the same batch the MRBG-Store
#: hands the window policy to plan a prefetching read (Algorithm 1's
#: look-ahead over "k's index in L").  Overridable via the
#: ``REPRO_PREFETCH_LOOKAHEAD`` environment variable.
DEFAULT_PREFETCH_LOOKAHEAD = _env_int("REPRO_PREFETCH_LOOKAHEAD", 256)

#: Number of shards each MRBG-Store is split into.  ``1`` keeps the
#: paper's monolithic per-Reduce-task store; larger values split every
#: store into that many independent :class:`~repro.mrbgraph.store.MRBGStore`
#: shards whose maintenance (merge, compaction, index flush) can run in
#: parallel on the host execution backends.  Overridable via the
#: ``REPRO_SHARDS`` environment variable.
DEFAULT_NUM_SHARDS = _env_int("REPRO_SHARDS", 1)

def _env_flag(name: str, default: bool) -> bool:
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return default
    return raw.strip().lower() not in ("0", "false", "no", "off")


#: Whether every MRBG-Store journals mutations to a per-store write-ahead
#: log (``mrbg.wal``) and replays it on ``open()`` — crash-safe
#: preserved state, on by default.  Overridable via the ``REPRO_WAL``
#: environment variable (``REPRO_WAL=0`` restores the paper's
#: non-durable store).
DEFAULT_WAL_ENABLED = _env_flag("REPRO_WAL", True)

#: Default MRBG-Store compaction policy (``"full"`` / ``"size-tiered"`` /
#: ``"leveled"``; see :mod:`repro.mrbgraph.compaction`).  Overridable via
#: the ``REPRO_COMPACTION`` environment variable or per job via
#: ``JobConf.compaction``.
DEFAULT_COMPACTION = os.environ.get("REPRO_COMPACTION", "full")

#: Whether iterative engines run workset-driven delta iterations by
#: default: each superstep re-maps only the state keys whose value
#: changed (the dirty frontier), schedules map tasks only for the shard
#: partitions holding dirty members, and terminates on an empty workset
#: (Ewen et al., *Spinning Fast Iterative Data Flows*).  Off by default —
#: the full-sweep engines remain the reference semantics.  Overridable
#: via the ``REPRO_WORKSET`` environment variable or per job via
#: ``IterativeJob.workset`` / ``I2MROptions.workset``.
DEFAULT_WORKSET = _env_flag("REPRO_WORKSET", False)

#: Change-propagation-control filter threshold default (§8.5).
DEFAULT_FILTER_THRESHOLD = 1.0

#: MRBGraph maintenance auto-off threshold on ``P∆`` (§5.2).
DEFAULT_PDELTA_THRESHOLD = 0.5

#: Simulated HDFS block size (bytes).  The paper quotes 64 MB; the default
#: here is smaller so laptop-scale datasets still split into enough blocks
#: to exercise multi-task scheduling.
DEFAULT_BLOCK_SIZE = 4 * MB

#: Hadoop job startup cost in simulated seconds (§4.2: "over 20 seconds").
DEFAULT_JOB_STARTUP_S = 20.0

#: TaskTracker heartbeat interval in simulated seconds (§6.1).
DEFAULT_HEARTBEAT_S = 3.0

#: Default number of simulated worker machines (paper uses 32 EC2 nodes).
DEFAULT_NUM_WORKERS = 8

#: Default DFS replication factor.
DEFAULT_REPLICATION = 3


def _default_max_workers() -> "int | None":
    raw = os.environ.get("REPRO_MAX_WORKERS")
    return int(raw) if raw else None


#: Default number of times a failed task is transparently re-executed
#: before the failure propagates (the MapReduce fault-tolerance
#: contract).  Retries are charged capped exponential backoff on the
#: *simulated* clock (see
#: :meth:`repro.cluster.costmodel.CostModel.task_retry_backoff_time`)
#: but never change task outputs — re-execution of a pure payload is
#: byte-identical.  Overridable via the ``REPRO_TASK_RETRIES``
#: environment variable.
DEFAULT_TASK_RETRIES = _env_int("REPRO_TASK_RETRIES", 2)


def _env_float(name: str) -> "float | None":
    raw = os.environ.get(name)
    return float(raw) if raw else None


#: Default per-attempt host-side task timeout in seconds; an attempt
#: running longer is a *straggler* (speculation may duplicate it).
#: ``None`` disables straggler detection.  Overridable via the
#: ``REPRO_TASK_TIMEOUT`` environment variable.
DEFAULT_TASK_TIMEOUT_S = _env_float("REPRO_TASK_TIMEOUT")

#: Whether straggler tasks are speculatively re-executed with
#: first-result-wins semantics (safe because task payloads are pure).
#: Off by default; overridable via the ``REPRO_SPECULATION``
#: environment variable.
DEFAULT_SPECULATION = _env_flag("REPRO_SPECULATION", False)

#: Consecutive failures on one simulated worker before the resilient
#: executor blacklists it (tasks re-route to the remaining workers).
DEFAULT_BLACKLIST_AFTER = _env_int("REPRO_BLACKLIST_AFTER", 3)


def _chaos_seed() -> "int | None":
    raw = os.environ.get("REPRO_CHAOS_SEED")
    return int(raw) if raw else None


#: Chaos-testing seed: when set (``REPRO_CHAOS_SEED``), every resilient
#: executor injects deterministic pseudo-random transient task failures
#: at rate :data:`CHAOS_RATE` — outputs must stay byte-identical, which
#: is exactly what the CI chaos job asserts across whole test suites.
CHAOS_SEED = _chaos_seed()

#: Fraction of first task attempts the chaos mode fails (``REPRO_CHAOS_RATE``).
CHAOS_RATE = float(os.environ.get("REPRO_CHAOS_RATE") or 0.05)

#: Result-cache capacity of the online query server, in entries (LRU
#: eviction; see :class:`repro.serving.ResultCache`).  Overridable via
#: the ``REPRO_SERVING_CACHE`` environment variable; ``0`` disables
#: caching.
DEFAULT_SERVING_CACHE = _env_int("REPRO_SERVING_CACHE", 1024)

#: How many published epochs the serving layer keeps queryable (pinned
#: epochs always survive beyond this window).  Overridable via the
#: ``REPRO_SERVING_RETAIN`` environment variable.
DEFAULT_SERVING_RETAIN = _env_int("REPRO_SERVING_RETAIN", 8)

#: Depth of the incrementally maintained serving top-k (queries for
#: ``k`` up to this depth are answered without a scan).  Overridable via
#: the ``REPRO_SERVING_TOPK`` environment variable.
DEFAULT_SERVING_TOPK = _env_int("REPRO_SERVING_TOPK", 64)

#: Default per-query timeout on the *simulated* clock, in seconds; a
#: query whose charged read cost exceeds it raises
#: :class:`repro.common.errors.QueryTimeout`.  ``None`` (the default)
#: disables query timeouts.  Overridable via the
#: ``REPRO_SERVING_TIMEOUT`` environment variable.
DEFAULT_SERVING_TIMEOUT_S = _env_float("REPRO_SERVING_TIMEOUT")

#: Default host execution backend for running map/reduce task batches
#: (``"serial"`` / ``"thread"`` / ``"process"``); see
#: :mod:`repro.execution`.  Overridable per job via ``JobConf.executor``
#: or globally via the ``REPRO_EXECUTOR`` environment variable.
DEFAULT_EXECUTOR = os.environ.get("REPRO_EXECUTOR", "serial")

#: Default worker cap for pool backends; ``None`` means one worker per
#: host CPU.  Overridable via the ``REPRO_MAX_WORKERS`` environment
#: variable.
DEFAULT_MAX_WORKERS = _default_max_workers()
