"""Fast deterministic size estimation for simulated I/O accounting.

The cluster simulator charges disk and network time proportional to the
number of bytes a record *would* occupy in the binary format of
:mod:`repro.common.serialization`, without actually encoding every record
(that would dominate wall-clock time for large synthetic datasets).  The
estimates below match the real encoder's sizes exactly for the supported
types, so simulated byte counts agree with what the MRBG-Store measures
when it really encodes chunks.
"""

from __future__ import annotations

from typing import Any, Iterable, Tuple

_LEN_PREFIX = 4  # u32 length prefix on records
_TAG = 1


def value_size(value: Any) -> int:
    """Exact encoded size in bytes of ``value`` under the binary format."""
    if value is None or value is True or value is False:
        return _TAG
    if isinstance(value, bool):  # numpy bools etc. fall through to here
        return _TAG
    if isinstance(value, int):
        return _TAG + 8
    if isinstance(value, float):
        return _TAG + 8
    if isinstance(value, str):
        return _TAG + 4 + len(value.encode("utf-8"))
    if isinstance(value, bytes):
        return _TAG + 4 + len(value)
    if isinstance(value, (tuple, list)):
        return _TAG + 4 + sum(value_size(item) for item in value)
    if isinstance(value, dict):
        return (
            _TAG
            + 4
            + sum(value_size(k) + value_size(v) for k, v in value.items())
        )
    # Unknown types are charged a flat conservative footprint rather than
    # failing: the simulator may see user-defined values that are never
    # persisted for real.
    return 64


def record_size(key: Any, value: Any) -> int:
    """Encoded size of a ``(key, value)`` record (length prefix included)."""
    return _LEN_PREFIX + _TAG + 4 + value_size(key) + value_size(value)


def records_size(pairs: Iterable[Tuple[Any, Any]]) -> int:
    """Total encoded size of a stream of ``(key, value)`` records."""
    return sum(record_size(key, value) for key, value in pairs)
