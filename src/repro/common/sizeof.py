"""Fast deterministic size estimation for simulated I/O accounting.

The cluster simulator charges disk and network time proportional to the
number of bytes a record *would* occupy in the binary format of
:mod:`repro.common.serialization`, without actually encoding every record
(that would dominate wall-clock time for large synthetic datasets).  The
estimates below match the real encoder's sizes exactly for the supported
types, so simulated byte counts agree with what the MRBG-Store measures
when it really encodes chunks.

This module runs once per emitted intermediate record on every engine's
hot path, so the common cases dispatch on the exact class (one dict
lookup) instead of walking an isinstance chain, and ASCII strings are
sized without materializing their UTF-8 encoding.  Subclasses fall
through to the original chain with identical results.
"""

from __future__ import annotations

from typing import Any, Iterable, Tuple

_LEN_PREFIX = 4  # u32 length prefix on records
_TAG = 1


def _str_size(value: str) -> int:
    if value.isascii():
        return _TAG + 4 + len(value)
    return _TAG + 4 + len(value.encode("utf-8"))


def _seq_size(value) -> int:
    total = _TAG + 4
    sizes = _SIZE_DISPATCH
    for item in value:
        handler = sizes.get(item.__class__)
        total += handler(item) if handler is not None else _value_size_slow(item)
    return total


def _dict_size(value: dict) -> int:
    total = _TAG + 4
    for k, v in value.items():
        total += value_size(k) + value_size(v)
    return total


_SIZE_DISPATCH = {
    type(None): lambda value: _TAG,
    bool: lambda value: _TAG,
    int: lambda value: _TAG + 8,
    float: lambda value: _TAG + 8,
    str: _str_size,
    bytes: lambda value: _TAG + 4 + len(value),
    tuple: _seq_size,
    list: _seq_size,
    dict: _dict_size,
}

#: Constant-size scalar classes, pre-resolved for :func:`record_size`.
_SCALAR_SIZES = {type(None): _TAG, bool: _TAG, int: _TAG + 8, float: _TAG + 8}


def value_size(value: Any) -> int:
    """Exact encoded size in bytes of ``value`` under the binary format."""
    handler = _SIZE_DISPATCH.get(value.__class__)
    if handler is not None:
        return handler(value)
    return _value_size_slow(value)


def _value_size_slow(value: Any) -> int:
    if value is None or value is True or value is False:
        return _TAG
    if isinstance(value, bool):  # numpy bools etc. fall through to here
        return _TAG
    if isinstance(value, int):
        return _TAG + 8
    if isinstance(value, float):
        return _TAG + 8
    if isinstance(value, str):
        return _str_size(value)
    if isinstance(value, bytes):
        return _TAG + 4 + len(value)
    if isinstance(value, (tuple, list)):
        return _TAG + 4 + sum(value_size(item) for item in value)
    if isinstance(value, dict):
        return (
            _TAG
            + 4
            + sum(value_size(k) + value_size(v) for k, v in value.items())
        )
    # Unknown types are charged a flat conservative footprint rather than
    # failing: the simulator may see user-defined values that are never
    # persisted for real.
    return 64


def record_size(key: Any, value: Any) -> int:
    """Encoded size of a ``(key, value)`` record (length prefix included)."""
    sizes = _SCALAR_SIZES
    key_size = sizes.get(key.__class__)
    if key_size is None:
        key_size = value_size(key)
    val_size = sizes.get(value.__class__)
    if val_size is None:
        val_size = value_size(value)
    return _LEN_PREFIX + _TAG + 4 + key_size + val_size


def records_size(pairs: Iterable[Tuple[Any, Any]]) -> int:
    """Total encoded size of a stream of ``(key, value)`` records."""
    return sum(record_size(key, value) for key, value in pairs)
