"""Stable hashing used for partitioning and Map-instance identity.

Python's builtin ``hash`` is randomized per process for strings, which
would make partition assignment (and therefore every simulated byte
count) nondeterministic across runs.  All partitioning in this library
goes through :func:`stable_hash`, and Map-instance identity (the paper's
globally unique ``MK``, §3.2) through :func:`map_key`.

The implementation is hot — it runs once per emitted intermediate record —
so it uses C-speed primitives: splitmix64 arithmetic for ints/floats and
``zlib.crc32`` for strings/bytes, combined recursively for tuples.
"""

from __future__ import annotations

import struct
import zlib
from typing import Any

_MASK64 = 0xFFFFFFFFFFFFFFFF
_F64 = struct.Struct("<d")


def _splitmix64(x: int) -> int:
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    # Mask to 63 bits so hashes fit the signed-int64 binary encoding.
    return (x ^ (x >> 31)) & 0x7FFFFFFFFFFFFFFF


def _hash_int(key: int) -> int:
    # _splitmix64(key & _MASK64), inlined: this is the hottest branch.
    x = ((key & _MASK64) + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (x ^ (x >> 31)) & 0x7FFFFFFFFFFFFFFF


def _hash_str(key: str) -> int:
    x = (zlib.crc32(key.encode("utf-8")) + 0x517CC1B7 + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (x ^ (x >> 31)) & 0x7FFFFFFFFFFFFFFF


def _hash_float(key: float) -> int:
    return _splitmix64(int.from_bytes(_F64.pack(key), "little") ^ 0xF10A7)


def _hash_seq(key) -> int:
    acc = 0x345678 + len(key)
    for item in key:
        acc = _splitmix64(acc ^ stable_hash(item))
    return acc


_HASH_DISPATCH = {
    int: _hash_int,
    str: _hash_str,
    float: _hash_float,
    tuple: _hash_seq,
    list: _hash_seq,
    bool: lambda key: _splitmix64(0x9B00 + int(key)),
    bytes: lambda key: _splitmix64(zlib.crc32(key) + 0xB17E5),
    type(None): lambda key: _splitmix64(0xA0),
}


def stable_hash(key: Any) -> int:
    """Deterministic 64-bit hash of a MapReduce key.

    Supports the key types the library admits: ``None``, bools, ints,
    floats, strings, bytes, and (nested) tuples/lists of those.  The
    exact-class dispatch table short-circuits the common cases (this runs
    once per emitted record); subclasses take the isinstance chain below
    and hash identically.

    Raises:
        TypeError: for unsupported key types.
    """
    handler = _HASH_DISPATCH.get(key.__class__)
    if handler is not None:
        return handler(key)
    if isinstance(key, bool):
        return _splitmix64(0x9B00 + int(key))
    if isinstance(key, int):
        return _splitmix64(key & _MASK64)
    if isinstance(key, str):
        return _hash_str(key)
    if isinstance(key, float):
        return _hash_float(key)
    if isinstance(key, (tuple, list)):
        return _hash_seq(key)
    if isinstance(key, bytes):
        return _splitmix64(zlib.crc32(key) + 0xB17E5)
    if key is None:
        return _splitmix64(0xA0)
    raise TypeError(f"unsupported key type for stable_hash: {type(key).__name__}")


def stable_hash_bytes(data: bytes) -> int:
    """64-bit stable hash of raw bytes."""
    return _splitmix64(zlib.crc32(data) + 0xB17E5)


def partition_for(key: Any, num_partitions: int) -> int:
    """Default partitioner: ``stable_hash(key) mod n``."""
    if num_partitions <= 0:
        raise ValueError("num_partitions must be positive")
    return stable_hash(key) % num_partitions


def map_key(k1: Any, v1: Any, dup_index: int = 0) -> int:
    """Globally unique Map key ``MK`` for a Map function call instance.

    The paper (§3.2) assigns each Map instance a globally unique ``MK``.
    Incremental deletions must re-derive the *same* MK from the old
    ``(K1, V1)`` carried in the delta record, so MK is a pure function of
    the record content (plus a duplicate-occurrence index for
    byte-identical records; fine-grain incremental jobs assume records
    are unique per ``(K1, V1)``, which holds for adjacency-list inputs).
    """
    return _splitmix64(stable_hash(k1) ^ stable_hash_value(v1) ^ (dup_index * 0x2545F4914F6CDD1D))


def stable_hash_value(value: Any) -> int:
    """Stable hash for values (same algorithm; separate name for intent)."""
    return stable_hash(value)
