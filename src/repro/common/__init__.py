"""Shared kernel: kv-pair model, serialization, hashing, configuration."""

from repro.common import config
from repro.common.errors import ReproError
from repro.common.kvpair import DeltaRecord, Op, delete, insert, update

__all__ = ["config", "ReproError", "DeltaRecord", "Op", "delete", "insert", "update"]
