"""Exception hierarchy for the i2MapReduce reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without catching unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SerializationError(ReproError):
    """A value could not be encoded to or decoded from the binary format."""


class DFSError(ReproError):
    """Base class for distributed-file-system errors."""


class FileNotFoundInDFS(DFSError):
    """The requested DFS path does not exist."""


class FileAlreadyExists(DFSError):
    """A DFS path was written twice without overwrite permission."""


class JobError(ReproError):
    """A MapReduce job was misconfigured or failed during execution."""


class DeltaDecodeError(ReproError):
    """A DFS delta record could not be decoded into a ``DeltaRecord``.

    Raised when a ``(K1, (V1, '+'|'-'))`` record has the wrong shape or
    an op tag other than ``'+'``/``'-'``.
    """

    def __init__(self, record: object, reason: str) -> None:
        super().__init__(f"malformed delta record {record!r}: {reason}")
        self.record = record
        self.reason = reason


class StreamError(ReproError):
    """Base class for continuous-pipeline (streaming) errors."""


class StreamSourceError(StreamError):
    """A delta source was misconfigured or produced an unusable stream."""


class InvalidJobConf(JobError):
    """A job configuration failed validation before execution."""


class TaskFailure(JobError):
    """A simulated task failure (used by the fault-injection machinery)."""

    def __init__(self, task_id: str, message: str = "") -> None:
        super().__init__(message or f"task {task_id} failed")
        self.task_id = task_id


class StoreError(ReproError):
    """Base class for MRBG-Store errors."""


class StoreClosedError(StoreError):
    """An operation was attempted on a closed MRBG-Store."""


class ChunkNotFound(StoreError):
    """A queried chunk key is not present in the MRBG-Store index."""

    def __init__(self, key: object) -> None:
        super().__init__(f"chunk not found for key {key!r}")
        self.key = key


class ConvergenceError(ReproError):
    """An iterative computation failed to converge within its budget."""
