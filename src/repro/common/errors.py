"""Exception hierarchy for the i2MapReduce reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without catching unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SerializationError(ReproError):
    """A value could not be encoded to or decoded from the binary format."""


class DFSError(ReproError):
    """Base class for distributed-file-system errors."""


class FileNotFoundInDFS(DFSError):
    """The requested DFS path does not exist."""


class FileAlreadyExists(DFSError):
    """A DFS path was written twice without overwrite permission."""


class JobError(ReproError):
    """A MapReduce job was misconfigured or failed during execution."""


class DeltaDecodeError(ReproError):
    """A DFS delta record could not be decoded into a ``DeltaRecord``.

    Raised when a ``(K1, (V1, '+'|'-'))`` record has the wrong shape or
    an op tag other than ``'+'``/``'-'``.
    """

    def __init__(self, record: object, reason: str) -> None:
        super().__init__(f"malformed delta record {record!r}: {reason}")
        self.record = record
        self.reason = reason


class StreamError(ReproError):
    """Base class for continuous-pipeline (streaming) errors."""


class StreamSourceError(StreamError):
    """A delta source was misconfigured or produced an unusable stream."""


class InvalidJobConf(JobError):
    """A job configuration failed validation before execution."""


class TaskFailure(JobError):
    """A simulated task failure (used by the fault-injection machinery)."""

    def __init__(self, task_id: str, message: str = "") -> None:
        super().__init__(message or f"task {task_id} failed")
        self.task_id = task_id


class RetriesExhausted(JobError):
    """A task kept failing after every permitted re-execution.

    Raised by :class:`repro.resilience.ResilientExecutor` once a task has
    consumed its retry budget; carries the task's index within the batch
    and the final underlying failure description.
    """

    def __init__(self, task_index: int, attempts: int, cause: str) -> None:
        super().__init__(
            f"task {task_index} failed {attempts} attempt(s); giving up: {cause}"
        )
        self.task_index = task_index
        self.attempts = attempts
        self.cause = cause


class DeadLetteredBatch(StreamError):
    """A streaming micro-batch failed every retry and was dead-lettered.

    Never raised out of :meth:`repro.streaming.pipeline.ContinuousPipeline.run`
    — the pipeline records the poison batch and keeps going — but kept as
    the typed wrapper stored in the pipeline's dead-letter queue.
    """

    def __init__(self, batch_index: int, attempts: int, cause: str) -> None:
        super().__init__(
            f"batch {batch_index} dead-lettered after {attempts} attempt(s): {cause}"
        )
        self.batch_index = batch_index
        self.attempts = attempts
        self.cause = cause


class StoreError(ReproError):
    """Base class for MRBG-Store errors."""


class StoreClosedError(StoreError):
    """An operation was attempted on a closed MRBG-Store."""


class WALCorruptError(StoreError):
    """A write-ahead log contains mid-log corruption (not a torn tail).

    A crash can only tear the *tail* of a sequential append, and torn
    tails are tolerated (replay stops and recovery rolls back).  A record
    that is fully present in the file but fails its checksum — or decodes
    to something other than an opcode tuple — means the log was damaged
    some other way (bit rot, external truncation/edit); silently dropping
    the suffix could resurrect stale preserved state, so this fails
    loudly instead.
    """

    def __init__(self, path: str, offset: int, reason: str) -> None:
        super().__init__(f"corrupt WAL record in {path or '<buffer>'} "
                         f"at byte {offset}: {reason}")
        self.path = path
        self.offset = offset
        self.reason = reason


class ChunkNotFound(StoreError):
    """A queried chunk key is not present in the MRBG-Store index."""

    def __init__(self, key: object) -> None:
        super().__init__(f"chunk not found for key {key!r}")
        self.key = key


class ConvergenceError(ReproError):
    """An iterative computation failed to converge within its budget."""


class ServingError(ReproError):
    """Base class for online query-serving (``repro.serving``) errors."""


class QueryTimeout(ServingError):
    """A query's simulated read cost exceeded its timeout budget.

    The serving layer reuses :class:`repro.resilience.RetryPolicy`'s
    ``timeout_s`` as a per-query deadline on the *simulated* clock: a
    query whose charged read cost comes out above the deadline raises
    this instead of returning (the client would have given up).
    """

    def __init__(self, query: str, cost_s: float, timeout_s: float) -> None:
        super().__init__(
            f"{query} took {cost_s:.6f} simulated s "
            f"(timeout {timeout_s:.6f} s)"
        )
        self.query = query
        self.cost_s = cost_s
        self.timeout_s = timeout_s


class EpochRetired(ServingError):
    """The requested epoch fell out of the serving retention window.

    Epochs older than the window are retired once unpinned; a reader
    holding a bare epoch number past that point gets this error rather
    than a silently different view.
    """


class UnknownEpoch(ServingError):
    """The requested epoch was never published by this manager."""
