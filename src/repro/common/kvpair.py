"""Key-value pair model shared by every engine in the library.

MapReduce computations in this reproduction operate on plain Python
``(key, value)`` tuples.  Keys must be *orderable* across the heterogeneous
types that real workloads mix (ints, strings, tuples of those), because the
shuffle phase sorts by key exactly like Hadoop sorts by serialized key
bytes.  :func:`sort_key` provides that total order.

Delta inputs (paper §3.3) are streams of :class:`DeltaRecord`; an update is
represented as a deletion of the old record followed by an insertion of the
new one, exactly as the paper prescribes.
"""

from __future__ import annotations

import enum
from typing import Any, Iterable, Iterator, NamedTuple, Tuple


class Op(enum.Enum):
    """Delta operation marker: ``+`` for insert, ``-`` for delete."""

    INSERT = "+"
    DELETE = "-"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class DeltaRecord(NamedTuple):
    """One record of a delta input file.

    Attributes:
        key: the Map input key ``K1``.
        value: the Map input value ``V1`` (for deletions, the *old* value,
            so the engine can re-derive the MRBGraph edges to remove).
        op: :data:`Op.INSERT` or :data:`Op.DELETE`.
    """

    key: Any
    value: Any
    op: Op


def insert(key: Any, value: Any) -> DeltaRecord:
    """Build an insertion delta record (``+`` in the paper's notation)."""
    return DeltaRecord(key, value, Op.INSERT)


def delete(key: Any, value: Any) -> DeltaRecord:
    """Build a deletion delta record (``-`` in the paper's notation)."""
    return DeltaRecord(key, value, Op.DELETE)


def update(key: Any, old_value: Any, new_value: Any) -> Tuple[DeltaRecord, DeltaRecord]:
    """Represent an update as a deletion followed by an insertion (§3.1)."""
    return delete(key, old_value), insert(key, new_value)


# Type ranks give a total order across the key types workloads actually mix.
_RANK_NONE = 0
_RANK_BOOL = 1
_RANK_NUM = 2
_RANK_STR = 3
_RANK_BYTES = 4
_RANK_TUPLE = 5


def sort_key(key: Any) -> Tuple:
    """Return a tuple that totally orders heterogeneous MapReduce keys.

    Numbers order among themselves, strings among themselves, and tuples
    recursively; distinct types order by a fixed type rank.  This mirrors
    Hadoop, where keys are ordered by their serialized byte representation.

    Raises:
        TypeError: for key types the library does not support.
    """
    if key is None:
        return (_RANK_NONE,)
    if isinstance(key, bool):
        return (_RANK_BOOL, key)
    if isinstance(key, (int, float)):
        return (_RANK_NUM, key)
    if isinstance(key, str):
        return (_RANK_STR, key)
    if isinstance(key, bytes):
        return (_RANK_BYTES, key)
    if isinstance(key, tuple):
        return (_RANK_TUPLE, tuple(sort_key(part) for part in key))
    raise TypeError(f"unsupported MapReduce key type: {type(key).__name__}")


def sorted_by_key(pairs: Iterable[Tuple[Any, Any]]) -> list:
    """Sort ``(key, value)`` pairs by :func:`sort_key` of the key."""
    return sorted(pairs, key=lambda kv: sort_key(kv[0]))


def group_sorted(pairs: Iterable[Tuple[Any, Any]]) -> Iterator[Tuple[Any, list]]:
    """Group an already key-sorted pair stream into ``(key, [values])``.

    The input must be sorted by key (as the shuffle phase guarantees);
    groups are yielded in key order with values in arrival order.
    """
    current_key: Any = None
    current_values: list = []
    have_group = False
    for key, value in pairs:
        if have_group and key == current_key:
            current_values.append(value)
        else:
            if have_group:
                yield current_key, current_values
            current_key = key
            current_values = [value]
            have_group = True
    if have_group:
        yield current_key, current_values
