"""Key-value pair model shared by every engine in the library.

MapReduce computations in this reproduction operate on plain Python
``(key, value)`` tuples.  Keys must be *orderable* across the heterogeneous
types that real workloads mix (ints, strings, tuples of those), because the
shuffle phase sorts by key exactly like Hadoop sorts by serialized key
bytes.  :func:`sort_key` provides that total order.

Delta inputs (paper §3.3) are streams of :class:`DeltaRecord`; an update is
represented as a deletion of the old record followed by an insertion of the
new one, exactly as the paper prescribes.
"""

from __future__ import annotations

import enum
import heapq
import operator as _operator
from typing import Any, Iterable, Iterator, List, NamedTuple, Sequence, Tuple


class Op(enum.Enum):
    """Delta operation marker: ``+`` for insert, ``-`` for delete."""

    INSERT = "+"
    DELETE = "-"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class DeltaRecord(NamedTuple):
    """One record of a delta input file.

    Attributes:
        key: the Map input key ``K1``.
        value: the Map input value ``V1`` (for deletions, the *old* value,
            so the engine can re-derive the MRBGraph edges to remove).
        op: :data:`Op.INSERT` or :data:`Op.DELETE`.
    """

    key: Any
    value: Any
    op: Op


def insert(key: Any, value: Any) -> DeltaRecord:
    """Build an insertion delta record (``+`` in the paper's notation)."""
    return DeltaRecord(key, value, Op.INSERT)


def delete(key: Any, value: Any) -> DeltaRecord:
    """Build a deletion delta record (``-`` in the paper's notation)."""
    return DeltaRecord(key, value, Op.DELETE)


def update(key: Any, old_value: Any, new_value: Any) -> Tuple[DeltaRecord, DeltaRecord]:
    """Represent an update as a deletion followed by an insertion (§3.1)."""
    return delete(key, old_value), insert(key, new_value)


# Type ranks give a total order across the key types workloads actually mix.
_RANK_NONE = 0
_RANK_BOOL = 1
_RANK_NUM = 2
_RANK_STR = 3
_RANK_BYTES = 4
_RANK_TUPLE = 5


def sort_key(key: Any) -> Tuple:
    """Return a tuple that totally orders heterogeneous MapReduce keys.

    Numbers order among themselves, strings among themselves, and tuples
    recursively; distinct types order by a fixed type rank.  This mirrors
    Hadoop, where keys are ordered by their serialized byte representation.

    The exact-type dispatch table below short-circuits the common cases
    (this function runs once per record on every shuffle path); subclasses
    fall through to the isinstance chain with identical results.

    Raises:
        TypeError: for key types the library does not support.
    """
    handler = _SORT_KEY_DISPATCH.get(key.__class__)
    if handler is not None:
        return handler(key)
    if key is None:
        return (_RANK_NONE,)
    if isinstance(key, bool):
        return (_RANK_BOOL, key)
    if isinstance(key, (int, float)):
        return (_RANK_NUM, key)
    if isinstance(key, str):
        return (_RANK_STR, key)
    if isinstance(key, bytes):
        return (_RANK_BYTES, key)
    if isinstance(key, tuple):
        return (_RANK_TUPLE, tuple(sort_key(part) for part in key))
    raise TypeError(f"unsupported MapReduce key type: {type(key).__name__}")


_SORT_KEY_DISPATCH = {
    type(None): lambda key: (_RANK_NONE,),
    bool: lambda key: (_RANK_BOOL, key),
    int: lambda key: (_RANK_NUM, key),
    float: lambda key: (_RANK_NUM, key),
    str: lambda key: (_RANK_STR, key),
    bytes: lambda key: (_RANK_BYTES, key),
    tuple: lambda key: (_RANK_TUPLE, tuple(sort_key(part) for part in key)),
}


def record_sort_key(record: Sequence) -> Tuple:
    """:func:`sort_key` of a record's leading element (its shuffle key)."""
    return sort_key(record[0])


_ITEM0 = _operator.itemgetter(0)
_NUMERIC_KINDS = frozenset((int, float))
_STR_ONLY = frozenset((str,))
_BYTES_ONLY = frozenset((bytes,))
_TUPLE_ONLY = frozenset((tuple,))


def _natural_order_ok(keys: list) -> bool:
    """True when Python's native ordering of ``keys`` equals sort_key order.

    Holds for all-numeric (``bool`` excluded: it ranks below numbers in
    :func:`sort_key` but compares equal to 0/1 natively), all-``str`` and
    all-``bytes`` key sets, and for same-arity tuples whose columns
    recursively satisfy the same condition.  The scan is a handful of
    C-level ``set(map(type, …))`` passes — far cheaper than computing
    :func:`sort_key` per record.
    """
    kinds = set(map(type, keys))
    if kinds <= _NUMERIC_KINDS or kinds == _STR_ONLY or kinds == _BYTES_ONLY:
        return True
    if kinds == _TUPLE_ONLY:
        lengths = set(map(len, keys))
        if len(lengths) != 1:
            return False
        return all(
            _natural_order_ok(list(map(_operator.itemgetter(j), keys)))
            for j in range(lengths.pop())
        )
    return False


def sort_records(records: Iterable[Sequence]) -> list:
    """Key-sort records (``(key, ...)`` tuples), same order and stability
    as ``sorted(records, key=record_sort_key)``.

    This is the shuffle's sort: the key of each record is extracted once
    (decorate-sort-undecorate via the sort's key array, never once per
    comparison), and when a type scan proves native ordering matches
    :func:`sort_key` ordering the sort runs entirely on C-level
    comparisons with no per-record Python key call.
    """
    recs = records if type(records) is list else list(records)
    if len(recs) <= 1:
        return list(recs)
    if _natural_order_ok(list(map(_ITEM0, recs))):
        return sorted(recs, key=_ITEM0)
    return sorted(recs, key=record_sort_key)


def merge_sorted_runs(runs: Sequence[Sequence]) -> List:
    """Merge key-sorted record runs into one key-sorted list.

    Same order and stability as ``heapq.merge`` keyed by
    :func:`record_sort_key` (ties order by run then position); when the
    combined type scan proves native key ordering matches
    :func:`sort_key` ordering, the merge compares keys extracted by a
    C-level getter instead of calling :func:`sort_key` per record.
    """
    runs = [run for run in runs if run]
    if not runs:
        return []
    if len(runs) == 1:
        return list(runs[0])
    all_keys: list = []
    for run in runs:
        all_keys.extend(map(_ITEM0, run))
    if _natural_order_ok(all_keys):
        return list(heapq.merge(*runs, key=_ITEM0))
    return list(heapq.merge(*runs, key=record_sort_key))


def sorted_by_key(pairs: Iterable[Tuple[Any, Any]]) -> list:
    """Sort ``(key, value)`` pairs by :func:`sort_key` of the key."""
    return sort_records(pairs)


def group_sorted(pairs: Iterable[Tuple[Any, Any]]) -> Iterator[Tuple[Any, list]]:
    """Group an already key-sorted pair stream into ``(key, [values])``.

    The input must be sorted by key (as the shuffle phase guarantees);
    groups are yielded in key order with values in arrival order.
    """
    current_key: Any = None
    current_values: list = []
    have_group = False
    for key, value in pairs:
        if have_group and key == current_key:
            current_values.append(value)
        else:
            if have_group:
                yield current_key, current_values
            current_key = key
            current_values = [value]
            have_group = True
    if have_group:
        yield current_key, current_values
