"""Binary serialization for records stored on disk by the MRBG-Store.

The format is a compact, self-describing, type-tagged encoding supporting
the value types that flow through the engines: ``None``, ``bool``, ``int``,
``float``, ``str``, ``bytes``, ``tuple``, ``list`` and ``dict``.  It is
used for the *real* on-disk MRBGraph chunk files, so Table 4's byte counts
are measured from genuine encoded sizes.

The encoding is deliberately pickle-free: it is deterministic, versioned by
construction (one tag byte per value) and safe to read back from untrusted
files.

Wire format (little-endian throughout)::

    value   := tag byte, payload
    0x00    None                (no payload)
    0x01    True                (no payload)
    0x02    False               (no payload)
    0x03    int                 i64
    0x04    float               f64
    0x05    str                 u32 byte length, UTF-8 bytes
    0x06    bytes               u32 length, raw bytes
    0x07    tuple               u32 count, that many values
    0x08    list                u32 count, that many values
    0x09    dict                u32 count, that many key/value value pairs

This module is on the hot path of every chunk and shuffle spill, so the
implementation favors bulk ``struct`` operations over per-value Python
work while producing byte-identical output to the original recursive
codec:

- the decoder is **zero-copy**: any buffer is wrapped in a single
  ``memoryview`` and every slice (including nested container payloads)
  stays a view until a leaf value forces materialization;
- decoding dispatches through a 256-entry table instead of an if-chain,
  and container payloads of scalars decode in a flat inline loop (no
  per-element function call, no recursion for flat collections);
- the encoder detects runs of homogeneous ``int``/``float`` elements in
  lists and tuples and packs each run with one batched ``struct`` call
  plus strided byte interleaving;
- :func:`decode_many` / :func:`encode_many` are bulk entry points for
  streams of concatenated top-level values (the MRBG-Store index file).
"""

from __future__ import annotations

import struct
from typing import Any, List, Tuple

from repro.common.errors import SerializationError

_TAG_NONE = 0x00
_TAG_TRUE = 0x01
_TAG_FALSE = 0x02
_TAG_INT = 0x03
_TAG_FLOAT = 0x04
_TAG_STR = 0x05
_TAG_BYTES = 0x06
_TAG_TUPLE = 0x07
_TAG_LIST = 0x08
_TAG_DICT = 0x09

_U32 = struct.Struct("<I")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")

_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1

#: Minimum homogeneous-run length worth a batched ``struct`` pack; below
#: this the per-item path is cheaper than assembling the batch.
_RUN_MIN = 4

# ---------------------------------------------------------------------- #
# encoding                                                               #
# ---------------------------------------------------------------------- #


def encode(value: Any) -> bytes:
    """Encode ``value`` to bytes.

    Raises:
        SerializationError: if the value (or a nested element) has an
            unsupported type, or an int exceeds 64 bits.
    """
    out = bytearray()
    encode_into(value, out)
    return bytes(out)


def encode_many(values) -> bytes:
    """Encode an iterable of values as one concatenated byte stream.

    The result is the concatenation of :func:`encode` of each value and
    round-trips through :func:`decode_many`.
    """
    out = bytearray()
    for value in values:
        encode_into(value, out)
    return bytes(out)


def encode_into(value: Any, out: bytearray) -> None:
    """Append the encoding of ``value`` to the ``out`` buffer."""
    if value is None:
        out.append(_TAG_NONE)
    elif value is True:
        out.append(_TAG_TRUE)
    elif value is False:
        out.append(_TAG_FALSE)
    elif isinstance(value, int):
        out.append(_TAG_INT)
        try:
            out += _I64.pack(value)
        except struct.error as exc:
            raise SerializationError(f"int out of 64-bit range: {value}") from exc
    elif isinstance(value, float):
        out.append(_TAG_FLOAT)
        out += _F64.pack(value)
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out.append(_TAG_STR)
        out += _U32.pack(len(raw))
        out += raw
    elif isinstance(value, bytes):
        out.append(_TAG_BYTES)
        out += _U32.pack(len(value))
        out += value
    elif isinstance(value, tuple):
        out.append(_TAG_TUPLE)
        out += _U32.pack(len(value))
        _encode_sequence(value, out)
    elif isinstance(value, list):
        out.append(_TAG_LIST)
        out += _U32.pack(len(value))
        _encode_sequence(value, out)
    elif isinstance(value, dict):
        out.append(_TAG_DICT)
        out += _U32.pack(len(value))
        for key, val in value.items():
            encode_into(key, out)
            encode_into(val, out)
    else:
        raise SerializationError(
            f"unsupported type for serialization: {type(value).__name__}"
        )


def pack_tagged_run(tag: int, packed: bytes, count: int) -> bytearray:
    """Interleave one tag byte before each 8-byte item of ``packed``.

    ``packed`` is ``count`` contiguous little-endian 8-byte values (the
    output of one batched ``struct`` pack); the result is the format's
    per-value representation — tag, payload, tag, payload, … — produced
    with nine strided C-level copies instead of ``count`` Python appends.
    """
    out = bytearray(9 * count)
    out[0::9] = bytes([tag]) * count
    for i in range(8):
        out[i + 1 :: 9] = packed[i::8]
    return out


def _encode_sequence(seq, out: bytearray) -> None:
    """Encode a tuple/list payload, batching homogeneous primitive runs."""
    n = len(seq)
    i = 0
    while i < n:
        item = seq[i]
        cls = item.__class__
        if cls is int or cls is float:
            j = i + 1
            while j < n and seq[j].__class__ is cls:
                j += 1
            run = j - i
            if run >= _RUN_MIN:
                if cls is int:
                    try:
                        packed = struct.pack("<%dq" % run, *seq[i:j])
                    except struct.error:
                        for v in seq[i:j]:
                            if not _INT64_MIN <= v <= _INT64_MAX:
                                raise SerializationError(
                                    f"int out of 64-bit range: {v}"
                                ) from None
                        raise  # pragma: no cover - range check is exhaustive
                    out += pack_tagged_run(_TAG_INT, packed, run)
                else:
                    packed = struct.pack("<%dd" % run, *seq[i:j])
                    out += pack_tagged_run(_TAG_FLOAT, packed, run)
                i = j
                continue
        encode_into(item, out)
        i += 1


def encoded_size(value: Any) -> int:
    """Byte length :func:`encode` would produce, without materializing it.

    Raises:
        SerializationError: same conditions as :func:`encode`.
    """
    if value is None or value is True or value is False:
        return 1
    if isinstance(value, int):
        if not _INT64_MIN <= value <= _INT64_MAX:
            raise SerializationError(f"int out of 64-bit range: {value}")
        return 9
    if isinstance(value, float):
        return 9
    if isinstance(value, str):
        return 5 + (len(value) if value.isascii() else len(value.encode("utf-8")))
    if isinstance(value, bytes):
        return 5 + len(value)
    if isinstance(value, (tuple, list)):
        return 5 + sum(encoded_size(item) for item in value)
    if isinstance(value, dict):
        return 5 + sum(
            encoded_size(key) + encoded_size(val) for key, val in value.items()
        )
    raise SerializationError(
        f"unsupported type for serialization: {type(value).__name__}"
    )


# ---------------------------------------------------------------------- #
# decoding                                                               #
# ---------------------------------------------------------------------- #


def as_view(buf) -> memoryview:
    """Wrap ``buf`` in a (zero-copy) flat byte ``memoryview``."""
    return buf if type(buf) is memoryview else memoryview(buf)


def decode(buf, offset: int = 0) -> Tuple[Any, int]:
    """Decode one value from ``buf`` starting at ``offset``.

    ``buf`` may be ``bytes``, ``bytearray`` or a ``memoryview``; decoding
    never copies container payloads, only leaf values.

    Returns:
        ``(value, next_offset)``.

    Raises:
        SerializationError: on truncated or corrupt input.
    """
    try:
        return _decode_at(as_view(buf), offset)
    except (struct.error, IndexError, UnicodeDecodeError) as exc:
        raise SerializationError(f"corrupt encoding at offset {offset}") from exc


def decode_many(buf) -> List[Any]:
    """Decode every concatenated top-level value in ``buf``.

    The bulk entry point for value streams (e.g. the MRBG-Store index
    file): one ``memoryview`` wrap, then repeated in-place decodes.
    """
    mv = as_view(buf)
    end = len(mv)
    values: List[Any] = []
    offset = 0
    while offset < end:
        try:
            value, offset = _decode_at(mv, offset)
        except (struct.error, IndexError, UnicodeDecodeError) as exc:
            raise SerializationError(f"corrupt encoding at offset {offset}") from exc
        values.append(value)
    return values


def _dec_none(mv, offset):
    return None, offset


def _dec_true(mv, offset):
    return True, offset


def _dec_false(mv, offset):
    return False, offset


def _dec_int(mv, offset):
    return _I64.unpack_from(mv, offset)[0], offset + 8


def _dec_float(mv, offset):
    return _F64.unpack_from(mv, offset)[0], offset + 8


def _dec_str(mv, offset):
    (length,) = _U32.unpack_from(mv, offset)
    offset += 4
    end = offset + length
    if end > len(mv):
        raise SerializationError("truncated string")
    return str(mv[offset:end], "utf-8"), end


def _dec_bytes(mv, offset):
    (length,) = _U32.unpack_from(mv, offset)
    offset += 4
    end = offset + length
    if end > len(mv):
        raise SerializationError("truncated bytes")
    return bytes(mv[offset:end]), end


def _decode_items(mv, offset: int, count: int) -> Tuple[list, int]:
    """Decode ``count`` consecutive values with scalars inlined.

    Flat collections (the common case: edge lists, index entries, numeric
    payloads) decode in this single loop without recursion; only nested
    containers and string-ish leaves dispatch back through the table.
    """
    items: list = []
    append = items.append
    unpack_i64 = _I64.unpack_from
    unpack_f64 = _F64.unpack_from
    for _ in range(count):
        tag = mv[offset]
        if tag == _TAG_INT:
            append(unpack_i64(mv, offset + 1)[0])
            offset += 9
        elif tag == _TAG_FLOAT:
            append(unpack_f64(mv, offset + 1)[0])
            offset += 9
        elif tag == _TAG_NONE:
            append(None)
            offset += 1
        elif tag == _TAG_TRUE:
            append(True)
            offset += 1
        elif tag == _TAG_FALSE:
            append(False)
            offset += 1
        else:
            value, offset = _decode_at(mv, offset)
            append(value)
    return items, offset


def _dec_tuple(mv, offset):
    (count,) = _U32.unpack_from(mv, offset)
    items, offset = _decode_items(mv, offset + 4, count)
    return tuple(items), offset


def _dec_list(mv, offset):
    (count,) = _U32.unpack_from(mv, offset)
    return _decode_items(mv, offset + 4, count)


def _dec_dict(mv, offset):
    (count,) = _U32.unpack_from(mv, offset)
    offset += 4
    result = {}
    for _ in range(count):
        key, offset = _decode_at(mv, offset)
        val, offset = _decode_at(mv, offset)
        try:
            result[key] = val
        except TypeError as exc:  # corrupt input decoding to unhashable key
            raise SerializationError("dict key is unhashable") from exc
    return result, offset


#: Tag-indexed dispatch table; unknown tags stay ``None``.
_DECODERS: list = [None] * 256
_DECODERS[_TAG_NONE] = _dec_none
_DECODERS[_TAG_TRUE] = _dec_true
_DECODERS[_TAG_FALSE] = _dec_false
_DECODERS[_TAG_INT] = _dec_int
_DECODERS[_TAG_FLOAT] = _dec_float
_DECODERS[_TAG_STR] = _dec_str
_DECODERS[_TAG_BYTES] = _dec_bytes
_DECODERS[_TAG_TUPLE] = _dec_tuple
_DECODERS[_TAG_LIST] = _dec_list
_DECODERS[_TAG_DICT] = _dec_dict


def _decode_at(mv: memoryview, offset: int) -> Tuple[Any, int]:
    tag = mv[offset]
    handler = _DECODERS[tag]
    if handler is None:
        raise SerializationError(f"unknown tag byte 0x{tag:02x}")
    return handler(mv, offset + 1)


# ---------------------------------------------------------------------- #
# length-prefixed records                                                #
# ---------------------------------------------------------------------- #


def encode_record(key: Any, value: Any) -> bytes:
    """Encode a ``(key, value)`` record as one length-prefixed unit."""
    body = encode((key, value))
    return _U32.pack(len(body)) + body


def decode_record(buf, offset: int = 0) -> Tuple[Any, Any, int]:
    """Decode one record produced by :func:`encode_record`.

    Returns:
        ``(key, value, next_offset)``.
    """
    mv = as_view(buf)
    try:
        (length,) = _U32.unpack_from(mv, offset)
    except struct.error as exc:
        raise SerializationError(f"corrupt encoding at offset {offset}") from exc
    offset += 4
    end = offset + length
    if end > len(mv):
        raise SerializationError("truncated record")
    pair, consumed = decode(mv, offset)
    if consumed != end:
        raise SerializationError("record length mismatch")
    if not isinstance(pair, tuple) or len(pair) != 2:
        raise SerializationError("record body is not a (key, value) pair")
    return pair[0], pair[1], end
