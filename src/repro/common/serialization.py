"""Binary serialization for records stored on disk by the MRBG-Store.

The format is a compact, self-describing, type-tagged encoding supporting
the value types that flow through the engines: ``None``, ``bool``, ``int``,
``float``, ``str``, ``bytes``, ``tuple``, ``list`` and ``dict``.  It is
used for the *real* on-disk MRBGraph chunk files, so Table 4's byte counts
are measured from genuine encoded sizes.

The encoding is deliberately pickle-free: it is deterministic, versioned by
construction (one tag byte per value) and safe to read back from untrusted
files.
"""

from __future__ import annotations

import struct
from typing import Any, Tuple

from repro.common.errors import SerializationError

_TAG_NONE = 0x00
_TAG_TRUE = 0x01
_TAG_FALSE = 0x02
_TAG_INT = 0x03
_TAG_FLOAT = 0x04
_TAG_STR = 0x05
_TAG_BYTES = 0x06
_TAG_TUPLE = 0x07
_TAG_LIST = 0x08
_TAG_DICT = 0x09

_U32 = struct.Struct("<I")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")


def encode(value: Any) -> bytes:
    """Encode ``value`` to bytes.

    Raises:
        SerializationError: if the value (or a nested element) has an
            unsupported type, or an int exceeds 64 bits.
    """
    out = bytearray()
    _encode_into(value, out)
    return bytes(out)


def _encode_into(value: Any, out: bytearray) -> None:
    if value is None:
        out.append(_TAG_NONE)
    elif value is True:
        out.append(_TAG_TRUE)
    elif value is False:
        out.append(_TAG_FALSE)
    elif isinstance(value, int):
        out.append(_TAG_INT)
        try:
            out += _I64.pack(value)
        except struct.error as exc:
            raise SerializationError(f"int out of 64-bit range: {value}") from exc
    elif isinstance(value, float):
        out.append(_TAG_FLOAT)
        out += _F64.pack(value)
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out.append(_TAG_STR)
        out += _U32.pack(len(raw))
        out += raw
    elif isinstance(value, bytes):
        out.append(_TAG_BYTES)
        out += _U32.pack(len(value))
        out += value
    elif isinstance(value, tuple):
        out.append(_TAG_TUPLE)
        out += _U32.pack(len(value))
        for item in value:
            _encode_into(item, out)
    elif isinstance(value, list):
        out.append(_TAG_LIST)
        out += _U32.pack(len(value))
        for item in value:
            _encode_into(item, out)
    elif isinstance(value, dict):
        out.append(_TAG_DICT)
        out += _U32.pack(len(value))
        for key, val in value.items():
            _encode_into(key, out)
            _encode_into(val, out)
    else:
        raise SerializationError(
            f"unsupported type for serialization: {type(value).__name__}"
        )


def decode(buf: bytes, offset: int = 0) -> Tuple[Any, int]:
    """Decode one value from ``buf`` starting at ``offset``.

    Returns:
        ``(value, next_offset)``.

    Raises:
        SerializationError: on truncated or corrupt input.
    """
    try:
        return _decode_at(buf, offset)
    except (struct.error, IndexError) as exc:
        raise SerializationError(f"corrupt encoding at offset {offset}") from exc


def _decode_at(buf: bytes, offset: int) -> Tuple[Any, int]:
    tag = buf[offset]
    offset += 1
    if tag == _TAG_NONE:
        return None, offset
    if tag == _TAG_TRUE:
        return True, offset
    if tag == _TAG_FALSE:
        return False, offset
    if tag == _TAG_INT:
        (value,) = _I64.unpack_from(buf, offset)
        return value, offset + 8
    if tag == _TAG_FLOAT:
        (value,) = _F64.unpack_from(buf, offset)
        return value, offset + 8
    if tag == _TAG_STR:
        (length,) = _U32.unpack_from(buf, offset)
        offset += 4
        end = offset + length
        if end > len(buf):
            raise SerializationError("truncated string")
        return buf[offset:end].decode("utf-8"), end
    if tag == _TAG_BYTES:
        (length,) = _U32.unpack_from(buf, offset)
        offset += 4
        end = offset + length
        if end > len(buf):
            raise SerializationError("truncated bytes")
        return bytes(buf[offset:end]), end
    if tag in (_TAG_TUPLE, _TAG_LIST):
        (length,) = _U32.unpack_from(buf, offset)
        offset += 4
        items = []
        for _ in range(length):
            item, offset = _decode_at(buf, offset)
            items.append(item)
        return (tuple(items) if tag == _TAG_TUPLE else items), offset
    if tag == _TAG_DICT:
        (length,) = _U32.unpack_from(buf, offset)
        offset += 4
        result = {}
        for _ in range(length):
            key, offset = _decode_at(buf, offset)
            val, offset = _decode_at(buf, offset)
            result[key] = val
        return result, offset
    raise SerializationError(f"unknown tag byte 0x{tag:02x}")


def encode_record(key: Any, value: Any) -> bytes:
    """Encode a ``(key, value)`` record as one length-prefixed unit."""
    body = encode((key, value))
    return _U32.pack(len(body)) + body


def decode_record(buf: bytes, offset: int = 0) -> Tuple[Any, Any, int]:
    """Decode one record produced by :func:`encode_record`.

    Returns:
        ``(key, value, next_offset)``.
    """
    (length,) = _U32.unpack_from(buf, offset)
    offset += 4
    end = offset + length
    if end > len(buf):
        raise SerializationError("truncated record")
    pair, consumed = decode(buf, offset)
    if consumed != end:
        raise SerializationError("record length mismatch")
    if not isinstance(pair, tuple) or len(pair) != 2:
        raise SerializationError("record body is not a (key, value) pair")
    return pair[0], pair[1], end
