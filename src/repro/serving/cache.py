"""LRU result cache with delta-driven invalidation.

The cache sits in front of the query server and memoises whole query
*results* (a point read, a multi-get, a scan, a top-k) keyed by a
deterministic query signature.  What makes it safe under continuous
ingestion is that invalidation is *delta-driven*: every published epoch
carries the exact set of keys its micro-batch touched, and the cache
drops precisely the entries whose answers could depend on those keys —
point/multi entries via a key→signatures dependency index, range/prefix
entries via their ``sort_key`` bounds, and top-k entries whenever any
key moved (a changed value anywhere can reorder the top; Elghandour et
al.'s view-maintenance framing, PAPERS.md).

Correctness contract: a hit is served only to readers pinned at an
epoch **at or after** the entry's compute epoch.  Combined with exact
invalidation this guarantees a cached answer equals a fresh read at the
reader's pinned epoch — an entry that survived publishes ``e+1..p`` was
untouched by them, so the answer at ``p`` is unchanged; readers pinned
*before* the entry's epoch bypass the cache (their older view may
legitimately differ).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.common import config
from repro.common.kvpair import sort_key


@dataclass
class CacheStats:
    """Counters describing the cache's effectiveness so far."""

    #: lookups answered from the cache.
    hits: int = 0
    #: lookups that missed (absent, stale-epoch, or invalidated).
    misses: int = 0
    #: entries dropped by delta-driven invalidation.
    invalidations: int = 0
    #: entries dropped by LRU capacity pressure.
    evictions: int = 0
    #: puts rejected because a newer epoch published mid-computation.
    stale_puts: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when none)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class _Entry:
    """One cached query result and what it depends on."""

    value: Any
    #: epoch the result was computed at.
    epoch: int
    #: exact keys the result depends on (point/multi lookups).
    deps: Optional[FrozenSet[Any]] = None
    #: ``sort_key`` bounds the result covers (range/prefix scans).
    bounds: Optional[Tuple[Tuple, Tuple]] = None
    #: whether *any* touched key invalidates the result (top-k).
    global_dep: bool = False
    #: dependency-index back-references, for O(1) unlinking.
    indexed_keys: Tuple[Any, ...] = field(default=())


class ResultCache:
    """Bounded LRU of query results, invalidated by published deltas.

    Thread-safe; all operations serialize on one internal lock.  The
    server wires :meth:`invalidate` as an epoch listener so every
    published snapshot's ``touched`` set prunes the cache before any
    query can observe the new epoch.
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        self.capacity = (
            config.DEFAULT_SERVING_CACHE if capacity is None else capacity
        )
        if self.capacity < 0:
            raise ValueError("cache capacity must be >= 0")
        self.stats = CacheStats()
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, _Entry]" = OrderedDict()
        #: key -> signatures of point/multi entries depending on it.
        self._by_key: Dict[Any, Set[str]] = {}
        #: signatures of entries with sort_key bounds (scans).
        self._ranged: Set[str] = set()
        #: signatures of entries invalidated by any change (top-k).
        self._global: Set[str] = set()

    def __len__(self) -> int:
        return len(self._entries)

    # -------------------------------------------------------------- #
    # lookup / insert                                                #
    # -------------------------------------------------------------- #

    def get(self, sig: str, pinned_epoch: int) -> Tuple[bool, Any]:
        """``(hit, value)`` for a reader pinned at ``pinned_epoch``.

        Only entries computed at or before the reader's epoch are
        eligible (see the module contract); a hit refreshes LRU
        recency.
        """
        with self._lock:
            entry = self._entries.get(sig)
            if entry is None or entry.epoch > pinned_epoch:
                self.stats.misses += 1
                return False, None
            self._entries.move_to_end(sig)
            self.stats.hits += 1
            return True, entry.value

    def put(
        self,
        sig: str,
        value: Any,
        epoch: int,
        latest_epoch: int,
        deps: Optional[FrozenSet[Any]] = None,
        bounds: Optional[Tuple[Tuple, Tuple]] = None,
        global_dep: bool = False,
    ) -> bool:
        """Insert a result computed at ``epoch``; returns acceptance.

        The put is *rejected* when a newer epoch has already published
        (``epoch < latest_epoch``): the invalidation for that publish
        has already run, so accepting the entry could cache an answer
        the delta just made stale.  The caller passes the manager's
        current latest epoch, read under no lock — monotonicity makes
        the race benign (a concurrent publish only makes the check
        stricter).
        """
        if self.capacity == 0:
            return False
        with self._lock:
            if epoch < latest_epoch:
                self.stats.stale_puts += 1
                return False
            if sig in self._entries:
                self._unlink_locked(sig)
            indexed: Tuple[Any, ...] = ()
            if deps is not None:
                indexed = tuple(deps)
                for key in indexed:
                    self._by_key.setdefault(key, set()).add(sig)
            elif bounds is not None:
                self._ranged.add(sig)
            elif global_dep:
                self._global.add(sig)
            self._entries[sig] = _Entry(
                value=value,
                epoch=epoch,
                deps=deps,
                bounds=bounds,
                global_dep=global_dep,
                indexed_keys=indexed,
            )
            self._entries.move_to_end(sig)
            while len(self._entries) > self.capacity:
                victim = next(iter(self._entries))
                self._unlink_locked(victim)
                del self._entries[victim]
                self.stats.evictions += 1
            return True

    # -------------------------------------------------------------- #
    # invalidation                                                   #
    # -------------------------------------------------------------- #

    def invalidate(self, touched: FrozenSet[Any]) -> int:
        """Drop every entry whose answer may depend on ``touched``.

        Point/multi entries die iff they depend on a touched key; scan
        entries die iff a touched key's ``sort_key`` falls inside their
        bounds; top-k (global) entries die whenever anything was
        touched.  Returns the number of entries dropped.
        """
        if not touched:
            return 0
        with self._lock:
            doomed: Set[str] = set()
            for key in touched:
                doomed.update(self._by_key.get(key, ()))
            if self._ranged:
                touched_sks = [sort_key(k) for k in touched]
                for sig in self._ranged:
                    entry = self._entries[sig]
                    lo, hi = entry.bounds  # type: ignore[misc]
                    if any(lo <= sk <= hi for sk in touched_sks):
                        doomed.add(sig)
            doomed.update(self._global)
            for sig in doomed:
                self._unlink_locked(sig)
                self._entries.pop(sig, None)
            self.stats.invalidations += len(doomed)
            return len(doomed)

    def on_snapshot(self, snapshot: Any) -> None:
        """Epoch-listener adapter: invalidate from a published snapshot."""
        self.invalidate(snapshot.touched)

    def clear(self) -> None:
        """Drop every entry (stats are preserved)."""
        with self._lock:
            self._entries.clear()
            self._by_key.clear()
            self._ranged.clear()
            self._global.clear()

    def _unlink_locked(self, sig: str) -> None:
        """Remove a signature's dependency-index references (not the entry)."""
        entry = self._entries.get(sig)
        if entry is None:
            return
        for key in entry.indexed_keys:
            sigs = self._by_key.get(key)
            if sigs is not None:
                sigs.discard(sig)
                if not sigs:
                    del self._by_key[key]
        self._ranged.discard(sig)
        self._global.discard(sig)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ResultCache {len(self._entries)}/{self.capacity} "
            f"hit_rate={self.stats.hit_rate:.2f}>"
        )


def entry_signature(kind: str, args: Tuple[Any, ...]) -> str:
    """Deterministic cache signature for a query ``kind`` + arguments."""
    return f"{kind}:{args!r}"


__all__ = ["CacheStats", "ResultCache", "entry_signature"]
