"""Online query serving over preserved state (the ROADMAP's front door).

The package turns a streaming job's converged outputs into an online
read path with three guarantees:

- **Snapshot isolation** — :class:`EpochManager` publishes an immutable
  :class:`EpochSnapshot` per committed micro-batch; every query pins
  one epoch for its lifetime and can never observe a half-applied
  delta, no matter how ingestion interleaves with it.
- **Delta-driven caching** — :class:`ResultCache` memoises whole query
  results and each published epoch's touched-key set invalidates
  exactly the entries it could have changed.
- **Honest costs** — :class:`QueryServer` charges every miss's bytes
  through the cluster :class:`~repro.cluster.costmodel.CostModel`
  (home-shard local read, cross-shard network hops) and enforces
  per-query simulated deadlines via
  :class:`~repro.resilience.RetryPolicy`.

:class:`ServingBridge` wires a
:class:`~repro.streaming.pipeline.ContinuousPipeline` to a server so
each committed batch becomes the next served epoch, and
:class:`LoadGenerator` drives deterministic query mixes for the
benchmarks.
"""

from repro.serving.cache import CacheStats, ResultCache, entry_signature
from repro.serving.epochs import EpochManager, EpochSnapshot
from repro.serving.loadgen import LoadGenerator, QueryMix, percentile
from repro.serving.server import (
    QueryResult,
    QueryServer,
    ServerStats,
    ServingBridge,
)

__all__ = [
    "CacheStats",
    "EpochManager",
    "EpochSnapshot",
    "LoadGenerator",
    "QueryMix",
    "QueryResult",
    "QueryServer",
    "ResultCache",
    "ServerStats",
    "ServingBridge",
    "entry_signature",
    "percentile",
]
