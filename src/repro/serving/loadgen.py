"""Deterministic query load generator for the serving benchmarks.

:class:`LoadGenerator` drives a weighted mix of point gets, multi-gets,
top-k and range scans against a :class:`~repro.serving.server.QueryServer`
— typically while a streaming pipeline publishes epochs concurrently —
and reports throughput (host queries/s), host latency percentiles, the
cache hit rate over the run, the simulated read cost, and how many
distinct epochs answered.

Query *choice* is deterministic (seeded ``random.Random``); what varies
run to run is only host timing and which epoch happens to be current
when each query lands.  A configurable *hot set* skews key choice so a
realistic fraction of traffic re-asks recent questions — that is what
gives the result cache something to do.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.common.errors import QueryTimeout
from repro.common.kvpair import sort_key
from repro.serving.server import QueryServer


@dataclass(frozen=True)
class QueryMix:
    """Relative weights of the query kinds a load run issues."""

    #: weight of single-key point lookups.
    point: float = 0.6
    #: weight of batched multi-gets.
    multi: float = 0.15
    #: weight of top-k queries.
    top_k: float = 0.15
    #: weight of range scans.
    range_scan: float = 0.1
    #: keys per multi-get.
    multi_size: int = 8
    #: ``k`` for top-k queries.
    k: int = 10
    #: keys spanned by a range scan (by sorted-key distance).
    range_span: int = 16

    def __post_init__(self) -> None:
        total = self.point + self.multi + self.top_k + self.range_scan
        if total <= 0:
            raise ValueError("query mix weights must sum to a positive value")


def percentile(samples: Sequence[float], q: float) -> float:
    """The ``q``-quantile (0..1) of ``samples`` by nearest-rank."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, int(q * len(ordered))))
    return ordered[rank]


class LoadGenerator:
    """Issues a deterministic weighted query mix against one server."""

    def __init__(
        self,
        server: QueryServer,
        keys: Sequence[Any],
        mix: Optional[QueryMix] = None,
        seed: int = 0,
        hot_fraction: float = 0.1,
        hot_weight: float = 0.7,
    ) -> None:
        if not keys:
            raise ValueError("load generation needs a non-empty key universe")
        self.server = server
        self.keys = sorted(keys, key=sort_key)
        self.mix = mix or QueryMix()
        self.rng = random.Random(seed)
        hot_count = max(1, int(len(self.keys) * hot_fraction))
        #: the skewed subset that receives ``hot_weight`` of point traffic.
        self.hot_keys = self.keys[:hot_count]
        self.hot_weight = hot_weight

    def _pick_key(self) -> Any:
        if self.rng.random() < self.hot_weight:
            return self.rng.choice(self.hot_keys)
        return self.rng.choice(self.keys)

    def _issue(self, kind: str) -> None:
        mix = self.mix
        if kind == "point":
            self.server.get(self._pick_key())
        elif kind == "multi":
            wanted = min(mix.multi_size, len(self.keys))
            # sample from the hot set first so multi-gets also cache-hit.
            pool = self.hot_keys if len(self.hot_keys) >= wanted else self.keys
            self.server.multi_get(sorted(
                self.rng.sample(pool, wanted), key=sort_key
            ))
        elif kind == "top_k":
            self.server.top_k(mix.k)
        else:
            start = self.rng.randrange(len(self.keys))
            stop = min(len(self.keys) - 1, start + mix.range_span)
            self.server.range_scan(self.keys[start], self.keys[stop])

    def run(
        self,
        num_queries: int,
        keep_going: Optional[Any] = None,
    ) -> Dict[str, Any]:
        """Issue at least ``num_queries`` and return the load report.

        ``keep_going`` (a zero-argument callable) extends the run: after
        the quota is met, querying continues while it returns true — the
        concurrent-ingestion benchmark passes the pipeline thread's
        ``is_alive`` so the load provably overlaps every published
        epoch.  The report carries host throughput/latency (wall-clock —
        varies run to run), the cache hit rate and simulated read cost
        over this run (deterministic given the same epoch interleaving),
        the distinct epochs that answered, and the timeout count.
        """
        mix = self.mix
        kinds = ["point", "multi", "top_k", "range"]
        weights = [mix.point, mix.multi, mix.top_k, mix.range_scan]
        stats = self.server.stats
        cache = self.server.cache.stats
        base_hits = cache.hits
        base_misses = cache.misses
        base_sim = stats.sim_read_s
        base_timeouts = stats.timeouts
        latencies: List[float] = []
        started = time.perf_counter()
        issued = 0
        while issued < num_queries or (keep_going is not None and keep_going()):
            kind = self.rng.choices(kinds, weights)[0]
            t0 = time.perf_counter()
            try:
                self._issue(kind)
            except QueryTimeout:
                pass  # counted by the server; the load goes on
            latencies.append(time.perf_counter() - t0)
            issued += 1
        elapsed = time.perf_counter() - started
        hits = cache.hits - base_hits
        misses = cache.misses - base_misses
        lookups = hits + misses
        return {
            "queries": issued,
            "elapsed_s": round(elapsed, 6),
            "qps": round(issued / elapsed, 1) if elapsed > 0 else 0.0,
            "p50_ms": round(percentile(latencies, 0.50) * 1e3, 4),
            "p99_ms": round(percentile(latencies, 0.99) * 1e3, 4),
            "cache_hit_rate": round(hits / lookups, 4) if lookups else 0.0,
            "cache_hits": hits,
            "sim_read_s": round(stats.sim_read_s - base_sim, 6),
            "timeouts": stats.timeouts - base_timeouts,
            "epochs_served": stats.num_epochs_served,
        }


__all__ = ["LoadGenerator", "QueryMix", "percentile"]
