"""Epoch/snapshot manager: consistent read views over evolving state.

The serving layer's core problem is that the streaming pipeline keeps
mutating the converged outputs while readers are mid-query.  This module
solves it with *epochs*: every committed micro-batch publishes a new
immutable :class:`EpochSnapshot`, and a query pins one epoch for its
whole lifetime — it can never observe half of a delta batch, no matter
how ingestion interleaves with it (the snapshot-isolation contract of
Fegaras' incremental query serving, PAPERS.md).

Snapshots are cheap because they share structure.  The served key space
is partitioned over *serving shards* by a deterministic
:class:`~repro.mrbgraph.sharding.ShardRouter` (the same router family
the MRBG-Store uses), and each shard's view at an epoch is a
**copy-on-write overlay chain**: epoch ``N`` stores only the keys the
batch actually changed, layered over epoch ``N-1``'s overlay.  A shard
untouched by a batch shares its previous overlay object outright, so
publishing costs O(changed keys), not O(state).  Chains are bounded: the
manager flattens the oldest live overlay in place once it grows past
``collapse_depth`` (readers stay correct mid-flatten because the merged
content is written before the parent link is cut).

Retention is pin-aware: the manager keeps the newest ``retain`` epochs
and retires older ones, but an epoch pinned by an in-flight query is
never retired — queries hold their view until they release it.

The manager also maintains the serving **top-k** incrementally (issue
requirement: "updated per delta batch, not recomputed"): a candidate
list of the ``track_top * slack`` best ``(value, key)`` ranks is
repaired per batch from the touched keys alone, with a *floor* bound on
every excluded key's rank proving exactness; only when removals eat
through the slack does the manager fall back to one full rebuild
(counted in :attr:`EpochManager.topk_rebuilds`).
"""

from __future__ import annotations

import threading
from bisect import bisect_left, bisect_right
from contextlib import contextmanager
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.common import config
from repro.common.errors import EpochRetired, ServingError, UnknownEpoch
from repro.common.kvpair import sort_key
from repro.mrbgraph.sharding import (
    HashShardRouter,
    RangeShardRouter,
    ShardRouter,
)

#: Tombstone marking a key deleted in an overlay (never exposed).
_DELETED = object()

#: Listener signature: called with each newly published snapshot.
EpochListener = Callable[["EpochSnapshot"], None]


class _ShardOverlay:
    """One serving shard's view at one epoch: changed keys over a parent.

    Lookups walk the chain newest-to-oldest; :data:`_DELETED` entries
    shadow older values.  Instances are logically immutable once
    published — :meth:`flatten` only rewrites the representation (merged
    ``changed`` dict, no parent) without changing the mapping, and does
    so in a reader-safe order: the merged dict is attached *before* the
    parent link is dropped, so a concurrent lookup sees either
    representation but the same values.
    """

    __slots__ = ("base", "changed", "_sorted")

    def __init__(
        self,
        changed: Dict[Any, Any],
        base: Optional["_ShardOverlay"] = None,
    ) -> None:
        self.changed = changed
        self.base = base
        #: lazy cache of ``(sort_keys, keys)`` for range scans; safe to
        #: cache per overlay because the mapping never changes.
        self._sorted: Optional[Tuple[List[Tuple], List[Any]]] = None

    def get(self, key: Any, default: Any = None) -> Any:
        """The key's value at this overlay's epoch (walks the chain)."""
        node: Optional[_ShardOverlay] = self
        while node is not None:
            changed = node.changed
            if key in changed:
                value = changed[key]
                return default if value is _DELETED else value
            node = node.base
        return default

    def __contains__(self, key: Any) -> bool:
        node: Optional[_ShardOverlay] = self
        while node is not None:
            changed = node.changed
            if key in changed:
                return changed[key] is not _DELETED
            node = node.base
        return False

    def depth(self) -> int:
        """Number of overlay links a worst-case lookup walks."""
        node: Optional[_ShardOverlay] = self
        count = 0
        while node is not None:
            count += 1
            node = node.base
        return count

    def materialize(self) -> Dict[Any, Any]:
        """The full ``key -> value`` mapping at this overlay's epoch."""
        chain: List[Dict[Any, Any]] = []
        node: Optional[_ShardOverlay] = self
        while node is not None:
            chain.append(node.changed)
            node = node.base
        merged: Dict[Any, Any] = {}
        for changed in reversed(chain):
            merged.update(changed)
        return {k: v for k, v in merged.items() if v is not _DELETED}

    def sorted_keys(self) -> Tuple[List[Tuple], List[Any]]:
        """Parallel ``(sort_keys, keys)`` lists in K2 order (cached)."""
        cached = self._sorted
        if cached is None:
            keys = sorted(self.materialize(), key=sort_key)
            cached = ([sort_key(k) for k in keys], keys)
            self._sorted = cached
        return cached

    def flatten(self) -> None:
        """Fold the whole chain into this node (bounds lookup cost).

        Reader-safe: ``changed`` is replaced by the merged mapping first,
        then ``base`` is cut — a concurrent lookup interleaving between
        the two assignments reads the merged dict (complete) or falls
        through to the old parent (whose values the merged dict agrees
        with), never a third state.
        """
        if self.base is None:
            return
        chain: List[Dict[Any, Any]] = []
        node: Optional[_ShardOverlay] = self
        while node is not None:
            chain.append(node.changed)
            node = node.base
        merged: Dict[Any, Any] = {}
        for changed in reversed(chain):
            merged.update(changed)
        merged = {k: v for k, v in merged.items() if v is not _DELETED}
        self.changed = merged
        self.base = None


def _rank(key: Any, value: Any) -> Tuple[Tuple, Tuple]:
    """Total order for top-k: value first, key as deterministic tiebreak."""
    return (sort_key(value), sort_key(key))


class EpochSnapshot:
    """An immutable, consistent view of the served state at one epoch.

    Snapshots are handed out by :class:`EpochManager` and stay readable
    for as long as they are pinned — concurrent publishes only stack new
    overlays on top, they never mutate what this snapshot can see.
    """

    __slots__ = ("epoch", "router", "touched", "num_keys", "topk",
                 "topk_complete", "_overlays")

    def __init__(
        self,
        epoch: int,
        router: ShardRouter,
        overlays: Tuple[_ShardOverlay, ...],
        touched: frozenset,
        num_keys: int,
        topk: Tuple[Tuple[Any, Any], ...],
        topk_complete: bool,
    ) -> None:
        #: the epoch sequence number (0 = the initial publish).
        self.epoch = epoch
        #: the serving-shard router (shared with the manager).
        self.router = router
        #: keys this epoch's batch changed or deleted (drives cache
        #: invalidation; empty for a no-change commit).
        self.touched = touched
        #: live keys at this epoch, across all serving shards.
        self.num_keys = num_keys
        #: the incrementally maintained ``(key, value)`` top list, best
        #: first, ranked by (value desc, key desc) under
        #: :func:`repro.common.kvpair.sort_key` order.
        self.topk = topk
        #: whether :attr:`topk` covers *every* live key (small states).
        self.topk_complete = topk_complete
        self._overlays = overlays

    # -------------------------------------------------------------- #
    # reads                                                          #
    # -------------------------------------------------------------- #

    @property
    def num_shards(self) -> int:
        """Serving shards the key space is partitioned over."""
        return self.router.num_shards

    def shard_for(self, key: Any) -> int:
        """The serving shard owning ``key`` (router delegation)."""
        return self.router.shard_for(key)

    def get(self, key: Any, default: Any = None) -> Any:
        """Point lookup at this epoch."""
        return self._overlays[self.router.shard_for(key)].get(key, default)

    def __contains__(self, key: Any) -> bool:
        return key in self._overlays[self.router.shard_for(key)]

    def items(self) -> Iterator[Tuple[Any, Any]]:
        """Every live ``(key, value)`` pair, in deterministic K2 order."""
        for sid in range(len(self._overlays)):
            _, keys = self._overlays[sid].sorted_keys()
            overlay = self._overlays[sid]
            for key in keys:
                yield key, overlay.get(key)

    def shard_items(self, sid: int) -> List[Tuple[Any, Any]]:
        """One serving shard's live pairs, in K2 order."""
        overlay = self._overlays[sid]
        _, keys = overlay.sorted_keys()
        return [(key, overlay.get(key)) for key in keys]

    def range_shards(self, lo: Any, hi: Any) -> Sequence[int]:
        """Serving shards that can hold keys in ``[lo, hi]``.

        With a :class:`~repro.mrbgraph.sharding.RangeShardRouter` the
        range maps to a *contiguous* shard run (that is the point of
        range routing: scans touch only the overlapping shards); any
        other router may scatter the range everywhere, so all shards
        are scanned.
        """
        if isinstance(self.router, RangeShardRouter):
            return range(
                self.router.shard_for(lo), self.router.shard_for(hi) + 1
            )
        return range(self.num_shards)

    def range_scan(
        self, lo: Any, hi: Any, limit: Optional[int] = None
    ) -> List[Tuple[Any, Any]]:
        """All pairs with ``lo <= key <= hi`` in ``sort_key`` order."""
        lo_sk, hi_sk = sort_key(lo), sort_key(hi)
        if lo_sk > hi_sk:
            raise ServingError(f"empty range: {lo!r} > {hi!r}")
        hits: List[Tuple[Any, Any]] = []
        for sid in self.range_shards(lo, hi):
            overlay = self._overlays[sid]
            sks, keys = overlay.sorted_keys()
            start = bisect_left(sks, lo_sk)
            stop = bisect_right(sks, hi_sk)
            for key in keys[start:stop]:
                hits.append((key, overlay.get(key)))
        hits.sort(key=lambda kv: sort_key(kv[0]))
        if limit is not None:
            hits = hits[:limit]
        return hits

    def prefix_scan(
        self, prefix: str, limit: Optional[int] = None
    ) -> List[Tuple[Any, Any]]:
        """All pairs whose *string* key starts with ``prefix``."""
        if not isinstance(prefix, str):
            raise ServingError("prefix_scan requires a string prefix")
        hi = prefix + "\U0010ffff"
        hits = [
            (key, value)
            for key, value in self.range_scan(prefix, hi)
            if isinstance(key, str) and key.startswith(prefix)
        ]
        if limit is not None:
            hits = hits[:limit]
        return hits

    def top_k(self, k: int) -> List[Tuple[Any, Any]]:
        """The ``k`` best pairs by (value desc, key desc) rank.

        Served from the incrementally maintained candidate list when it
        is deep enough; a ``k`` beyond the tracked depth falls back to a
        full scan of the snapshot (exact, just not incremental).
        """
        if k <= 0:
            return []
        if k <= len(self.topk) or self.topk_complete:
            return list(self.topk[:k])
        ranked = sorted(
            self.items(), key=lambda kv: _rank(kv[0], kv[1]), reverse=True
        )
        return ranked[:k]

    def scan_bytes(self, sid: int) -> int:
        """Approximate encoded bytes of one shard's live pairs.

        Used by the query server to charge full-shard reads through the
        cost model; computed from the shard's key/value records with the
        library's exact-size estimator.
        """
        from repro.common.sizeof import record_size

        return sum(record_size(k, v) for k, v in self.shard_items(sid))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<EpochSnapshot epoch={self.epoch} keys={self.num_keys} "
            f"shards={self.num_shards}>"
        )


class EpochManager:
    """Publishes, retains and retires the epochs queries read from.

    One manager serves one logical result set (one streaming job's
    output).  ``publish`` is called with the *full* refreshed state
    after each committed micro-batch (the serving bridge does this); the
    manager diffs it against its live mirror, stacks the per-shard
    overlays, repairs the top-k candidates and hands back the new
    :class:`EpochSnapshot`.  ``publish_delta`` skips the diff for
    callers that already know the changed keys.

    Thread safety: ``publish*`` and pin bookkeeping serialize on one
    lock; reads (snapshot lookups, scans, top-k) are lock-free against
    immutable snapshots, so queries never block ingestion and vice
    versa.
    """

    def __init__(
        self,
        router: Optional[ShardRouter] = None,
        num_shards: Optional[int] = None,
        retain: Optional[int] = None,
        track_top: Optional[int] = None,
        topk_slack: int = 2,
        collapse_depth: int = 8,
    ) -> None:
        if router is None:
            router = HashShardRouter(num_shards or 1)
        elif num_shards is not None and num_shards != router.num_shards:
            raise ServingError(
                f"num_shards={num_shards} contradicts the router's "
                f"{router.num_shards}"
            )
        self.router = router
        self.retain = config.DEFAULT_SERVING_RETAIN if retain is None else retain
        if self.retain < 1:
            raise ServingError("retain must be at least 1")
        self.track_top = (
            config.DEFAULT_SERVING_TOPK if track_top is None else track_top
        )
        if self.track_top < 0:
            raise ServingError("track_top must be non-negative")
        if topk_slack < 1:
            raise ServingError("topk_slack must be at least 1")
        self.topk_slack = topk_slack
        if collapse_depth < 1:
            raise ServingError("collapse_depth must be at least 1")
        self.collapse_depth = collapse_depth
        #: full rebuilds of the top-k candidate list (removals ate
        #: through the slack); the incremental-maintenance health metric.
        self.topk_rebuilds = 0
        #: epochs retired by the retention window so far.
        self.retired_epochs = 0

        self._lock = threading.Lock()
        self._live: Dict[Any, Any] = {}
        self._snapshots: Dict[int, EpochSnapshot] = {}
        self._pins: Dict[int, int] = {}
        self._latest_epoch = -1
        self._oldest_epoch = 0
        self._overlays: Tuple[_ShardOverlay, ...] = tuple(
            _ShardOverlay({}) for _ in range(router.num_shards)
        )
        #: top-k candidates as (rank, key, value), best first.
        self._candidates: List[Tuple[Tuple, Any, Any]] = []
        #: best rank ever excluded from the candidates since the last
        #: rebuild — an upper bound on every non-candidate key's rank.
        self._floor: Optional[Tuple] = None
        self._listeners: List[EpochListener] = []

    # -------------------------------------------------------------- #
    # publishing                                                     #
    # -------------------------------------------------------------- #

    def add_listener(self, listener: EpochListener) -> None:
        """Register a callback invoked with every published snapshot."""
        self._listeners.append(listener)

    def publish(self, state: Mapping[Any, Any]) -> EpochSnapshot:
        """Commit ``state`` as the next epoch (diffed against the last).

        Computes exactly which keys changed or disappeared since the
        previous epoch — that touched set is what drives cache
        invalidation downstream — then publishes.  A state identical to
        the previous epoch still commits a new (no-change) epoch, so
        epoch numbers track committed micro-batches one to one.
        """
        with self._lock:
            live = self._live
            changed = {
                k: v
                for k, v in state.items()
                if k not in live or live[k] != v
            }
            deleted = [k for k in live if k not in state]
            snapshot = self._publish_locked(changed, deleted)
        self._notify(snapshot)
        return snapshot

    def publish_delta(
        self,
        changed: Mapping[Any, Any],
        deleted: Iterable[Any] = (),
    ) -> EpochSnapshot:
        """Commit the next epoch from an explicit change set.

        For callers that already know which keys a batch touched;
        ``changed`` maps keys to their new values and ``deleted`` lists
        keys to remove.  Unknown deletions are ignored.
        """
        with self._lock:
            live = self._live
            changed = {
                k: v
                for k, v in changed.items()
                if k not in live or live[k] != v
            }
            deleted = [k for k in deleted if k in live]
            snapshot = self._publish_locked(changed, deleted)
        self._notify(snapshot)
        return snapshot

    def _notify(self, snapshot: EpochSnapshot) -> None:
        for listener in self._listeners:
            listener(snapshot)

    def _publish_locked(
        self, changed: Dict[Any, Any], deleted: List[Any]
    ) -> EpochSnapshot:
        router = self.router
        per_shard: Dict[int, Dict[Any, Any]] = {}
        for key, value in changed.items():
            per_shard.setdefault(router.shard_for(key), {})[key] = value
        for key in deleted:
            per_shard.setdefault(router.shard_for(key), {})[key] = _DELETED

        overlays = list(self._overlays)
        for sid, shard_changed in per_shard.items():
            overlays[sid] = _ShardOverlay(shard_changed, base=overlays[sid])
        self._overlays = tuple(overlays)

        self._live.update(changed)
        for key in deleted:
            self._live.pop(key, None)

        touched = frozenset(changed) | frozenset(deleted)
        topk, complete = self._update_topk(changed, deleted, touched)

        epoch = self._latest_epoch + 1
        snapshot = EpochSnapshot(
            epoch=epoch,
            router=router,
            overlays=self._overlays,
            touched=touched,
            num_keys=len(self._live),
            topk=topk,
            topk_complete=complete,
        )
        self._snapshots[epoch] = snapshot
        self._latest_epoch = epoch
        self._retire_excess_locked()
        self._collapse_locked()
        return snapshot

    # -------------------------------------------------------------- #
    # top-k maintenance                                              #
    # -------------------------------------------------------------- #

    def _rebuild_candidates_locked(self, capacity: int) -> None:
        ranked = sorted(
            ((_rank(k, v), k, v) for k, v in self._live.items()),
            reverse=True,
        )
        self._candidates = ranked[:capacity]
        self._floor = ranked[capacity][0] if len(ranked) > capacity else None
        self.topk_rebuilds += 1

    def _update_topk(
        self,
        changed: Dict[Any, Any],
        deleted: List[Any],
        touched: frozenset,
    ) -> Tuple[Tuple[Tuple[Any, Any], ...], bool]:
        """Repair the candidate list from the touched keys alone.

        Exactness argument: every non-candidate key's rank is bounded by
        ``_floor`` (it was either trimmed past the capacity at some
        epoch, or excluded by a rebuild — both record the bound), and an
        *untouched* key's rank never changes.  So as long as the
        ``track_top``-th candidate outranks the floor, the first
        ``track_top`` candidates are exactly the global top ranks.  When
        that stops holding (removals or value drops ate the slack), one
        full rebuild restores it.
        """
        track = self.track_top
        if track <= 0:
            return (), False
        capacity = track * self.topk_slack
        if touched:
            cands = [c for c in self._candidates if c[1] not in touched]
            for key, value in changed.items():
                cands.append((_rank(key, value), key, value))
            cands.sort(reverse=True)
            if len(cands) > capacity:
                trimmed_best = cands[capacity][0]
                if self._floor is None or trimmed_best > self._floor:
                    self._floor = trimmed_best
                cands = cands[:capacity]
            self._candidates = cands
        cands = self._candidates
        total = len(self._live)
        if total > len(cands):
            exact = (
                len(cands) >= track
                and self._floor is not None
                and cands[track - 1][0] > self._floor
            )
            if not exact:
                self._rebuild_candidates_locked(capacity)
                cands = self._candidates
        topk = tuple((key, value) for _, key, value in cands[:track])
        return topk, len(cands) == total

    # -------------------------------------------------------------- #
    # retention, pinning                                             #
    # -------------------------------------------------------------- #

    def _retire_excess_locked(self) -> None:
        while len(self._snapshots) > self.retain:
            oldest = self._oldest_epoch
            if oldest >= self._latest_epoch:
                break
            if self._pins.get(oldest, 0) > 0:
                break  # pinned epochs hold everything behind them
            self._snapshots.pop(oldest, None)
            self._oldest_epoch = oldest + 1
            self.retired_epochs += 1

    def _collapse_locked(self) -> None:
        oldest = self._snapshots.get(self._oldest_epoch)
        if oldest is None:
            return
        for overlay in oldest._overlays:
            if overlay.depth() > self.collapse_depth:
                overlay.flatten()

    @property
    def latest_epoch(self) -> int:
        """The newest published epoch id (-1 before the first publish)."""
        return self._latest_epoch

    @property
    def oldest_epoch(self) -> int:
        """The oldest epoch still queryable."""
        return self._oldest_epoch

    @property
    def num_live_epochs(self) -> int:
        """Snapshots currently retained (retention window + pins)."""
        return len(self._snapshots)

    def latest(self) -> EpochSnapshot:
        """The newest snapshot (raises before the first publish)."""
        return self.snapshot(None)

    def snapshot(self, epoch: Optional[int] = None) -> EpochSnapshot:
        """The snapshot at ``epoch`` (None = latest), without pinning."""
        with self._lock:
            return self._resolve_locked(epoch)

    def _resolve_locked(self, epoch: Optional[int]) -> EpochSnapshot:
        if self._latest_epoch < 0:
            raise UnknownEpoch("no epoch has been published yet")
        if epoch is None:
            epoch = self._latest_epoch
        snapshot = self._snapshots.get(epoch)
        if snapshot is None:
            if 0 <= epoch < self._oldest_epoch:
                raise EpochRetired(
                    f"epoch {epoch} was retired (oldest live epoch is "
                    f"{self._oldest_epoch}; raise the retention window or "
                    f"pin earlier)"
                )
            raise UnknownEpoch(f"epoch {epoch} was never published")
        return snapshot

    @contextmanager
    def pinned(self, epoch: Optional[int] = None) -> Iterator[EpochSnapshot]:
        """Pin an epoch for the duration of a query.

        A pinned epoch (and everything newer) survives retention until
        the pin is released, so the reader's view cannot be collapsed
        from under it.
        """
        with self._lock:
            snapshot = self._resolve_locked(epoch)
            self._pins[snapshot.epoch] = self._pins.get(snapshot.epoch, 0) + 1
        try:
            yield snapshot
        finally:
            with self._lock:
                count = self._pins.get(snapshot.epoch, 0) - 1
                if count <= 0:
                    self._pins.pop(snapshot.epoch, None)
                else:
                    self._pins[snapshot.epoch] = count
                self._retire_excess_locked()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<EpochManager epochs=[{self._oldest_epoch}, "
            f"{self._latest_epoch}] shards={self.router.num_shards}>"
        )
