"""The online query server: the front door over preserved state.

:class:`QueryServer` answers point lookups, multi-gets, range/prefix
scans and top-k queries against the epochs an :class:`~repro.serving.epochs.EpochManager`
publishes.  Every query pins one epoch for its whole lifetime
(snapshot isolation: it can never observe half of a concurrently
committing micro-batch), consults the delta-invalidated
:class:`~repro.serving.cache.ResultCache`, and on a miss reads the
snapshot's shard overlays — charging the bytes it moved through
:meth:`repro.cluster.costmodel.CostModel.serving_read_time` (home shard
local, every other touched shard pays the cross-shard network hop).

Per-query timeouts reuse :class:`repro.resilience.RetryPolicy`: a
query whose charged *simulated* read cost exceeds the policy's
``timeout_s`` raises :class:`repro.common.errors.QueryTimeout` instead
of returning — the client would have hung up.

:class:`ServingBridge` is the glue to ingestion: registered as a
:class:`~repro.streaming.pipeline.ContinuousPipeline` batch listener it
publishes the consumer's refreshed state as a new epoch after every
*committed* micro-batch (dead-lettered batches publish nothing — their
delta was never applied).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.cluster.costmodel import CostModel
from repro.common import config
from repro.common.errors import QueryTimeout
from repro.common.kvpair import sort_key
from repro.common.sizeof import record_size
from repro.mrbgraph.sharding import ShardRouter
from repro.resilience.policy import RetryPolicy
from repro.serving.cache import ResultCache, entry_signature
from repro.serving.epochs import EpochManager, EpochSnapshot


@dataclass
class ServerStats:
    """Aggregate serving counters (simulated costs, not host time)."""

    #: queries answered (timeouts included — the read happened).
    queries: int = 0
    #: queries aborted by the simulated-deadline policy.
    timeouts: int = 0
    #: total simulated read cost charged across all queries (s).
    sim_read_s: float = 0.0
    #: distinct epochs queries were served at.
    epochs_served: Set[int] = field(default_factory=set)

    @property
    def num_epochs_served(self) -> int:
        """How many distinct epochs have answered at least one query."""
        return len(self.epochs_served)


@dataclass(frozen=True)
class QueryResult:
    """One query's answer plus its serving metadata."""

    #: the answer (value, dict, or list of pairs, per query kind).
    value: Any
    #: epoch the query was pinned to.
    epoch: int
    #: whether the answer came from the result cache.
    from_cache: bool
    #: simulated read cost charged for this query (0 on cache hits).
    cost_s: float
    #: serving shards the query read (0 on cache hits).
    shards_read: int


class QueryServer:
    """Snapshot-isolated reads over the published epochs.

    Thread-safe: queries may run from many threads concurrently with
    ingestion publishing new epochs; each query's pinned snapshot is
    immutable, the cache serializes internally, and stats updates hold
    the server's own lock.
    """

    def __init__(
        self,
        manager: Optional[EpochManager] = None,
        router: Optional[ShardRouter] = None,
        num_shards: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        policy: Optional[RetryPolicy] = None,
        cost_model: Optional[CostModel] = None,
        timeout_s: Optional[float] = None,
    ) -> None:
        if manager is None:
            manager = EpochManager(router=router, num_shards=num_shards)
        self.manager = manager
        self.cache = ResultCache() if cache is None else cache
        if policy is None:
            timeout = (
                config.DEFAULT_SERVING_TIMEOUT_S
                if timeout_s is None
                else timeout_s
            )
            policy = RetryPolicy.disabled() if timeout is None else RetryPolicy(
                max_retries=0, timeout_s=timeout, speculation=False
            )
        self.policy = policy
        self.cost_model = (cost_model or CostModel()).unscaled()
        self.stats = ServerStats()
        self._lock = threading.Lock()
        # prune the cache before any query can observe the new epoch.
        self.manager.add_listener(self.cache.on_snapshot)

    # -------------------------------------------------------------- #
    # ingestion side                                                 #
    # -------------------------------------------------------------- #

    def publish(self, state: Mapping[Any, Any]) -> EpochSnapshot:
        """Commit ``state`` as the next served epoch (see the manager)."""
        return self.manager.publish(state)

    def publish_delta(
        self, changed: Mapping[Any, Any], deleted: Iterable[Any] = ()
    ) -> EpochSnapshot:
        """Commit an explicit change set as the next served epoch."""
        return self.manager.publish_delta(changed, deleted)

    # -------------------------------------------------------------- #
    # query plumbing                                                 #
    # -------------------------------------------------------------- #

    def _account(self, snapshot: EpochSnapshot, cost_s: float, kind: str) -> None:
        """Record stats and enforce the simulated query deadline."""
        timeout = self.policy.timeout_s
        timed_out = timeout is not None and cost_s > timeout
        with self._lock:
            self.stats.queries += 1
            self.stats.sim_read_s += cost_s
            self.stats.epochs_served.add(snapshot.epoch)
            if timed_out:
                self.stats.timeouts += 1
        if timed_out:
            raise QueryTimeout(kind, cost_s, timeout)

    def _shard_cost(self, by_shard: Dict[int, int]) -> float:
        """Cost of reading per-shard byte volumes, home shard = largest."""
        if not by_shard:
            return self.cost_model.store_read_time(0)
        volumes = sorted(by_shard.values(), reverse=True)
        return self.cost_model.serving_read_time(volumes[0], volumes[1:])

    def _cached(
        self, sig: str, snapshot: EpochSnapshot, kind: str
    ) -> Optional[QueryResult]:
        hit, value = self.cache.get(sig, snapshot.epoch)
        if not hit:
            return None
        self._account(snapshot, 0.0, kind)
        return QueryResult(
            value=value,
            epoch=snapshot.epoch,
            from_cache=True,
            cost_s=0.0,
            shards_read=0,
        )

    # -------------------------------------------------------------- #
    # queries                                                        #
    # -------------------------------------------------------------- #

    def get(
        self, key: Any, epoch: Optional[int] = None, default: Any = None
    ) -> QueryResult:
        """Point lookup, pinned to ``epoch`` (None = latest)."""
        with self.manager.pinned(epoch) as snap:
            sig = entry_signature("get", (key, default))
            cached = self._cached(sig, snap, "get")
            if cached is not None:
                return cached
            value = snap.get(key, default)
            nbytes = record_size(key, value)
            cost_s = self.cost_model.serving_read_time(nbytes)
            self.cache.put(
                sig, value, snap.epoch, self.manager.latest_epoch,
                deps=frozenset((key,)),
            )
            self._account(snap, cost_s, "get")
            return QueryResult(value, snap.epoch, False, cost_s, 1)

    def multi_get(
        self,
        keys: Iterable[Any],
        epoch: Optional[int] = None,
        default: Any = None,
    ) -> QueryResult:
        """Batched point lookups; one cross-shard fan-out, one answer.

        The answer is a ``key -> value`` dict over the requested keys.
        The shard holding the most requested bytes is the query's home;
        every other touched shard pays the network hop.
        """
        keys = list(keys)
        with self.manager.pinned(epoch) as snap:
            sig = entry_signature("multi_get", (tuple(keys), default))
            cached = self._cached(sig, snap, "multi_get")
            if cached is not None:
                return cached
            answer: Dict[Any, Any] = {}
            by_shard: Dict[int, int] = {}
            for key in keys:
                value = snap.get(key, default)
                answer[key] = value
                sid = snap.shard_for(key)
                by_shard[sid] = by_shard.get(sid, 0) + record_size(key, value)
            cost_s = self._shard_cost(by_shard)
            self.cache.put(
                sig, answer, snap.epoch, self.manager.latest_epoch,
                deps=frozenset(keys),
            )
            self._account(snap, cost_s, "multi_get")
            return QueryResult(
                answer, snap.epoch, False, cost_s, max(1, len(by_shard))
            )

    def range_scan(
        self,
        lo: Any,
        hi: Any,
        limit: Optional[int] = None,
        epoch: Optional[int] = None,
    ) -> QueryResult:
        """All pairs with ``lo <= key <= hi`` (``sort_key`` order)."""
        with self.manager.pinned(epoch) as snap:
            sig = entry_signature("range", (lo, hi, limit))
            cached = self._cached(sig, snap, "range_scan")
            if cached is not None:
                return cached
            hits = snap.range_scan(lo, hi, limit=limit)
            shards = list(snap.range_shards(lo, hi))
            by_shard: Dict[int, int] = {sid: 0 for sid in shards}
            for key, value in hits:
                sid = snap.shard_for(key)
                by_shard[sid] = by_shard.get(sid, 0) + record_size(key, value)
            cost_s = self._shard_cost(by_shard)
            self.cache.put(
                sig, hits, snap.epoch, self.manager.latest_epoch,
                bounds=(sort_key(lo), sort_key(hi)),
            )
            self._account(snap, cost_s, "range_scan")
            return QueryResult(
                hits, snap.epoch, False, cost_s, max(1, len(by_shard))
            )

    def prefix_scan(
        self,
        prefix: str,
        limit: Optional[int] = None,
        epoch: Optional[int] = None,
    ) -> QueryResult:
        """All pairs whose string key starts with ``prefix``."""
        with self.manager.pinned(epoch) as snap:
            sig = entry_signature("prefix", (prefix, limit))
            cached = self._cached(sig, snap, "prefix_scan")
            if cached is not None:
                return cached
            hits = snap.prefix_scan(prefix, limit=limit)
            hi = prefix + "\U0010ffff"
            shards = list(snap.range_shards(prefix, hi))
            by_shard: Dict[int, int] = {sid: 0 for sid in shards}
            for key, value in hits:
                sid = snap.shard_for(key)
                by_shard[sid] = by_shard.get(sid, 0) + record_size(key, value)
            cost_s = self._shard_cost(by_shard)
            self.cache.put(
                sig, hits, snap.epoch, self.manager.latest_epoch,
                bounds=(sort_key(prefix), sort_key(hi)),
            )
            self._account(snap, cost_s, "prefix_scan")
            return QueryResult(
                hits, snap.epoch, False, cost_s, max(1, len(by_shard))
            )

    def top_k(self, k: int, epoch: Optional[int] = None) -> QueryResult:
        """The ``k`` best pairs by (value desc, key desc) rank.

        Served from the manager's incrementally maintained candidates
        when ``k`` is within the tracked depth (reads only the answer's
        bytes); deeper asks fall back to a full snapshot scan and are
        charged every shard's live bytes.
        """
        with self.manager.pinned(epoch) as snap:
            sig = entry_signature("top_k", (k,))
            cached = self._cached(sig, snap, "top_k")
            if cached is not None:
                return cached
            hits = snap.top_k(k)
            incremental = k <= len(snap.topk) or snap.topk_complete
            if incremental:
                nbytes = sum(record_size(key, value) for key, value in hits)
                cost_s = self.cost_model.serving_read_time(nbytes)
                shards_read = 1
            else:
                by_shard = {
                    sid: snap.scan_bytes(sid)
                    for sid in range(snap.num_shards)
                }
                cost_s = self._shard_cost(by_shard)
                shards_read = snap.num_shards
            self.cache.put(
                sig, hits, snap.epoch, self.manager.latest_epoch,
                global_dep=True,
            )
            self._account(snap, cost_s, "top_k")
            return QueryResult(hits, snap.epoch, False, cost_s, shards_read)


class ServingBridge:
    """Publishes a pipeline consumer's state as epochs, batch by batch.

    Register via
    :meth:`repro.streaming.pipeline.ContinuousPipeline.add_batch_listener`;
    after every batch the pipeline calls the bridge with itself and the
    batch's metrics, and the bridge publishes the consumer's refreshed
    converged state as the next epoch.  Dead-lettered batches publish
    nothing: their delta was never applied, so the served state did not
    change and readers must not see an epoch for it.
    """

    def __init__(self, server: QueryServer) -> None:
        self.server = server
        #: epochs this bridge has published (one per committed batch).
        self.published = 0
        #: batches skipped because they were dead-lettered.
        self.skipped = 0

    def __call__(self, pipeline: Any, metrics: Any) -> None:
        """Batch-listener entry point (see class docstring)."""
        if getattr(metrics, "dead_lettered", False):
            self.skipped += 1
            return
        self.server.publish(pipeline.consumer.state())
        self.published += 1


__all__ = [
    "QueryResult",
    "QueryServer",
    "ServerStats",
    "ServingBridge",
]
