"""On-disk chunk codec for the MRBG-Store.

A chunk is the preserved input of one Reduce instance: the ``K2`` plus the
list of ``(MK, V2)`` edges, "stored contiguously" (§3.4).  Chunks are the
basic I/O unit — the store "always reads, writes, and operates on entire
chunks".  The codec is a length-prefixed record of the binary serialization
format, so Table 4's byte counts come from real encoded sizes.
"""

from __future__ import annotations

from typing import Any, List, Tuple

from repro.common.errors import SerializationError
from repro.common.serialization import decode_record, encode_record
from repro.mrbgraph.graph import Edge


def encode_chunk(k2: Any, entries: List[Edge]) -> bytes:
    """Encode one chunk to its on-disk representation."""
    payload = [(mk, value) for mk, value in entries]
    return encode_record(k2, payload)


def decode_chunk(buf: bytes, offset: int = 0) -> Tuple[Any, List[Edge], int]:
    """Decode one chunk from ``buf`` at ``offset``.

    Returns:
        ``(k2, entries, next_offset)``.

    Raises:
        SerializationError: on corrupt bytes or a non-chunk record.
    """
    k2, payload, next_offset = decode_record(buf, offset)
    if not isinstance(payload, list):
        raise SerializationError("chunk payload is not an edge list")
    entries = []
    for item in payload:
        if not isinstance(item, tuple) or len(item) != 2:
            raise SerializationError("chunk edge is not an (mk, value) pair")
        entries.append(Edge(item[0], item[1]))
    return k2, entries, next_offset


def chunk_size(k2: Any, entries: List[Edge]) -> int:
    """Encoded byte size of a chunk (without encoding twice elsewhere)."""
    return len(encode_chunk(k2, entries))
