"""On-disk chunk codec for the MRBG-Store.

A chunk is the preserved input of one Reduce instance: the ``K2`` plus the
list of ``(MK, V2)`` edges, "stored contiguously" (§3.4).  Chunks are the
basic I/O unit — the store "always reads, writes, and operates on entire
chunks".  The codec is a length-prefixed record of the binary serialization
format, so Table 4's byte counts come from real encoded sizes.

Edge lists dominate every store operation, so the codec special-cases the
flat shapes real workloads produce — every edge an ``(int MK, float V2)``
or ``(int MK, int V2)`` pair.  Such a list encodes to a fixed 23-byte
stride per edge::

    07 | 02 00 00 00 | 03 | <MK i64> | 04-or-03 | <V2 f64-or-i64>

which lets the encoder emit the whole run with one batched ``struct``
pack plus strided byte interleaving, and lets the decoder verify the
constant bytes with six strided ``memoryview`` comparisons and unpack
every edge in a single ``struct`` call.  Heterogeneous chunks fall back
to the generic recursive codec; both paths produce and accept byte-
identical encodings.
"""

from __future__ import annotations

import struct
from typing import Any, List, Tuple

from repro.common.errors import SerializationError
from repro.common.serialization import (
    _TAG_FLOAT,
    _TAG_INT,
    _TAG_LIST,
    _TAG_TUPLE,
    _U32,
    as_view,
    decode,
    decode_record,
    encode_into,
    encoded_size,
)
from repro.mrbgraph.graph import Edge

#: Encoded bytes of one flat ``(int, int|float)`` edge: tuple header (5),
#: tagged i64 MK (9), tagged i64/f64 value (9).
_FLAT_EDGE_BYTES = 23

#: Fixed header of one flat edge: tuple tag + u32 count 2 + int tag.
_EDGE_HEADER = bytes((_TAG_TUPLE, 2, 0, 0, 0, _TAG_INT))

#: Minimum edge count before the batched path beats the generic encoder.
_FLAT_RUN_MIN = 4


def _encode_flat_edges(mks, values, value_tag: int, fmt: str) -> bytearray:
    """Batch-encode a run of ``(int, int|float)`` edges at 23 bytes each."""
    n = len(mks)
    out = bytearray(_FLAT_EDGE_BYTES * n)
    out[0::23] = bytes([_TAG_TUPLE]) * n
    out[1::23] = b"\x02" * n  # u32 little-endian count 2; bytes 2-4 stay 0
    out[5::23] = bytes([_TAG_INT]) * n
    packed_mk = struct.pack("<%dq" % n, *mks)
    for i in range(8):
        out[6 + i :: 23] = packed_mk[i::8]
    out[14::23] = bytes([value_tag]) * n
    packed_v = struct.pack(fmt % n, *values)
    for i in range(8):
        out[15 + i :: 23] = packed_v[i::8]
    return out


def encode_chunk(k2: Any, entries: List[Edge]) -> bytes:
    """Encode one chunk to its on-disk representation."""
    body = bytearray()
    body.append(_TAG_TUPLE)
    body += _U32.pack(2)
    encode_into(k2, body)
    body.append(_TAG_LIST)
    body += _U32.pack(len(entries))
    if len(entries) >= _FLAT_RUN_MIN:
        mks, values = zip(*entries)
        if set(map(type, mks)) == {int}:
            value_types = set(map(type, values))
            try:
                if value_types == {float}:
                    body += _encode_flat_edges(mks, values, _TAG_FLOAT, "<%dd")
                    return _U32.pack(len(body)) + bytes(body)
                if value_types == {int}:
                    body += _encode_flat_edges(mks, values, _TAG_INT, "<%dq")
                    return _U32.pack(len(body)) + bytes(body)
            except struct.error:
                pass  # an int overflowed i64: the generic path reports it
    for entry in entries:
        encode_into(tuple(entry), body)
    return _U32.pack(len(body)) + bytes(body)


def _decode_flat_edges(mv: memoryview, start: int, count: int):
    """Batch-decode ``count`` 23-byte-stride edges, or None on mismatch."""
    end = start + _FLAT_EDGE_BYTES * count
    # Verify every constant byte position with strided view comparisons.
    for rel, expected in enumerate(_EDGE_HEADER):
        if mv[start + rel : end : 23] != bytes([expected]) * count:
            return None
    value_tags = mv[start + 14 : end : 23]
    if value_tags == bytes([_TAG_FLOAT]) * count:
        flat = struct.unpack("<" + "6xq1xd" * count, mv[start:end])
    elif value_tags == bytes([_TAG_INT]) * count:
        flat = struct.unpack("<" + "6xq1xq" * count, mv[start:end])
    else:
        return None
    return list(map(Edge, flat[0::2], flat[1::2]))


def decode_chunk(buf, offset: int = 0) -> Tuple[Any, List[Edge], int]:
    """Decode one chunk from ``buf`` at ``offset``.

    Returns:
        ``(k2, entries, next_offset)``.

    Raises:
        SerializationError: on corrupt bytes or a non-chunk record.
    """
    mv = as_view(buf)
    try:
        (length,) = _U32.unpack_from(mv, offset)
    except struct.error as exc:
        raise SerializationError(f"corrupt encoding at offset {offset}") from exc
    body_start = offset + 4
    end = body_start + length
    if (
        end <= len(mv)
        and length >= 10
        and mv[body_start] == _TAG_TUPLE
        and _U32.unpack_from(mv, body_start + 1)[0] == 2
    ):
        k2, pos = decode(mv, body_start + 5)
        if pos + 5 <= end and mv[pos] == _TAG_LIST:
            (count,) = _U32.unpack_from(mv, pos + 1)
            payload_start = pos + 5
            if count and end - payload_start == _FLAT_EDGE_BYTES * count:
                entries = _decode_flat_edges(mv, payload_start, count)
                if entries is not None:
                    return k2, entries, end
    return _decode_chunk_generic(mv, offset)


def _decode_chunk_generic(mv: memoryview, offset: int) -> Tuple[Any, List[Edge], int]:
    k2, payload, next_offset = decode_record(mv, offset)
    if not isinstance(payload, list):
        raise SerializationError("chunk payload is not an edge list")
    entries = []
    for item in payload:
        if not isinstance(item, tuple) or len(item) != 2:
            raise SerializationError("chunk edge is not an (mk, value) pair")
        entries.append(Edge(item[0], item[1]))
    return k2, entries, next_offset


def chunk_size(k2: Any, entries: List[Edge]) -> int:
    """Encoded byte size of a chunk, computed without encoding it.

    Matches ``len(encode_chunk(k2, entries))`` exactly: the 4-byte record
    length prefix, the pair and edge-list headers, and each value's
    :func:`repro.common.serialization.encoded_size`.
    """
    total = 4 + 5 + encoded_size(k2) + 5
    for mk, value in entries:
        total += 5 + encoded_size(mk) + encoded_size(value)
    return total
