"""Per-store write-ahead log: the durability layer of the MRBG-Store.

The paper's MRBG-Store (§3.4) appends merged chunks and rewrites its
file during idle-time compaction, but a crash mid-merge or mid-compaction
would lose or corrupt exactly the preserved state the incremental engines
(§3–4) depend on.  This module journals every mutation *before* it
touches ``mrbg.dat``, so :meth:`repro.mrbgraph.store.MRBGStore.open` can
always reconstruct a consistent store: either the state before the
interrupted operation (roll back) or the state after it (roll forward) —
never a third state.

**Record framing.**  One WAL record is::

    u32 payload length | u32 crc32(payload) | payload

where the payload is one value of the library's binary codec
(:mod:`repro.common.serialization`): a tuple whose first element is the
opcode.  Length prefix and checksum make torn tails self-delimiting —
replay stops at the first record whose length runs past the file or
whose checksum fails, which is exactly the paper's crash model (a kill
tears the *tail* of a sequential append).

**Record types** (all tuples)::

    (OP_CHECKPOINT, data_size, num_batches)   index on disk reflects everything up to here
    (OP_BEGIN, data_size, num_batches)        a merge/build session opened
    (OP_PUT, key, chunk_bytes)                one append-buffer put (the encoded chunk verbatim)
    (OP_DELETE, key)                          one staged chunk removal
    (OP_COMMIT, data_size, num_batches)       the session published (write-ahead of the data flush)
    (OP_COMPACT_BEGIN,)                       compaction intent (temp rewrite started)
    (OP_COMPACT_COMMIT, entries, data_size)   compaction durable (entries = (key, offset, length) rows)

**Write-ahead discipline.**  Appends buffer in memory and are flushed to
the OS before any dependent ``mrbg.dat`` write (the store calls
:meth:`WriteAheadLog.flush` first) and at every commit record, so the
log is always at least as new as the data file.  Because ``OP_PUT``
journals the encoded chunk bytes verbatim, a committed session whose
data flush never happened is replayed by re-appending exactly those
bytes — recovery is byte-identical to the uncrashed write.

Simulated WAL I/O time is charged through the cost model
(:meth:`repro.cluster.costmodel.CostModel.wal_append_time` /
:meth:`~repro.cluster.costmodel.CostModel.wal_replay_time`) into the
dedicated ``wal_*`` fields of
:class:`repro.mrbgraph.store.StoreMetrics` — like compaction, WAL
maintenance is accounted separately and never folded into a job's
simulated stage times, so every Fig 8–13 and Table 4 number is unchanged
by durability being on.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass
from typing import Any, Iterator, List, Optional, Tuple

from repro.common.errors import SerializationError, WALCorruptError
from repro.common.serialization import as_view, decode, encode

#: On-disk WAL file name inside a store directory.
WAL_FILE = "mrbg.wal"

_HEADER = struct.Struct("<II")

# Opcodes (first element of every record payload tuple).
OP_CHECKPOINT = 0
OP_BEGIN = 1
OP_PUT = 2
OP_DELETE = 3
OP_COMMIT = 4
OP_COMPACT_BEGIN = 5
OP_COMPACT_COMMIT = 6

#: Human-readable opcode names (docs, goldens, debugging).
OP_NAMES = {
    OP_CHECKPOINT: "checkpoint",
    OP_BEGIN: "begin",
    OP_PUT: "put",
    OP_DELETE: "delete",
    OP_COMMIT: "commit",
    OP_COMPACT_BEGIN: "compact-begin",
    OP_COMPACT_COMMIT: "compact-commit",
}


def encode_wal_record(op: int, *fields: Any) -> bytes:
    """Frame one WAL record: length prefix, crc32 checksum, codec payload.

    Pure function of its arguments, so the wire format is pinned by
    golden-file tests (``tests/golden/wal_records.json``).
    """
    payload = encode((op, *fields))
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def decode_wal_record(
    buf: Any, offset: int = 0, path: str = ""
) -> Tuple[Tuple[Any, ...], int]:
    """Decode one framed record at ``offset``; returns ``(record, next)``.

    Distinguishes the two ways a record can be unreadable:

    - **torn tail** — the header is incomplete, or the declared length
      runs past the buffer.  A crash kills a sequential append exactly
      like this, so replay tolerates it (raises
      :class:`~repro.common.errors.SerializationError`; recovery
      truncates and rolls back).
    - **mid-log corruption** — the record is fully contained but its
      checksum mismatches, or its payload does not decode to an opcode
      tuple.  No crash produces this (a kill can only shorten the file),
      so it fails loudly with
      :class:`~repro.common.errors.WALCorruptError` rather than silently
      dropping a suffix of committed history.

    Raises:
        SerializationError: torn tail of a crashed append (tolerated).
        WALCorruptError: a fully contained record is damaged (bit rot,
            external edit) — never silently dropped.
    """
    mv = as_view(buf)
    if offset + _HEADER.size > len(mv):
        raise SerializationError("torn WAL record header")
    length, crc = _HEADER.unpack_from(mv, offset)
    start = offset + _HEADER.size
    end = start + length
    if end > len(mv):
        raise SerializationError("WAL record length runs past the file")
    payload = mv[start:end]
    if zlib.crc32(payload) != crc:
        raise WALCorruptError(path, offset, "checksum mismatch")
    try:
        value, pos = decode(mv, start)
    except SerializationError as exc:
        raise WALCorruptError(path, offset, f"undecodable payload: {exc}") from exc
    if pos != end or not isinstance(value, tuple) or not value:
        raise WALCorruptError(path, offset, "payload is not an opcode tuple")
    return value, end


@dataclass
class WALReplay:
    """Everything one sequential read of a WAL file yielded.

    Attributes:
        records: the valid records, in append order.
        valid_bytes: bytes consumed by those records.
        total_bytes: physical file size (``total_bytes > valid_bytes``
            means a torn tail was discarded).
        truncated: whether a torn/corrupt tail was hit.
    """

    records: List[Tuple[Any, ...]]
    valid_bytes: int
    total_bytes: int
    truncated: bool


class WriteAheadLog:
    """Append-only, checksummed journal of one store's mutations.

    Created lazily: the file appears on the first append, so opening a
    legacy store directory read-only never creates one.  Crash injection
    (see :mod:`repro.faults.injection`) tears an append at a byte offset
    via :meth:`flush_partial` — producing exactly the partial tail
    replay must survive.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._fh = None
        self._pending: List[bytes] = []
        self._pending_len = 0
        #: bytes appended (and flushed or pending) since construction.
        self.bytes_appended = 0

    # ------------------------------------------------------------------ #
    # writing                                                            #
    # ------------------------------------------------------------------ #

    def _handle(self):
        if self._fh is None:
            self._fh = open(self.path, "ab")
        return self._fh

    def append(self, op: int, *fields: Any) -> int:
        """Stage one record; returns its framed byte length.

        Records buffer in memory until :meth:`flush` — the store flushes
        the log before any dependent data write and at commit records,
        which is all the write-ahead property needs.
        """
        raw = encode_wal_record(op, *fields)
        self._pending.append(raw)
        self._pending_len += len(raw)
        self.bytes_appended += len(raw)
        return len(raw)

    def flush(self) -> int:
        """Write pending records to the OS; returns bytes flushed."""
        if not self._pending:
            return 0
        raw = b"".join(self._pending)
        fh = self._handle()
        fh.write(raw)
        fh.flush()
        self._pending = []
        self._pending_len = 0
        return len(raw)

    def flush_partial(self, final_record: bytes, upto: int) -> None:
        """Flush pending records, then the first ``upto`` bytes of one more.

        The crash-injection path: a fault directive at ``wal-append``
        tears the record being appended at a byte offset, leaving exactly
        the partial tail a killed process would.
        """
        self.flush()
        if upto > 0:
            fh = self._handle()
            fh.write(final_record[:upto])
            fh.flush()

    def reset(self, data_size: int, num_batches: int) -> int:
        """Truncate the log down to one checkpoint record.

        Called after the index has been atomically persisted: everything
        the log journaled is now reflected by ``mrbg.idx``, so only the
        committed data size (for tail truncation on recovery) needs to
        survive.  Returns the bytes written.
        """
        self._pending = []
        self._pending_len = 0
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        raw = encode_wal_record(OP_CHECKPOINT, data_size, num_batches)
        tmp = self.path + ".tmp"
        with open(tmp, "wb") as fh:
            fh.write(raw)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)
        fsync_directory(os.path.dirname(os.path.abspath(self.path)))
        return len(raw)

    def close(self) -> None:
        """Flush and release the file handle."""
        self.flush()
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def abandon(self) -> None:
        """Release the handle *without* flushing pending records.

        Simulates the process dying: staged-but-unflushed records are
        lost, exactly like a real kill between append and flush.
        """
        self._pending = []
        self._pending_len = 0
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    # ------------------------------------------------------------------ #
    # replay                                                             #
    # ------------------------------------------------------------------ #

    @staticmethod
    def replay_bytes(raw: bytes, path: str = "") -> WALReplay:
        """Parse a WAL image, stopping at the first *torn* record.

        A torn tail (the crash model) ends replay and marks the result
        ``truncated``; mid-log corruption of a fully contained record is
        a different failure entirely and propagates as
        :class:`~repro.common.errors.WALCorruptError`.
        """
        records: List[Tuple[Any, ...]] = []
        offset = 0
        truncated = False
        while offset < len(raw):
            try:
                record, offset = decode_wal_record(raw, offset, path=path)
            except SerializationError:
                truncated = True
                break
            records.append(record)
        return WALReplay(
            records=records,
            valid_bytes=offset,
            total_bytes=len(raw),
            truncated=truncated,
        )

    @classmethod
    def replay_file(cls, path: str) -> Optional[WALReplay]:
        """Replay ``path`` if it exists; None when there is no log.

        Raises:
            WALCorruptError: the log contains mid-log corruption (see
                :func:`decode_wal_record`) — recovery must not proceed.
        """
        if not os.path.exists(path):
            return None
        with open(path, "rb") as fh:
            raw = fh.read()
        return cls.replay_bytes(raw, path=path)


@dataclass
class RecoveredState:
    """What replaying a WAL against a base index reconstructs.

    Attributes:
        index_ops: ordered ``("put", key, offset, length, batch)`` /
            ``("delete", key)`` / ``("replace", entries)`` operations to
            apply to the base index.
        appends: ``(offset, chunk_bytes)`` data-file writes to redo
            (committed sessions whose flush never happened).
        data_size: committed data-file size; any physical tail beyond it
            is torn, uncommitted garbage and must be truncated away.
        num_batches: committed sorted-batch count.
        compact_pending: a compaction passed its commit point but the
            data-file swap may not have happened (roll it forward).
        rolled_back: at least one uncommitted session or compaction was
            discarded.
        rolled_forward: at least one committed operation was redone.
    """

    index_ops: List[Tuple[Any, ...]]
    appends: List[Tuple[int, bytes]]
    data_size: int
    num_batches: int
    compact_pending: bool
    rolled_back: bool
    rolled_forward: bool


def recover_from_records(
    records: List[Tuple[Any, ...]],
    base_data_size: int,
    base_num_batches: int,
) -> RecoveredState:
    """Run the recovery state machine over replayed WAL records.

    Pure function: given the records and the state the on-disk index
    describes, it decides which operations committed (roll forward: redo
    their index entries and, for sessions, their data appends) and which
    did not (roll back: discard, truncate).  See ``docs/store.md`` for
    the state-machine table.
    """
    index_ops: List[Tuple[Any, ...]] = []
    appends: List[Tuple[int, bytes]] = []
    data_size = base_data_size
    num_batches = base_num_batches
    compact_pending = False
    rolled_back = False
    rolled_forward = False

    session: Optional[List[Tuple[Any, ...]]] = None
    session_base = 0
    session_batches = 0

    for record in records:
        op = record[0]
        if op == OP_CHECKPOINT:
            data_size = record[1]
            num_batches = record[2]
        elif op == OP_BEGIN:
            if session is not None:
                rolled_back = True  # a prior session never committed
            session = []
            session_base = record[1]
            session_batches = record[2]
            data_size = record[1]
            num_batches = record[2]
        elif op in (OP_PUT, OP_DELETE):
            if session is not None:
                session.append(record)
            # puts outside a session can only be torn noise; ignore.
        elif op == OP_COMMIT:
            if session is None:
                continue
            offset = session_base
            for staged in session:
                if staged[0] == OP_PUT:
                    _, key, raw = staged
                    index_ops.append(("put", key, offset, len(raw), session_batches))
                    appends.append((offset, raw))
                    offset += len(raw)
                else:
                    index_ops.append(("delete", staged[1]))
            if session:
                rolled_forward = True
            data_size = record[1]
            num_batches = record[2]
            session = None
        elif op == OP_COMPACT_BEGIN:
            compact_pending = False
        elif op == OP_COMPACT_COMMIT:
            entries = [tuple(entry) for entry in record[1]]
            index_ops.append(("replace", entries))
            data_size = record[2]
            num_batches = 1 if entries else 0
            compact_pending = True
            rolled_forward = True

    if session is not None:
        rolled_back = True  # crash mid-session: roll back to its base
        data_size = session_base
        num_batches = session_batches

    return RecoveredState(
        index_ops=index_ops,
        appends=appends,
        data_size=data_size,
        num_batches=num_batches,
        compact_pending=compact_pending,
        rolled_back=rolled_back,
        rolled_forward=rolled_forward,
    )


def fsync_directory(directory: str) -> None:
    """Flush a directory entry to disk so a completed rename survives.

    ``os.replace`` makes the swap atomic for *readers*, but the new
    directory entry itself lives in the directory inode — until that is
    fsynced, a host crash (power loss, kernel panic) can roll the rename
    back.  POSIX only; a silent no-op on platforms without
    ``os.O_DIRECTORY`` (directories cannot be opened for fsync there).
    """
    if not hasattr(os, "O_DIRECTORY"):  # pragma: no cover - non-POSIX
        return
    try:
        fd = os.open(directory or ".", os.O_RDONLY | os.O_DIRECTORY)
    except OSError:  # pragma: no cover - directory vanished/forbidden
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def atomic_write(path: str, raw: bytes, pre_replace=None, pre_dir_sync=None) -> None:
    """Write ``raw`` to ``path`` atomically: temp file, fsync, rename,
    directory fsync.

    The write-temp + fsync + ``os.replace`` sequence guarantees readers
    see either the old bytes or the new bytes, never a torn mix — the
    swap discipline for ``mrbg.idx`` and ``mrbg.shards`` — and the final
    :func:`fsync_directory` makes the rename itself durable against a
    host crash, not just a process kill.  When ``pre_replace`` is given
    it runs *between* the fsync and the rename (the ``pre-index-swap``
    crash site: raising there leaves the old file intact beside a
    complete temp file); ``pre_dir_sync`` runs between the rename and
    the directory fsync (the ``pre-dir-fsync`` crash site: the swap
    happened but is not yet durable).
    """
    tmp = path + ".tmp"
    with open(tmp, "wb") as fh:
        fh.write(raw)
        fh.flush()
        os.fsync(fh.fileno())
    if pre_replace is not None:
        pre_replace()
    os.replace(tmp, path)
    if pre_dir_sync is not None:
        pre_dir_sync()
    fsync_directory(os.path.dirname(os.path.abspath(path)))
