"""MRBGraph edge model (§3.2).

A MRBGraph edge records that one Map function call instance (identified by
its globally unique Map key ``MK``) contributed an intermediate value
``V2`` to one Reduce instance (identified by ``K2``).  The preserved state
``M`` of a job is the set of ``(K2, MK, V2)`` triples; a *delta* MRBGraph
additionally marks each edge as inserted or deleted.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, NamedTuple, Tuple

from repro.common.kvpair import Op, sort_key


class Edge(NamedTuple):
    """A preserved MRBGraph edge (within one Reduce instance's chunk)."""

    mk: int
    value: Any


class DeltaEdge(NamedTuple):
    """A change to the MRBGraph: an inserted or deleted edge."""

    mk: int
    value: Any
    op: Op


def apply_delta(
    old_entries: List[Edge],
    delta_entries: Iterable[DeltaEdge],
) -> List[Edge]:
    """Merge delta edges into a chunk's preserved edge list (§3.3).

    For each deletion the matching saved edge (by MK) is removed; for each
    insertion the engine "first checks duplicates, and inserts the new edge
    if no duplicate exists, or else updates the old edge" — ``(K2, MK)``
    uniquely identifies an edge.
    """
    merged: Dict[int, Any] = {mk: value for mk, value in old_entries}
    for mk, value, op in delta_entries:
        if op is Op.DELETE:
            merged.pop(mk, None)
        else:
            merged[mk] = value
    return [Edge(mk, merged[mk]) for mk in sorted(merged)]


def group_delta_by_key(
    delta_edges: Iterable[Tuple[Any, DeltaEdge]],
) -> List[Tuple[Any, List[DeltaEdge]]]:
    """Group ``(K2, DeltaEdge)`` pairs by K2, sorted by K2.

    The shuffle phase delivers delta edges sorted by K2 (§3.3); this helper
    reproduces that grouping for callers that build delta MRBGraphs
    directly.
    """
    grouped: Dict[Any, List[DeltaEdge]] = {}
    for k2, edge in delta_edges:
        grouped.setdefault(k2, []).append(edge)
    return sorted(grouped.items(), key=lambda item: sort_key(item[0]))
