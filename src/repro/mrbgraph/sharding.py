"""Sharded MRBG-Store: partitioned preserved state, parallel maintenance.

The paper's MRBG-Store (§3.4) is one monolithic append-only file per
Reduce task, so compaction, window reads and incremental merges all
serialize on a single index even when the host execution layer
(:mod:`repro.execution`) has idle workers.  This module splits one
logical store into ``N`` independent :class:`~repro.mrbgraph.store.MRBGStore`
shards — each with its own append buffer, ``mrbg.dat``/``mrbg.idx`` pair
and window cache — behind the same store interface, so the incremental
engines use a sharded store transparently:

- a :class:`ShardRouter` maps each ``K2`` to its shard deterministically
  (hash routing by default, optional range routing);
- delta merges, initial builds, offline compactions and index flushes
  fan out per shard through an execution backend — independent shards
  proceed concurrently on the ``thread``/``process`` backends while the
  ``serial`` backend keeps the reference semantics;
- per-shard :class:`~repro.mrbgraph.store.StoreMetrics` merge into one
  logical view, and each maintenance round is placed on the simulated
  cluster with shard-locality-aware scheduling
  (:func:`repro.cluster.scheduler.schedule_shard_stage`): a shard task
  prefers the worker owning the shard's files and pays a cross-shard
  network transfer (:meth:`repro.cluster.costmodel.CostModel.cross_shard_read_time`)
  anywhere else.

Byte-level equivalence is preserved shard by shard: every shard is a
plain ``MRBGStore`` writing the exact chunk format of
:mod:`repro.mrbgraph.chunk`, and a single-shard configuration produces a
data file byte-identical to an unsharded store fed the same operations.
"""

from __future__ import annotations

import bisect
import os
from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.cluster.costmodel import CostModel
from repro.cluster.scheduler import (
    ScheduleResult,
    ShardPlacement,
    ShardTaskSpec,
    reschedule_failed_tasks,
    schedule_shard_stage,
)
from repro.common import config
from repro.common.errors import StoreClosedError, StoreError
from repro.common.hashing import stable_hash
from repro.common.kvpair import sort_key
from repro.common.serialization import decode_many, encode_many
from repro.mrbgraph.compaction import CompactionSpec
from repro.mrbgraph.graph import DeltaEdge, Edge
from repro.mrbgraph.store import (
    FaultHook,
    MRBGStore,
    StoreMetrics,
    compact_data_file,
    encode_index_entries,
)
from repro.mrbgraph.wal import OP_COMPACT_BEGIN, OP_COMPACT_COMMIT, atomic_write
from repro.mrbgraph.windows import ChunkLocation

_MANIFEST_FILE = "mrbg.shards"
_INDEX_FILE = "mrbg.idx"
_SHARD_DIR_FMT = "shard-%04d"

#: Callable producing a fresh window policy per shard.
PolicyFactory = Any


# ---------------------------------------------------------------------- #
# routers                                                                #
# ---------------------------------------------------------------------- #


class ShardRouter:
    """Deterministic ``K2 → shard`` mapping shared by writers and readers.

    A router is a pure function of the key: routing never depends on the
    current key population, so inserting or deleting chunks can never
    move other keys between shards (the stability property the
    hypothesis suite checks).
    """

    #: registry name persisted in the shard manifest.
    kind: str = "abstract"
    num_shards: int = 1

    def shard_for(self, key: Any) -> int:
        """Shard index in ``[0, num_shards)`` owning ``key``'s chunk."""
        raise NotImplementedError

    def spec(self) -> Dict[str, Any]:
        """Serializable description persisted in the shard manifest."""
        raise NotImplementedError


class HashShardRouter(ShardRouter):
    """The default router: ``stable_hash(key) % num_shards``.

    Uses the library's deterministic :func:`repro.common.hashing.stable_hash`
    (never Python's randomized builtin), so placement is identical across
    processes and runs.
    """

    kind = "hash"

    def __init__(self, num_shards: int) -> None:
        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        self.num_shards = num_shards

    def shard_for(self, key: Any) -> int:
        """Deterministic ``stable_hash(key) % num_shards``."""
        return stable_hash(key) % self.num_shards

    def spec(self) -> Dict[str, Any]:
        """Manifest description: kind + shard count."""
        return {"kind": self.kind, "num_shards": self.num_shards}


class RangeShardRouter(ShardRouter):
    """Range partitioning on the K2 sort order.

    ``boundaries`` are ``num_shards - 1`` split keys: a key routes to the
    first shard whose boundary is ≥ the key (lower-bound search on
    :func:`repro.common.kvpair.sort_key` order, so a boundary key routes
    to the shard it bounds) — shard *i* holds the keys in
    ``(boundaries[i-1], boundaries[i]]``.  Useful when queries scan
    contiguous K2 ranges and should touch one shard each.
    """

    kind = "range"

    def __init__(self, boundaries: Sequence[Any]) -> None:
        self.boundaries = list(boundaries)
        self._cuts = [sort_key(b) for b in self.boundaries]
        if self._cuts != sorted(self._cuts):
            raise ValueError("range boundaries must be sorted")
        self.num_shards = len(self.boundaries) + 1

    def shard_for(self, key: Any) -> int:
        """Lower-bound search of ``key`` among the sorted boundaries."""
        return bisect.bisect_left(self._cuts, sort_key(key))

    def spec(self) -> Dict[str, Any]:
        """Manifest description: kind + boundary keys."""
        return {"kind": self.kind, "boundaries": list(self.boundaries)}


def router_from_spec(spec: Dict[str, Any]) -> ShardRouter:
    """Rebuild a router from its persisted manifest description."""
    kind = spec.get("kind")
    if kind == HashShardRouter.kind:
        return HashShardRouter(spec["num_shards"])
    if kind == RangeShardRouter.kind:
        return RangeShardRouter(spec["boundaries"])
    raise StoreError(f"unknown shard router kind {kind!r}")


# ---------------------------------------------------------------------- #
# fan-out task functions                                                 #
# ---------------------------------------------------------------------- #
#
# Thread-level tasks close over live MRBGStore objects (never picklable:
# they hold open file handles), so they are dispatched with
# ``picklable=False`` — the process backend falls back to in-process
# execution while the thread backend runs shards genuinely concurrently.
# Compaction and index flushes instead ship *plain-data* payloads, so
# they parallelize on every backend including processes.


def _run_shard_build(pair: Tuple[MRBGStore, List[Tuple[Any, List[Edge]]]]) -> None:
    """Build one shard's initial sorted batch (thread-level task)."""
    shard, chunks = pair
    shard.build(chunks)


def _run_shard_merge(
    pair: Tuple[MRBGStore, List[Tuple[Any, List[DeltaEdge]]]],
) -> List[Tuple[Any, List[Edge]]]:
    """Apply one shard's slice of a delta merge (thread-level task)."""
    shard, groups = pair
    return list(shard.merge_delta(groups))


@dataclass
class ShardCompactTask:
    """Plain-data payload of one shard compaction (picklable)."""

    shard_id: int
    data_path: str
    #: live ``(offset, length)`` placements in K2 order.
    locations: List[Tuple[int, int]]
    append_buffer_size: int
    #: leave the complete rewrite as ``<data_path>.compact`` instead of
    #: swapping it in — the WAL-protected coordinator journals the
    #: compaction commit record first, then performs the swap itself.
    leave_temp: bool = False


@dataclass
class ShardCompactResult:
    """What one shard compaction produced (picklable)."""

    shard_id: int
    #: new ``(offset, length)`` placements, aligned with the task order.
    locations: List[Tuple[int, int]]
    file_size: int


def run_shard_compact(task: ShardCompactTask) -> ShardCompactResult:
    """Stream-compact one shard's data file; pure function of the file."""
    locations = [
        ChunkLocation(offset, length, 0) for offset, length in task.locations
    ]
    new_locations, out_offset = compact_data_file(
        task.data_path,
        locations,
        task.append_buffer_size,
        replace=not task.leave_temp,
    )
    return ShardCompactResult(
        shard_id=task.shard_id,
        locations=[(loc.offset, loc.length) for loc in new_locations],
        file_size=out_offset,
    )


@dataclass
class ShardIndexFlushTask:
    """Plain-data payload of one shard index flush (picklable)."""

    shard_id: int
    index_path: str
    #: ``(key, offset, length, batch)`` rows in index insertion order.
    entries: List[Tuple[Any, int, int, int]]
    num_batches: int


def run_shard_index_flush(task: ShardIndexFlushTask) -> int:
    """Write one shard's ``mrbg.idx`` atomically; returns bytes written.

    Produces byte-identical files to
    :meth:`repro.mrbgraph.store.MRBGStore.save_index` (both go through
    :func:`repro.mrbgraph.store.encode_index_entries` and the same
    write-temp + fsync + rename swap of
    :func:`repro.mrbgraph.wal.atomic_write`).
    """
    raw = encode_index_entries(task.entries, task.num_batches)
    atomic_write(task.index_path, raw)
    return len(raw)


# ---------------------------------------------------------------------- #
# the sharded store                                                      #
# ---------------------------------------------------------------------- #


class ShardedMRBGStore:
    """N independent ``MRBGStore`` shards behind the one-store interface.

    Drop-in compatible with :class:`~repro.mrbgraph.store.MRBGStore` for
    everything the engines use — ``build`` / ``begin_merge`` /
    ``get_chunk`` / ``put_chunk`` / ``delete_chunk`` / ``end_merge`` /
    ``merge_delta`` / ``compact`` / ``save_index`` / ``close`` plus the
    introspection surface — so :class:`repro.incremental.state.PreservedJobState`
    hands one to the engines transparently when ``num_shards > 1``.

    Shard-local work fans out through ``executor`` (an
    :data:`repro.execution.ExecutorSpec`); outputs are merged in shard
    order, so results, metrics and on-disk bytes are identical whichever
    backend ran the batch.  Every maintenance round is also *placed* on
    the simulated cluster via shard-locality-aware scheduling; the most
    recent placement is exposed as :attr:`last_schedule`.
    """

    def __init__(
        self,
        directory: str,
        num_shards: Optional[int] = None,
        router: Optional[ShardRouter] = None,
        policy_factory: Optional[PolicyFactory] = None,
        cost_model: Optional[CostModel] = None,
        append_buffer_size: int = config.DEFAULT_APPEND_BUFFER_SIZE,
        prefetch_lookahead: int = config.DEFAULT_PREFETCH_LOOKAHEAD,
        executor: Any = None,
        num_workers: Optional[int] = None,
        wal_enabled: Optional[bool] = None,
        compaction: CompactionSpec = None,
        fault_hook: Optional[FaultHook] = None,
        _reopen: bool = False,
    ) -> None:
        if router is None:
            if num_shards is None:
                num_shards = config.DEFAULT_NUM_SHARDS
            router = HashShardRouter(num_shards)
        elif num_shards is not None and num_shards != router.num_shards:
            raise StoreError(
                f"num_shards={num_shards} contradicts the router's "
                f"{router.num_shards}"
            )
        os.makedirs(directory, exist_ok=True)
        self.directory = directory
        self.router = router
        self.cost_model = cost_model or CostModel()
        self.policy_factory = policy_factory
        self.append_buffer_size = append_buffer_size
        self.prefetch_lookahead = prefetch_lookahead
        self.placement = ShardPlacement(
            num_shards=router.num_shards,
            num_workers=num_workers or config.DEFAULT_NUM_WORKERS,
        )
        #: placement of the most recent fanned-out maintenance round.
        self.last_schedule: Optional[ScheduleResult] = None
        #: placement of the most recent round's *re-executed* failed
        #: tasks (owner-locality-aware, backoff included), or ``None``
        #: when the round ran fault-free.  Kept separate from
        #: :attr:`last_schedule` so simulated stage times never change
        #: under injected faults.
        self.last_retry_schedule: Optional[ScheduleResult] = None

        self._executor_spec = executor
        self._executor = None
        self._owns_executor = False
        self._in_session = False
        self._closed = False

        self._shards: List[MRBGStore] = []
        for sid in range(router.num_shards):
            shard_dir = os.path.join(directory, _SHARD_DIR_FMT % sid)
            policy = policy_factory() if policy_factory else None
            if _reopen:
                shard = MRBGStore.open(
                    shard_dir,
                    policy=policy,
                    cost_model=self.cost_model,
                    wal_enabled=wal_enabled,
                    compaction=compaction,
                    fault_hook=fault_hook,
                    shard_id=sid,
                )
            else:
                shard = MRBGStore(
                    shard_dir,
                    policy=policy,
                    cost_model=self.cost_model,
                    append_buffer_size=append_buffer_size,
                    prefetch_lookahead=prefetch_lookahead,
                    wal_enabled=wal_enabled,
                    compaction=compaction,
                    fault_hook=fault_hook,
                    shard_id=sid,
                )
            self._shards.append(shard)
        self._write_manifest()

    # ------------------------------------------------------------------ #
    # lifecycle                                                          #
    # ------------------------------------------------------------------ #

    @classmethod
    def open(
        cls,
        directory: str,
        policy_factory: Optional[PolicyFactory] = None,
        cost_model: Optional[CostModel] = None,
        executor: Any = None,
        num_workers: Optional[int] = None,
        wal_enabled: Optional[bool] = None,
        compaction: CompactionSpec = None,
        fault_hook: Optional[FaultHook] = None,
    ) -> "ShardedMRBGStore":
        """Reopen a sharded store from its manifest and shard indexes.

        Every shard reopens through :meth:`MRBGStore.open`, so per-shard
        write-ahead-log recovery runs shard by shard — a crash that
        killed one shard mid-operation never affects its siblings.
        """
        manifest_path = os.path.join(directory, _MANIFEST_FILE)
        if not os.path.exists(manifest_path):
            raise StoreError(f"no shard manifest under {directory!r}")
        with open(manifest_path, "rb") as fh:
            manifest = decode_many(fh.read())[0]
        return cls(
            directory,
            router=router_from_spec(manifest["router"]),
            policy_factory=policy_factory,
            cost_model=cost_model,
            executor=executor,
            num_workers=num_workers,
            wal_enabled=wal_enabled,
            compaction=compaction,
            fault_hook=fault_hook,
            _reopen=True,
        )

    def _write_manifest(self) -> None:
        manifest_path = os.path.join(self.directory, _MANIFEST_FILE)
        if os.path.exists(manifest_path):
            return
        raw = encode_many([{"router": self.router.spec()}])
        atomic_write(manifest_path, raw)

    def close(self) -> None:
        """Close every shard and any backend this store created."""
        if self._closed:
            return
        for shard in self._shards:
            shard.close()
        if self._owns_executor and self._executor is not None:
            self._executor.close()
            self._executor = None
        self._closed = True

    def abandon(self) -> None:
        """Kill every shard without flushing (a simulated whole-node kill).

        See :meth:`MRBGStore.abandon`; per-shard recovery runs on the
        next :meth:`open` of the directory.
        """
        if self._closed:
            return
        for shard in self._shards:
            shard.abandon()
        if self._owns_executor and self._executor is not None:
            self._executor.close()
            self._executor = None
        self._closed = True

    @property
    def crashed(self) -> bool:
        """Whether any shard was killed by an injected crash."""
        return any(shard.crashed for shard in self._shards)

    def _check_open(self) -> None:
        if self._closed:
            raise StoreClosedError("store is closed")

    def _backend(self):
        from repro.execution import ExecutionBackend, resolve_executor

        if self._executor is None:
            spec = self._executor_spec
            if isinstance(spec, ExecutionBackend):
                self._executor = spec
            else:
                self._executor = resolve_executor(spec)
                self._owns_executor = True
        return self._executor

    # ------------------------------------------------------------------ #
    # introspection                                                      #
    # ------------------------------------------------------------------ #

    @property
    def num_shards(self) -> int:
        """Number of independent shards behind this store."""
        return self.router.num_shards

    @property
    def shards(self) -> Tuple[MRBGStore, ...]:
        """The underlying shard stores, in shard-id order (read-only)."""
        return tuple(self._shards)

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    def __contains__(self, key: Any) -> bool:
        return key in self._shards[self.router.shard_for(key)]

    def keys(self) -> List[Any]:
        """Live chunk keys across all shards, in K2-sorted order."""
        merged: List[Any] = []
        for shard in self._shards:
            merged.extend(shard._index)
        return sorted(merged, key=sort_key)

    @property
    def file_size(self) -> int:
        """Total flushed bytes across every shard data file."""
        return sum(shard.file_size for shard in self._shards)

    @property
    def num_batches(self) -> int:
        """Deepest sorted-batch stack across the shards."""
        return max((shard.num_batches for shard in self._shards), default=0)

    def live_bytes(self) -> int:
        """Bytes occupied by the latest version of every live chunk."""
        return sum(shard.live_bytes() for shard in self._shards)

    def checkpoint_bytes(self) -> int:
        """Bytes a per-iteration checkpoint of this store would copy."""
        return sum(shard.checkpoint_bytes() for shard in self._shards)

    @property
    def metrics(self) -> StoreMetrics:
        """Per-shard statistics merged into one logical view.

        Computed fresh on every access — take a ``snapshot()`` (or use
        :meth:`shard_metrics`) for delta accounting, and
        :meth:`reset_metrics` to zero the underlying shard counters.
        """
        total = StoreMetrics()
        for shard in self._shards:
            shard.metrics.merged_into(total)
        return total

    def shard_metrics(self) -> List[StoreMetrics]:
        """Per-shard statistic snapshots, in shard-id order."""
        return [shard.metrics.snapshot() for shard in self._shards]

    def reset_metrics(self) -> None:
        """Zero the statistics of every shard."""
        for shard in self._shards:
            shard.metrics.reset()

    # ------------------------------------------------------------------ #
    # building and merging                                               #
    # ------------------------------------------------------------------ #

    def _route(self, key: Any) -> MRBGStore:
        return self._shards[self.router.shard_for(key)]

    def build(self, sorted_chunks: Iterable[Tuple[Any, List[Edge]]]) -> None:
        """Write the initial MRBGraph, one sorted batch per shard.

        Chunks are routed to their shards (relative order preserved, so
        each shard's batch stays K2-sorted) and the per-shard builds fan
        out on the execution backend.
        """
        self._check_open()
        per_shard: List[List[Tuple[Any, List[Edge]]]] = [
            [] for _ in range(self.num_shards)
        ]
        for k2, entries in sorted_chunks:
            per_shard[self.router.shard_for(k2)].append((k2, entries))
        pairs = list(zip(self._shards, per_shard))
        self._backend().run_tasks(_run_shard_build, pairs, picklable=False)

    def begin_merge(self, queried_keys: Iterable[Any]) -> None:
        """Start a merge session on every shard.

        Each shard receives its slice of the sorted query key list (the
        paper's L), keeping per-shard window planning intact.
        """
        self._check_open()
        if self._in_session:
            raise StoreError("merge session already in progress")
        per_shard: List[List[Any]] = [[] for _ in range(self.num_shards)]
        for key in queried_keys:
            per_shard[self.router.shard_for(key)].append(key)
        for shard, keys in zip(self._shards, per_shard):
            shard.begin_merge(keys)
        self._in_session = True

    def get_chunk(self, key: Any) -> Optional[List[Edge]]:
        """Retrieve the latest preserved chunk from ``key``'s shard."""
        self._check_open()
        return self._route(key).get_chunk(key)

    def put_chunk(self, key: Any, entries: List[Edge]) -> None:
        """Stage the updated chunk in its shard's append buffer."""
        self._check_open()
        if not self._in_session:
            raise StoreError("put_chunk outside a merge session")
        self._route(key).put_chunk(key, entries)

    def delete_chunk(self, key: Any) -> None:
        """Stage removal of ``key``'s chunk in its shard."""
        self._check_open()
        if not self._in_session:
            raise StoreError("delete_chunk outside a merge session")
        self._route(key).delete_chunk(key)

    def end_merge(self) -> None:
        """Flush and publish the session on every shard."""
        self._check_open()
        if not self._in_session:
            raise StoreError("end_merge without begin_merge")
        for shard in self._shards:
            shard.end_merge()
        self._in_session = False

    def merge_delta(
        self,
        delta_by_key: Iterable[Tuple[Any, List[DeltaEdge]]],
    ) -> Iterator[Tuple[Any, List[Edge]]]:
        """Join a sorted delta MRBGraph against the store (§3.3–3.4).

        The delta groups are routed to their shards and each shard's
        slice merges as an independent task on the execution backend —
        independent shards apply their deltas concurrently.  Results are
        re-interleaved into the caller's original (sorted) key order, so
        downstream Reduce re-runs observe exactly the single-store
        sequence.
        """
        self._check_open()
        if self._in_session:
            raise StoreError("merge session already in progress")
        delta_list = list(delta_by_key)
        per_shard: List[List[Tuple[Any, List[DeltaEdge]]]] = [
            [] for _ in range(self.num_shards)
        ]
        for k2, edges in delta_list:
            per_shard[self.router.shard_for(k2)].append((k2, edges))

        sids = [sid for sid, groups in enumerate(per_shard) if groups]
        pairs = [(self._shards[sid], per_shard[sid]) for sid in sids]
        before = [self._shards[sid].metrics.snapshot() for sid in sids]
        backend = self._backend()
        results = backend.run_tasks(_run_shard_merge, pairs, picklable=False)

        specs = []
        for sid, snap in zip(sids, before):
            delta = self._shards[sid].metrics.since(snap)
            specs.append(
                ShardTaskSpec(
                    task_id=f"merge-{sid:04d}",
                    cost_s=delta.read_time_s + delta.write_time_s,
                    shard_id=sid,
                    read_bytes=delta.bytes_read,
                )
            )
        if specs:
            self.last_schedule = schedule_shard_stage(
                specs, self.placement, self.cost_model
            )
        # A resilient backend reports which merge tasks needed retries;
        # their re-executions get a locality-aware retry placement of
        # their own (the fault-free schedule above is untouched).
        failures = getattr(backend, "last_batch_failures", None)
        if failures:
            failed = [
                (specs[index], count + 1)
                for index, count in failures
                if index < len(specs)
            ]
            self.last_retry_schedule = reschedule_failed_tasks(
                failed, self.placement, self.cost_model
            )
        else:
            self.last_retry_schedule = None

        cursors = {sid: iter(res) for sid, res in zip(sids, results)}
        for k2, _ in delta_list:
            yield next(cursors[self.router.shard_for(k2)])

    # ------------------------------------------------------------------ #
    # maintenance                                                        #
    # ------------------------------------------------------------------ #

    def compact(self) -> ScheduleResult:
        """Offline reconstruction of every shard, fanned out in parallel.

        Each shard compaction is a pure plain-data task
        (:func:`run_shard_compact`), so it parallelizes on *every*
        backend — including processes.  Per-shard simulated costs are
        identical to :meth:`MRBGStore.compact` (one sequential scan of
        the old shard file plus one sequential write of its live bytes)
        and are charged to the shard metrics; the stage's locality-aware
        placement on the simulated cluster is returned (and kept in
        :attr:`last_schedule`).
        """
        self._check_open()
        if self._in_session or any(shard._in_session for shard in self._shards):
            raise StoreError("cannot compact during a merge session")
        if any(shard.fault_hook is not None for shard in self._shards):
            # Crash injection needs the full per-shard WAL protocol with
            # its in-operation crash sites — run shard compactions
            # serially through MRBGStore.compact (placement unchanged).
            return self._compact_serial()

        tasks: List[ShardCompactTask] = []
        shard_keys: List[List[Any]] = []
        old_sizes: List[int] = []
        for sid, shard in enumerate(self._shards):
            keys = shard.keys()
            shard_keys.append(keys)
            old_sizes.append(shard.file_size)
            # WAL-protected shards journal the compaction intent before
            # the temp rewrite starts anywhere.
            if shard._wal is not None:
                shard._wal_append(OP_COMPACT_BEGIN)
                shard._wal_flush()
            tasks.append(
                ShardCompactTask(
                    shard_id=sid,
                    data_path=shard._data_path,
                    locations=[
                        (shard._index[key].offset, shard._index[key].length)
                        for key in keys
                    ],
                    append_buffer_size=shard.append_buffer_size,
                    leave_temp=shard._wal is not None,
                )
            )
        results = self._backend().run_tasks(run_shard_compact, tasks)

        specs = []
        for keys, old_size, result in zip(shard_keys, old_sizes, results):
            shard = self._shards[result.shard_id]
            shard._fh.close()
            if shard._wal is not None:
                # Commit record (with the full new placement list) is
                # durable before the swap: recovery can finish or undo it.
                shard._wal_append(
                    OP_COMPACT_COMMIT,
                    [
                        (key, offset, length)
                        for key, (offset, length) in zip(keys, result.locations)
                    ],
                    result.file_size,
                )
                shard._wal_flush()
                os.replace(shard._data_path + ".compact", shard._data_path)
            shard._fh = open(shard._data_path, "r+b")
            shard._file_size = result.file_size
            shard._index = {
                key: ChunkLocation(offset, length, 0)
                for key, (offset, length) in zip(keys, result.locations)
            }
            shard._num_batches = 1 if shard._index else 0
            shard._windows.clear()
            compact_s = shard.cost_model.store_read_time(
                old_size
            ) + shard.cost_model.store_write_time(result.file_size)
            shard.metrics.compactions += 1
            shard.metrics.compact_time_s += compact_s
            specs.append(
                ShardTaskSpec(
                    task_id=f"compact-{result.shard_id:04d}",
                    cost_s=compact_s,
                    shard_id=result.shard_id,
                    read_bytes=old_size,
                )
            )
        self.last_schedule = schedule_shard_stage(
            specs, self.placement, self.cost_model
        )
        return self.last_schedule

    def _compact_serial(self) -> ScheduleResult:
        """Shard-by-shard compaction through :meth:`MRBGStore.compact`."""
        specs = []
        for sid, shard in enumerate(self._shards):
            old_size = shard.file_size
            shard.compact()
            specs.append(
                ShardTaskSpec(
                    task_id=f"compact-{sid:04d}",
                    cost_s=shard.cost_model.store_read_time(old_size)
                    + shard.cost_model.store_write_time(shard.file_size),
                    shard_id=sid,
                    read_bytes=old_size,
                )
            )
        self.last_schedule = schedule_shard_stage(
            specs, self.placement, self.cost_model
        )
        return self.last_schedule

    def maybe_compact(self) -> int:
        """Idle-time opportunity: compact the shards whose policy fires.

        Each shard consults its own
        :class:`~repro.mrbgraph.compaction.CompactionPolicy` against its
        own batch stack, so a hot shard can compact while its siblings
        keep cheap append-only batches.  Returns how many shards
        compacted.
        """
        self._check_open()
        return sum(1 for shard in self._shards if shard.maybe_compact())

    def save_index(self) -> int:
        """Flush every shard's hash index in parallel; returns total bytes.

        Index flushes ship plain-data payloads
        (:func:`run_shard_index_flush`) producing byte-identical
        ``mrbg.idx`` files to per-shard :meth:`MRBGStore.save_index`
        calls (same atomic temp + fsync + rename swap); the write cost is
        charged to each shard's metrics exactly as the serial path would,
        and each shard's write-ahead log is reset to a checkpoint once
        its index is durable.
        """
        self._check_open()
        if any(shard.fault_hook is not None for shard in self._shards):
            # Crash injection needs the in-operation ``pre-index-swap``
            # site — flush serially through MRBGStore.save_index.
            specs = []
            sizes = []
            for sid, shard in enumerate(self._shards):
                nbytes = shard.save_index()
                sizes.append(nbytes)
                specs.append(
                    ShardTaskSpec(
                        task_id=f"flush-{sid:04d}",
                        cost_s=shard.cost_model.store_write_time(nbytes),
                        shard_id=sid,
                        read_bytes=0,
                    )
                )
            self.last_schedule = schedule_shard_stage(
                specs, self.placement, self.cost_model
            )
            return sum(sizes)
        for shard in self._shards:
            shard._wal_flush()
        tasks = [
            ShardIndexFlushTask(
                shard_id=sid,
                index_path=os.path.join(shard.directory, _INDEX_FILE),
                entries=[
                    (key, loc.offset, loc.length, loc.batch)
                    for key, loc in shard._index.items()
                ],
                num_batches=shard._num_batches,
            )
            for sid, shard in enumerate(self._shards)
        ]
        sizes = self._backend().run_tasks(run_shard_index_flush, tasks)

        specs = []
        for sid, nbytes in enumerate(sizes):
            shard = self._shards[sid]
            shard.metrics.io_writes += 1
            shard.metrics.bytes_written += nbytes
            write_s = shard.cost_model.store_write_time(nbytes)
            shard.metrics.write_time_s += write_s
            shard._wal_reset()
            specs.append(
                ShardTaskSpec(
                    task_id=f"flush-{sid:04d}",
                    cost_s=write_s,
                    shard_id=sid,
                    read_bytes=0,
                )
            )
        self.last_schedule = schedule_shard_stage(
            specs, self.placement, self.cost_model
        )
        return sum(sizes)

    def __enter__(self) -> "ShardedMRBGStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ShardedMRBGStore shards={self.num_shards} "
            f"router={self.router.kind!r} dir={self.directory!r}>"
        )


#: What the engines accept wherever a preserved store is used.
StoreLike = Union[MRBGStore, ShardedMRBGStore]
