"""The MRBG-Store: preservation and retrieval of fine-grain MRBGraph state.

This is a *real* storage engine (§3.4): chunks live in an append-only
binary file on local disk, a hash index maps each ``K2`` to its latest
chunk position, reads go through genuine file handles, and newly merged
chunks are buffered in memory and appended sequentially.  Obsolete chunk
versions stay in the file until an offline compaction rewrites it —
consequently an iterative incremental job leaves *multiple sorted batches*
of chunks in the file, which is exactly the access pattern the
multi-dynamic-window query strategy (§5.2) optimizes.

Simulated time (`metrics.read_time_s`, `metrics.write_time_s`) is charged
from the cost model per physical I/O, while I/O request counts and byte
counts are measured facts — Table 4 reports all three.

Durability (see :mod:`repro.mrbgraph.wal`): every mutation is journaled
to a per-store write-ahead log before it touches ``mrbg.dat``, the index
is swapped atomically, and :meth:`MRBGStore.open` replays the log so a
store killed mid-merge or mid-compaction always reopens either at the
state before the interrupted operation or at the state after it.  When
to compact is delegated to a pluggable policy
(:mod:`repro.mrbgraph.compaction`).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.cluster.costmodel import CostModel
from repro.common import config
from repro.common.errors import StoreClosedError, StoreError
from repro.common.kvpair import sort_key
from repro.common.serialization import decode_many, encode_many
from repro.faults.injection import CrashDirective, InjectedCrash
from repro.mrbgraph.chunk import decode_chunk, encode_chunk
from repro.mrbgraph.compaction import (
    CompactionSpec,
    CompactionStats,
    compaction_policy,
    stats_for_index,
)
from repro.mrbgraph.graph import DeltaEdge, Edge, apply_delta
from repro.mrbgraph.wal import (
    OP_BEGIN,
    OP_COMMIT,
    OP_COMPACT_BEGIN,
    OP_COMPACT_COMMIT,
    OP_DELETE,
    OP_PUT,
    WAL_FILE,
    WriteAheadLog,
    atomic_write,
    encode_wal_record,
    fsync_directory,
    recover_from_records,
)
from repro.mrbgraph.windows import (
    ChunkLocation,
    MultiDynamicWindowPolicy,
    WindowPolicy,
)

#: Signature of a store crash-injection hook (see
#: :meth:`repro.faults.context.FaultContext.store_hook`): called at every
#: named durability site with ``(point, shard_id, nbytes)``; answering a
#: :class:`~repro.faults.injection.CrashDirective` kills the operation
#: there.
FaultHook = Callable[..., Optional[CrashDirective]]

_DATA_FILE = "mrbg.dat"
_INDEX_FILE = "mrbg.idx"


def encode_index(index: Dict[Any, ChunkLocation], num_batches: int) -> bytes:
    """Encode a store's hash index in the streamed ``mrbg.idx`` layout.

    A header value carrying ``num_batches`` and the entry count, then one
    ``(key, offset, length, batch)`` tuple per live chunk — the exact
    bytes :meth:`MRBGStore.save_index` persists.
    """
    return encode_index_entries(
        [(key, loc.offset, loc.length, loc.batch) for key, loc in index.items()],
        num_batches,
    )


def encode_index_entries(
    entries: List[Tuple[Any, int, int, int]], num_batches: int
) -> bytes:
    """Encode pre-flattened ``(key, offset, length, batch)`` index rows.

    The plain-data form of :func:`encode_index`: shard index flushes ship
    these rows across thread/process boundaries (a live index holds
    unpicklable slotted locations) and still produce byte-identical
    ``mrbg.idx`` files.
    """
    header = {"num_batches": num_batches, "count": len(entries)}
    return encode_many([header] + [tuple(entry) for entry in entries])


def decode_index(raw: bytes) -> Tuple[Dict[Any, ChunkLocation], int]:
    """Decode ``mrbg.idx`` bytes into ``(index, num_batches)``.

    Reads both index layouts: the streamed format :func:`encode_index`
    writes and the legacy single-dict encoding of older stores.
    """
    values = decode_many(raw)
    if not values:
        return {}, 0
    header = values[0]
    if isinstance(header, dict) and "entries" in header:
        entries = header["entries"]  # legacy one-dict layout
    else:
        entries = values[1:]
    index = {
        key: ChunkLocation(offset, length, batch)
        for key, offset, length, batch in entries
    }
    return index, header["num_batches"]


def compact_data_file(
    data_path: str,
    locations: List[ChunkLocation],
    append_buffer_size: int,
    replace: bool = True,
    progress: Optional[Callable[[int], None]] = None,
) -> Tuple[List[ChunkLocation], int]:
    """Stream-rewrite live chunks into a compacted data file.

    ``locations`` is the live-chunk placement list in K2 order.  The
    rewrite copies each chunk into a sibling temp file (coalescing
    physically contiguous chunks into single reads, flushing the output
    in ``append_buffer_size`` batches) and — when ``replace`` is true —
    atomically replaces ``data_path``; with ``replace=False`` the
    complete rewrite is left beside the data file as
    ``data_path + ".compact"`` so a WAL-protected caller can journal its
    commit record before performing the swap itself.  ``progress`` (if
    given) is called with the cumulative output byte count after every
    physical temp-file write — the ``mid-compact-write`` crash site;
    raising from it abandons a partial temp file and leaves ``data_path``
    untouched.  Returns the new locations (same order, batch 0) and the
    compacted file size.  Pure function of the file content, so
    per-shard compactions can run concurrently on any execution backend
    with byte-identical results.
    """
    tmp_path = data_path + ".compact"
    new_locations: List[ChunkLocation] = []
    out_offset = 0
    written = 0
    with open(data_path, "rb") as src, open(tmp_path, "wb") as out:
        buffer = bytearray()
        i = 0
        while i < len(locations):
            # Coalesce a run of chunks that are contiguous on disk in
            # key order (one merge session appends in exactly that
            # order, so whole batches coalesce into single reads).
            run_start = locations[i].offset
            run_end = run_start + locations[i].length
            j = i + 1
            while (
                j < len(locations)
                and locations[j].offset == run_end
                and run_end + locations[j].length - run_start <= append_buffer_size
            ):
                run_end += locations[j].length
                j += 1
            src.seek(run_start)
            buffer += src.read(run_end - run_start)
            for k in range(i, j):
                new_locations.append(ChunkLocation(out_offset, locations[k].length, 0))
                out_offset += locations[k].length
            if len(buffer) >= append_buffer_size:
                out.write(buffer)
                written += len(buffer)
                buffer.clear()
                if progress is not None:
                    progress(written)
            i = j
        if buffer:
            out.write(buffer)
            written += len(buffer)
            if progress is not None:
                progress(written)
    if replace:
        os.replace(tmp_path, data_path)
    return new_locations, out_offset


@dataclass
class StoreMetrics:
    """Measured and simulated I/O statistics of one MRBG-Store.

    The ``wal_*`` fields and ``recoveries`` account write-ahead-log
    maintenance and crash recovery *separately* from the paper's store
    I/O — like ``compact_time_s`` they are never folded into a job's
    simulated stage times, so turning durability on changes no Fig 8–13
    or Table 4 number.
    """

    io_reads: int = 0
    bytes_read: int = 0
    read_time_s: float = 0.0
    io_writes: int = 0
    bytes_written: int = 0
    write_time_s: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    compactions: int = 0
    compact_time_s: float = 0.0
    wal_appends: int = 0
    wal_bytes_written: int = 0
    wal_write_time_s: float = 0.0
    wal_bytes_replayed: int = 0
    wal_replay_time_s: float = 0.0
    recoveries: int = 0

    def reset(self) -> None:
        """Zero every statistic."""
        for name in self.__dataclass_fields__:
            setattr(self, name, 0 if isinstance(getattr(self, name), int) else 0.0)

    def merged_into(self, other: "StoreMetrics") -> None:
        """Accumulate this store's statistics into ``other``."""
        for name in self.__dataclass_fields__:
            setattr(other, name, getattr(other, name) + getattr(self, name))

    def snapshot(self) -> "StoreMetrics":
        """Copy of the current statistics (for delta accounting)."""
        clone = StoreMetrics()
        self.merged_into(clone)
        return clone

    def since(self, snap: "StoreMetrics") -> "StoreMetrics":
        """Statistics accumulated since ``snap`` was taken."""
        diff = StoreMetrics()
        for name in self.__dataclass_fields__:
            setattr(diff, name, getattr(self, name) - getattr(snap, name))
        return diff


class MRBGStore:
    """On-disk store of MRBGraph chunks for one Reduce task."""

    def __init__(
        self,
        directory: str,
        policy: Optional[WindowPolicy] = None,
        cost_model: Optional[CostModel] = None,
        append_buffer_size: int = config.DEFAULT_APPEND_BUFFER_SIZE,
        prefetch_lookahead: int = config.DEFAULT_PREFETCH_LOOKAHEAD,
        wal_enabled: Optional[bool] = None,
        compaction: CompactionSpec = None,
        fault_hook: Optional[FaultHook] = None,
        shard_id: int = 0,
    ) -> None:
        os.makedirs(directory, exist_ok=True)
        self.directory = directory
        self.policy: WindowPolicy = policy or MultiDynamicWindowPolicy()
        self.cost_model = cost_model or CostModel()
        self.append_buffer_size = append_buffer_size
        self.prefetch_lookahead = prefetch_lookahead
        self.metrics = StoreMetrics()
        self.wal_enabled = (
            config.DEFAULT_WAL_ENABLED if wal_enabled is None else wal_enabled
        )
        self.compaction = compaction_policy(compaction)
        self.fault_hook = fault_hook
        #: shard index this store plays in a sharded store (0 standalone);
        #: crash-injection hooks key their hit counters on it.
        self.shard_id = shard_id

        self._data_path = os.path.join(directory, _DATA_FILE)
        if not os.path.exists(self._data_path):
            with open(self._data_path, "wb"):
                pass
        self._fh = open(self._data_path, "r+b")
        self._file_size = os.path.getsize(self._data_path)
        self._closed = False
        self._crashed = False
        # Lazily-created journal: the file appears on the first flushed
        # append, so read-only opens of legacy directories stay pristine.
        self._wal: Optional[WriteAheadLog] = (
            WriteAheadLog(os.path.join(directory, WAL_FILE))
            if self.wal_enabled
            else None
        )

        self._index: Dict[Any, ChunkLocation] = {}
        self._num_batches = 0

        # Append-buffer state for the write session in progress.
        self._buffer: List[bytes] = []
        self._buffer_len = 0
        self._pending_index: Dict[Any, ChunkLocation] = {}
        self._pending_deletes: List[Any] = []
        self._in_session = False

        # Read-cache windows: slot -> (start_offset, memoryview over the
        # window bytes).  Cache hits decode straight out of the view, so
        # a hit never copies window data.
        self._windows: Dict[int, Tuple[int, memoryview]] = {}

        # Query plan (set by begin_merge).
        self._plan_key_slot: Dict[Any, Tuple[int, int]] = {}
        self._plan_batch_lists: Dict[int, List[ChunkLocation]] = {}

    # ------------------------------------------------------------------ #
    # lifecycle                                                          #
    # ------------------------------------------------------------------ #

    @classmethod
    def open(
        cls,
        directory: str,
        policy: Optional[WindowPolicy] = None,
        cost_model: Optional[CostModel] = None,
        wal_enabled: Optional[bool] = None,
        compaction: CompactionSpec = None,
        fault_hook: Optional[FaultHook] = None,
        shard_id: int = 0,
    ) -> "MRBGStore":
        """Reopen a store previously persisted with :meth:`save_index`.

        Reads both index layouts: the streamed format :meth:`save_index`
        writes (a header value followed by one value per entry, decoded in
        bulk with :func:`repro.common.serialization.decode_many`) and the
        legacy single-dict encoding of older stores.  The physical
        ``mrbg.idx`` read is charged to the store metrics and the cost
        model like any other store I/O, so Table 4 accounting is complete.

        When a write-ahead log is present it is then replayed
        (:meth:`_recover`): operations that committed after the last
        index flush are rolled forward, interrupted ones are rolled back,
        and torn journal/data tails are truncated — so a store killed at
        *any* point reopens at a consistent pre- or post-operation state.
        """
        store = cls(
            directory,
            policy=policy,
            cost_model=cost_model,
            wal_enabled=wal_enabled,
            compaction=compaction,
            fault_hook=fault_hook,
            shard_id=shard_id,
        )
        index_path = os.path.join(directory, _INDEX_FILE)
        if os.path.exists(index_path):
            with open(index_path, "rb") as fh:
                raw = fh.read()
            store.metrics.io_reads += 1
            store.metrics.bytes_read += len(raw)
            store.metrics.read_time_s += store.cost_model.store_read_time(len(raw))
            store._index, store._num_batches = decode_index(raw)
        store._recover()
        return store

    def _recover(self) -> None:
        """Replay the write-ahead log against the just-loaded index.

        Runs the :func:`repro.mrbgraph.wal.recover_from_records` state
        machine, then makes its verdict physical: roll a committed
        compaction's data-file swap forward, delete stray temp files,
        truncate any torn data tail, redo committed appends at their
        journaled offsets, and apply the journaled index operations.
        When anything actually changed, the repaired index is persisted
        atomically and the log is reset — recovery is idempotent, and a
        cleanly-closed store replays a single checkpoint record without
        touching disk.  Replay I/O is charged to the dedicated ``wal_*``
        metrics, never to the paper's read/write counters.
        """
        if self._wal is None:
            return
        replay = WriteAheadLog.replay_file(self._wal.path)
        if replay is None:
            return
        self.metrics.wal_bytes_replayed += replay.total_bytes
        self.metrics.wal_replay_time_s += self.cost_model.wal_replay_time(
            replay.total_bytes
        )
        recovered = recover_from_records(
            replay.records, self._file_size, self._num_batches
        )

        compact_tmp = self._data_path + ".compact"
        stray_compact = os.path.exists(compact_tmp) and not recovered.compact_pending
        stray_paths = [
            path
            for path in (
                os.path.join(self.directory, _INDEX_FILE) + ".tmp",
                self._wal.path + ".tmp",
            )
            if os.path.exists(path)
        ]
        if stray_compact:
            stray_paths.append(compact_tmp)
        for path in stray_paths:
            os.remove(path)

        if recovered.compact_pending and os.path.exists(compact_tmp):
            # Commit record durable, swap interrupted: finish the swap.
            self._fh.close()
            os.replace(compact_tmp, self._data_path)
            self._fh = open(self._data_path, "r+b")

        for op in recovered.index_ops:
            if op[0] == "put":
                self._index[op[1]] = ChunkLocation(op[2], op[3], op[4])
            elif op[0] == "delete":
                self._index.pop(op[1], None)
            else:  # ("replace", entries) — a committed compaction
                self._index = {
                    key: ChunkLocation(offset, length, 0)
                    for key, offset, length in op[1]
                }

        physical = os.path.getsize(self._data_path)
        if physical > recovered.data_size:
            self._fh.truncate(recovered.data_size)
        for offset, raw in recovered.appends:
            self._fh.seek(offset)
            self._fh.write(raw)
        if recovered.appends:
            self._fh.flush()
        self._file_size = recovered.data_size
        self._num_batches = recovered.num_batches

        changed = (
            recovered.rolled_back
            or recovered.rolled_forward
            or replay.truncated
            or bool(stray_paths)
            or physical != recovered.data_size
        )
        if changed:
            self.metrics.recoveries += 1
            # Persist the repaired state so recovery converges: the next
            # open replays only a checkpoint.  Bypasses the fault hook —
            # crash sites belong to foreground operations, not recovery.
            raw = encode_index(self._index, self._num_batches)
            atomic_write(os.path.join(self.directory, _INDEX_FILE), raw)
            self.metrics.io_writes += 1
            self.metrics.bytes_written += len(raw)
            self.metrics.write_time_s += self.cost_model.store_write_time(len(raw))
            self._wal_reset()

    def save_index(self) -> int:
        """Persist the hash index to disk atomically; returns bytes written.

        The index is written as a stream of top-level values — a header
        carrying ``num_batches`` and the entry count, then one
        ``(key, offset, length, batch)`` tuple per live chunk — so
        :meth:`open` reloads it with one bulk ``decode_many`` pass.  The
        bytes land in a temp file that is fsynced and renamed over
        ``mrbg.idx`` (readers see the old or the new index, never a torn
        mix), after which the write-ahead log — whose every journaled
        operation the new index now reflects — is reset to a checkpoint.
        The write is charged to the store metrics and the cost model.
        """
        if self._crashed:
            return 0
        self._check_open()
        self._wal_flush()
        raw = encode_index(self._index, self._num_batches)
        pre_replace = None
        pre_dir_sync = None
        if self.fault_hook is not None:
            def pre_replace() -> None:
                directive = self.fault_hook("pre-index-swap", self.shard_id, len(raw))
                if directive is not None:
                    self._crash("pre-index-swap", directive)

            def pre_dir_sync() -> None:
                # The rename happened but its directory entry is not yet
                # durable — the window the directory fsync closes.
                directive = self.fault_hook("pre-dir-fsync", self.shard_id, len(raw))
                if directive is not None:
                    self._crash("pre-dir-fsync", directive)

        atomic_write(
            os.path.join(self.directory, _INDEX_FILE),
            raw,
            pre_replace=pre_replace,
            pre_dir_sync=pre_dir_sync,
        )
        self.metrics.io_writes += 1
        self.metrics.bytes_written += len(raw)
        self.metrics.write_time_s += self.cost_model.store_write_time(len(raw))
        self._wal_reset()
        return len(raw)

    def close(self) -> None:
        """Flush any open session and release the file handle."""
        if self._closed:
            return
        if self._in_session:
            self.end_merge()
        if self._wal is not None:
            self._wal_flush()
            self._wal.close()
        self._fh.close()
        self._closed = True

    def abandon(self) -> None:
        """Drop the store without flushing anything (a simulated kill).

        Pending append-buffer chunks and unflushed journal records are
        lost exactly as a killed process would lose them; the directory
        is left for :meth:`open` to recover.  Used by the fault-injection
        suite; all subsequent mutating calls become no-ops.
        """
        if self._closed:
            return
        self._crashed = True
        if self._wal is not None:
            self._wal.abandon()
        self._fh.close()
        self._closed = True

    @property
    def crashed(self) -> bool:
        """Whether an injected crash (or :meth:`abandon`) killed this store."""
        return self._crashed

    def _crash(self, point: str, directive: CrashDirective) -> None:
        """Kill the store at a crash site: release handles, then raise.

        After this, every mutating method is a silent no-op (notably the
        ``end_merge`` that :meth:`merge_delta` runs in its ``finally``),
        so the on-disk state stays exactly as the kill left it until
        :meth:`open` recovers the directory.
        """
        self._crashed = True
        if self._wal is not None:
            self._wal.abandon()
        self._fh.close()
        self._closed = True
        raise InjectedCrash(point, self.shard_id, directive.occurrence)

    def _check_open(self) -> None:
        if self._closed:
            raise StoreClosedError("store is closed")

    # ------------------------------------------------------------------ #
    # write-ahead log plumbing                                           #
    # ------------------------------------------------------------------ #

    def _wal_append(self, op: int, *fields: Any) -> None:
        """Journal one record (staged in memory until :meth:`_wal_flush`).

        The ``wal-append`` crash site lives here: a firing fault hook
        flushes the staged records plus the directive's byte-offset
        prefix of this record — the torn tail replay must survive — and
        kills the store.
        """
        if self._wal is None:
            return
        if self.fault_hook is not None:
            raw = encode_wal_record(op, *fields)
            directive = self.fault_hook("wal-append", self.shard_id, len(raw))
            if directive is not None:
                upto = directive.byte_offset if directive.byte_offset else 0
                self._wal.flush_partial(raw, min(upto, len(raw)))
                self._crash("wal-append", directive)
        self._wal.append(op, *fields)
        self.metrics.wal_appends += 1

    def _wal_flush(self) -> None:
        """Push staged journal records to the OS, charging ``wal_*`` time."""
        if self._wal is None:
            return
        flushed = self._wal.flush()
        if flushed:
            self.metrics.wal_bytes_written += flushed
            self.metrics.wal_write_time_s += self.cost_model.wal_append_time(flushed)

    def _wal_reset(self) -> None:
        """Truncate the journal to a checkpoint of the persisted state."""
        if self._wal is None:
            return
        nbytes = self._wal.reset(self._file_size, self._num_batches)
        self.metrics.wal_appends += 1
        self.metrics.wal_bytes_written += nbytes
        self.metrics.wal_write_time_s += self.cost_model.wal_append_time(nbytes)

    # ------------------------------------------------------------------ #
    # introspection                                                      #
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, key: Any) -> bool:
        return key in self._index

    def keys(self) -> List[Any]:
        """Live chunk keys in K2-sorted order."""
        return sorted(self._index, key=sort_key)

    @property
    def file_size(self) -> int:
        """Current data-file size in bytes (flushed content only)."""
        return self._file_size

    @property
    def num_batches(self) -> int:
        """Number of sorted batches appended so far."""
        return self._num_batches

    def live_bytes(self) -> int:
        """Bytes occupied by the latest version of every live chunk."""
        return sum(loc.length for loc in self._index.values())

    def checkpoint_bytes(self) -> int:
        """Bytes a per-iteration checkpoint of this store would copy (§6.1)."""
        return self.live_bytes()

    # ------------------------------------------------------------------ #
    # building and merging                                               #
    # ------------------------------------------------------------------ #

    def build(self, sorted_chunks: Iterable[Tuple[Any, List[Edge]]]) -> None:
        """Write the initial MRBGraph as the first sorted batch."""
        self._check_open()
        self._begin_session()
        for k2, entries in sorted_chunks:
            self.put_chunk(k2, entries)
        self.end_merge()

    def begin_merge(self, queried_keys: Iterable[Any]) -> None:
        """Start a merge session; ``queried_keys`` is the sorted key list L.

        The query plan lets the window policy look ahead at the positions
        of upcoming chunks (Algorithm 1 line 3: "k's index in L").
        """
        self._check_open()
        if self._in_session:
            raise StoreError("merge session already in progress")
        self._begin_session()
        self._plan_key_slot.clear()
        self._plan_batch_lists.clear()
        for key in queried_keys:
            loc = self._index.get(key)
            if loc is None:
                continue
            batch_list = self._plan_batch_lists.setdefault(loc.batch, [])
            self._plan_key_slot[key] = (loc.batch, len(batch_list))
            batch_list.append(loc)
        self._windows.clear()

    def _begin_session(self) -> None:
        self._wal_append(OP_BEGIN, self._file_size, self._num_batches)
        self._in_session = True
        self._buffer = []
        self._buffer_len = 0
        self._pending_index = {}
        self._pending_deletes = []

    def get_chunk(self, key: Any) -> Optional[List[Edge]]:
        """Retrieve the latest preserved chunk for ``key`` (None if absent).

        Reads go through the read cache; on a miss the window policy plans
        a physical read that may prefetch upcoming queried chunks.
        """
        self._check_open()
        loc = self._index.get(key)
        if loc is None:
            return None
        slot = loc.batch if self.policy.per_batch_windows else 0
        window = self._windows.get(slot)
        if window is not None:
            start, view = window
            if start <= loc.offset and loc.offset + loc.length <= start + len(view):
                # Hit: decode lazily out of the cached window view — the
                # chunk is sliced at its relative offset, never copied and
                # never re-read from the start of the window.
                self.metrics.cache_hits += 1
                _, entries, _ = decode_chunk(view, loc.offset - start)
                return entries
        self.metrics.cache_misses += 1
        upcoming = self._upcoming_in_batch(key, loc)
        plan = self.policy.plan(loc, upcoming, self._file_size)
        view = memoryview(self._physical_read(plan.offset, plan.nbytes))
        self._windows[slot] = (plan.offset, view)
        _, entries, _ = decode_chunk(view, loc.offset - plan.offset)
        return entries

    def _upcoming_in_batch(self, key: Any, loc: ChunkLocation) -> List[ChunkLocation]:
        slot = self._plan_key_slot.get(key)
        if slot is None:
            return []
        batch, position = slot
        batch_list = self._plan_batch_lists.get(batch, [])
        return batch_list[position + 1 : position + 1 + self.prefetch_lookahead]

    def _physical_read(self, offset: int, nbytes: int) -> bytes:
        self._fh.seek(offset)
        data = self._fh.read(nbytes)
        self.metrics.io_reads += 1
        self.metrics.bytes_read += len(data)
        self.metrics.read_time_s += self.cost_model.store_read_time(len(data))
        return data

    def put_chunk(self, key: Any, entries: List[Edge]) -> None:
        """Stage the updated chunk for ``key`` in the append buffer.

        The chunk is encoded exactly once, here; that single buffer
        carries through the append buffer, the index entry length and
        the flushed write (``chunk_size`` exists for callers that need
        the size without a buffer at all).
        """
        self._check_open()
        if not self._in_session:
            raise StoreError("put_chunk outside a merge session")
        raw = encode_chunk(key, entries)
        self._wal_append(OP_PUT, key, raw)
        offset = self._file_size + self._buffer_len
        self._buffer.append(raw)
        self._buffer_len += len(raw)
        self._pending_index[key] = ChunkLocation(offset, len(raw), self._num_batches)
        if self._buffer_len >= self.append_buffer_size:
            self._flush_buffer()

    def delete_chunk(self, key: Any) -> None:
        """Stage removal of ``key``'s chunk (applied at session end)."""
        self._check_open()
        if not self._in_session:
            raise StoreError("delete_chunk outside a merge session")
        self._wal_append(OP_DELETE, key)
        self._pending_deletes.append(key)
        self._pending_index.pop(key, None)

    def _flush_buffer(self) -> None:
        if self._crashed or not self._buffer:
            return
        # Write-ahead: the journal records covering these chunks reach
        # the OS before the data bytes do.
        self._wal_flush()
        raw = b"".join(self._buffer)
        self._fh.seek(self._file_size)
        self._fh.write(raw)
        self._fh.flush()
        self._file_size += len(raw)
        self.metrics.io_writes += 1
        self.metrics.bytes_written += len(raw)
        self.metrics.write_time_s += self.cost_model.store_write_time(len(raw))
        self._buffer = []
        self._buffer_len = 0

    def end_merge(self) -> None:
        """Flush the append buffer and publish the new batch in the index.

        The session's commit record is journaled — and flushed — *before*
        the data flush, so on recovery a committed session replays to the
        exact published state whether or not its data bytes landed.
        After an injected crash this is a silent no-op (the ``finally``
        of :meth:`merge_delta` must not resurrect a killed session).
        """
        if self._crashed:
            return
        self._check_open()
        if not self._in_session:
            raise StoreError("end_merge without begin_merge")
        wrote_any = bool(self._pending_index)
        self._wal_append(
            OP_COMMIT,
            self._file_size + self._buffer_len,
            self._num_batches + (1 if wrote_any else 0),
        )
        self._wal_flush()
        self._flush_buffer()
        for key in self._pending_deletes:
            self._index.pop(key, None)
        self._index.update(self._pending_index)
        if wrote_any:
            self._num_batches += 1
        self._pending_index = {}
        self._pending_deletes = []
        self._in_session = False
        self._plan_key_slot.clear()
        self._plan_batch_lists.clear()

    def merge_delta(
        self,
        delta_by_key: Iterable[Tuple[Any, List[DeltaEdge]]],
    ) -> Iterator[Tuple[Any, List[Edge]]]:
        """Join a sorted delta MRBGraph against the store (§3.3–3.4).

        For each affected K2 (in sorted order) the preserved chunk is
        retrieved, the delta's insertions/deletions/updates are applied,
        the merged chunk is re-appended (or deleted when it became empty),
        and the merged edge list is yielded so the caller can re-run the
        Reduce instance.
        """
        delta_list = list(delta_by_key)
        self.begin_merge([k2 for k2, _ in delta_list])
        try:
            for k2, delta_edges in delta_list:
                old = self.get_chunk(k2) or []
                merged = apply_delta(old, delta_edges)
                if merged:
                    self.put_chunk(k2, merged)
                else:
                    self.delete_chunk(k2)
                yield k2, merged
        finally:
            self.end_merge()

    # ------------------------------------------------------------------ #
    # compaction                                                         #
    # ------------------------------------------------------------------ #

    def compact(self) -> None:
        """Offline reconstruction: rewrite live chunks as one sorted batch.

        The paper performs this "when the worker is idle" (§3.4), so its
        cost is tracked separately (``metrics.compact_time_s``) and never
        charged to a job's runtime by the engines.

        The rewrite streams: live chunks are copied in K2 order into a
        sibling temp file, coalescing physically contiguous chunks into
        single reads and flushing the output in append-buffer-sized
        batches, so peak memory stays bounded by the buffer sizes instead
        of the whole data file.  The simulated cost is unchanged from the
        full-file reconstruction the paper describes: one sequential scan
        of the old file plus one sequential write of the live bytes.

        With the write-ahead log enabled the rewrite is crash-safe: a
        compaction *intent* is journaled before the temp file is written
        and the *commit* record — carrying the complete new placement
        list — is flushed before the temp file replaces ``mrbg.dat``.
        Recovery rolls an uncommitted rewrite back (deleting the temp)
        and a committed one forward (finishing the swap).
        """
        if self._crashed:
            return
        self._check_open()
        if self._in_session:
            raise StoreError("cannot compact during a merge session")
        compact_read_s = self.cost_model.store_read_time(self._file_size)

        keys = self.keys()
        locations = [self._index[key] for key in keys]
        self._wal_append(OP_COMPACT_BEGIN)
        self._wal_flush()
        progress = None
        if self.fault_hook is not None:
            def progress(written: int) -> None:
                directive = self.fault_hook(
                    "mid-compact-write", self.shard_id, written
                )
                if directive is not None:
                    self._crash("mid-compact-write", directive)

        new_locations, out_offset = compact_data_file(
            self._data_path,
            locations,
            self.append_buffer_size,
            replace=self._wal is None,
            progress=progress,
        )
        new_index = dict(zip(keys, new_locations))
        if self._wal is not None:
            self._wal_append(
                OP_COMPACT_COMMIT,
                [(key, loc.offset, loc.length) for key, loc in zip(keys, new_locations)],
                out_offset,
            )
            self._wal_flush()
            if self.fault_hook is not None:
                directive = self.fault_hook(
                    "post-compact-pre-swap", self.shard_id, out_offset
                )
                if directive is not None:
                    self._crash("post-compact-pre-swap", directive)
            os.replace(self._data_path + ".compact", self._data_path)
            fsync_directory(os.path.dirname(os.path.abspath(self._data_path)))

        self._fh.close()
        self._fh = open(self._data_path, "r+b")
        self._file_size = out_offset
        self._index = new_index
        self._num_batches = 1 if new_index else 0
        self._windows.clear()
        self.metrics.compactions += 1
        self.metrics.compact_time_s += compact_read_s + self.cost_model.store_write_time(
            out_offset
        )

    def compaction_stats(self) -> CompactionStats:
        """Live statistics the compaction policy consults."""
        return stats_for_index(self._index, self._num_batches, self._file_size)

    def maybe_compact(self) -> bool:
        """Idle-time compaction opportunity: rewrite iff the policy fires.

        The engines (and callers simulating "when the worker is idle",
        §3.4) call this instead of :meth:`compact` so the configured
        :class:`~repro.mrbgraph.compaction.CompactionPolicy` decides
        whether the rewrite pays for itself yet.  Returns whether a
        compaction ran.
        """
        if self._crashed or self._in_session:
            return False
        self._check_open()
        if not self.compaction.should_compact(self.compaction_stats()):
            return False
        self.compact()
        return True
