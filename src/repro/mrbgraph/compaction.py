"""Pluggable compaction policies for the MRBG-Store.

The paper compacts a store by full offline reconstruction "when the
worker is idle" (§3.4) — one monolithic policy.  Real LSM-shaped stores
choose *when* that reconstruction pays for itself; this module makes the
trigger pluggable per store (and therefore per shard of a
:class:`~repro.mrbgraph.sharding.ShardedMRBGStore`):

- :class:`FullCompaction` (``"full"``, the default) — always compact
  when asked, the paper's behavior;
- :class:`SizeTieredCompaction` (``"size-tiered"``) — compact once
  enough similarly-sized sorted batches have stacked up (the classic
  STCS trigger: merging peers of one size tier amortizes the rewrite);
- :class:`LeveledCompaction` (``"leveled"``) — compact once dead bytes
  exceed a space-amplification budget or the batch stack grows past a
  read-amplification bound (the invariant leveled stores maintain).

Every policy still performs the same physical operation — the streaming
full rewrite of :func:`repro.mrbgraph.store.compact_data_file` — so the
on-disk format and the byte-identical equivalence contract are
untouched; a policy only decides *whether* an idle-time
:meth:`~repro.mrbgraph.store.MRBGStore.maybe_compact` call rewrites now
or waits.  Select a policy with the ``REPRO_COMPACTION`` environment
variable, ``JobConf.compaction``, or per store via the ``compaction``
constructor argument.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Union

from repro.common.errors import StoreError


@dataclass(frozen=True)
class CompactionStats:
    """What a policy sees when deciding whether to compact one store.

    Attributes:
        num_batches: sorted batches currently stacked in the data file.
        file_size: physical data-file bytes (live + dead).
        live_bytes: bytes occupied by the latest version of every chunk.
        batch_live_bytes: live bytes per batch index (dead versions have
            already been superseded in the index, so a heavily-rewritten
            old batch shows up small).
    """

    num_batches: int
    file_size: int
    live_bytes: int
    batch_live_bytes: List[int] = field(default_factory=list)

    @property
    def dead_bytes(self) -> int:
        """Bytes occupied by superseded chunk versions."""
        return max(0, self.file_size - self.live_bytes)

    @property
    def dead_ratio(self) -> float:
        """Fraction of the data file occupied by superseded versions."""
        return self.dead_bytes / self.file_size if self.file_size else 0.0


class CompactionPolicy:
    """Decides when a store's idle-time reconstruction should run."""

    #: registry name (``REPRO_COMPACTION`` / ``JobConf.compaction`` value).
    name: str = "abstract"

    def should_compact(self, stats: CompactionStats) -> bool:
        """Whether an idle-time compaction opportunity should rewrite now."""
        raise NotImplementedError


class FullCompaction(CompactionPolicy):
    """The paper's monolithic policy: compact whenever there is anything to.

    Any store with more than one sorted batch (or any dead bytes) is
    rewritten on the next idle-time opportunity.
    """

    name = "full"

    def should_compact(self, stats: CompactionStats) -> bool:
        """True once the file holds several batches or any dead bytes."""
        return stats.num_batches > 1 or stats.dead_bytes > 0


class SizeTieredCompaction(CompactionPolicy):
    """Compact when one size tier holds ``min_batches`` similar batches.

    Batches are bucketed by live size: two batches share a tier when the
    larger is at most ``bucket_ratio`` times the smaller.  The rewrite
    triggers only when some tier accumulates ``min_batches`` members —
    until then merges keep appending cheap small batches, trading dead
    bytes for fewer rewrites (the STCS write-amplification bargain).
    """

    name = "size-tiered"

    def __init__(self, min_batches: int = 4, bucket_ratio: float = 2.0) -> None:
        if min_batches < 2:
            raise ValueError("min_batches must be at least 2")
        if bucket_ratio <= 1.0:
            raise ValueError("bucket_ratio must exceed 1.0")
        self.min_batches = min_batches
        self.bucket_ratio = bucket_ratio

    def should_compact(self, stats: CompactionStats) -> bool:
        """True when any size tier reaches ``min_batches`` members."""
        sizes = sorted(size for size in stats.batch_live_bytes if size > 0)
        if len(sizes) < self.min_batches:
            return False
        run_start = 0
        for i in range(1, len(sizes) + 1):
            if i == len(sizes) or sizes[i] > sizes[run_start] * self.bucket_ratio:
                if i - run_start >= self.min_batches:
                    return True
                run_start = i
        return False


class LeveledCompaction(CompactionPolicy):
    """Compact when space or read amplification exceeds its budget.

    Leveled stores bound how much of the file is dead weight
    (``max_dead_ratio``) and how many sorted runs a point read may have
    to consult (``max_batches``); crossing either bound triggers the
    rewrite back to a single level.
    """

    name = "leveled"

    def __init__(self, max_dead_ratio: float = 0.3, max_batches: int = 8) -> None:
        if not 0.0 < max_dead_ratio < 1.0:
            raise ValueError("max_dead_ratio must be within (0, 1)")
        if max_batches < 1:
            raise ValueError("max_batches must be positive")
        self.max_dead_ratio = max_dead_ratio
        self.max_batches = max_batches

    def should_compact(self, stats: CompactionStats) -> bool:
        """True when dead-ratio or batch-stack budgets are exceeded."""
        if stats.file_size == 0:
            return False
        return (
            stats.dead_ratio > self.max_dead_ratio
            or stats.num_batches > self.max_batches
        )


#: Registered policy constructors by name.
POLICIES: Dict[str, type] = {
    FullCompaction.name: FullCompaction,
    SizeTieredCompaction.name: SizeTieredCompaction,
    LeveledCompaction.name: LeveledCompaction,
}

#: Accepted wherever a compaction policy is configured.
CompactionSpec = Union[str, CompactionPolicy, None]


def compaction_policy(spec: CompactionSpec = None) -> CompactionPolicy:
    """Resolve a policy spec: a name, a live policy, or None (config default).

    Raises:
        StoreError: on an unknown policy name.
    """
    if isinstance(spec, CompactionPolicy):
        return spec
    if spec is None:
        from repro.common import config

        spec = config.DEFAULT_COMPACTION
    try:
        return POLICIES[spec]()
    except KeyError:
        raise StoreError(
            f"unknown compaction policy {spec!r}; expected one of "
            f"{sorted(POLICIES)}"
        ) from None


def stats_for_index(index, num_batches: int, file_size: int) -> CompactionStats:
    """Build :class:`CompactionStats` from a store's live index.

    Derives per-batch live bytes by grouping the index's chunk locations
    on their batch number — computable for any store (including a
    reopened one) without extra on-disk bookkeeping, so policies never
    change the file formats.
    """
    live = 0
    per_batch = [0] * max(num_batches, 0)
    for loc in index.values():
        live += loc.length
        if 0 <= loc.batch < len(per_batch):
            per_batch[loc.batch] += loc.length
    return CompactionStats(
        num_batches=num_batches,
        file_size=file_size,
        live_bytes=live,
        batch_live_bytes=per_batch,
    )
