"""Read-window policies for the MRBG-Store (§3.4 Algorithm 1, §5.2).

On a read-cache miss the store must decide how many bytes to read starting
at the missed chunk's position.  The paper evaluates four strategies
(Table 4):

- **index-only** — read exactly the missed chunk; minimum bytes, maximum
  I/O requests;
- **single fixed window** — one fixed-size window shared across the whole
  file; with the multi-batch files produced by iterative incremental jobs
  the window thrashes between batches and reads enormous amounts of
  obsolete data;
- **multiple fixed windows** — one fixed-size window per sorted batch;
- **multi-dynamic-window** — one window per batch whose extent is chosen
  by Algorithm 1: upcoming queried chunks in the *same* batch are folded
  into the window while the gap to the next chunk stays below the
  threshold ``T`` and the window fits the read cache.

Policies only *plan* reads; the store executes them and tracks metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Protocol, Sequence, Tuple

from repro.common import config


@dataclass(frozen=True)
class ChunkLocation:
    """Physical placement of one chunk version in the store file.

    Slotted: one instance exists per live chunk version in every store
    index and query plan, so the per-instance ``__dict__`` is worth
    eliminating on large stores.
    """

    __slots__ = ("offset", "length", "batch")

    offset: int
    length: int
    batch: int


@dataclass
class ReadPlan:
    """A planned physical read: ``nbytes`` starting at ``offset``."""

    __slots__ = ("offset", "nbytes", "batch")

    offset: int
    nbytes: int
    batch: int


class WindowPolicy(Protocol):
    """Strategy interface for read planning."""

    #: Whether the store keeps one cache window per batch (multi-window)
    #: or a single global window.
    per_batch_windows: bool

    def plan(
        self,
        target: ChunkLocation,
        upcoming_same_batch: Sequence[ChunkLocation],
        file_size: int,
    ) -> ReadPlan:
        """Plan the read that will satisfy a miss on ``target``.

        Args:
            target: location of the missed chunk.
            upcoming_same_batch: locations of later queried chunks whose
                *latest version* lives in the same batch as ``target``,
                in query (== offset) order.
            file_size: current store file size, to cap the window.
        """
        ...


def _cap(offset: int, nbytes: int, file_size: int) -> ReadPlan:
    nbytes = max(0, min(nbytes, file_size - offset))
    return ReadPlan(offset=offset, nbytes=nbytes, batch=-1)


class IndexOnlyPolicy:
    """Read exactly the missed chunk (one I/O per chunk)."""

    per_batch_windows = False

    def plan(
        self,
        target: ChunkLocation,
        upcoming_same_batch: Sequence[ChunkLocation],
        file_size: int,
    ) -> ReadPlan:
        """Plan a read covering exactly the missed chunk."""
        plan = _cap(target.offset, target.length, file_size)
        plan.batch = target.batch
        return plan


class SingleFixedWindowPolicy:
    """One global fixed-size window.

    Effective for single-batch files; pathological for multi-batch files
    because consecutive queries alternate between batches, evicting the
    window and re-reading ``window_size`` bytes almost every time.
    """

    per_batch_windows = False

    def __init__(self, window_size: int = 4 * config.MB) -> None:
        if window_size <= 0:
            raise ValueError("window_size must be positive")
        self.window_size = window_size

    def plan(
        self,
        target: ChunkLocation,
        upcoming_same_batch: Sequence[ChunkLocation],
        file_size: int,
    ) -> ReadPlan:
        """Plan one ``window_size`` read starting at the missed chunk."""
        nbytes = max(self.window_size, target.length)
        plan = _cap(target.offset, nbytes, file_size)
        plan.batch = target.batch
        return plan


class MultiFixedWindowPolicy:
    """One fixed-size window per sorted batch (§5.2, "multi-fix-window")."""

    per_batch_windows = True

    def __init__(self, window_size: int = 512 * config.KB) -> None:
        if window_size <= 0:
            raise ValueError("window_size must be positive")
        self.window_size = window_size

    def plan(
        self,
        target: ChunkLocation,
        upcoming_same_batch: Sequence[ChunkLocation],
        file_size: int,
    ) -> ReadPlan:
        """Plan one ``window_size`` read in the missed chunk's batch."""
        nbytes = max(self.window_size, target.length)
        plan = _cap(target.offset, nbytes, file_size)
        plan.batch = target.batch
        return plan


class MultiDynamicWindowPolicy:
    """Algorithm 1 with one dynamically-sized window per batch (§5.2).

    Starting from the missed chunk, later queried chunks *in the same
    batch* are folded into the window while the file gap to each next
    chunk is below ``gap_threshold`` (``T``, default 100 KB) and the window
    still fits the read cache; chunks whose latest version lives in another
    batch are skipped, exactly as Fig 7 illustrates.
    """

    per_batch_windows = True

    def __init__(
        self,
        gap_threshold: int = config.DEFAULT_GAP_THRESHOLD,
        read_cache_size: int = config.DEFAULT_READ_CACHE_SIZE,
    ) -> None:
        if gap_threshold < 0:
            raise ValueError("gap_threshold must be non-negative")
        if read_cache_size <= 0:
            raise ValueError("read_cache_size must be positive")
        self.gap_threshold = gap_threshold
        self.read_cache_size = read_cache_size

    def plan(
        self,
        target: ChunkLocation,
        upcoming_same_batch: Sequence[ChunkLocation],
        file_size: int,
    ) -> ReadPlan:
        """Extend the window over upcoming same-batch chunks (Algorithm 1)."""
        window = target.length
        end = target.offset + target.length
        for nxt in upcoming_same_batch:
            if nxt.offset < end:
                # Out-of-order duplicate (should not happen in a sorted
                # batch); stop extending rather than read backwards.
                break
            gap = nxt.offset - end
            if gap >= self.gap_threshold:
                break
            if window + gap + nxt.length > self.read_cache_size:
                break
            window += gap + nxt.length
            end = nxt.offset + nxt.length
        plan = _cap(target.offset, window, file_size)
        plan.batch = target.batch
        return plan


def policy_by_name(name: str, **kwargs) -> WindowPolicy:
    """Build a policy from its Table 4 row name."""
    table = {
        "index-only": IndexOnlyPolicy,
        "single-fix-window": SingleFixedWindowPolicy,
        "multi-fix-window": MultiFixedWindowPolicy,
        "multi-dynamic-window": MultiDynamicWindowPolicy,
    }
    try:
        cls = table[name]
    except KeyError:
        raise ValueError(
            f"unknown window policy {name!r}; expected one of {sorted(table)}"
        ) from None
    return cls(**kwargs)
