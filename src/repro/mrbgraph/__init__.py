"""MRBGraph abstraction and the on-disk MRBG-Store (paper §3.2–3.4, §5.2)."""

from repro.mrbgraph.compaction import (
    CompactionPolicy,
    CompactionStats,
    FullCompaction,
    LeveledCompaction,
    SizeTieredCompaction,
    compaction_policy,
)
from repro.mrbgraph.graph import DeltaEdge, Edge, apply_delta, group_delta_by_key
from repro.mrbgraph.sharding import (
    HashShardRouter,
    RangeShardRouter,
    ShardedMRBGStore,
    ShardRouter,
    StoreLike,
)
from repro.mrbgraph.store import MRBGStore, StoreMetrics
from repro.mrbgraph.wal import RecoveredState, WALReplay, WriteAheadLog
from repro.mrbgraph.windows import (
    ChunkLocation,
    IndexOnlyPolicy,
    MultiDynamicWindowPolicy,
    MultiFixedWindowPolicy,
    SingleFixedWindowPolicy,
    WindowPolicy,
    policy_by_name,
)

__all__ = [
    "CompactionPolicy",
    "CompactionStats",
    "FullCompaction",
    "LeveledCompaction",
    "SizeTieredCompaction",
    "compaction_policy",
    "DeltaEdge",
    "Edge",
    "apply_delta",
    "group_delta_by_key",
    "MRBGStore",
    "StoreMetrics",
    "RecoveredState",
    "WALReplay",
    "WriteAheadLog",
    "HashShardRouter",
    "RangeShardRouter",
    "ShardRouter",
    "ShardedMRBGStore",
    "StoreLike",
    "ChunkLocation",
    "IndexOnlyPolicy",
    "MultiDynamicWindowPolicy",
    "MultiFixedWindowPolicy",
    "SingleFixedWindowPolicy",
    "WindowPolicy",
    "policy_by_name",
]
