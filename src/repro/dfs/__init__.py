"""Block-structured distributed file system simulation (HDFS stand-in)."""

from repro.dfs.filesystem import Block, DFSFile, DistributedFS

__all__ = ["Block", "DFSFile", "DistributedFS"]
