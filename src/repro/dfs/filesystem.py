"""A block-structured distributed file system simulation (HDFS stand-in).

Files are sequences of ``(key, value)`` records split into blocks of a
configurable target byte size.  Each block is replicated on a set of
workers; the MapReduce scheduler consults block locations to run map
tasks data-locally (§2).  Record payloads are kept as Python objects for
speed; byte sizes come from the exact size estimator so simulated I/O
charges match what the real binary encoder would produce.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Sequence, Tuple

from repro.cluster.cluster import Cluster
from repro.common import config
from repro.common.errors import FileAlreadyExists, FileNotFoundInDFS
from repro.common.sizeof import record_size


@dataclass
class Block:
    """One replicated block of a DFS file."""

    block_id: int
    records: List[Tuple[Any, Any]]
    size_bytes: int
    locations: List[int]

    @property
    def num_records(self) -> int:
        """Number of records in this block."""
        return len(self.records)


@dataclass
class DFSFile:
    """Metadata and contents of one DFS file."""

    path: str
    blocks: List[Block] = field(default_factory=list)

    @property
    def size_bytes(self) -> int:
        """Total simulated size of all blocks, in bytes."""
        return sum(block.size_bytes for block in self.blocks)

    @property
    def num_records(self) -> int:
        """Total record count across all blocks."""
        return sum(block.num_records for block in self.blocks)

    def records(self) -> Iterator[Tuple[Any, Any]]:
        """Iterate all records across blocks in file order."""
        for block in self.blocks:
            yield from block.records


class DistributedFS:
    """The namenode: path table plus block placement."""

    def __init__(
        self,
        cluster: Cluster,
        block_size: int = config.DEFAULT_BLOCK_SIZE,
        replication: int = config.DEFAULT_REPLICATION,
    ) -> None:
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        if replication <= 0:
            raise ValueError("replication must be positive")
        self.cluster = cluster
        self.block_size = block_size
        self.replication = replication
        self._files: Dict[str, DFSFile] = {}
        self._next_block_id = 0

    def write(
        self,
        path: str,
        records: Iterable[Tuple[Any, Any]],
        overwrite: bool = False,
    ) -> DFSFile:
        """Write ``records`` to ``path``, splitting into placed blocks.

        Raises:
            FileAlreadyExists: if the path exists and ``overwrite`` is False.
        """
        if path in self._files and not overwrite:
            raise FileAlreadyExists(path)
        dfs_file = DFSFile(path=path)
        current: List[Tuple[Any, Any]] = []
        current_size = 0
        for key, value in records:
            current.append((key, value))
            current_size += record_size(key, value)
            if current_size >= self.block_size:
                dfs_file.blocks.append(self._seal_block(current, current_size))
                current = []
                current_size = 0
        if current or not dfs_file.blocks:
            dfs_file.blocks.append(self._seal_block(current, current_size))
        self._files[path] = dfs_file
        return dfs_file

    def _seal_block(self, records: List[Tuple[Any, Any]], size: int) -> Block:
        block = Block(
            block_id=self._next_block_id,
            records=records,
            size_bytes=size,
            locations=self.cluster.pick_replica_workers(self.replication),
        )
        self._next_block_id += 1
        return block

    def file(self, path: str) -> DFSFile:
        """Look up file metadata.

        Raises:
            FileNotFoundInDFS: if the path does not exist.
        """
        try:
            return self._files[path]
        except KeyError:
            raise FileNotFoundInDFS(path) from None

    def read(self, path: str) -> Iterator[Tuple[Any, Any]]:
        """Iterate the records of ``path`` in file order."""
        return self.file(path).records()

    def read_all(self, path: str) -> List[Tuple[Any, Any]]:
        """Materialize all records of ``path`` as a list."""
        return list(self.read(path))

    def exists(self, path: str) -> bool:
        """Whether ``path`` exists."""
        return path in self._files

    def delete(self, path: str) -> None:
        """Remove ``path``.

        Raises:
            FileNotFoundInDFS: if the path does not exist.
        """
        if path not in self._files:
            raise FileNotFoundInDFS(path)
        del self._files[path]

    def ls(self, prefix: str = "") -> List[str]:
        """List paths starting with ``prefix``, sorted."""
        return sorted(p for p in self._files if p.startswith(prefix))

    def size(self, path: str) -> int:
        """Total byte size of ``path``."""
        return self.file(path).size_bytes
