#!/usr/bin/env python3
"""Generate ``docs/api.md`` from the ``src/repro/`` docstrings.

Walks every module under ``src/repro/`` with :mod:`ast` (no imports, so
generation is environment-independent and safe in CI), collects the
public surface — module docstring, public classes with their public
methods, public module-level functions — and emits one markdown page:
module → object → first-docstring-line summary.

The page is *generated, committed, and drift-checked*: CI regenerates
it and fails when the committed file differs, so the API reference can
never go stale.  The same walk powers a docstring-coverage gate.

Usage::

    python tools/gen_api_docs.py                  # (re)write docs/api.md
    python tools/gen_api_docs.py --check          # exit 1 on drift
    python tools/gen_api_docs.py --min-coverage 95  # exit 1 below 95 %
    python tools/gen_api_docs.py --list-missing   # show undocumented objects
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path
from typing import Iterator, List, Optional, Tuple

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "src" / "repro"
OUT = ROOT / "docs" / "api.md"

HEADER = """\
# API reference

<!-- GENERATED FILE — do not edit by hand.
     Regenerate with:  python tools/gen_api_docs.py
     CI fails when this file drifts from the sources. -->

One line per public module, class and function, straight from the
docstrings under `src/repro/`.  For narrative documentation see
[architecture.md](architecture.md), [store.md](store.md) and
[experiments.md](experiments.md).
"""


def module_name(path: Path) -> str:
    rel = path.relative_to(ROOT / "src").with_suffix("")
    parts = list(rel.parts)
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def iter_modules() -> Iterator[Path]:
    for path in sorted(SRC.rglob("*.py")):
        yield path


def first_line(docstring: Optional[str]) -> str:
    if not docstring:
        return ""
    for line in docstring.strip().splitlines():
        line = line.strip()
        if line:
            return line
    return ""


def is_public(name: str) -> bool:
    return not name.startswith("_")


class ApiObject:
    """One documented (or undocumented) public object."""

    def __init__(self, kind: str, qualname: str, summary: str) -> None:
        self.kind = kind
        self.qualname = qualname
        self.summary = summary

    @property
    def documented(self) -> bool:
        return bool(self.summary)


def collect_module(path: Path) -> Tuple[ApiObject, List[ApiObject]]:
    """Parse one module into (module object, public members)."""
    tree = ast.parse(path.read_text(encoding="utf-8"))
    name = module_name(path)
    module = ApiObject("module", name, first_line(ast.get_docstring(tree)))
    members: List[ApiObject] = []
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and is_public(node.name):
            members.append(
                ApiObject(
                    "class",
                    f"{name}.{node.name}",
                    first_line(ast.get_docstring(node)),
                )
            )
            for sub in node.body:
                if isinstance(
                    sub, (ast.FunctionDef, ast.AsyncFunctionDef)
                ) and is_public(sub.name):
                    members.append(
                        ApiObject(
                            "method",
                            f"{name}.{node.name}.{sub.name}",
                            first_line(ast.get_docstring(sub)),
                        )
                    )
        elif isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef)
        ) and is_public(node.name):
            members.append(
                ApiObject(
                    "function",
                    f"{name}.{node.name}",
                    first_line(ast.get_docstring(node)),
                )
            )
    return module, members


def render() -> Tuple[str, List[ApiObject]]:
    """Render the full page; returns (markdown, every walked object)."""
    sections: List[str] = [HEADER]
    everything: List[ApiObject] = []
    current_package = None
    for path in iter_modules():
        module, members = collect_module(path)
        everything.append(module)
        everything.extend(members)
        package = ".".join(module.qualname.split(".")[:2])
        if package != current_package:
            current_package = package
            sections.append(f"\n## `{package}`\n")
        title = module.qualname
        sections.append(f"\n### `{title}`\n")
        sections.append(f"\n{module.summary or '*undocumented*'}\n")
        top_level = [m for m in members if m.kind in ("class", "function")]
        if top_level:
            sections.append("\n| object | summary |\n| --- | --- |\n")
            for member in top_level:
                short = member.qualname[len(module.qualname) + 1 :]
                label = f"`{short}()`" if member.kind == "function" else f"`{short}`"
                sections.append(
                    f"| {label} | {member.summary or '*undocumented*'} |\n"
                )
    return "".join(sections), everything


def coverage(objects: List[ApiObject]) -> float:
    if not objects:
        return 100.0
    documented = sum(1 for obj in objects if obj.documented)
    return 100.0 * documented / len(objects)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--check", action="store_true",
                        help="fail when docs/api.md differs from a fresh render")
    parser.add_argument("--min-coverage", type=float, default=None, metavar="PCT",
                        help="fail when docstring coverage drops below PCT")
    parser.add_argument("--list-missing", action="store_true",
                        help="print every public object without a docstring")
    args = parser.parse_args()

    markdown, objects = render()

    if args.list_missing:
        for obj in objects:
            if not obj.documented:
                print(f"{obj.kind:<8} {obj.qualname}")

    status = 0
    if args.check:
        committed = OUT.read_text(encoding="utf-8") if OUT.exists() else ""
        if committed != markdown:
            print(
                "docs/api.md is stale — regenerate with "
                "`python tools/gen_api_docs.py` and commit the result",
                file=sys.stderr,
            )
            status = 1
        else:
            print("docs/api.md is up to date")
    elif not args.list_missing:
        OUT.write_text(markdown, encoding="utf-8")
        print(f"wrote {OUT.relative_to(ROOT)} ({len(objects)} objects)")

    pct = coverage(objects)
    documented = sum(1 for obj in objects if obj.documented)
    print(f"docstring coverage: {pct:.1f}% ({documented}/{len(objects)} objects)")
    if args.min_coverage is not None and pct < args.min_coverage:
        print(
            f"docstring coverage {pct:.1f}% below the "
            f"{args.min_coverage:.1f}% threshold "
            "(run with --list-missing to see the gaps)",
            file=sys.stderr,
        )
        status = 1
    return status


if __name__ == "__main__":
    sys.exit(main())
