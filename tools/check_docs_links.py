#!/usr/bin/env python3
"""Docs-link check: every module/path the docs name must exist.

Scans README.md and docs/*.md for three kinds of references and fails
when any points at nothing in the tree:

- repo-relative paths (``src/repro/mapreduce/engine.py``, ``docs/...``,
  ``benchmarks/...``, ``examples/...``, ``tests/...``);
- dotted module names (``repro.execution``, ``repro.inciter.cpc``);
- bare Python file names (``fig8_overall.py``) — matched against the
  set of file names anywhere in the tree.

It also checks two reverse directions, so new code cannot land
undocumented:

- every experiment module under ``src/repro/experiments/`` (except the
  shared harness/CLI plumbing) must be named in ``docs/experiments.md``;
- every example script under ``examples/`` must be mentioned in
  README.md or a ``docs/*.md`` page.

Run from the repository root (CI does)::

    python tools/check_docs_links.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

DOC_GLOBS = ("README.md", "docs/*.md")
PATH_RE = re.compile(r"\b(?:src|tests|benchmarks|examples|docs|tools)/[\w\-./]+")
MODULE_RE = re.compile(r"\brepro(?:\.\w+)+")
PYFILE_RE = re.compile(r"\b[\w\-]+\.py\b")


def iter_doc_files(root: Path):
    for pattern in DOC_GLOBS:
        yield from sorted(root.glob(pattern))


def check_file(doc: Path, root: Path, known_basenames: set) -> list:
    """Return a list of ``(reference, reason)`` problems found in ``doc``."""
    text = doc.read_text(encoding="utf-8")
    problems = []

    for ref in sorted(set(PATH_RE.findall(text))):
        candidate = root / ref.rstrip("/.")
        if not candidate.exists():
            problems.append((ref, "path does not exist"))

    for ref in sorted(set(MODULE_RE.findall(text))):
        parts = ref.split(".")
        base = root / "src" / Path(*parts)
        if not (base.with_suffix(".py").exists() or (base / "__init__.py").exists()):
            # Dotted references may be attribute access (repro.foo.Bar
            # would not match MODULE_RE's \w+ against a class either, so
            # anything failing here is a genuinely missing module).
            problems.append((ref, "module does not exist under src/"))

    for ref in sorted(set(PYFILE_RE.findall(text))):
        if ref not in known_basenames:
            problems.append((ref, "no file with this name anywhere in the tree"))

    return problems


#: experiment-package plumbing exempt from the registry check.
EXPERIMENT_PLUMBING = {"__init__.py", "__main__.py", "harness.py"}


def check_experiment_registry(root: Path) -> list:
    """Every experiment module must be named in docs/experiments.md."""
    registry = root / "docs" / "experiments.md"
    if not registry.is_file():
        return [("docs/experiments.md", "experiment registry is missing")]
    text = registry.read_text(encoding="utf-8")
    problems = []
    for module in sorted((root / "src" / "repro" / "experiments").glob("*.py")):
        if module.name in EXPERIMENT_PLUMBING:
            continue
        if module.name not in text:
            problems.append(
                (module.name, "experiment module not named in docs/experiments.md")
            )
    return problems


def check_example_coverage(root: Path) -> list:
    """Every example script must be mentioned in README or a docs page."""
    corpus = "\n".join(
        doc.read_text(encoding="utf-8") for doc in iter_doc_files(root)
    )
    problems = []
    for script in sorted((root / "examples").glob("*.py")):
        if script.name not in corpus:
            problems.append(
                (script.name, "example not mentioned in README or docs/")
            )
    return problems


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    known_basenames = {
        path.name
        for path in root.rglob("*.py")
        if ".git" not in path.parts
    }
    failures = 0
    for doc in iter_doc_files(root):
        problems = check_file(doc, root, known_basenames)
        for ref, reason in problems:
            print(f"{doc.relative_to(root)}: {ref!r}: {reason}")
        failures += len(problems)
    for ref, reason in check_experiment_registry(root):
        print(f"docs/experiments.md: {ref!r}: {reason}")
        failures += 1
    for ref, reason in check_example_coverage(root):
        print(f"examples/: {ref!r}: {reason}")
        failures += 1
    if failures:
        print(f"\n{failures} broken doc reference(s)")
        return 1
    print("docs-link check: all references resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
