#!/usr/bin/env python3
"""Render (and optionally regenerate) the perf reports.

``BENCH_hotpaths.json`` at the repository root is the perf trajectory
file emitted by ``benchmarks/test_bench_hotpaths.py``; this tool prints
it as a table and compares every section against the pre-PR baseline in
``benchmarks/baseline_hotpaths.json``.  ``BENCH_sharding.json`` (from
``benchmarks/test_bench_sharding.py``) is rendered alongside when
present: host wall-clock per backend plus the deterministic simulated
merge/compact stage elapsed per shard count.  ``BENCH_resilience.json``
(from ``benchmarks/test_bench_resilience.py``) adds the resilient
executor's throughput and simulated retry-backoff overhead at injected
failure rates of 0/1/5/20% per backend.  ``BENCH_serving.json`` (from
``benchmarks/test_bench_serving.py``) reports the online query server
under concurrent streaming ingestion: queries/s, p50/p99 host latency,
cache hit rate and epochs served per serving-shard count.
``BENCH_workset.json`` (from ``benchmarks/test_bench_workset.py``)
shows workset (delta) iteration collapsing its per-superstep scheduled
map tasks to zero on a converging PageRank, plus the frontier's
touched-vertex savings vs full sweeps on SSSP.

Usage::

    python tools/bench_report.py            # print the report(s)
    python tools/bench_report.py --run      # run the benches first, then print
    python tools/bench_report.py --check    # exit 1 unless codec ≥2x and
                                            # fig8 improved vs the baseline

CI runs ``--run`` at ``REPRO_BENCH_SCALE=test`` and uploads both JSON
files as artifacts.

The repo-root ``BENCH_*.json`` files are only (re)written when
``REPRO_BENCH_WRITE=1`` (``--run`` sets it, as does the CI bench-smoke
job); a plain ``pytest`` sweep writes to ``.bench_scratch/`` instead so
a test run on a busy host cannot silently overwrite the committed perf
record with noisy numbers.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
OUT_PATH = os.path.join(ROOT, "BENCH_hotpaths.json")
SHARDING_PATH = os.path.join(ROOT, "BENCH_sharding.json")
RESILIENCE_PATH = os.path.join(ROOT, "BENCH_resilience.json")
SERVING_PATH = os.path.join(ROOT, "BENCH_serving.json")
WORKSET_PATH = os.path.join(ROOT, "BENCH_workset.json")
BASELINE_PATH = os.path.join(ROOT, "benchmarks", "baseline_hotpaths.json")


def run_bench() -> int:
    env = dict(os.environ)
    env.setdefault("REPRO_BENCH_SCALE", "test")
    # --run is the explicit "refresh the committed perf record" path;
    # without this knob the bench modules write to .bench_scratch/ so
    # ordinary pytest runs can't clobber the repo-root artifacts.
    env["REPRO_BENCH_WRITE"] = "1"
    env["PYTHONPATH"] = os.path.join(ROOT, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.call(
        [
            sys.executable,
            "-m",
            "pytest",
            os.path.join(ROOT, "benchmarks", "test_bench_hotpaths.py"),
            os.path.join(ROOT, "benchmarks", "test_bench_sharding.py"),
            os.path.join(ROOT, "benchmarks", "test_bench_resilience.py"),
            os.path.join(ROOT, "benchmarks", "test_bench_serving.py"),
            os.path.join(ROOT, "benchmarks", "test_bench_workset.py"),
            "-q",
        ],
        env=env,
        cwd=ROOT,
    )


def load(path: str) -> dict:
    if not os.path.exists(path):
        return {}
    with open(path) as fh:
        return json.load(fh)


def fmt_row(label: str, current, baseline, unit: str) -> str:
    ratio = ""
    if isinstance(current, (int, float)) and isinstance(baseline, (int, float)):
        if baseline:
            ratio = f"  ({current / baseline:.2f}x)"
    base = f"{baseline}" if baseline is not None else "n/a"
    return f"  {label:<28} {current:>12} {unit:<10} baseline {base}{ratio}"


def print_report(doc: dict, baseline: dict) -> None:
    host = doc.get("host", {})
    print(
        f"Hot-path perf report  (python {host.get('python', '?')}, "
        f"scale={host.get('bench_scale', '?')})"
    )
    codec = doc.get("codec", {})
    if codec:
        print("codec (chunk encode/decode):")
        print(fmt_row("encode", codec.get("encode_MBps"),
                      baseline.get("codec", {}).get("encode_MBps"), "MB/s"))
        print(fmt_row("decode", codec.get("decode_MBps"),
                      baseline.get("codec", {}).get("decode_MBps"), "MB/s"))
        print(f"  vs in-run legacy codec:      encode x{codec.get('encode_speedup')}"
              f", decode x{codec.get('decode_speedup')}")
    store = doc.get("store_merge", {})
    if store:
        print("store merge:")
        print(fmt_row("merge_delta", store.get("ops_per_s"),
                      baseline.get("store_merge", {}).get("ops_per_s"), "ops/s"))
        print(fmt_row("compact", store.get("compact_s"),
                      baseline.get("store_merge", {}).get("compact_s"), "s"))
    shuffle = doc.get("shuffle", {})
    if shuffle:
        print("shuffle (sort + run merge):")
        print(fmt_row("records", shuffle.get("records_per_s"),
                      baseline.get("shuffle", {}).get("records_per_s"), "rec/s"))
    fig8 = doc.get("fig8", {})
    if fig8:
        print("fig8 end-to-end (pagerank):")
        base_wall = baseline.get("fig8", {}).get("wall_clock_s")
        print(f"  wall-clock {fig8.get('wall_clock_s')} s, "
              f"pre-PR baseline {base_wall} s"
              + (f" -> x{fig8['speedup_vs_pre_pr']}" if "speedup_vs_pre_pr" in fig8 else ""))


def print_sharding_report(doc: dict) -> None:
    host = doc.get("host", {})
    print(
        f"\nSharded-store perf report  (python {host.get('python', '?')}, "
        f"scale={host.get('bench_scale', '?')})"
    )
    section = doc.get("shard_maintenance", {})
    if section:
        shard_counts = section.get("shard_counts", [])
        print("store maintenance, simulated stage elapsed (backend-invariant):")
        simulated = section.get("simulated", {})
        for shards in shard_counts:
            row = simulated.get(str(shards), {})
            print(
                f"  {shards:>2} shard(s): merge {row.get('merge_elapsed_s')} s, "
                f"compact {row.get('compact_elapsed_s')} s "
                f"(x{row.get('compact_parallel_speedup')} vs serial placement)"
            )
        print("store maintenance, host wall-clock per backend:")
        for backend, rows in sorted(section.get("wall_clock", {}).items()):
            cells = ", ".join(
                f"{shards}sh {rows[str(shards)]['merge_ops_per_s']} ops/s"
                for shards in shard_counts
                if str(shards) in rows
            )
            print(f"  {backend:<8} {cells}")
    rounds = doc.get("incremental_round", {})
    if rounds:
        print(f"incremental pagerank round ({rounds.get('vertices')} vertices):")
        for backend, rows in sorted(rounds.get("backends", {}).items()):
            cells = ", ".join(
                f"{shards}sh {row['round_s']} s" for shards, row in sorted(rows.items())
            )
            print(f"  {backend:<8} {cells}")


def print_resilience_report(doc: dict) -> None:
    host = doc.get("host", {})
    print(
        f"\nResilience perf report  (python {host.get('python', '?')}, "
        f"scale={host.get('bench_scale', '?')})"
    )
    section = doc.get("task_resilience", {})
    if not section:
        return
    rates = section.get("failure_rates", [])
    print(
        f"resilient executor ({section.get('num_tasks')} tasks, "
        f"max_retries={section.get('max_retries')}), per injected fault rate:"
    )
    for backend, rows in sorted(section.get("backends", {}).items()):
        cells = ", ".join(
            f"{float(rate):.0%} {rows[rate]['tasks_per_s']} t/s"
            f" (+{rows[rate]['sim_backoff_s']}s sim backoff,"
            f" {rows[rate]['retries']} retries)"
            for rate in rates
            if rate in rows
        )
        print(f"  {backend:<8} {cells}")


def print_serving_report(doc: dict) -> None:
    host = doc.get("host", {})
    print(
        f"\nServing perf report  (python {host.get('python', '?')}, "
        f"scale={host.get('bench_scale', '?')})"
    )
    section = doc.get("serving_load", {})
    if not section:
        return
    mix = section.get("mix", {})
    mix_cells = "/".join(f"{kind} {weight:.0%}" for kind, weight in sorted(mix.items()))
    print(f"query server under concurrent ingestion (mix: {mix_cells}):")
    for shards in section.get("shard_counts", []):
        row = section.get("per_shards", {}).get(str(shards), {})
        print(
            f"  {shards:>2} shard(s): {row.get('qps')} q/s, "
            f"p50 {row.get('p50_ms')} ms, p99 {row.get('p99_ms')} ms, "
            f"hit rate {row.get('cache_hit_rate')}, "
            f"{row.get('epochs_served')} epochs served, "
            f"{row.get('timeouts')} timeouts "
            f"({row.get('ingested_batches')} batches ingested)"
        )


def print_workset_report(doc: dict) -> None:
    host = doc.get("host", {})
    print(
        f"\nWorkset perf report  (python {host.get('python', '?')}, "
        f"scale={host.get('bench_scale', '?')})"
    )
    collapse = doc.get("superstep_collapse", {})
    if collapse:
        series = collapse.get("map_tasks_per_superstep", [])
        print(
            f"superstep collapse (pagerank cascade, depth "
            f"{collapse.get('depth')}):"
        )
        print(
            f"  scheduled map tasks per superstep: {series} "
            f"(full sweep: constant "
            f"{collapse.get('full_sweep_map_tasks_per_superstep')})"
        )
    savings = doc.get("frontier_savings", {})
    if savings:
        full = savings.get("full_sweep", {})
        workset = savings.get("workset", {})
        print(f"frontier savings (sssp, {savings.get('vertices')} vertices):")
        print(
            f"  touched vertices {workset.get('touched_vertices')} vs "
            f"{full.get('touched_vertices')} full-sweep "
            f"({savings.get('touched_savings', 0) * 100:.0f}% saved), "
            f"map tasks {workset.get('map_tasks')} vs {full.get('map_tasks')}"
        )


def check(doc: dict, baseline: dict) -> int:
    failures = []
    codec = doc.get("codec", {})
    if codec.get("encode_speedup", 0) < 2.0 or codec.get("decode_speedup", 0) < 2.0:
        failures.append("codec speedup below 2x vs legacy codec")
    fig8 = doc.get("fig8", {})
    base_wall = baseline.get("fig8", {}).get("wall_clock_s")
    if base_wall and fig8.get("wall_clock_s") and fig8["wall_clock_s"] >= base_wall:
        failures.append(
            f"fig8 wall-clock {fig8['wall_clock_s']}s not better than "
            f"pre-PR baseline {base_wall}s"
        )
    for failure in failures:
        print(f"CHECK FAILED: {failure}", file=sys.stderr)
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--run", action="store_true",
                        help="run benchmarks/test_bench_hotpaths.py first")
    parser.add_argument("--check", action="store_true",
                        help="fail unless the acceptance thresholds hold")
    args = parser.parse_args()

    if args.run:
        status = run_bench()
        if status != 0:
            return status
    doc = load(OUT_PATH)
    if not doc:
        print(f"no {os.path.basename(OUT_PATH)} found; run with --run first",
              file=sys.stderr)
        return 2
    baseline = load(BASELINE_PATH)
    print_report(doc, baseline)
    sharding = load(SHARDING_PATH)
    if sharding:
        print_sharding_report(sharding)
    resilience = load(RESILIENCE_PATH)
    if resilience:
        print_resilience_report(resilience)
    serving = load(SERVING_PATH)
    if serving:
        print_serving_report(serving)
    workset = load(WORKSET_PATH)
    if workset:
        print_workset_report(workset)
    if args.check:
        return check(doc, baseline)
    return 0


if __name__ == "__main__":
    sys.exit(main())
