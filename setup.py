"""Packaging for the i2MapReduce reproduction.

Kept as a ``setup.py`` (rather than ``pyproject.toml``) so editable
installs work in environments without PEP 660 support.  The library is
pure Python with no runtime dependencies; the ``test`` extra pulls in
the suite's tooling.
"""

from setuptools import find_packages, setup

setup(
    name="i2mapreduce-repro",
    version="1.2.0",
    description=(
        "Reproduction of i2MapReduce (Zhang et al., ICDE 2016): "
        "incremental MapReduce for mining evolving big data, with "
        "pluggable parallel execution backends"
    ),
    long_description=(
        "A from-scratch reproduction of the i2MapReduce paper: a "
        "Hadoop-like MapReduce engine over a deterministic simulated "
        "cluster, fine-grain incremental processing with the MRBG-Store, "
        "the general-purpose iterative model, incremental iterative "
        "processing with change propagation control, the paper's "
        "baselines (PlainMR, HaLoop, Spark-like, Incoop-like) and one "
        "experiment module per figure/table in section 8."
    ),
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    extras_require={
        "test": ["pytest", "pytest-benchmark", "hypothesis"],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "License :: OSI Approved :: MIT License",
        "Programming Language :: Python :: 3",
        "Topic :: System :: Distributed Computing",
    ],
)
