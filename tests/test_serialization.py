"""Unit and property tests for the binary serialization format."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import SerializationError
from repro.common.serialization import (
    decode,
    decode_record,
    encode,
    encode_record,
)


class TestEncodeDecode:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            -1,
            2**62,
            -(2**62),
            0.0,
            3.14159,
            float("inf"),
            float("-inf"),
            "",
            "hello",
            "ünïcodé ♥",
            b"",
            b"\x00\xff",
            (),
            (1, 2, 3),
            [1, "two", 3.0],
            {"a": 1, "b": [2, 3]},
            (1, ("nested", (2.5, None))),
        ],
    )
    def test_roundtrip(self, value):
        decoded, offset = decode(encode(value))
        assert decoded == value
        assert offset == len(encode(value))

    def test_nan_roundtrip(self):
        decoded, _ = decode(encode(float("nan")))
        assert math.isnan(decoded)

    def test_unsupported_type_raises(self):
        with pytest.raises(SerializationError):
            encode(object())

    def test_oversized_int_raises(self):
        with pytest.raises(SerializationError):
            encode(2**70)

    def test_truncated_input_raises(self):
        raw = encode("hello world")
        with pytest.raises(SerializationError):
            decode(raw[: len(raw) - 3])

    def test_unknown_tag_raises(self):
        with pytest.raises(SerializationError):
            decode(b"\xfe")

    def test_decode_at_offset(self):
        raw = encode(1) + encode("two")
        first, offset = decode(raw, 0)
        second, end = decode(raw, offset)
        assert first == 1
        assert second == "two"
        assert end == len(raw)


class TestRecords:
    def test_record_roundtrip(self):
        raw = encode_record("key", [1, 2, 3])
        key, value, offset = decode_record(raw)
        assert key == "key"
        assert value == [1, 2, 3]
        assert offset == len(raw)

    def test_concatenated_records(self):
        raw = encode_record(1, "a") + encode_record(2, "b")
        k1, v1, offset = decode_record(raw, 0)
        k2, v2, end = decode_record(raw, offset)
        assert (k1, v1, k2, v2) == (1, "a", 2, "b")
        assert end == len(raw)

    def test_truncated_record_raises(self):
        raw = encode_record("key", "value")
        with pytest.raises(SerializationError):
            decode_record(raw[:-1])


# A strategy of values covering the full supported type lattice.
_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**62), max_value=2**62),
    st.floats(allow_nan=False),
    st.text(max_size=40),
    st.binary(max_size=40),
)
_values = st.recursive(
    _scalars,
    lambda inner: st.one_of(
        st.tuples(inner, inner),
        st.lists(inner, max_size=4),
        st.dictionaries(st.text(max_size=8), inner, max_size=4),
    ),
    max_leaves=20,
)


class TestProperties:
    @given(_values)
    @settings(max_examples=200)
    def test_roundtrip_property(self, value):
        decoded, consumed = decode(encode(value))
        assert decoded == value
        assert consumed == len(encode(value))

    @given(_values, _values)
    @settings(max_examples=100)
    def test_record_roundtrip_property(self, key, value):
        raw = encode_record(key, value)
        got_key, got_value, consumed = decode_record(raw)
        assert got_key == key
        assert got_value == value
        assert consumed == len(raw)

    @given(_values)
    @settings(max_examples=100)
    def test_encoding_deterministic(self, value):
        assert encode(value) == encode(value)
