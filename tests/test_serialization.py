"""Unit and property tests for the binary serialization format."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import SerializationError
from repro.common.serialization import (
    decode,
    decode_many,
    decode_record,
    encode,
    encode_many,
    encode_record,
    encoded_size,
)


class TestEncodeDecode:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            -1,
            2**62,
            -(2**62),
            0.0,
            3.14159,
            float("inf"),
            float("-inf"),
            "",
            "hello",
            "ünïcodé ♥",
            b"",
            b"\x00\xff",
            (),
            (1, 2, 3),
            [1, "two", 3.0],
            {"a": 1, "b": [2, 3]},
            (1, ("nested", (2.5, None))),
        ],
    )
    def test_roundtrip(self, value):
        decoded, offset = decode(encode(value))
        assert decoded == value
        assert offset == len(encode(value))

    def test_nan_roundtrip(self):
        decoded, _ = decode(encode(float("nan")))
        assert math.isnan(decoded)

    def test_unsupported_type_raises(self):
        with pytest.raises(SerializationError):
            encode(object())

    def test_oversized_int_raises(self):
        with pytest.raises(SerializationError):
            encode(2**70)

    def test_truncated_input_raises(self):
        raw = encode("hello world")
        with pytest.raises(SerializationError):
            decode(raw[: len(raw) - 3])

    def test_unknown_tag_raises(self):
        with pytest.raises(SerializationError):
            decode(b"\xfe")

    def test_decode_at_offset(self):
        raw = encode(1) + encode("two")
        first, offset = decode(raw, 0)
        second, end = decode(raw, offset)
        assert first == 1
        assert second == "two"
        assert end == len(raw)


class TestRecords:
    def test_record_roundtrip(self):
        raw = encode_record("key", [1, 2, 3])
        key, value, offset = decode_record(raw)
        assert key == "key"
        assert value == [1, 2, 3]
        assert offset == len(raw)

    def test_concatenated_records(self):
        raw = encode_record(1, "a") + encode_record(2, "b")
        k1, v1, offset = decode_record(raw, 0)
        k2, v2, end = decode_record(raw, offset)
        assert (k1, v1, k2, v2) == (1, "a", 2, "b")
        assert end == len(raw)

    def test_truncated_record_raises(self):
        raw = encode_record("key", "value")
        with pytest.raises(SerializationError):
            decode_record(raw[:-1])


# A strategy of values covering the full supported type lattice.
_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**62), max_value=2**62),
    st.floats(allow_nan=False),
    st.text(max_size=40),
    st.binary(max_size=40),
)
_values = st.recursive(
    _scalars,
    lambda inner: st.one_of(
        st.tuples(inner, inner),
        st.lists(inner, max_size=4),
        st.dictionaries(st.text(max_size=8), inner, max_size=4),
    ),
    max_leaves=20,
)


class TestProperties:
    @given(_values)
    @settings(max_examples=200)
    def test_roundtrip_property(self, value):
        decoded, consumed = decode(encode(value))
        assert decoded == value
        assert consumed == len(encode(value))

    @given(_values, _values)
    @settings(max_examples=100)
    def test_record_roundtrip_property(self, key, value):
        raw = encode_record(key, value)
        got_key, got_value, consumed = decode_record(raw)
        assert got_key == key
        assert got_value == value
        assert consumed == len(raw)

    @given(_values)
    @settings(max_examples=100)
    def test_encoding_deterministic(self, value):
        assert encode(value) == encode(value)


class TestBulkAndViews:
    """Coverage for the zero-copy decoder's bulk and parity guarantees."""

    def test_memoryview_bytes_parity(self):
        for value in [1, 2.5, "text ♥", b"\x01\x02", (1, [2.0, "x"]), {"k": (1, 2)}]:
            raw = encode(value)
            from_bytes = decode(raw)
            from_view = decode(memoryview(raw))
            from_bytearray = decode(bytearray(raw))
            assert from_bytes == from_view == from_bytearray

    def test_record_accepts_memoryview(self):
        raw = encode_record("key", [1.0, 2.0])
        assert decode_record(memoryview(raw)) == decode_record(raw)

    def test_decode_many_roundtrip(self):
        values = [1, "two", (3.0, None), {"k": [True, False]}, b"\x00"]
        raw = encode_many(values)
        assert raw == b"".join(encode(v) for v in values)
        assert decode_many(raw) == values
        assert decode_many(memoryview(raw)) == values

    def test_decode_many_empty(self):
        assert decode_many(b"") == []

    def test_decode_many_truncated_raises(self):
        raw = encode_many([1, "hello world"])
        with pytest.raises(SerializationError):
            decode_many(raw[:-2])

    def test_encoded_size_matches_encode(self):
        for value in [None, True, 7, -1.5, "ünïcodé ♥", "ascii", b"xy",
                      (1, 2, 3), [1.0] * 10, {"a": (None, [2])}]:
            assert encoded_size(value) == len(encode(value))

    def test_encoded_size_rejects_unsupported(self):
        with pytest.raises(SerializationError):
            encoded_size(object())
        with pytest.raises(SerializationError):
            encoded_size(2**70)


class TestHomogeneousRuns:
    """The batched encoder path must stay byte-identical to item-wise."""

    @pytest.mark.parametrize(
        "value",
        [
            [1, 2, 3, 4, 5, 6, 7, 8],
            (10**12, -(10**12), 0, 5, 7),
            [1.5] * 100,
            [True, 1, 1.0, 2.0, 3.0, 4.0, 5.0, "end"],
            [1, 2, 3, 2.0, 3.0, 4.0, 5.0],            # adjacent runs
            [1, 2, 3],                                 # below run threshold
        ],
    )
    def test_run_encoding_matches_itemwise(self, value):
        # item-wise reference: container header + concatenated encodings
        reference = bytearray()
        reference.append(0x07 if isinstance(value, tuple) else 0x08)
        reference += len(value).to_bytes(4, "little")
        for item in value:
            reference += encode(item)
        assert encode(value) == bytes(reference)
        decoded, consumed = decode(encode(value))
        assert decoded == value
        assert consumed == len(encode(value))

    def test_run_with_out_of_range_int_raises(self):
        with pytest.raises(SerializationError):
            encode([1, 2, 3, 2**70, 5])


class TestFuzzCorruption:
    """Corrupt or truncated input must raise SerializationError, never
    escape with a low-level exception or hang."""

    @given(_values, st.data())
    @settings(max_examples=150)
    def test_truncation_never_escapes(self, value, data):
        raw = encode(value)
        if len(raw) < 2:
            return
        cut = data.draw(st.integers(min_value=1, max_value=len(raw) - 1))
        try:
            decoded, consumed = decode(raw[:cut])
            # A prefix can be a valid shorter encoding; it must still have
            # consumed only what it was given.
            assert consumed <= cut
        except SerializationError:
            pass

    @given(_values, st.data())
    @settings(max_examples=150)
    def test_byte_flips_never_escape(self, value, data):
        raw = bytearray(encode(value))
        pos = data.draw(st.integers(min_value=0, max_value=len(raw) - 1))
        raw[pos] ^= data.draw(st.integers(min_value=1, max_value=255))
        try:
            decode(bytes(raw))
        except SerializationError:
            pass


class TestGoldenEncodings:
    """The rewritten codec must produce byte-identical output to the
    pre-overhaul format (golden hex captured from the old encoder)."""

    @pytest.fixture(scope="class")
    def golden(self):
        import json, os
        path = os.path.join(os.path.dirname(__file__), "golden", "encodings.json")
        with open(path) as fh:
            return json.load(fh)

    def test_values_byte_identical(self, golden):
        for item in golden["values"]:
            value = eval(item["repr"])  # reprs of plain literals we wrote
            assert encode(value).hex() == item["hex"], item["repr"]

    def test_values_decode_back(self, golden):
        for item in golden["values"]:
            value = eval(item["repr"])
            decoded, consumed = decode(bytes.fromhex(item["hex"]))
            assert decoded == value
            assert consumed == len(item["hex"]) // 2

    def test_records_byte_identical(self, golden):
        for item in golden["records"]:
            key, value = eval(item["repr"])
            assert encode_record(key, value).hex() == item["hex"]
            got_key, got_value, _ = decode_record(bytes.fromhex(item["hex"]))
            assert (got_key, got_value) == (key, value)
