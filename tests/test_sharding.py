"""Tests for the sharded MRBG-Store: routers, parallel maintenance,
byte-level equivalence with the monolithic store, and end-to-end
engine equivalence on WordCount, PageRank and K-means workloads."""

from __future__ import annotations

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import StoreClosedError, StoreError
from repro.common.kvpair import Op, delete, insert
from repro.incremental.api import delta_to_dfs_records
from repro.incremental.engine import IncrMREngine
from repro.incremental.state import PreservedJobState
from repro.mapreduce.job import JobConf
from repro.mrbgraph.graph import DeltaEdge, Edge
from repro.mrbgraph.sharding import (
    HashShardRouter,
    RangeShardRouter,
    ShardedMRBGStore,
    router_from_spec,
)
from repro.mrbgraph.store import MRBGStore

from tests.conftest import fresh_cluster
from tests.test_incremental_onestep import TokenMapper


def build_chunks(n, edges_per_chunk=3):
    return [
        (k2, [Edge(mk, float(k2 * 10 + mk)) for mk in range(edges_per_chunk)])
        for k2 in range(n)
    ]


def make_sharded(tmp_path, num_shards=4, **kwargs) -> ShardedMRBGStore:
    return ShardedMRBGStore(
        str(tmp_path / "sharded"), num_shards=num_shards, **kwargs
    )


# ---------------------------------------------------------------------- #
# routers                                                                #
# ---------------------------------------------------------------------- #


class TestHashRouter:
    def test_deterministic_and_in_range(self):
        router = HashShardRouter(4)
        keys = [0, 1, "word", ("t", 3), b"raw", 2.5, None, True]
        for key in keys:
            shard = router.shard_for(key)
            assert 0 <= shard < 4
            assert shard == router.shard_for(key)
            assert shard == HashShardRouter(4).shard_for(key)

    def test_distributes_across_shards(self):
        router = HashShardRouter(4)
        hit = {router.shard_for(k) for k in range(1000)}
        assert hit == {0, 1, 2, 3}

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError):
            HashShardRouter(0)

    def test_spec_roundtrip(self):
        router = HashShardRouter(8)
        clone = router_from_spec(router.spec())
        assert isinstance(clone, HashShardRouter)
        assert all(clone.shard_for(k) == router.shard_for(k) for k in range(100))


class TestRangeRouter:
    def test_partitions_by_sort_order(self):
        router = RangeShardRouter([10, 20])
        assert router.num_shards == 3
        assert router.shard_for(5) == 0
        assert router.shard_for(10) == 0
        assert router.shard_for(11) == 1
        assert router.shard_for(20) == 1
        assert router.shard_for(99) == 2

    def test_unsorted_boundaries_raise(self):
        with pytest.raises(ValueError):
            RangeShardRouter([20, 10])

    def test_spec_roundtrip(self):
        router = RangeShardRouter([100, 200, 300])
        clone = router_from_spec(router.spec())
        assert isinstance(clone, RangeShardRouter)
        assert clone.boundaries == [100, 200, 300]

    def test_unknown_spec_raises(self):
        with pytest.raises(StoreError):
            router_from_spec({"kind": "nope"})

    def test_boundary_keys_route_to_the_shard_they_bound(self):
        """A key exactly equal to a boundary belongs to that boundary's
        shard (boundaries are inclusive upper bounds)."""
        router = RangeShardRouter([10, 20, 30])
        assert [router.shard_for(b) for b in (10, 20, 30)] == [0, 1, 2]
        # and the first key past each boundary spills to the next shard.
        assert [router.shard_for(b + 1) for b in (10, 20, 30)] == [1, 2, 3]

    def test_keys_outside_all_boundaries(self):
        router = RangeShardRouter([10, 20])
        # far below every boundary -> the first shard.
        assert router.shard_for(-(10 ** 9)) == 0
        # far above every boundary -> the last (open-ended) shard.
        assert router.shard_for(10 ** 9) == 2
        # num_shards is always boundaries + 1, even for one boundary.
        assert RangeShardRouter([0]).num_shards == 2

    def test_spec_roundtrip_with_non_integer_boundaries(self):
        """String / float / tuple boundaries survive the spec roundtrip
        and keep routing identically (sort_key gives the total order)."""
        for boundaries, probes in [
            (["g", "n", "t"], ["", "a", "g", "h", "n", "o", "t", "z", "zz"]),
            ([0.5, 1.25], [-1.0, 0.5, 0.75, 1.25, 9.9]),
            ([("a", 1), ("b", 2)], [("a", 0), ("a", 1), ("a", 2), ("b", 2), ("c", 0)]),
        ]:
            router = RangeShardRouter(boundaries)
            clone = router_from_spec(router.spec())
            assert clone.boundaries == boundaries
            for probe in probes:
                shard = router.shard_for(probe)
                assert 0 <= shard < router.num_shards
                assert clone.shard_for(probe) == shard
        # mixed-but-sorted string boundaries reject unsorted input too.
        with pytest.raises(ValueError):
            RangeShardRouter(["t", "g"])


class TestRouterStability:
    """Routing is a pure function of the key: inserting or deleting
    other keys can never move a key between shards."""

    @given(
        keys=st.lists(
            st.one_of(st.integers(-1000, 1000), st.text(max_size=8)),
            min_size=1,
            max_size=30,
            unique=True,
        ),
        mutations=st.lists(
            st.one_of(st.integers(-1000, 1000), st.text(max_size=8)),
            max_size=20,
        ),
        num_shards=st.integers(1, 6),
    )
    @settings(max_examples=40, deadline=None)
    def test_assignment_survives_key_space_mutation(
        self, keys, mutations, num_shards
    ):
        router = HashShardRouter(num_shards)
        before = {key: router.shard_for(key) for key in keys}
        # Mutate the key space: route (and "insert"/"delete") other keys.
        for key in mutations:
            router.shard_for(key)
        assert {key: router.shard_for(key) for key in keys} == before

    @given(
        batches=st.lists(
            st.lists(
                st.tuples(
                    st.integers(0, 19),  # k2
                    st.integers(0, 3),   # mk
                    st.booleans(),       # delete?
                ),
                min_size=1,
                max_size=12,
            ),
            min_size=1,
            max_size=3,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_chunks_stay_in_their_shard(self, tmp_path_factory, batches):
        tmp = tmp_path_factory.mktemp("router-stability")
        store = ShardedMRBGStore(str(tmp / "s"), num_shards=3)
        router = store.router
        store.build([(k, [Edge(0, 0)]) for k in range(0, 20, 2)])
        for batch in batches:
            grouped = {}
            for k2, mk, is_delete in batch:
                grouped.setdefault(k2, []).append(
                    DeltaEdge(mk, None if is_delete else 1.0,
                              Op.DELETE if is_delete else Op.INSERT)
                )
            list(store.merge_delta(sorted(grouped.items())))
        for sid, shard in enumerate(store.shards):
            for key in shard._index:
                assert router.shard_for(key) == sid
        store.close()


# ---------------------------------------------------------------------- #
# the sharded store                                                      #
# ---------------------------------------------------------------------- #


class TestShardedStoreBasics:
    def test_build_then_get(self, tmp_path):
        store = make_sharded(tmp_path)
        store.build(build_chunks(40))
        assert len(store) == 40
        assert store.get_chunk(7) == [Edge(0, 70.0), Edge(1, 71.0), Edge(2, 72.0)]
        assert store.get_chunk(99) is None
        assert 7 in store and 99 not in store
        store.close()

    def test_keys_merged_sorted(self, tmp_path):
        store = make_sharded(tmp_path)
        store.build([(k, [Edge(0, k)]) for k in [9, 5, 1, 3, 7]])
        assert store.keys() == [1, 3, 5, 7, 9]
        store.close()

    def test_merge_delta_preserves_input_order(self, tmp_path):
        store = make_sharded(tmp_path)
        store.build(build_chunks(30))
        delta = sorted(
            (k, [DeltaEdge(0, -1.0, Op.INSERT)]) for k in range(0, 30, 2)
        )
        merged = list(store.merge_delta(delta))
        assert [k for k, _ in merged] == [k for k, _ in delta]
        assert all(entries[0].value == -1.0 for _, entries in merged)
        store.close()

    def test_merge_matches_single_store(self, tmp_path):
        sharded = make_sharded(tmp_path, num_shards=3)
        single = MRBGStore(str(tmp_path / "single"))
        chunks = build_chunks(25)
        sharded.build(iter(chunks))
        single.build(iter(chunks))
        delta = [
            (1, [DeltaEdge(0, 999.0, Op.INSERT)]),
            (2, [DeltaEdge(mk, None, Op.DELETE) for mk in range(3)]),
            (77, [DeltaEdge(5, "new", Op.INSERT)]),
        ]
        assert list(sharded.merge_delta(delta)) == list(single.merge_delta(delta))
        for k in list(range(25)) + [77]:
            assert sharded.get_chunk(k) == single.get_chunk(k)
        sharded.close()
        single.close()

    def test_session_api_routes_chunks(self, tmp_path):
        store = make_sharded(tmp_path)
        store.begin_merge([])
        store.put_chunk(3, [Edge(0, 1.0)])
        store.put_chunk(4, [Edge(0, 2.0)])
        store.end_merge()
        assert store.get_chunk(3) == [Edge(0, 1.0)]
        store.begin_merge([3])
        store.delete_chunk(3)
        store.end_merge()
        assert store.get_chunk(3) is None
        store.close()

    def test_session_errors(self, tmp_path):
        store = make_sharded(tmp_path)
        with pytest.raises(StoreError):
            store.put_chunk(1, [])
        with pytest.raises(StoreError):
            store.end_merge()
        store.begin_merge([])
        with pytest.raises(StoreError):
            store.begin_merge([])
        with pytest.raises(StoreError):
            store.compact()
        store.end_merge()
        store.close()

    def test_closed_raises(self, tmp_path):
        store = make_sharded(tmp_path)
        store.build(build_chunks(4))
        store.close()
        store.close()  # idempotent
        with pytest.raises(StoreClosedError):
            store.get_chunk(1)
        with pytest.raises(StoreClosedError):
            store.save_index()

    def test_num_shards_router_mismatch(self, tmp_path):
        with pytest.raises(StoreError):
            ShardedMRBGStore(
                str(tmp_path / "bad"), num_shards=4, router=HashShardRouter(2)
            )


class TestEmptyShards:
    def test_sparse_keys_leave_shards_empty(self, tmp_path):
        store = make_sharded(tmp_path, num_shards=8)
        store.build([(k, [Edge(0, float(k))]) for k in range(3)])
        occupied = sum(1 for shard in store.shards if len(shard))
        assert occupied <= 3 < store.num_shards
        # Maintenance over empty shards is harmless.
        schedule = store.compact()
        assert len(schedule.assignment) == 8
        assert store.save_index() > 0
        assert len(store) == 3
        assert store.get_chunk(1) == [Edge(0, 1.0)]
        store.close()

    def test_fully_empty_store(self, tmp_path):
        store = make_sharded(tmp_path, num_shards=4)
        store.build([])
        assert len(store) == 0
        assert store.file_size == 0
        assert store.num_batches == 0
        store.compact()
        store.close()


class TestSingleShardDegenerate:
    def test_byte_identical_to_plain_store(self, tmp_path):
        sharded = ShardedMRBGStore(str(tmp_path / "one"), num_shards=1)
        plain = MRBGStore(str(tmp_path / "plain"))
        chunks = build_chunks(30)
        sharded.build(iter(chunks))
        plain.build(iter(chunks))
        for generation in range(3):
            delta = sorted(
                (k, [DeltaEdge(0, float(generation), Op.INSERT)])
                for k in range(0, 30, 3)
            )
            list(sharded.merge_delta(delta))
            list(plain.merge_delta(delta))
        sharded.save_index()
        plain.save_index()

        shard_dir = sharded.shards[0].directory
        for name in ("mrbg.dat", "mrbg.idx"):
            with open(os.path.join(shard_dir, name), "rb") as fh:
                shard_bytes = fh.read()
            with open(os.path.join(plain.directory, name), "rb") as fh:
                plain_bytes = fh.read()
            assert shard_bytes == plain_bytes, name

        # Compaction keeps the equivalence.
        sharded.compact()
        plain.compact()
        with open(os.path.join(shard_dir, "mrbg.dat"), "rb") as fh:
            shard_dat = fh.read()
        with open(os.path.join(plain.directory, "mrbg.dat"), "rb") as fh:
            plain_dat = fh.read()
        assert shard_dat == plain_dat
        assert sharded.file_size == plain.file_size
        assert sharded.live_bytes() == plain.live_bytes()
        sharded.close()
        plain.close()


class TestPersistence:
    def test_save_and_reopen(self, tmp_path):
        store = make_sharded(tmp_path, num_shards=3)
        store.build(build_chunks(20))
        list(store.merge_delta([(3, [DeltaEdge(0, "updated", Op.INSERT)])]))
        store.save_index()
        store.close()
        reopened = ShardedMRBGStore.open(str(tmp_path / "sharded"))
        assert reopened.num_shards == 3
        assert len(reopened) == 20
        assert reopened.get_chunk(3)[0].value == "updated"
        reopened.close()

    def test_manifest_preserves_range_router(self, tmp_path):
        store = ShardedMRBGStore(
            str(tmp_path / "ranged"), router=RangeShardRouter([10])
        )
        store.build([(k, [Edge(0, k)]) for k in [5, 15]])
        store.save_index()
        store.close()
        reopened = ShardedMRBGStore.open(str(tmp_path / "ranged"))
        assert isinstance(reopened.router, RangeShardRouter)
        assert reopened.get_chunk(5) == [Edge(0, 5)]
        assert reopened.get_chunk(15) == [Edge(0, 15)]
        reopened.close()

    def test_open_without_manifest_raises(self, tmp_path):
        with pytest.raises(StoreError):
            ShardedMRBGStore.open(str(tmp_path / "missing"))


class TestShardedMetrics:
    def test_metrics_merge_across_shards(self, tmp_path):
        store = make_sharded(tmp_path)
        store.build(build_chunks(40))
        list(store.merge_delta(
            sorted((k, [DeltaEdge(0, -1.0, Op.INSERT)]) for k in range(0, 40, 2))
        ))
        per_shard = store.shard_metrics()
        merged = store.metrics
        assert merged.bytes_written == sum(m.bytes_written for m in per_shard)
        assert merged.io_writes == sum(m.io_writes for m in per_shard)
        assert merged.bytes_written > 0
        snap = merged.snapshot()
        assert store.metrics.since(snap).bytes_written == 0
        store.reset_metrics()
        assert store.metrics.bytes_written == 0
        store.close()

    def test_save_index_charges_each_shard(self, tmp_path):
        store = make_sharded(tmp_path, num_shards=4)
        store.build(build_chunks(16))
        writes_before = store.metrics.io_writes
        nbytes = store.save_index()
        assert nbytes > 0
        assert store.metrics.io_writes == writes_before + 4
        store.close()

    def test_compact_schedule_is_locality_aware(self, tmp_path):
        store = make_sharded(tmp_path, num_shards=4, num_workers=4)
        store.build(build_chunks(40))
        schedule = store.compact()
        assert store.last_schedule is schedule
        assert schedule.locality_hits == 4
        assert schedule.locality_misses == 0
        # Each shard task ran on its owning worker.
        for sid in range(4):
            assert schedule.assignment[f"compact-{sid:04d}"] == sid
        store.close()

    def test_compact_preserves_content(self, tmp_path):
        store = make_sharded(tmp_path, num_shards=3)
        store.build(build_chunks(30))
        for generation in range(3):
            list(store.merge_delta(
                sorted((k, [DeltaEdge(0, float(generation), Op.INSERT)])
                       for k in range(0, 30, 2))
            ))
        before = {k: store.get_chunk(k) for k in store.keys()}
        old_size = store.file_size
        store.compact()
        assert store.file_size < old_size
        assert store.file_size == store.live_bytes()
        assert store.num_batches == 1
        assert {k: store.get_chunk(k) for k in store.keys()} == before
        # The compacted shards accept further merges.
        list(store.merge_delta([(1, [DeltaEdge(9, 99.0, Op.INSERT)])]))
        assert Edge(9, 99.0) in store.get_chunk(1)
        store.close()


class TestBackendIdentity:
    """The same operation sequence leaves identical shard files and
    merged results whichever backend ran the fan-out."""

    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_results_and_bytes_identical(self, tmp_path, executor):
        reference = self._drive(tmp_path / "ref", "serial")
        candidate = self._drive(tmp_path / executor, executor)
        assert candidate == reference

    @staticmethod
    def _drive(base, executor):
        store = ShardedMRBGStore(str(base), num_shards=4, executor=executor)
        store.build(build_chunks(50))
        merged = list(store.merge_delta(
            sorted((k, [DeltaEdge(1, "x", Op.INSERT)]) for k in range(0, 50, 3))
        ))
        store.compact()
        index_bytes = store.save_index()
        metrics = store.metrics
        files = {}
        for shard in store.shards:
            for name in ("mrbg.dat", "mrbg.idx"):
                with open(os.path.join(shard.directory, name), "rb") as fh:
                    files[(os.path.basename(shard.directory), name)] = fh.read()
        store.close()
        return merged, index_bytes, metrics, files


# ---------------------------------------------------------------------- #
# engine equivalence                                                     #
# ---------------------------------------------------------------------- #


def _wordcount_outputs(num_shards):
    from repro.incremental.api import SumReducer

    cluster, dfs = fresh_cluster()
    docs = {i: f"w{i % 7} w{i % 3} common" for i in range(30)}
    dfs.write("/docs", sorted(docs.items()))
    engine = IncrMREngine(cluster, dfs)
    conf = JobConf(name="wc", mapper=TokenMapper, reducer=SumReducer,
                   inputs=["/docs"], output="/counts", num_reducers=3)
    _, state = engine.run_initial(conf, num_shards=num_shards)
    delta = [
        insert(30, "w1 w2 fresh"),
        delete(3, docs[3]),
        insert(31, "common common"),
    ]
    dfs.write("/delta", delta_to_dfs_records(delta))
    engine.run_incremental(conf, "/delta", state)
    out = list(dfs.read_all("/counts"))
    if num_shards is not None and num_shards > 1:
        assert any(
            isinstance(s, ShardedMRBGStore) for s in state.stores.values()
        )
    state.cleanup()
    return out


def _pagerank_state(num_shards, executor="serial"):
    from repro.algorithms.pagerank import PageRank
    from repro.datasets.graphs import mutate_web_graph, powerlaw_web_graph
    from repro.inciter.engine import I2MREngine, I2MROptions
    from repro.iterative.api import IterativeJob

    cluster, dfs = fresh_cluster()
    graph = powerlaw_web_graph(200, 6.0, seed=3)
    job = IterativeJob(PageRank(), graph, num_partitions=3,
                       max_iterations=12, epsilon=1e-6)
    engine = I2MREngine(cluster, dfs, num_shards=num_shards, executor=executor)
    _, prev = engine.run_initial(job)
    delta = mutate_web_graph(graph, 0.05, seed=9)
    result = engine.run_incremental(
        job, delta.records, prev,
        I2MROptions(filter_threshold=1e-4, max_iterations=10, epsilon=1e-6),
    )
    state = dict(prev.state)
    prev.cleanup()
    engine.close()
    return state, result.iterations


def _kmeans_state(num_shards):
    from repro.algorithms.kmeans import Kmeans
    from repro.datasets.points import gaussian_points, mutate_points
    from repro.inciter.engine import I2MREngine, I2MROptions
    from repro.iterative.api import IterativeJob

    cluster, dfs = fresh_cluster(seed=8)
    points = gaussian_points(120, dim=3, k=3, seed=8)
    job = IterativeJob(Kmeans(k=3, dim=3), points, num_partitions=3,
                       max_iterations=10, epsilon=1e-5)
    engine = I2MREngine(cluster, dfs, num_shards=num_shards)
    _, prev = engine.run_initial(job)
    delta = mutate_points(points, 0.05, seed=9)
    # Keep MRBGraph maintenance on (K-means normally trips the P∆
    # auto-off) so the incremental path exercises the stores.
    result = engine.run_incremental(
        job, delta.records, prev,
        I2MROptions(max_iterations=10, epsilon=1e-5, pdelta_threshold=1.1),
    )
    state = dict(prev.state)
    prev.cleanup()
    engine.close()
    return state, result.iterations


class TestEngineEquivalence:
    """A sharded run's merged outputs are byte-identical to the
    single-store run on every workload class."""

    def test_wordcount_finegrain(self):
        single = _wordcount_outputs(1)
        assert _wordcount_outputs(3) == single
        assert _wordcount_outputs(5) == single

    def test_pagerank_incremental(self):
        single, iters_single = _pagerank_state(None)
        sharded, iters_sharded = _pagerank_state(4)
        assert iters_sharded == iters_single
        assert sharded == single

    def test_pagerank_sharded_backends_agree(self):
        thread, _ = _pagerank_state(4, executor="thread")
        process, _ = _pagerank_state(4, executor="process")
        assert thread == process

    def test_kmeans_incremental(self):
        single, iters_single = _kmeans_state(None)
        sharded, iters_sharded = _kmeans_state(4)
        assert iters_sharded == iters_single
        assert sharded == single


class TestStreamingWithShards:
    """Micro-batched pipelines over a sharded store: identical final
    state, with per-batch shard routing surfaced in the metrics."""

    @staticmethod
    def _stream_pagerank(num_shards):
        from repro.algorithms.pagerank import PageRank
        from repro.datasets.graphs import mutate_web_graph, powerlaw_web_graph
        from repro.inciter.engine import I2MROptions
        from repro.iterative.api import IterativeJob
        from repro.streaming.batching import CountBatcher
        from repro.streaming.consumers import IterativeStreamConsumer
        from repro.streaming.pipeline import ContinuousPipeline
        from repro.streaming.sources import ReplaySource

        cluster, dfs = fresh_cluster()
        graph = powerlaw_web_graph(120, 5.0, seed=4)
        job = IterativeJob(PageRank(), graph, num_partitions=3,
                           max_iterations=40, epsilon=1e-6)
        consumer = IterativeStreamConsumer.from_initial(
            cluster, dfs, job,
            I2MROptions(filter_threshold=1e-3, max_iterations=20),
            num_shards=num_shards,
        )
        records = mutate_web_graph(graph, 0.08, seed=11).records
        with ContinuousPipeline(
            ReplaySource(records, rate=4.0), CountBatcher(7), consumer
        ) as pipe:
            result = pipe.run()
            state = dict(consumer.state())
        return state, result

    def test_sharded_pipeline_state_identical(self):
        single_state, single_result = self._stream_pagerank(None)
        sharded_state, sharded_result = self._stream_pagerank(3)
        assert sharded_state == single_state
        assert sharded_result.num_batches == single_result.num_batches
        # Unsharded stores report no shard routing...
        assert all(b.shards_touched == 0 for b in single_result.batches)
        # ...while sharded batches record the shards their delta reached.
        assert any(b.shards_touched > 0 for b in sharded_result.batches)
        assert sharded_result.mean_shards_touched > 0


class TestPreservedStateSharding:
    def test_store_for_returns_sharded(self, tmp_path):
        state = PreservedJobState(
            num_reducers=2, root_dir=str(tmp_path), num_shards=4
        )
        store = state.store_for(0)
        assert isinstance(store, ShardedMRBGStore)
        assert store.num_shards == 4
        state.cleanup()

    def test_default_is_monolithic(self, tmp_path):
        state = PreservedJobState(num_reducers=2, root_dir=str(tmp_path))
        assert isinstance(state.store_for(0), MRBGStore)
        state.cleanup()

    def test_invalid_shards(self):
        with pytest.raises(ValueError):
            PreservedJobState(num_reducers=1, num_shards=0)

    def test_zero_shards_raises_on_store_too(self, tmp_path):
        """Explicit 0 must not be coerced to the default shard count."""
        with pytest.raises(ValueError):
            ShardedMRBGStore(str(tmp_path / "zero"), num_shards=0)

    def test_close_then_store_for_reopens(self, tmp_path):
        """close() keeps files; store_for must reload them, not recreate."""
        for label, shards in (("mono", 1), ("sharded", 3)):
            state = PreservedJobState(
                num_reducers=1, root_dir=str(tmp_path / label), num_shards=shards
            )
            store = state.store_for(0)
            store.build(build_chunks(20))
            state.close()

            reopened = PreservedJobState(
                num_reducers=1, root_dir=str(tmp_path / label), num_shards=shards
            ).store_for(0)
            assert len(reopened) == 20, label
            assert reopened.get_chunk(7) == [
                Edge(mk, float(7 * 10 + mk)) for mk in range(3)
            ], label
            reopened.close()

    def test_placement_spans_engine_cluster(self, tmp_path):
        """Shard placement must use the engine's cluster size, not the
        DEFAULT_NUM_WORKERS constant."""
        from repro.incremental.api import SumReducer

        cluster, dfs = fresh_cluster(num_workers=3)
        dfs.write("/docs", [(i, f"w{i % 5} common") for i in range(20)])
        engine = IncrMREngine(cluster, dfs)
        conf = JobConf(
            name="wc", mapper=TokenMapper, reducer=SumReducer,
            inputs=["/docs"], output="/counts", num_reducers=1,
        )
        _, state = engine.run_initial(conf, num_shards=4)
        store = state.store_for(0)
        assert store.placement.num_workers == 3
        state.cleanup()
        engine.close()

    def test_env_default(self, tmp_path, monkeypatch):
        import importlib

        from repro.common import config
        monkeypatch.setenv("REPRO_SHARDS", "3")
        importlib.reload(config)
        try:
            assert config.DEFAULT_NUM_SHARDS == 3
        finally:
            monkeypatch.delenv("REPRO_SHARDS")
            importlib.reload(config)
