"""Tests for change propagation control (§5.3)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.inciter.cpc import ChangePropagationControl


class TestDisabled:
    def test_none_threshold_propagates_any_change(self):
        cpc = ChangePropagationControl(None)
        assert not cpc.enabled
        assert cpc.offer("k", 1e-12)
        assert not cpc.offer("k", 0.0)


class TestFiltering:
    def test_below_threshold_filtered(self):
        cpc = ChangePropagationControl(1.0)
        assert not cpc.offer("k", 0.4)

    def test_at_threshold_propagates(self):
        cpc = ChangePropagationControl(1.0)
        assert cpc.offer("k", 1.0)

    def test_accumulation_across_offers(self):
        # "It is possible a filtered kv-pair may later be emitted if its
        # accumulated change is big enough."
        cpc = ChangePropagationControl(1.0)
        assert not cpc.offer("k", 0.4)
        assert not cpc.offer("k", 0.4)
        assert cpc.offer("k", 0.4)  # accumulated 1.2 >= 1.0

    def test_accumulator_resets_on_emission(self):
        cpc = ChangePropagationControl(1.0)
        cpc.offer("k", 0.6)
        assert cpc.offer("k", 0.6)
        assert cpc.pending("k") == 0.0
        assert not cpc.offer("k", 0.6)

    def test_keys_independent(self):
        cpc = ChangePropagationControl(1.0)
        cpc.offer("a", 0.9)
        assert not cpc.offer("b", 0.9)
        assert cpc.offer("a", 0.2)

    def test_zero_threshold_filters_only_unchanged(self):
        # The paper's SSSP setting: FT=0 keeps results precise.
        cpc = ChangePropagationControl(0.0)
        assert cpc.offer("k", 1e-15)
        assert not cpc.offer("k", 0.0)

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            ChangePropagationControl(-0.1)


class TestBookkeeping:
    def test_pending_tracks_accumulation(self):
        cpc = ChangePropagationControl(10.0)
        cpc.offer("k", 3.0)
        cpc.offer("k", 4.0)
        assert cpc.pending("k") == pytest.approx(7.0)
        assert cpc.num_pending() == 1

    def test_clear(self):
        cpc = ChangePropagationControl(10.0)
        cpc.offer("k", 3.0)
        cpc.clear()
        assert cpc.num_pending() == 0
        assert cpc.pending("k") == 0.0


class TestProperties:
    @given(
        st.floats(min_value=0.01, max_value=10.0),
        st.lists(st.floats(min_value=0.0, max_value=5.0), min_size=1, max_size=40),
    )
    @settings(max_examples=100)
    def test_total_emitted_bounded_by_total_change(self, threshold, diffs):
        """Between emissions the accumulated-but-unemitted change never
        reaches the threshold, and emission only happens when the running
        total did."""
        cpc = ChangePropagationControl(threshold)
        running = 0.0
        for diff in diffs:
            running += diff
            if cpc.offer("k", diff):
                assert running >= threshold
                running = 0.0
            else:
                assert running < threshold or running == 0.0

    @given(st.lists(st.floats(min_value=0.0, max_value=1.0), max_size=30))
    @settings(max_examples=50)
    def test_disabled_cpc_is_memoryless(self, diffs):
        cpc = ChangePropagationControl(None)
        for diff in diffs:
            assert cpc.offer("k", diff) == (diff > 0.0)
        assert cpc.num_pending() == 0
