"""Tests for the connected-components GIM-V instantiation (HCC)."""

from __future__ import annotations

import pytest

from repro.algorithms.gimv_cc import GIMVConnectedComponents
from repro.datasets.matrices import BlockMatrixDataset, block_matrix, mutate_matrix
from repro.inciter.engine import I2MREngine, I2MROptions
from repro.iterative.api import Dependency, IterativeJob
from repro.iterative.engine import IterMREngine

from tests.conftest import fresh_cluster


def tiny_matrix():
    """Two 2x2 blocks: vertices {0,1,2,3}; edges 0-1 and 2-3."""
    blocks = {
        (0, 0): ((0, 1, 1.0),),   # edge 0-1
        (1, 1): ((0, 1, 1.0),),   # edge 2-3
    }
    vector = {0: (1.0, 1.0), 1: (1.0, 1.0)}
    return BlockMatrixDataset(blocks=blocks, initial_vector=vector,
                              num_blocks=2, block_size=2)


class TestUnits:
    def test_combine2_takes_min_reachable(self):
        cc = GIMVConnectedComponents(block_size=2)
        block = ((0, 1, 1.0),)
        assert cc.combine2(block, (5.0, 3.0)) == (3.0, float("inf"))

    def test_reduce_includes_self_id(self):
        cc = GIMVConnectedComponents(block_size=2)
        # Block row 1 covers vertices 2 and 3.
        assert cc.reduce_instance(1, [(9.0, 1.0)]) == (2.0, 1.0)

    def test_dependency_type(self):
        assert GIMVConnectedComponents().dependency is Dependency.MANY_TO_ONE

    def test_difference_counts_changed_labels(self):
        cc = GIMVConnectedComponents(block_size=3)
        assert cc.difference((1.0, 2.0, 3.0), (1.0, 9.0, 9.0)) == 2.0

    def test_structure_symmetrized_with_diagonals(self):
        ds = tiny_matrix()
        cc = GIMVConnectedComponents(block_size=2)
        keys = [sk for sk, _ in cc.structure_records(ds)]
        assert (0, 0) in keys and (1, 1) in keys


class TestEndToEnd:
    def test_two_components(self):
        ds = tiny_matrix()
        cc = GIMVConnectedComponents(block_size=2)
        cluster, dfs = fresh_cluster()
        result = IterMREngine(cluster, dfs).run(
            IterativeJob(cc, ds, num_partitions=2, max_iterations=10,
                         epsilon=0.0)
        )
        assert result.state[0] == (0.0, 0.0)   # component {0, 1}
        assert result.state[1] == (2.0, 2.0)   # component {2, 3}

    def test_matches_union_find_reference(self):
        matrix = block_matrix(num_blocks=4, block_size=10, density=0.03, seed=12)
        cc = GIMVConnectedComponents(block_size=10)
        cluster, dfs = fresh_cluster()
        result = IterMREngine(cluster, dfs).run(
            IterativeJob(cc, matrix, num_partitions=4, max_iterations=60,
                         epsilon=0.0)
        )
        assert result.converged
        assert result.state == cc.reference(matrix, 0)

    def test_incremental_edge_insertion_merges_components(self):
        matrix = block_matrix(num_blocks=4, block_size=8, density=0.03, seed=3)
        cc = GIMVConnectedComponents(block_size=8)
        cluster, dfs = fresh_cluster()
        engine = I2MREngine(cluster, dfs)
        job = IterativeJob(cc, matrix, num_partitions=4, max_iterations=60,
                           epsilon=0.0)
        _, preserved = engine.run_initial(job)

        delta = mutate_matrix(matrix, 0.2, seed=4)
        result = engine.run_incremental(
            job, _cc_delta(cc, matrix, delta.new_dataset), preserved,
            I2MROptions(filter_threshold=0.0, max_iterations=80),
        )
        assert result.state == cc.reference(delta.new_dataset, 0)
        preserved.cleanup()


def _cc_delta(cc, old_dataset, new_dataset):
    """Delta of the *symmetrized* structure records between two matrices."""
    from repro.common.kvpair import delete, insert

    old = dict(cc.structure_records(old_dataset))
    new = dict(cc.structure_records(new_dataset))
    records = []
    for key in sorted(set(old) | set(new)):
        if key in old and key not in new:
            records.append(delete(key, old[key]))
        elif key in new and key not in old:
            records.append(insert(key, new[key]))
        elif old[key] != new[key]:
            records.append(delete(key, old[key]))
            records.append(insert(key, new[key]))
    return records
