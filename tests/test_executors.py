"""Executor backends: parallel execution must be invisible in results.

The contract of :mod:`repro.execution` is that the backend choice only
changes host wall-clock: outputs, counters and simulated times must be
byte-identical under the serial, thread and process backends, across
every engine.  These tests run the same workloads under all three and
compare exact (not approximate) equality.
"""

from __future__ import annotations

import pickle

import pytest

from repro.algorithms.kmeans import Kmeans
from repro.algorithms.pagerank import PageRank
from repro.baselines.haloop import HaLoopDriver
from repro.baselines.plainmr import PlainMRDriver
from repro.baselines.spark import SparkLikeDriver
from repro.cluster.cluster import Cluster
from repro.common import config
from repro.common.errors import InvalidJobConf
from repro.common.kvpair import insert, update
from repro.datasets.graphs import mutate_web_graph, powerlaw_web_graph
from repro.datasets.points import gaussian_points
from repro.dfs.filesystem import DistributedFS
from repro.execution import (
    EXECUTOR_NAMES,
    ExecutorSelector,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    resolve_executor,
)
from repro.experiments.fig8_overall import run_workload
from repro.inciter.engine import I2MREngine, I2MROptions
from repro.incremental.api import SumReducer, delta_to_dfs_records
from repro.incremental.engine import IncrMREngine
from repro.iterative.api import IterativeJob
from repro.iterative.engine import IterMREngine
from repro.mapreduce.api import Mapper
from repro.mapreduce.engine import MapReduceEngine
from repro.mapreduce.job import JobConf

BACKEND_NAMES = list(EXECUTOR_NAMES)


def _square(x: int) -> int:
    return x * x


class TokenMapper(Mapper):
    """Emit ``(word, 1)`` per whitespace token."""

    def map(self, key, text, ctx):
        for word in text.split():
            ctx.emit(word, 1)


# ---------------------------------------------------------------------- #
# backend unit behaviour                                                 #
# ---------------------------------------------------------------------- #


@pytest.mark.parametrize("name", BACKEND_NAMES)
def test_run_tasks_preserves_order(name):
    backend = resolve_executor(name, max_workers=2)
    try:
        assert backend.run_tasks(_square, range(20)) == [x * x for x in range(20)]
        assert backend.run_tasks(_square, []) == []
    finally:
        backend.close()


def test_resolve_executor_accepts_aliases_and_instances():
    assert isinstance(resolve_executor("threads"), ThreadBackend)
    assert isinstance(resolve_executor("processes"), ProcessBackend)
    backend = SerialBackend()
    assert resolve_executor(backend) is backend
    assert isinstance(resolve_executor(None), SerialBackend)  # library default


def test_resolve_executor_rejects_unknown_names():
    with pytest.raises(ValueError, match="unknown executor"):
        resolve_executor("gpu")


def test_default_executor_comes_from_config():
    assert config.DEFAULT_EXECUTOR in ("serial", "thread", "process")
    assert resolve_executor(None).name == config.DEFAULT_EXECUTOR


def test_process_backend_falls_back_on_unpicklable_tasks():
    backend = ProcessBackend(max_workers=2)
    try:
        unpicklable = lambda x: x + 1  # noqa: E731 - the point of the test
        assert backend.run_tasks(unpicklable, [1, 2, 3]) == [2, 3, 4]
        assert backend.stats.inproc_fallbacks >= 1
    finally:
        backend.close()


def test_process_backend_honours_picklable_flag():
    backend = ProcessBackend(max_workers=2)
    try:
        assert backend.run_tasks(_square, [1, 2, 3], picklable=False) == [1, 4, 9]
        assert backend.stats.inproc_fallbacks == 1
    finally:
        backend.close()


def test_executor_selector_caches_and_closes():
    selector = ExecutorSelector("serial")
    a = selector.get("thread", 2)
    b = selector.get("thread", 2)
    assert a is b
    assert selector.get().name == "serial"
    provided = ThreadBackend(max_workers=1)
    assert selector.get(provided) is provided
    selector.close()


def test_jobconf_validates_executor():
    conf = JobConf("j", TokenMapper, SumReducer, inputs=["/x"], output="/y",
                   executor="gpu")
    with pytest.raises(InvalidJobConf):
        conf.validate()
    conf = JobConf("j", TokenMapper, SumReducer, inputs=["/x"], output="/y",
                   max_workers=0)
    with pytest.raises(InvalidJobConf):
        conf.validate()


def test_iterative_job_validates_executor():
    job = IterativeJob(PageRank(), None, executor="gpu")
    with pytest.raises(InvalidJobConf):
        job.validate()


def test_payloads_are_picklable():
    """The engine task functions and payload types must cross processes."""
    from repro.iterative.engine import (
        IterMapPayload,
        execute_iter_map_task,
        execute_iter_reduce_task,
    )
    from repro.mapreduce.engine import (
        MapTaskPayload,
        execute_map_task,
        execute_reduce_task,
    )

    for fn in (execute_map_task, execute_reduce_task,
               execute_iter_map_task, execute_iter_reduce_task):
        assert pickle.loads(pickle.dumps(fn)) is fn
    payload = MapTaskPayload(
        task_index=0, mapper_factory=TokenMapper, records=[(0, "a b")],
        size_bytes=3, num_reducers=2,
        partitioner=JobConf.__dataclass_fields__["partitioner"].default,
    )
    run = execute_map_task(pickle.loads(pickle.dumps(payload)))
    assert run.emitted_records == 2
    iter_payload = IterMapPayload(
        partition=0, groups=[], state_slice={}, algorithm=PageRank(),
        num_partitions=2, capture_chunks=False,
    )
    assert pickle.loads(pickle.dumps(iter_payload)).num_partitions == 2


# ---------------------------------------------------------------------- #
# engine determinism across backends                                     #
# ---------------------------------------------------------------------- #


def _wordcount_run(executor):
    cluster = Cluster(num_workers=4, seed=7)
    dfs = DistributedFS(cluster, block_size=2048)
    docs = [(i, f"w{i % 17} w{(i * 3) % 11} common words") for i in range(400)]
    dfs.write("/docs", docs)
    engine = MapReduceEngine(cluster, dfs, executor=executor)
    conf = JobConf("wc", TokenMapper, SumReducer, inputs=["/docs"],
                   output="/counts", num_reducers=4)
    result = engine.run(conf)
    output = list(dfs.read("/counts"))
    engine.close()
    return {
        "output": output,
        "times": result.metrics.times.as_dict(),
        "counters": result.metrics.counters.as_dict(),
    }


def test_mapreduce_engine_identical_across_backends():
    reference = _wordcount_run("serial")
    for name in ("thread", "process"):
        assert _wordcount_run(name) == reference, name


def _itermr_run(executor):
    cluster = Cluster(num_workers=4, seed=7)
    dfs = DistributedFS(cluster, block_size=2048)
    graph = powerlaw_web_graph(300, 8.0, seed=3)
    engine = IterMREngine(cluster, dfs, executor=executor)
    result = engine.run(
        IterativeJob(PageRank(), graph, num_partitions=4, max_iterations=4)
    )
    engine.close()
    return {
        "state": result.state,
        "times": result.metrics.times.as_dict(),
        "counters": result.metrics.counters.as_dict(),
    }


def test_itermr_engine_identical_across_backends():
    reference = _itermr_run("serial")
    for name in ("thread", "process"):
        assert _itermr_run(name) == reference, name


def _itermr_replicated_run(executor):
    """Kmeans exercises the replicated-state (all-to-one) code path."""
    cluster = Cluster(num_workers=4, seed=7)
    dfs = DistributedFS(cluster, block_size=2048)
    points = gaussian_points(200, dim=3, k=3, seed=5)
    engine = IterMREngine(cluster, dfs, executor=executor)
    result = engine.run(
        IterativeJob(Kmeans(k=3, dim=3), points, num_partitions=4, max_iterations=3)
    )
    engine.close()
    return {"state": result.state, "times": result.metrics.times.as_dict()}


def test_itermr_replicated_state_identical_across_backends():
    reference = _itermr_replicated_run("serial")
    for name in ("thread", "process"):
        assert _itermr_replicated_run(name) == reference, name


def _incremental_run(executor):
    cluster = Cluster(num_workers=4, seed=7)
    dfs = DistributedFS(cluster, block_size=1024)
    docs = [(i, f"w{i % 13} shared w{(i * 7) % 19}") for i in range(200)]
    dfs.write("/docs", docs)
    engine = IncrMREngine(cluster, dfs, executor=executor)
    conf = JobConf("wc", TokenMapper, SumReducer, inputs=["/docs"],
                   output="/counts", num_reducers=4)
    initial, state = engine.run_initial(conf)
    delta = [insert(200, "brand new words"),
             *update(0, docs[0][1], "w0 shared w0")]
    dfs.write("/delta", delta_to_dfs_records(delta))
    incr = engine.run_incremental(conf, "/delta", state)
    output = sorted(dfs.read("/counts"))
    state.cleanup()
    engine.close()
    return {
        "output": output,
        "initial_times": initial.metrics.times.as_dict(),
        "incr_times": incr.metrics.times.as_dict(),
        "incr_counters": incr.metrics.counters.as_dict(),
    }


def test_incremental_engine_identical_across_backends():
    reference = _incremental_run("serial")
    for name in ("thread", "process"):
        assert _incremental_run(name) == reference, name


def _i2mr_run(executor):
    cluster = Cluster(num_workers=4, seed=7)
    dfs = DistributedFS(cluster, block_size=2048)
    graph = powerlaw_web_graph(250, 8.0, seed=3)
    delta = mutate_web_graph(graph, 0.1, seed=4)
    engine = I2MREngine(cluster, dfs, executor=executor)
    job = IterativeJob(PageRank(), graph, num_partitions=4,
                       max_iterations=8, epsilon=1e-6)
    initial, preserved = engine.run_initial(job)
    incr = engine.run_incremental(
        IterativeJob(PageRank(), delta.new_graph, num_partitions=4,
                     max_iterations=5),
        delta.records,
        preserved,
        I2MROptions(max_iterations=5, epsilon=1e-6),
    )
    summary = {
        "state": incr.state,
        "initial_times": initial.metrics.times.as_dict(),
        "incr_times": incr.metrics.times.as_dict(),
        "incr_counters": incr.metrics.counters.as_dict(),
    }
    preserved.cleanup()
    engine.close()
    return summary


def test_i2mr_engine_identical_across_backends():
    reference = _i2mr_run("serial")
    for name in ("thread", "process"):
        assert _i2mr_run(name) == reference, name


def _baseline_runs(executor):
    graph = powerlaw_web_graph(200, 8.0, seed=3)
    out = {}
    for label, driver_cls in (("plainmr", PlainMRDriver), ("haloop", HaLoopDriver),
                              ("spark", SparkLikeDriver)):
        cluster = Cluster(num_workers=4, seed=7)
        dfs = DistributedFS(cluster, block_size=2048)
        result = driver_cls(cluster, dfs, executor=executor).run(
            PageRank(), graph, max_iterations=3
        )
        out[label] = {
            "state": result.state,
            "times": result.metrics.times.as_dict(),
        }
    return out


def test_baselines_identical_across_backends():
    reference = _baseline_runs("serial")
    for name in ("thread", "process"):
        assert _baseline_runs(name) == reference, name


def test_fig8_workload_identical_simulated_metrics_serial_vs_process():
    """Acceptance: the fig8 workload's simulated times are backend-free."""
    serial = run_workload("pagerank", scale="test", executor="serial")
    process = run_workload("pagerank", scale="test", executor="process")
    assert process == serial
