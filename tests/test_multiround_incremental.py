"""Multi-round incremental runs compose: applying a delta stream in two
successive ``run_incremental`` calls on the same preserved state ends in
the same final state as one combined call with the concatenated delta.

This is the composition property the streaming subsystem leans on —
a micro-batched pipeline is exactly a sequence of ``run_incremental``
calls — checked on both engines:

- **WordCount** through :class:`IncrMREngine` (one-step): integer
  sums, so split and combined runs must match *exactly* (fine-grain
  mode with deletions, and accumulator mode with insert-only deltas);
- **PageRank** through :class:`I2MREngine` (incremental iterative):
  both runs are driven to the float fixpoint, which may differ in the
  last bit between trajectories, so values are compared to 1e-12 and
  key sets exactly.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.pagerank import PageRank
from repro.algorithms.wordcount import WordCountMapper, WordCountReducer, reference_wordcount
from repro.common.kvpair import delete, insert
from repro.datasets.graphs import mutate_web_graph, powerlaw_web_graph
from repro.incremental.api import delta_to_dfs_records
from repro.incremental.engine import IncrMREngine
from repro.inciter.engine import I2MREngine, I2MROptions
from repro.iterative.api import IterativeJob
from repro.mapreduce.job import JobConf

from tests.conftest import fresh_cluster

# --------------------------------------------------------------------- #
# WordCount (one-step engine)                                           #
# --------------------------------------------------------------------- #

_words = st.lists(
    st.sampled_from(["a", "b", "c", "dd", "ee"]), min_size=1, max_size=5
).map(" ".join)
_docs = st.dictionaries(
    st.integers(min_value=0, max_value=9), _words, min_size=1, max_size=6
)
# Per-round action scripts over doc ids 0..14: delete / insert / rewrite.
_actions = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=14),
        st.sampled_from(["delete", "insert", "rewrite"]),
        _words,
    ),
    max_size=5,
)


def _apply_script(current: dict, actions) -> list:
    """Turn an action script into a well-formed delta for ``current``."""
    records = []
    for key, action, text in actions:
        if action == "delete" and key in current:
            records.append(delete(key, current.pop(key)))
        elif action == "insert" and key not in current:
            records.append(insert(key, text))
            current[key] = text
        elif action == "rewrite" and key in current and current[key] != text:
            records.append(delete(key, current[key]))
            records.append(insert(key, text))
            current[key] = text
    return records


def _wordcount_conf() -> JobConf:
    return JobConf(
        name="wordcount", mapper=WordCountMapper, reducer=WordCountReducer,
        inputs=["/in"], output="/out", num_reducers=3,
    )


class TestWordCountMultiRound:
    @given(_docs, _actions, _actions)
    @settings(max_examples=25, deadline=None)
    def test_finegrain_split_equals_combined(self, docs, actions1, actions2):
        current = dict(docs)
        d1 = _apply_script(current, actions1)
        d2 = _apply_script(current, actions2)
        conf = _wordcount_conf()

        # Two successive rounds on the same store.
        cluster, dfs = fresh_cluster()
        engine = IncrMREngine(cluster, dfs)
        dfs.write("/in", sorted(docs.items()))
        _, state = engine.run_initial(conf)
        dfs.write("/d1", delta_to_dfs_records(d1))
        engine.run_incremental(conf, "/d1", state)
        dfs.write("/d2", delta_to_dfs_records(d2))
        engine.run_incremental(conf, "/d2", state)
        split = dict(dfs.read_all("/out"))
        state.cleanup()

        # One combined round.
        cluster2, dfs2 = fresh_cluster()
        engine2 = IncrMREngine(cluster2, dfs2)
        dfs2.write("/in", sorted(docs.items()))
        _, state2 = engine2.run_initial(conf)
        dfs2.write("/d12", delta_to_dfs_records(d1 + d2))
        engine2.run_incremental(conf, "/d12", state2)
        combined = dict(dfs2.read_all("/out"))
        state2.cleanup()

        assert split == combined
        # Both equal a from-scratch recount of the final documents.
        assert split == reference_wordcount(sorted(current.items()))

    @given(_docs, st.lists(_words, max_size=4), st.lists(_words, max_size=4))
    @settings(max_examples=25, deadline=None)
    def test_accumulator_split_equals_combined(self, docs, texts1, texts2):
        next_id = 100
        d1 = [insert(next_id + i, t) for i, t in enumerate(texts1)]
        d2 = [insert(next_id + len(texts1) + i, t) for i, t in enumerate(texts2)]
        conf = _wordcount_conf()

        cluster, dfs = fresh_cluster()
        engine = IncrMREngine(cluster, dfs)
        dfs.write("/in", sorted(docs.items()))
        _, state = engine.run_initial(conf, accumulator=True)
        dfs.write("/d1", delta_to_dfs_records(d1))
        engine.run_incremental(conf, "/d1", state)
        dfs.write("/d2", delta_to_dfs_records(d2))
        engine.run_incremental(conf, "/d2", state)
        split = dict(state.acc_outputs)
        state.cleanup()

        cluster2, dfs2 = fresh_cluster()
        engine2 = IncrMREngine(cluster2, dfs2)
        dfs2.write("/in", sorted(docs.items()))
        _, state2 = engine2.run_initial(conf, accumulator=True)
        dfs2.write("/d12", delta_to_dfs_records(d1 + d2))
        engine2.run_incremental(conf, "/d12", state2)
        combined = dict(state2.acc_outputs)
        state2.cleanup()

        assert split == combined
        final_docs = dict(docs)
        for rec in d1 + d2:
            final_docs[rec.key] = rec.value
        assert split == reference_wordcount(sorted(final_docs.items()))


# --------------------------------------------------------------------- #
# PageRank (incremental iterative engine)                               #
# --------------------------------------------------------------------- #


def _converged_pagerank(seed: int):
    graph = powerlaw_web_graph(60, 5.0, seed=seed)
    cluster, dfs = fresh_cluster()
    engine = I2MREngine(cluster, dfs)
    job = IterativeJob(PageRank(), graph, num_partitions=4,
                       max_iterations=200, epsilon=1e-12)
    _, prev = engine.run_initial(job)
    return graph, engine, prev


class TestPageRankMultiRound:
    @pytest.mark.parametrize("seed", [3, 9, 17])
    def test_split_equals_combined(self, seed):
        opts = I2MROptions(filter_threshold=None, max_iterations=300)

        def job_for(graph):
            return IterativeJob(PageRank(), graph, num_partitions=4,
                                max_iterations=300)

        graph, engine, prev = _converged_pagerank(seed)
        d1 = mutate_web_graph(graph, 0.12, seed=seed + 100)
        d2 = mutate_web_graph(d1.new_graph, 0.12, seed=seed + 200)

        engine.run_incremental(job_for(d1.new_graph), d1.records, prev, opts)
        engine.run_incremental(job_for(d2.new_graph), d2.records, prev, opts)
        split = dict(prev.state)
        prev.cleanup()

        graph2, engine2, prev2 = _converged_pagerank(seed)
        engine2.run_incremental(
            job_for(d2.new_graph), d1.records + d2.records, prev2, opts
        )
        combined = dict(prev2.state)
        prev2.cleanup()

        # Same vertex set; ranks at the float fixpoint (last-bit slack).
        assert set(split) == set(combined)
        assert set(split) == set(d2.new_graph.out_links)
        for vertex, rank in split.items():
            assert rank == pytest.approx(combined[vertex], abs=1e-12)
