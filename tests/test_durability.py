"""Fault-injection durability suite for the crash-safe MRBG-Store.

The contract under test (docs/store.md, "Durability & recovery"): a
store killed at *any* crash point reopens — via write-ahead-log replay —
at a state byte-identical to either the moment before the interrupted
operation or the moment after it, never a third state.  The crash matrix
drives every named crash site across shard counts and compaction
policies; a Hypothesis property test interleaves random mutations with a
crash at a random WAL byte offset; golden files pin the journal's wire
format and the sharded manifest layout.

The exhaustive matrix combinations are marked ``slow`` (run them with
``--runslow``); a quick subset always runs in tier 1.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import DEFAULT_NUM_SHARDS
from repro.common.errors import InvalidJobConf, WALCorruptError
from repro.common.kvpair import Op, delete, insert
from repro.common.serialization import encode_many
from repro.faults import (
    CrashPoint,
    FaultContext,
    FaultInjector,
    FaultSpec,
    InjectedCrash,
)
from repro.incremental.api import SumReducer, delta_to_dfs_records
from repro.incremental.engine import IncrMREngine
from repro.mapreduce.api import Mapper
from repro.mapreduce.engine import MapReduceEngine
from repro.mapreduce.job import JobConf
from repro.mrbgraph.graph import DeltaEdge, Edge
from repro.mrbgraph.sharding import HashShardRouter, ShardedMRBGStore
from repro.mrbgraph.store import MRBGStore
from repro.mrbgraph.wal import (
    OP_BEGIN,
    OP_CHECKPOINT,
    OP_COMMIT,
    OP_COMPACT_BEGIN,
    OP_COMPACT_COMMIT,
    OP_DELETE,
    OP_PUT,
    WriteAheadLog,
    atomic_write,
    decode_wal_record,
    encode_wal_record,
    fsync_directory,
)

from tests.conftest import fresh_cluster

GOLDEN = os.path.join(os.path.dirname(__file__), "golden", "wal_records.json")

NUM_SHARDS = 4


# --------------------------------------------------------------------- #
# helpers                                                               #
# --------------------------------------------------------------------- #


def new_store(directory, kind, policy="full", fault_hook=None):
    """A fresh store of the requested kind (WAL on, serial backend)."""
    if kind == "single":
        return MRBGStore(
            str(directory), wal_enabled=True, compaction=policy, fault_hook=fault_hook
        )
    return ShardedMRBGStore(
        str(directory),
        num_shards=NUM_SHARDS,
        executor="serial",
        wal_enabled=True,
        compaction=policy,
        fault_hook=fault_hook,
    )


def reopen_store(directory, kind, policy="full", fault_hook=None):
    """Reopen a persisted store directory (recovery runs here)."""
    if kind == "single":
        return MRBGStore.open(
            str(directory), wal_enabled=True, compaction=policy, fault_hook=fault_hook
        )
    return ShardedMRBGStore.open(
        str(directory),
        executor="serial",
        wal_enabled=True,
        compaction=policy,
        fault_hook=fault_hook,
    )


def store_units(directory, kind):
    """Per-shard directories (one unit for a single store)."""
    if kind == "single":
        return {0: str(directory)}
    return {
        sid: os.path.join(str(directory), "shard-%04d" % sid)
        for sid in range(NUM_SHARDS)
    }


def unit_digest(unit_dir):
    """Digest of one shard directory's durable bytes (data + index).

    The WAL is deliberately excluded: it is a redo log, reset on every
    index flush, not part of the store's logical state.
    """
    h = hashlib.sha256()
    for name in ("mrbg.dat", "mrbg.idx"):
        path = os.path.join(unit_dir, name)
        data = open(path, "rb").read() if os.path.exists(path) else b"<absent>"
        h.update(name.encode())
        h.update(len(data).to_bytes(8, "little"))
        h.update(data)
    return h.hexdigest()


def digests(directory, kind):
    return {sid: unit_digest(d) for sid, d in store_units(directory, kind).items()}


def assert_no_stray_files(directory):
    """Recovery must leave no temp/compact droppings anywhere."""
    for root, _dirs, files in os.walk(str(directory)):
        for name in files:
            assert not name.endswith(".tmp"), os.path.join(root, name)
            assert not name.endswith(".compact"), os.path.join(root, name)


def seed_chunks(keys):
    return [(k, [Edge(mk, k * 100.0 + mk) for mk in range(3)]) for k in sorted(keys)]


SEED_KEYS = list(range(24))


def build_pre_state(directory, kind, policy):
    """Seed + one committed merge + save: the 'pre' golden state.

    The merge leaves a second batch and dead bytes behind, so the
    compaction scenarios have real work to do.
    """
    store = new_store(directory, kind, policy)
    store.build(seed_chunks(SEED_KEYS))
    store.begin_merge(sorted(SEED_KEYS))
    for k in sorted(SEED_KEYS)[:8]:
        store.put_chunk(k, [Edge(0, k + 0.5), Edge(9, 9.0)])
    store.end_merge()
    store.save_index()
    store.close()


def scenario_merge(store):
    """The interrupted operation for the merge-path crash points."""
    keys = sorted(SEED_KEYS)
    deletes = keys[::5]
    updates = [k for k in keys if k not in deletes]
    store.begin_merge(keys)
    for k in updates:
        store.put_chunk(k, [Edge(0, k - 0.25), Edge(7, 7.0)])
    for k in deletes:
        store.delete_chunk(k)
    for k in range(100, 104):
        store.put_chunk(k, [Edge(1, 1.25)])
    store.end_merge()
    store.save_index()


def scenario_compact(store):
    """The interrupted operation for the compaction crash points."""
    store.compact()
    store.save_index()


#: crash point -> (scenario, expected state of the crashed shard,
#: expected state of every *other* shard).  "pre"/"post" name the golden
#: states around the interrupted operation; the serial maintenance paths
#: stop at the crashed shard, so siblings land on "pre" except for the
#: merge commit path, where every shard's session committed before the
#: index swap crashed.
CRASH_SCENARIOS = {
    "wal-append": (scenario_merge, "pre", "pre"),
    "pre-index-swap": (scenario_merge, "post", "post"),
    "pre-dir-fsync": (scenario_merge, "post", "post"),
    "mid-compact-write": (scenario_compact, "pre", "pre"),
    "post-compact-pre-swap": (scenario_compact, "post", "pre"),
}

#: occurrence of the (point, shard 0) hit that crashes: the second
#: journal append (OP_BEGIN is the first) for wal-append, the first hit
#: for the single-shot sites.
CRASH_OCCURRENCE = {
    "wal-append": 1,
    "pre-index-swap": 0,
    "pre-dir-fsync": 0,
    "mid-compact-write": 0,
    "post-compact-pre-swap": 0,
}


def crash_context(point, occurrence=None, byte_offset=None):
    ctx = FaultContext(
        FaultInjector(
            [
                FaultSpec(
                    iteration=(
                        CRASH_OCCURRENCE[point] if occurrence is None else occurrence
                    ),
                    stage="store",
                    task_index=0,
                    crash_point=point,
                    byte_offset=byte_offset,
                )
            ]
        )
    )
    return ctx


def run_crash_and_recover(tmp_path, kind, policy, point, occurrence=None,
                          byte_offset=None):
    """Build pre/post goldens, crash at ``point``, recover; return digests."""
    pre_dir = tmp_path / "pre"
    build_pre_state(pre_dir, kind, policy)
    pre = digests(pre_dir, kind)

    scenario, expect_crashed, expect_other = CRASH_SCENARIOS[point]

    post_dir = tmp_path / "post"
    shutil.copytree(pre_dir, post_dir)
    golden = reopen_store(post_dir, kind, policy)
    scenario(golden)
    golden.close()
    post = digests(post_dir, kind)

    crash_dir = tmp_path / "crash"
    shutil.copytree(pre_dir, crash_dir)

    def wal_bytes(directory):
        path = os.path.join(store_units(directory, kind)[0], "mrbg.wal")
        return open(path, "rb").read() if os.path.exists(path) else b""

    ctx = crash_context(point, occurrence=occurrence, byte_offset=byte_offset)
    store = reopen_store(crash_dir, kind, policy, fault_hook=ctx.store_hook())
    with pytest.raises(InjectedCrash) as excinfo:
        scenario(store)
    assert excinfo.value.point == point
    assert excinfo.value.shard == 0
    assert store.crashed
    store.abandon()  # whole-node kill: siblings drop unflushed work too
    assert ctx.store_crash_log and ctx.store_crash_log[0][0] == point

    # A crash that flushed nothing new leaves the journal at its pre-state
    # checkpoint — reopening then has nothing to repair.
    journal_changed = wal_bytes(crash_dir) != wal_bytes(pre_dir)

    recovered = reopen_store(crash_dir, kind, policy)
    shards = recovered.shards if kind == "sharded" else (recovered,)
    # The crashed shard's reopen must have run a recovery iff the crash
    # left any flushed evidence behind.
    assert (shards[0].metrics.recoveries >= 1) == journal_changed
    for shard in shards:  # every chunk must be readable post-recovery
        for key in shard.keys():
            assert shard.get_chunk(key) is not None
    recovered.save_index()
    recovered.close()
    after = digests(crash_dir, kind)
    assert_no_stray_files(crash_dir)

    return pre, post, after, expect_crashed, expect_other


MATRIX = [
    pytest.param(
        point,
        kind,
        policy,
        marks=()
        if policy == "full"
        and (kind == "single" or point in ("wal-append", "post-compact-pre-swap"))
        else (pytest.mark.slow,),
        id=f"{point}-{kind}-{policy}",
    )
    for point in CRASH_SCENARIOS
    for kind in ("single", "sharded")
    for policy in ("full", "size-tiered", "leveled")
]


class TestCrashMatrix:
    """Every crash point × shard count × compaction policy."""

    @pytest.mark.parametrize("point,kind,policy", MATRIX)
    def test_recovery_is_byte_identical(self, tmp_path, point, kind, policy):
        pre, post, after, expect_crashed, expect_other = run_crash_and_recover(
            tmp_path, kind, policy, point
        )
        golden = {"pre": pre, "post": post}
        assert after[0] == golden[expect_crashed][0]
        for sid in after:
            if sid == 0:
                continue
            assert after[sid] == golden[expect_other][sid]
            # ...and in particular never some third, merged state:
            assert after[sid] in (pre[sid], post[sid])

    @pytest.mark.parametrize(
        "occurrence,byte_offset",
        [(0, None), (1, 0), (1, 1), (1, 7), (1, 8), (1, 20), (2, 10_000)],
        ids=["begin", "none", "in-len", "in-crc", "post-header", "mid-payload",
             "full-record"],
    )
    def test_torn_wal_append_rolls_back(self, tmp_path, occurrence, byte_offset):
        """A merge append torn at any byte offset rolls back to 'pre'.

        Even a *fully* written put record (offset past the record length)
        rolls back: the session's commit record never made it.
        """
        pre, post, after, _, _ = run_crash_and_recover(
            tmp_path, "single", "full", "wal-append",
            occurrence=occurrence, byte_offset=byte_offset,
        )
        assert after[0] == pre[0]
        assert after[0] != post[0]

    def test_recovery_is_idempotent(self, tmp_path):
        """A second reopen after recovery replays only a checkpoint."""
        run_crash_and_recover(tmp_path, "single", "full", "pre-index-swap")
        again = reopen_store(tmp_path / "crash", "single", "full")
        assert again.metrics.recoveries == 0
        again.close()

    def test_clean_lifecycle_never_recovers(self, tmp_path):
        """No faults, no crash: reopen charges zero recoveries."""
        build_pre_state(tmp_path / "s", "single", "full")
        store = reopen_store(tmp_path / "s", "single", "full")
        assert store.metrics.recoveries == 0
        assert store.metrics.wal_bytes_replayed > 0  # the checkpoint record
        store.close()


# --------------------------------------------------------------------- #
# random interleavings (property test)                                  #
# --------------------------------------------------------------------- #


KEYS = st.integers(min_value=0, max_value=7)
MERGE_OPS = st.lists(
    st.tuples(KEYS, st.one_of(st.none(), st.floats(allow_nan=False,
                                                   allow_infinity=False))),
    min_size=0,
    max_size=6,
)


def _apply_mirror(mirror, ops):
    out = dict(mirror)
    for key, value in ops:
        if value is None:
            out.pop(key, None)
        else:
            out[key] = [Edge(0, value)]
    return out


def _logical_state(store):
    return {k: store.get_chunk(k) for k in store.keys()}


class TestRandomInterleavings:
    """Random put/delete/save interleavings with a random torn append."""

    @settings(max_examples=30, deadline=None)
    @given(
        merges=st.lists(st.tuples(MERGE_OPS, st.booleans()), min_size=1, max_size=4),
        crash_hit=st.integers(min_value=0, max_value=24),
        byte_offset=st.one_of(st.none(), st.integers(min_value=0, max_value=64)),
    )
    def test_recovers_to_adjacent_state(self, merges, crash_hit, byte_offset):
        """The recovered store always equals a pre- or post-merge mirror."""
        root = tempfile.mkdtemp(prefix="durability-prop-")
        try:
            ctx = crash_context("wal-append", occurrence=crash_hit,
                                byte_offset=byte_offset)
            store = new_store(os.path.join(root, "s"), "single",
                              fault_hook=ctx.store_hook())
            mirrors = [{}]
            crashed_during = None
            for i, (ops, save_after) in enumerate(merges):
                mirrors.append(_apply_mirror(mirrors[-1], ops))
                try:
                    store.begin_merge(sorted({k for k, _ in ops}))
                    for key, value in ops:
                        if value is None:
                            store.delete_chunk(key)
                        else:
                            store.put_chunk(key, [Edge(0, value)])
                    store.end_merge()
                    if save_after:
                        store.save_index()
                except InjectedCrash:
                    crashed_during = i
                    break
            if crashed_during is None:
                store.save_index()
                store.close()
                expected = [mirrors[-1]]
            else:
                # Never a third state: the merge either vanished whole or
                # committed whole.  (A torn *commit* record rolls back; a
                # fully-flushed one rolls forward.)
                expected = [mirrors[crashed_during], mirrors[crashed_during + 1]]

            recovered = MRBGStore.open(os.path.join(root, "s"), wal_enabled=True)
            assert _logical_state(recovered) in expected
            recovered.save_index()
            recovered.close()

            again = MRBGStore.open(os.path.join(root, "s"), wal_enabled=True)
            assert again.metrics.recoveries == 0  # recovery converged
            assert _logical_state(again) in expected
            again.close()
        finally:
            shutil.rmtree(root, ignore_errors=True)


# --------------------------------------------------------------------- #
# engine-level recovery                                                 #
# --------------------------------------------------------------------- #


class TokenMapper(Mapper):
    def map(self, key, text, ctx):
        for word in text.split():
            ctx.emit(word, 1)


class InEdgeMapper(Mapper):
    """The paper's Fig 3 application: in-edge weight sums."""

    def map(self, i, value, ctx):
        for j, w in value:
            ctx.emit(j, w)


def run_scratch(records, mapper, reducer, num_reducers=2):
    cluster, dfs = fresh_cluster()
    dfs.write("/in", sorted(records.items()))
    MapReduceEngine(cluster, dfs).run(
        JobConf(name="scratch", mapper=mapper, reducer=reducer,
                inputs=["/in"], output="/out", num_reducers=num_reducers)
    )
    return dict(dfs.read_all("/out"))


class TestEngineRecovery:
    """A crashed incremental run completes identically after recovery."""

    def _crash_and_rerun(self, base, delta, new_input, mapper, point):
        cluster, dfs = fresh_cluster()
        dfs.write("/in", sorted(base.items()))
        engine = IncrMREngine(cluster, dfs)
        conf = JobConf(name="job", mapper=mapper, reducer=SumReducer,
                       inputs=["/in"], output="/out", num_reducers=2)
        _, state = engine.run_initial(conf)
        state.close()  # persist indexes; stores reopen lazily below

        dfs.write("/d", delta_to_dfs_records(delta))
        ctx = crash_context(point, occurrence=0)
        state._fault_hook = ctx.store_hook()
        with pytest.raises(InjectedCrash):
            engine.run_incremental(conf, "/d", state)
        assert ctx.store_crash_log

        # The process "restarts": drop every in-memory store unflushed,
        # clear the injection, and re-run the same incremental job.
        state._fault_hook = None
        state.reset_stores()
        result = engine.run_incremental(conf, "/d", state)
        refreshed = dict(dfs.read_all(result.output))
        state.cleanup()

        assert refreshed == run_scratch(new_input, mapper, SumReducer)

    def test_wordcount_recovers_after_merge_crash(self):
        base = {0: "a b a", 1: "b c", 2: "c c d"}
        delta = [delete(1, "b c"), insert(1, "b b e"), insert(3, "a e")]
        new_input = {0: "a b a", 1: "b b e", 2: "c c d", 3: "a e"}
        self._crash_and_rerun(base, delta, new_input, TokenMapper, "wal-append")

    def test_inedge_recovers_after_index_swap_crash(self):
        base = {
            0: ((1, 0.3), (2, 0.3)),
            1: ((2, 0.4),),
            2: ((0, 0.5), (1, 0.5)),
        }
        delta = [
            delete(0, ((1, 0.3), (2, 0.3))),
            insert(0, ((2, 0.6),)),
            insert(3, ((0, 0.1),)),
        ]
        new_input = {
            0: ((2, 0.6),),
            1: ((2, 0.4),),
            2: ((0, 0.5), (1, 0.5)),
            3: ((0, 0.1),),
        }
        self._crash_and_rerun(base, delta, new_input, InEdgeMapper,
                              "pre-index-swap")


# --------------------------------------------------------------------- #
# golden wire formats                                                   #
# --------------------------------------------------------------------- #


#: name -> the exact (op, *fields) each golden record was encoded from.
GOLDEN_RECORD_ARGS = {
    "checkpoint": (OP_CHECKPOINT, 4096, 3),
    "begin": (OP_BEGIN, 1024, 2),
    "put": (OP_PUT, "key", b"\x00\x01\xff"),
    "delete": (OP_DELETE, "gone"),
    "commit": (OP_COMMIT, 2048, 3),
    "compact-begin": (OP_COMPACT_BEGIN,),
    "compact-commit": (OP_COMPACT_COMMIT, [("k", 0, 10)], 10),
}


class TestGoldenFormats:
    """The WAL record framing and manifest layout are pinned byte-for-byte."""

    @pytest.fixture(scope="class")
    def golden(self):
        with open(GOLDEN) as fh:
            return json.load(fh)

    def test_every_opcode_is_pinned(self, golden):
        assert {r["name"] for r in golden["records"]} == set(GOLDEN_RECORD_ARGS)

    def test_record_encodings_match_golden(self, golden):
        for rec in golden["records"]:
            op, *fields = GOLDEN_RECORD_ARGS[rec["name"]]
            assert encode_wal_record(op, *fields).hex() == rec["hex"], rec["name"]

    def test_records_decode_roundtrip(self, golden):
        for rec in golden["records"]:
            raw = bytes.fromhex(rec["hex"])
            op, *fields = GOLDEN_RECORD_ARGS[rec["name"]]
            value, consumed = decode_wal_record(raw)
            assert consumed == len(raw)
            assert value == (op, *fields)

    def test_stream_replays_in_order(self, golden):
        raw = bytes.fromhex(golden["stream"])
        replay = WriteAheadLog.replay_bytes(raw)
        assert not replay.truncated
        assert replay.valid_bytes == replay.total_bytes == len(raw)
        names = [r["name"] for r in golden["records"]]
        assert [rec[0] for rec in replay.records] == [
            GOLDEN_RECORD_ARGS[name][0] for name in names
        ]

    def test_torn_tail_stops_replay(self, golden):
        raw = bytes.fromhex(golden["stream"])
        replay = WriteAheadLog.replay_bytes(raw[:-1])
        assert replay.truncated
        assert len(replay.records) == len(golden["records"]) - 1
        assert replay.valid_bytes < replay.total_bytes

    def test_corrupt_byte_fails_loudly(self, golden):
        # Mid-log corruption of a fully contained record is NOT a torn
        # tail: silently dropping the suffix could resurrect stale
        # preserved state, so replay raises the typed error instead.
        raw = bytearray(bytes.fromhex(golden["stream"]))
        first_len = len(bytes.fromhex(golden["records"][0]["hex"]))
        raw[first_len + 10] ^= 0xFF  # flip a byte inside record #2
        with pytest.raises(WALCorruptError) as excinfo:
            WriteAheadLog.replay_bytes(bytes(raw))
        assert excinfo.value.offset == first_len
        assert "checksum" in excinfo.value.reason

    def test_torn_vs_corrupt_are_distinguishable(self, golden):
        raw = bytes.fromhex(golden["stream"])
        # Every prefix cut (what a crash can produce) is tolerated...
        for cut in (1, 5, len(raw) - 3):
            replay = WriteAheadLog.replay_bytes(raw[:-cut])
            assert replay.truncated
        # ...while a contained-record corruption in the same stream is not
        # (byte 9 sits inside the first record's payload, past its 8-byte
        # length+crc header, so the record stays fully contained).
        flipped = bytearray(raw)
        flipped[9] ^= 0x01
        with pytest.raises(WALCorruptError):
            WriteAheadLog.replay_bytes(bytes(flipped))

    def test_manifest_layout_matches_golden(self, golden, tmp_path):
        spec = golden["manifest"]
        router = HashShardRouter(spec["num_shards"])
        raw = encode_many([{"router": router.spec()}])
        assert raw.hex() == spec["hex"]
        store = new_store(tmp_path / "s", "sharded")
        store.close()
        with open(tmp_path / "s" / "mrbg.shards", "rb") as fh:
            assert fh.read().hex() == spec["hex"]


class TestAtomicWrite:
    """The temp + fsync + rename swap behind every index/manifest write."""

    def test_success_leaves_no_temp(self, tmp_path):
        target = tmp_path / "f.bin"
        atomic_write(str(target), b"one")
        atomic_write(str(target), b"two")
        assert target.read_bytes() == b"two"
        assert not os.path.exists(str(target) + ".tmp")

    def test_crash_before_replace_keeps_old_bytes(self, tmp_path):
        target = tmp_path / "f.bin"
        atomic_write(str(target), b"old")

        def boom():
            raise InjectedCrash("pre-index-swap", 0, 0)

        with pytest.raises(InjectedCrash):
            atomic_write(str(target), b"new", pre_replace=boom)
        # Old bytes intact beside a complete temp file — exactly the
        # wreckage recovery then sweeps up.
        assert target.read_bytes() == b"old"
        assert open(str(target) + ".tmp", "rb").read() == b"new"

    def test_crash_before_dir_fsync_keeps_new_bytes(self, tmp_path):
        # The rename already happened when pre-dir-fsync fires: readers
        # see the new bytes and no temp file is left behind.
        target = tmp_path / "f.bin"
        atomic_write(str(target), b"old")

        def boom():
            raise InjectedCrash("pre-dir-fsync", 0, 0)

        with pytest.raises(InjectedCrash):
            atomic_write(str(target), b"new", pre_dir_sync=boom)
        assert target.read_bytes() == b"new"
        assert not os.path.exists(str(target) + ".tmp")

    def test_directory_fsync_tolerates_missing_directory(self, tmp_path):
        fsync_directory(str(tmp_path))  # plain success
        fsync_directory(str(tmp_path / "vanished"))  # silently tolerated


# --------------------------------------------------------------------- #
# configuration plumbing                                                #
# --------------------------------------------------------------------- #


class TestConfigPlumbing:
    def test_jobconf_rejects_unknown_policy(self):
        conf = JobConf(name="j", mapper=TokenMapper, reducer=SumReducer,
                       inputs=["/in"], output="/out", compaction="bogus")
        with pytest.raises(InvalidJobConf):
            conf.validate()

    @pytest.mark.parametrize("policy", ["full", "size-tiered", "leveled", None])
    def test_jobconf_accepts_known_policies(self, policy):
        JobConf(name="j", mapper=TokenMapper, reducer=SumReducer,
                inputs=["/in"], output="/out", compaction=policy).validate()

    def test_fault_spec_store_stage_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(iteration=0, stage="store", task_index=0)  # no crash_point
        with pytest.raises(ValueError):
            FaultSpec(iteration=0, stage="map", task_index=0,
                      crash_point="wal-append")
        with pytest.raises(ValueError):
            CrashPoint(point="not-a-site")

    def test_wal_disabled_writes_no_journal(self, tmp_path):
        store = MRBGStore(str(tmp_path / "s"), wal_enabled=False)
        store.build(seed_chunks(range(4)))
        store.save_index()
        store.close()
        assert not os.path.exists(tmp_path / "s" / "mrbg.wal")
        reopened = MRBGStore.open(str(tmp_path / "s"), wal_enabled=False)
        assert reopened.keys() == list(range(4))
        reopened.close()

    def test_default_shard_count_is_pinned(self):
        # The durability matrix assumes engine states default to single
        # stores; a default change must revisit the engine tests here.
        assert DEFAULT_NUM_SHARDS == 1


# --------------------------------------------------------------------- #
# compaction policies                                                   #
# --------------------------------------------------------------------- #


def _stats(num_batches, file_size, live_bytes, batch_live_bytes=()):
    from repro.mrbgraph.compaction import CompactionStats

    return CompactionStats(
        num_batches=num_batches,
        file_size=file_size,
        live_bytes=live_bytes,
        batch_live_bytes=list(batch_live_bytes),
    )


class TestCompactionPolicies:
    def test_full_fires_on_second_batch_or_dead_bytes(self):
        from repro.mrbgraph.compaction import FullCompaction

        policy = FullCompaction()
        assert not policy.should_compact(_stats(1, 100, 100, [100]))
        assert policy.should_compact(_stats(2, 100, 100, [50, 50]))
        assert policy.should_compact(_stats(1, 100, 60, [60]))

    def test_size_tiered_needs_a_full_tier(self):
        from repro.mrbgraph.compaction import SizeTieredCompaction

        policy = SizeTieredCompaction(min_batches=4, bucket_ratio=2.0)
        assert not policy.should_compact(_stats(3, 300, 300, [100, 100, 100]))
        assert policy.should_compact(_stats(4, 400, 400, [100, 110, 120, 130]))
        # Four batches spread across distinct size tiers: no tier fills.
        assert not policy.should_compact(_stats(4, 4000, 4000, [10, 100, 1000, 3000]))

    def test_leveled_bounds_dead_ratio_and_stack_depth(self):
        from repro.mrbgraph.compaction import LeveledCompaction

        policy = LeveledCompaction(max_dead_ratio=0.3, max_batches=8)
        assert not policy.should_compact(_stats(2, 100, 90, [45, 45]))
        assert policy.should_compact(_stats(2, 100, 60, [30, 30]))  # 40% dead
        assert policy.should_compact(_stats(9, 900, 900, [100] * 9))
        assert not policy.should_compact(_stats(0, 0, 0, []))

    def test_maybe_compact_is_policy_gated(self, tmp_path):
        # leveled tolerates the two-batch store the pre state leaves...
        build_pre_state(tmp_path / "s", "single", "leveled")
        store = reopen_store(tmp_path / "s", "single", "leveled")
        stats = store.compaction_stats()
        if stats.dead_ratio <= 0.3:
            assert not store.maybe_compact()
        # ...while the paper's full policy rewrites it immediately.
        store.compaction = __import__(
            "repro.mrbgraph.compaction", fromlist=["FullCompaction"]
        ).FullCompaction()
        assert store.maybe_compact()
        assert store.num_batches == 1
        assert store.compaction_stats().dead_bytes == 0
        store.close()

    def test_delta_edge_ops_survive_merge(self, tmp_path):
        """Sanity: Op-tagged delta edges drive the same WAL-backed path."""
        store = new_store(tmp_path / "s", "single")
        store.build(seed_chunks(range(4)))
        merged = dict(
            store.merge_delta(
                [
                    (1, [DeltaEdge(0, -1.0, Op.INSERT)]),
                    (2, [DeltaEdge(mk, 0.0, Op.DELETE) for mk in range(3)]),
                ]
            )
        )
        assert merged[1][0] == Edge(0, -1.0)
        assert merged[2] == []
        assert 2 not in store
        store.save_index()
        store.close()
