"""Tests for the online serving subsystem (`repro.serving`).

The load-bearing claim (ISSUE 9's acceptance criterion): a query
answered *during* concurrent ingestion is byte-identical to the same
query against a quiesced replay of its pinned epoch — across host
execution backends and serving shard counts.  Everything else (epoch
retention and pinning, overlay collapse, incremental top-k, the
delta-driven cache, costs and timeouts, the pipeline bridge) is checked
piecewise first.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.algorithms.wordcount import WordCountMapper, WordCountReducer
from repro.common import serialization
from repro.common.errors import (
    EpochRetired,
    QueryTimeout,
    ReproError,
    ServingError,
    UnknownEpoch,
)
from repro.common.kvpair import sort_key
from repro.datasets.text import zipf_tweets
from repro.mapreduce.job import JobConf
from repro.mrbgraph.sharding import HashShardRouter, RangeShardRouter
from repro.resilience import RetryPolicy
from repro.serving import (
    EpochManager,
    LoadGenerator,
    QueryMix,
    QueryServer,
    ResultCache,
    ServingBridge,
)
from repro.serving.cache import entry_signature
from repro.streaming import (
    BatchOutcome,
    ContinuousPipeline,
    CountBatcher,
    OneStepStreamConsumer,
    ReplaySource,
    StreamConsumer,
    evolving_text_source,
)

from tests.conftest import fresh_cluster

# --------------------------------------------------------------------- #
# epoch manager                                                         #
# --------------------------------------------------------------------- #


class TestEpochManager:
    def test_publish_diffs_and_versions(self):
        m = EpochManager(num_shards=4)
        s0 = m.publish({"a": 1, "b": 2})
        s1 = m.publish({"a": 1, "b": 5, "c": 3})
        s2 = m.publish({"a": 1, "c": 3})
        assert (s0.epoch, s1.epoch, s2.epoch) == (0, 1, 2)
        assert s1.touched == {"b", "c"}
        assert s2.touched == {"b"}
        # older snapshots keep their view after later publishes.
        assert s0.get("b") == 2 and s1.get("b") == 5
        assert s2.get("b") is None and "b" not in s2
        assert s0.num_keys == 2 and s2.num_keys == 2

    def test_unchanged_state_still_commits_an_epoch(self):
        m = EpochManager()
        m.publish({"x": 1})
        s = m.publish({"x": 1})
        assert s.epoch == 1 and s.touched == frozenset()

    def test_publish_delta_matches_full_publish(self):
        full = EpochManager(num_shards=3)
        delta = EpochManager(num_shards=3)
        full.publish({"a": 1, "b": 2})
        delta.publish_delta({"a": 1, "b": 2})
        full.publish({"a": 9, "c": 4})
        delta.publish_delta({"a": 9, "c": 4}, deleted=["b"])
        a, b = full.latest(), delta.latest()
        assert sorted(a.items()) == sorted(b.items())
        assert a.touched == b.touched

    def test_unknown_and_retired_epochs(self):
        m = EpochManager(retain=2)
        with pytest.raises(UnknownEpoch):
            m.latest()
        for i in range(5):
            m.publish({"k": i})
        assert m.oldest_epoch == 3 and m.latest_epoch == 4
        with pytest.raises(EpochRetired):
            m.snapshot(0)
        with pytest.raises(UnknownEpoch):
            m.snapshot(99)
        # the library-error contract holds for serving errors too.
        with pytest.raises(ReproError):
            m.snapshot(0)
        assert m.retired_epochs == 3

    def test_pin_blocks_retirement(self):
        m = EpochManager(retain=1)
        m.publish({"k": 0})
        with m.pinned(0) as snap:
            for i in range(1, 6):
                m.publish({"k": i})
            # the pinned epoch (and everything behind it) survived.
            assert snap.get("k") == 0
            assert m.snapshot(0).get("k") == 0
            assert m.num_live_epochs == 6
        # releasing the pin lets retention reclaim the backlog.
        assert m.oldest_epoch == 5
        with pytest.raises(EpochRetired):
            m.snapshot(0)

    def test_overlay_chains_stay_bounded(self):
        m = EpochManager(num_shards=2, retain=2, collapse_depth=4)
        state = {}
        for i in range(40):
            state[f"k{i % 7}"] = i
            m.publish(dict(state))
        snap = m.latest()
        assert all(ov.depth() <= 6 for ov in snap._overlays)
        # flattening never changed what readers see.
        assert sorted(snap.items()) == sorted(state.items())

    def test_bad_construction(self):
        with pytest.raises(ServingError):
            EpochManager(router=HashShardRouter(2), num_shards=3)
        with pytest.raises(ServingError):
            EpochManager(retain=0)
        with pytest.raises(ServingError):
            EpochManager(topk_slack=0)


class TestSnapshotReads:
    def _manager(self, router=None):
        m = EpochManager(router=router, num_shards=None if router else 3)
        m.publish({f"w{i:02d}": (i * 7) % 13 for i in range(20)})
        return m

    def test_range_scan_matches_bruteforce(self):
        snap = self._manager().latest()
        live = dict(snap.items())
        lo, hi = "w03", "w11"
        expected = sorted(
            ((k, v) for k, v in live.items() if lo <= k <= hi),
            key=lambda kv: sort_key(kv[0]),
        )
        assert snap.range_scan(lo, hi) == expected
        assert snap.range_scan(lo, hi, limit=3) == expected[:3]
        with pytest.raises(ServingError):
            snap.range_scan("z", "a")

    def test_prefix_scan(self):
        m = EpochManager()
        m.publish({"apple": 1, "apricot": 2, "banana": 3, 7: 4})
        snap = m.latest()
        assert snap.prefix_scan("ap") == [("apple", 1), ("apricot", 2)]
        assert snap.prefix_scan("z") == []
        with pytest.raises(ServingError):
            snap.prefix_scan(7)

    def test_range_router_scans_contiguous_shards_only(self):
        router = RangeShardRouter(["g", "n", "t"])
        m = self._manager(router=router)
        snap = m.latest()
        # all the w* keys live past boundary "t" -> exactly one shard.
        assert list(snap.range_shards("w00", "w19")) == [3]
        # a hash router cannot bound the scan.
        hashed = self._manager().latest()
        assert list(hashed.range_shards("w00", "w19")) == [0, 1, 2]

    def test_topk_deeper_than_tracked_falls_back_to_scan(self):
        m = EpochManager(track_top=2, topk_slack=2)
        m.publish({f"k{i}": i for i in range(10)})
        snap = m.latest()
        expected = [(f"k{i}", i) for i in range(9, -1, -1)]
        assert snap.top_k(2) == expected[:2]
        assert snap.top_k(7) == expected[:7]
        assert snap.top_k(0) == []


class TestIncrementalTopK:
    def test_matches_bruteforce_under_churn(self):
        rng = random.Random(17)
        m = EpochManager(num_shards=2, track_top=5, topk_slack=2)
        mirror = {}
        publishes = 0
        for _ in range(60):
            for _ in range(rng.randrange(1, 5)):
                key = f"k{rng.randrange(30)}"
                if mirror and rng.random() < 0.3:
                    mirror.pop(rng.choice(sorted(mirror)), None)
                else:
                    mirror[key] = rng.randrange(100)
            snap = m.publish(dict(mirror))
            publishes += 1
            expected = sorted(
                mirror.items(),
                key=lambda kv: (sort_key(kv[1]), sort_key(kv[0])),
                reverse=True,
            )
            assert snap.top_k(5) == expected[:5]
            assert snap.top_k(3) == expected[:3]
        # the point of incremental maintenance: repairs, not recomputes.
        assert m.topk_rebuilds < publishes / 2

    def test_tie_break_is_deterministic(self):
        m = EpochManager(track_top=3)
        m.publish({"b": 1, "a": 1, "c": 1, "d": 0})
        assert m.latest().top_k(3) == [("c", 1), ("b", 1), ("a", 1)]


# --------------------------------------------------------------------- #
# result cache                                                          #
# --------------------------------------------------------------------- #


class TestResultCache:
    def test_hit_requires_entry_at_or_before_reader_epoch(self):
        cache = ResultCache(capacity=8)
        cache.put("q", 42, epoch=5, latest_epoch=5, deps=frozenset(["k"]))
        assert cache.get("q", pinned_epoch=5) == (True, 42)
        assert cache.get("q", pinned_epoch=7) == (True, 42)
        # a reader pinned before the entry's epoch must recompute.
        assert cache.get("q", pinned_epoch=4) == (False, None)

    def test_point_invalidation_is_exact(self):
        cache = ResultCache(capacity=8)
        cache.put("qa", 1, 0, 0, deps=frozenset(["a"]))
        cache.put("qb", 2, 0, 0, deps=frozenset(["b"]))
        assert cache.invalidate(frozenset(["a", "zzz"])) == 1
        assert cache.get("qa", 0) == (False, None)
        assert cache.get("qb", 0) == (True, 2)

    def test_range_invalidation_by_bounds(self):
        cache = ResultCache(capacity=8)
        cache.put("low", [], 0, 0, bounds=(sort_key("a"), sort_key("f")))
        cache.put("high", [], 0, 0, bounds=(sort_key("p"), sort_key("z")))
        cache.invalidate(frozenset(["c"]))
        assert cache.get("low", 0) == (False, None)
        assert cache.get("high", 0) == (True, [])

    def test_global_entries_die_on_any_touch(self):
        cache = ResultCache(capacity=8)
        cache.put("topk", [1], 0, 0, global_dep=True)
        cache.invalidate(frozenset(["anything"]))
        assert cache.get("topk", 0) == (False, None)

    def test_lru_eviction_prunes_dependency_index(self):
        cache = ResultCache(capacity=2)
        cache.put("q1", 1, 0, 0, deps=frozenset(["a"]))
        cache.put("q2", 2, 0, 0, deps=frozenset(["b"]))
        cache.get("q1", 0)  # refresh q1 -> q2 becomes the LRU victim
        cache.put("q3", 3, 0, 0, deps=frozenset(["c"]))
        assert cache.stats.evictions == 1
        assert cache.get("q2", 0) == (False, None)
        assert cache.get("q1", 0) == (True, 1)
        assert "b" not in cache._by_key

    def test_stale_put_rejected(self):
        cache = ResultCache(capacity=8)
        # computed at epoch 3, but epoch 4 already published: reject.
        assert not cache.put("q", 1, epoch=3, latest_epoch=4,
                             deps=frozenset(["k"]))
        assert cache.stats.stale_puts == 1
        assert cache.get("q", 4) == (False, None)

    def test_zero_capacity_disables(self):
        cache = ResultCache(capacity=0)
        assert not cache.put("q", 1, 0, 0, deps=frozenset(["k"]))
        assert cache.get("q", 0) == (False, None)

    def test_signatures_distinguish_kinds_and_args(self):
        assert entry_signature("get", ("k", None)) != \
            entry_signature("get", ("k2", None))
        assert entry_signature("get", ("k", None)) != \
            entry_signature("top_k", ("k", None))


# --------------------------------------------------------------------- #
# query server                                                          #
# --------------------------------------------------------------------- #


def _small_server(**kwargs) -> QueryServer:
    server = QueryServer(num_shards=kwargs.pop("num_shards", 2), **kwargs)
    server.publish({f"w{i:02d}": (i * 3) % 11 for i in range(12)})
    return server


class TestQueryServer:
    def test_point_get_costs_then_caches(self):
        server = _small_server()
        first = server.get("w03")
        assert first.value == 9 and not first.from_cache
        assert first.cost_s > 0 and first.shards_read == 1
        again = server.get("w03")
        assert again.from_cache and again.cost_s == 0.0
        assert server.cache.stats.hits == 1

    def test_multi_get_fans_out(self):
        server = _small_server(num_shards=4)
        res = server.multi_get(["w00", "w05", "w11", "nope"])
        assert res.value["w05"] == 4 and res.value["nope"] is None
        assert res.shards_read >= 1
        assert res.cost_s > server.get("w00").cost_s or res.from_cache

    def test_scans_and_topk_agree_with_snapshot(self):
        server = _small_server()
        snap = server.manager.latest()
        assert server.range_scan("w02", "w06").value == \
            snap.range_scan("w02", "w06")
        assert server.prefix_scan("w0").value == snap.prefix_scan("w0")
        assert server.top_k(4).value == snap.top_k(4)

    def test_delta_invalidates_only_affected_answers(self):
        server = _small_server()
        server.get("w01")
        server.get("w02")
        server.top_k(3)
        server.publish_delta({"w01": 999})
        assert server.get("w02").from_cache       # untouched: still cached
        assert not server.get("w01").from_cache   # touched: recomputed
        assert server.get("w01").from_cache       # (the recompute re-cached)
        fresh_top = server.top_k(3)               # global dep: recomputed
        assert not fresh_top.from_cache
        assert fresh_top.value[0] == ("w01", 999)

    def test_historical_epoch_reads(self):
        server = _small_server()
        e0 = server.manager.latest_epoch
        server.publish_delta({"w00": -1})
        assert server.get("w00").value == -1
        assert server.get("w00", epoch=e0).value == 0

    def test_query_timeout_raises_and_counts(self):
        server = _small_server(timeout_s=1e-9)
        with pytest.raises(QueryTimeout) as err:
            server.get("w00")
        assert err.value.cost_s > err.value.timeout_s
        assert server.stats.timeouts == 1
        # a policy without a deadline never times out.
        relaxed = _small_server(policy=RetryPolicy.disabled())
        relaxed.top_k(5)
        assert relaxed.stats.timeouts == 0

    def test_costs_are_deterministic(self):
        def run():
            server = _small_server(num_shards=3)
            server.get("w01")
            server.multi_get(["w02", "w07"])
            server.range_scan("w00", "w09")
            server.top_k(3)
            return server.stats.sim_read_s

        assert run() == run()

    def test_stats_track_epochs_served(self):
        server = _small_server()
        server.get("w00")
        server.publish_delta({"w00": 1})
        server.get("w00")
        assert server.stats.num_epochs_served == 2
        assert server.stats.queries == 2


# --------------------------------------------------------------------- #
# pipeline bridge                                                       #
# --------------------------------------------------------------------- #


class _FlakyConsumer(StreamConsumer):
    """Commits batches as running sums; batch #1 always fails."""

    def __init__(self):
        self.total = 0

    def process_batch(self, records):
        if records[0].key == 2:  # batch #1 under CountBatcher(2)
            raise RuntimeError("poison batch")
        self.total += sum(r.value for r in records)
        return BatchOutcome(processing_s=1.0)

    def state(self):
        return {"total": self.total}

    def close(self):
        pass


class TestServingBridge:
    def test_epoch_per_committed_batch_skips_dead_letters(self):
        from repro.common.kvpair import insert

        server = QueryServer(num_shards=1)
        server.publish({"total": 0})  # epoch 0: the initial state
        bridge = ServingBridge(server)
        records = [insert(i, 1) for i in range(6)]
        pipe = ContinuousPipeline(
            ReplaySource(records, rate=100.0),
            CountBatcher(2),
            _FlakyConsumer(),
            batch_retries=1,
        )
        pipe.add_batch_listener(bridge)
        pipe.run()
        # 3 batches, 1 dead-lettered -> 2 published epochs after epoch 0.
        assert len(pipe.dead_letters) == 1
        assert bridge.published == 2 and bridge.skipped == 1
        assert server.manager.latest_epoch == 2
        assert server.get("total").value == 4  # the poison batch's 2 lost

    def test_net_zero_batch_publishes_bare_commit_record(self):
        """A batch whose delta nets to zero schedules no map tasks and
        publishes no epoch work beyond the commit record itself."""
        from repro.algorithms.pagerank import PageRank
        from repro.common.kvpair import delete, insert
        from repro.datasets.graphs import powerlaw_web_graph
        from repro.iterative.api import IterativeJob
        from repro.streaming import IterativeStreamConsumer

        graph = powerlaw_web_graph(60, 4.0, seed=3)
        cluster, dfs = fresh_cluster()
        job = IterativeJob(PageRank(), graph, num_partitions=4,
                           max_iterations=60, epsilon=1e-6)
        consumer = IterativeStreamConsumer.from_initial(
            cluster, dfs, job, net_deltas=True
        )
        server = QueryServer(num_shards=2)
        server.publish(consumer.state())  # epoch 0: the initial state
        probe = next(iter(consumer.state()))
        assert server.get(probe).from_cache is False
        assert server.get(probe).from_cache is True  # primed
        bridge = ServingBridge(server)
        noop = [insert(999, ((1,), "")), delete(999, ((1,), ""))]
        with ContinuousPipeline(
            ReplaySource(noop, rate=100.0), CountBatcher(2), consumer
        ) as pipe:
            pipe.add_batch_listener(bridge)
            result = pipe.run()
        assert result.num_batches == 1
        assert result.batches[0].map_tasks == 0
        # The commit record: one new epoch, but it touches nothing —
        # readers advance, cached answers survive untouched.
        assert bridge.published == 1
        snapshot = server.manager.latest()
        assert snapshot.epoch == 1
        assert snapshot.touched == frozenset()
        answer = server.get(probe)
        assert answer.from_cache is True
        assert answer.epoch == 1


# --------------------------------------------------------------------- #
# load generator                                                        #
# --------------------------------------------------------------------- #


class TestLoadGenerator:
    def test_deterministic_choices_and_hot_set_hits(self):
        server = _small_server()
        keys = [f"w{i:02d}" for i in range(12)]
        report = LoadGenerator(server, keys, QueryMix(), seed=3).run(120)
        assert report["queries"] == 120
        assert report["cache_hit_rate"] > 0
        assert report["epochs_served"] >= 1
        # same seed, fresh server -> the same simulated read cost.
        again = LoadGenerator(_small_server(), keys, QueryMix(), seed=3).run(120)
        assert again["sim_read_s"] == report["sim_read_s"]

    def test_rejects_empty_universe(self):
        with pytest.raises(ValueError):
            LoadGenerator(_small_server(), [])
        with pytest.raises(ValueError):
            QueryMix(point=0, multi=0, top_k=0, range_scan=0)


# --------------------------------------------------------------------- #
# the acceptance criterion: consistency under concurrent ingestion      #
# --------------------------------------------------------------------- #


def _canonical(value):
    """Stable encodable form of a query answer (dicts sort)."""
    if isinstance(value, dict):
        return sorted(value.items(), key=lambda kv: sort_key(kv[0]))
    return value


def _wordcount_pipeline(executor, serving_shards, retain):
    """A streaming wordcount wired to a fresh query server."""
    tweets = zipf_tweets(80, seed=11)
    cluster, dfs = fresh_cluster()
    dfs.write("/tweets", sorted(tweets.tweets.items()))
    conf = JobConf(name="wc", mapper=WordCountMapper,
                   reducer=WordCountReducer, inputs=["/tweets"],
                   output="/counts", num_reducers=2, executor=executor)
    consumer = OneStepStreamConsumer.from_initial(
        cluster, dfs, conf, accumulator=True
    )
    source = evolving_text_source(
        tweets, fraction=0.15, generations=2, period_s=60.0, seed=13
    )
    server = QueryServer(
        manager=EpochManager(num_shards=serving_shards, retain=retain)
    )
    server.publish(consumer.state())  # epoch 0 = the converged initial run
    pipe = ContinuousPipeline(source, CountBatcher(5), consumer)
    pipe.add_batch_listener(ServingBridge(server))
    return pipe, server


@pytest.mark.parametrize("executor", ["serial", "thread", "process"])
@pytest.mark.parametrize("serving_shards", [1, 4])
def test_queries_during_ingestion_match_quiesced_replay(
    executor, serving_shards
):
    """Snapshot isolation, end to end (ISSUE 9 acceptance criterion).

    Queries are fired from the main thread while the pipeline ingests on
    a background thread; each answer is recorded with its pinned epoch.
    The same pipeline is then replayed with *no* concurrent queries into
    a server that retains every epoch, and every recorded query is
    re-asked at its recorded epoch.  The answers must be byte-identical:
    a query during ingestion saw exactly its pinned epoch, never a
    half-applied delta.
    """
    pipe, server = _wordcount_pipeline(executor, serving_shards, retain=8)
    words = sorted(dict(server.manager.latest().items()))
    rng = random.Random(29)
    recorded = []

    def record(result, kind, args):
        recorded.append(
            (result.epoch, kind, args,
             serialization.encode(_canonical(result.value)))
        )

    # hold a pin on epoch 0 for the whole run: late reads of an early
    # epoch must also stay consistent (and survive retention).
    with server.manager.pinned(0):
        ingest = threading.Thread(target=pipe.run)
        ingest.start()
        try:
            while True:
                done = not ingest.is_alive()
                for _ in range(4):
                    word = rng.choice(words)
                    record(server.get(word), "get", (word,))
                    record(server.top_k(5), "top_k", (5,))
                    lo = rng.choice(words)
                    hi = lo + "￿"
                    record(server.range_scan(lo, hi), "range", (lo, hi))
                    picks = tuple(rng.sample(words, min(4, len(words))))
                    record(server.multi_get(picks), "multi", (picks,))
                if done:
                    break
        finally:
            ingest.join()
        record(server.get(words[0], epoch=0), "get", (words[0],))
        pipe.close()

    assert {epoch for epoch, *_ in recorded} != {0}, "no epochs advanced"

    # --- quiesced replay: same stream, every epoch retained ----------- #
    replay_pipe, replay = _wordcount_pipeline(
        executor, serving_shards, retain=10_000
    )
    with replay_pipe:
        replay_pipe.run()
    assert replay.manager.latest_epoch == server.manager.latest_epoch

    for epoch, kind, args, expected in recorded:
        if kind == "get":
            result = replay.get(args[0], epoch=epoch)
        elif kind == "top_k":
            result = replay.top_k(args[0], epoch=epoch)
        elif kind == "range":
            result = replay.range_scan(args[0], args[1], epoch=epoch)
        else:
            result = replay.multi_get(list(args[0]), epoch=epoch)
        assert serialization.encode(_canonical(result.value)) == expected, (
            f"{kind}{args} diverged at epoch {epoch}"
        )
