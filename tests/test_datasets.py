"""Tests for the synthetic dataset generators and delta mutators.

The load-bearing invariant: applying a delta's records to the old dataset
must produce exactly the delta's ``new_*`` dataset — the incremental
engines rely on it.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.kvpair import Op
from repro.datasets.graphs import (
    mutate_web_graph,
    mutate_weighted_graph,
    powerlaw_web_graph,
    weighted_graph_from,
)
from repro.datasets.matrices import block_matrix, mutate_matrix
from repro.datasets.points import gaussian_points, mutate_points
from repro.datasets.text import new_tweets, zipf_tweets


def apply_delta_to_dict(base: dict, records, value_unwrap=None) -> dict:
    """Replay +/- records over a dict (the engines' view of a delta)."""
    out = dict(base)
    for rec in records:
        if rec.op is Op.DELETE:
            assert rec.key in out, f"deleting missing key {rec.key}"
            del out[rec.key]
        else:
            out[rec.key] = rec.value
    return out


class TestWebGraph:
    def test_deterministic(self):
        a = powerlaw_web_graph(100, 5, seed=3)
        b = powerlaw_web_graph(100, 5, seed=3)
        assert a.out_links == b.out_links

    def test_different_seeds_differ(self):
        a = powerlaw_web_graph(100, 5, seed=3)
        b = powerlaw_web_graph(100, 5, seed=4)
        assert a.out_links != b.out_links

    def test_size_and_targets_valid(self):
        graph = powerlaw_web_graph(200, 6, seed=1)
        assert graph.num_vertices == 200
        for v, links in graph.out_links.items():
            assert v not in links  # no self loops
            assert all(0 <= j < 200 for j in links)

    def test_skewed_in_degree(self):
        graph = powerlaw_web_graph(500, 8, seed=1)
        in_deg = {}
        for links in graph.out_links.values():
            for j in links:
                in_deg[j] = in_deg.get(j, 0) + 1
        degrees = sorted(in_deg.values(), reverse=True)
        # Hubs: the top vertex collects far more than the median.
        assert degrees[0] > 10 * max(1, degrees[len(degrees) // 2])

    def test_payload_attached(self):
        graph = powerlaw_web_graph(50, 4, seed=1, payload_bytes=64)
        links, payload = graph.value_of(0)
        assert len(payload) == 64

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            powerlaw_web_graph(1)


class TestWebGraphDelta:
    def test_delta_replays_to_new_graph(self):
        graph = powerlaw_web_graph(150, 5, seed=2, payload_bytes=16)
        delta = mutate_web_graph(graph, 0.2, seed=9)
        base = {v: graph.value_of(v) for v in graph.out_links}
        replayed = apply_delta_to_dict(base, delta.records)
        expected = {
            v: delta.new_graph.value_of(v) for v in delta.new_graph.out_links
        }
        assert replayed == expected

    def test_change_volume_tracks_fraction(self):
        graph = powerlaw_web_graph(400, 5, seed=2)
        small = mutate_web_graph(graph, 0.01, seed=3)
        large = mutate_web_graph(graph, 0.3, seed=3)
        assert small.num_changed_records < large.num_changed_records

    def test_zero_fraction_no_change(self):
        graph = powerlaw_web_graph(100, 5, seed=2)
        delta = mutate_web_graph(graph, 0.0, seed=3)
        assert delta.records == []
        assert delta.new_graph.out_links == graph.out_links

    def test_no_dangling_links_after_deletion(self):
        graph = powerlaw_web_graph(300, 6, seed=5)
        delta = mutate_web_graph(graph, 0.3, seed=6)
        alive = set(delta.new_graph.out_links)
        for v, links in delta.new_graph.out_links.items():
            for j in links:
                assert j in alive, f"dangling link {v}->{j}"

    def test_invalid_fraction(self):
        graph = powerlaw_web_graph(50, 4, seed=1)
        with pytest.raises(ValueError):
            mutate_web_graph(graph, 1.5)

    @given(st.floats(min_value=0.0, max_value=0.5), st.integers(0, 50))
    @settings(max_examples=25, deadline=None)
    def test_replay_property(self, fraction, seed):
        graph = powerlaw_web_graph(80, 4, seed=1)
        delta = mutate_web_graph(graph, fraction, seed=seed)
        base = {v: graph.value_of(v) for v in graph.out_links}
        replayed = apply_delta_to_dict(base, delta.records)
        expected = {
            v: delta.new_graph.value_of(v) for v in delta.new_graph.out_links
        }
        assert replayed == expected


class TestWeightedGraph:
    def test_weights_positive(self):
        graph = weighted_graph_from(powerlaw_web_graph(100, 5, seed=2), seed=3)
        for links in graph.out_links.values():
            assert all(w > 0 for _, w in links)

    def test_topology_preserved(self):
        base = powerlaw_web_graph(100, 5, seed=2)
        graph = weighted_graph_from(base, seed=3)
        for v in base.out_links:
            assert tuple(j for j, _ in graph.out_links[v]) == base.out_links[v]

    def test_delta_replays(self):
        base = powerlaw_web_graph(120, 5, seed=2)
        graph = weighted_graph_from(base, seed=3)
        delta = mutate_weighted_graph(graph, 0.2, seed=4)
        old = {v: graph.value_of(v) for v in graph.out_links}
        replayed = apply_delta_to_dict(old, delta.records)
        expected = {
            v: delta.new_graph.value_of(v) for v in delta.new_graph.out_links
        }
        assert replayed == expected


class TestPoints:
    def test_deterministic(self):
        a = gaussian_points(100, dim=4, k=4, seed=2)
        b = gaussian_points(100, dim=4, k=4, seed=2)
        assert a.points == b.points
        assert a.initial_centroids == b.initial_centroids

    def test_centroids_are_points(self):
        ds = gaussian_points(100, dim=4, k=4, seed=2)
        assert len(ds.initial_centroids) == 4
        point_values = set(ds.points.values())
        for _, cval in ds.initial_centroids:
            assert cval in point_values

    def test_delta_replays(self):
        ds = gaussian_points(150, dim=3, k=3, seed=2)
        delta = mutate_points(ds, 0.2, seed=5)
        replayed = apply_delta_to_dict(dict(ds.points), delta.records)
        assert replayed == delta.new_dataset.points

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            gaussian_points(3, dim=2, k=8)


class TestMatrices:
    def test_deterministic(self):
        a = block_matrix(4, 16, 0.05, seed=1)
        b = block_matrix(4, 16, 0.05, seed=1)
        assert a.blocks == b.blocks

    def test_block_coordinates_in_range(self):
        ds = block_matrix(4, 16, 0.05, seed=1)
        for (bi, bj), triples in ds.blocks.items():
            assert 0 <= bi < 4 and 0 <= bj < 4
            for r, c, v in triples:
                assert 0 <= r < 16 and 0 <= c < 16

    def test_column_normalized(self):
        ds = block_matrix(3, 20, 0.2, seed=1)
        col_sums = {}
        for (bi, bj), triples in ds.blocks.items():
            for r, c, v in triples:
                col_sums[bj * 20 + c] = col_sums.get(bj * 20 + c, 0.0) + v
        # Occupied columns sum to ~1 (normalization keeps GIM-V bounded).
        assert all(0.9 < s < 1.1 for s in col_sums.values())

    def test_delta_replays(self):
        ds = block_matrix(4, 16, 0.08, seed=1)
        delta = mutate_matrix(ds, 0.25, seed=2)
        replayed = apply_delta_to_dict(dict(ds.blocks), delta.records)
        assert replayed == delta.new_dataset.blocks

    def test_validation(self):
        with pytest.raises(ValueError):
            block_matrix(0, 16)
        with pytest.raises(ValueError):
            block_matrix(4, 16, density=0.0)


class TestTweets:
    def test_deterministic(self):
        a = zipf_tweets(100, seed=4)
        b = zipf_tweets(100, seed=4)
        assert a.tweets == b.tweets
        assert a.candidate_pairs == b.candidate_pairs

    def test_zipf_head_dominates(self):
        ds = zipf_tweets(2000, vocab_size=300, seed=4)
        counts = {}
        for text in ds.tweets.values():
            for word in text.split():
                counts[word] = counts.get(word, 0) + 1
        top = max(counts.values())
        assert top > 20 * (sum(counts.values()) / len(counts))

    def test_delta_is_insert_only(self):
        ds = zipf_tweets(200, seed=4)
        delta = new_tweets(ds, 0.1, seed=5)
        assert all(rec.op is Op.INSERT for rec in delta.records)
        assert len(delta.records) == 20
        replayed = apply_delta_to_dict(dict(ds.tweets), delta.records)
        assert replayed == delta.new_dataset.tweets

    def test_validation(self):
        with pytest.raises(ValueError):
            zipf_tweets(0)
        with pytest.raises(ValueError):
            new_tweets(zipf_tweets(10, seed=1), -0.1)
