"""Tests for the on-disk MRBG-Store: chunks, index, windows, batches,
persistence, compaction and metrics."""

from __future__ import annotations

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import StoreClosedError, StoreError
from repro.common.kvpair import Op
from repro.mrbgraph.chunk import chunk_size, decode_chunk, encode_chunk
from repro.mrbgraph.graph import DeltaEdge, Edge
from repro.mrbgraph.store import MRBGStore
from repro.mrbgraph.windows import (
    IndexOnlyPolicy,
    MultiDynamicWindowPolicy,
    MultiFixedWindowPolicy,
    SingleFixedWindowPolicy,
)


def make_store(tmp_path, policy=None, **kwargs) -> MRBGStore:
    return MRBGStore(str(tmp_path / "store"), policy=policy, **kwargs)


def build_chunks(n, edges_per_chunk=3):
    return [
        (k2, [Edge(mk, float(k2 * 10 + mk)) for mk in range(edges_per_chunk)])
        for k2 in range(n)
    ]


class TestChunkCodec:
    def test_roundtrip(self):
        entries = [Edge(1, "a"), Edge(2, 3.5)]
        raw = encode_chunk("key", entries)
        k2, decoded, consumed = decode_chunk(raw)
        assert k2 == "key"
        assert decoded == entries
        assert consumed == len(raw)

    def test_chunk_size_matches(self):
        entries = [Edge(1, (2, 3))]
        assert chunk_size("k", entries) == len(encode_chunk("k", entries))

    def test_empty_chunk(self):
        raw = encode_chunk(5, [])
        k2, decoded, _ = decode_chunk(raw)
        assert k2 == 5
        assert decoded == []


class TestBuildAndGet:
    def test_build_then_get(self, tmp_path):
        store = make_store(tmp_path)
        store.build(build_chunks(20))
        assert len(store) == 20
        assert store.get_chunk(7) == [Edge(0, 70.0), Edge(1, 71.0), Edge(2, 72.0)]
        store.close()

    def test_get_missing_returns_none(self, tmp_path):
        store = make_store(tmp_path)
        store.build(build_chunks(3))
        assert store.get_chunk(99) is None
        store.close()

    def test_keys_sorted(self, tmp_path):
        store = make_store(tmp_path)
        store.build([(k, [Edge(0, k)]) for k in [5, 1, 3]])
        assert store.keys() == [1, 3, 5]
        store.close()

    def test_real_file_on_disk(self, tmp_path):
        store = make_store(tmp_path)
        store.build(build_chunks(10))
        path = os.path.join(store.directory, "mrbg.dat")
        assert os.path.getsize(path) == store.file_size > 0
        store.close()

    def test_contains(self, tmp_path):
        store = make_store(tmp_path)
        store.build(build_chunks(3))
        assert 1 in store
        assert 99 not in store
        store.close()


class TestMergeDelta:
    def test_merge_updates_and_deletes(self, tmp_path):
        store = make_store(tmp_path)
        store.build(build_chunks(5))
        delta = [
            (1, [DeltaEdge(0, 999.0, Op.INSERT)]),
            (2, [DeltaEdge(mk, None, Op.DELETE) for mk in range(3)]),
        ]
        merged = dict(store.merge_delta(delta))
        assert merged[1][0] == Edge(0, 999.0)
        assert merged[2] == []
        assert store.get_chunk(2) is None
        assert store.get_chunk(1)[0].value == 999.0
        store.close()

    def test_merge_creates_new_chunk(self, tmp_path):
        store = make_store(tmp_path)
        store.build(build_chunks(2))
        list(store.merge_delta([(77, [DeltaEdge(1, "new", Op.INSERT)])]))
        assert store.get_chunk(77) == [Edge(1, "new")]
        store.close()

    def test_each_merge_appends_a_batch(self, tmp_path):
        store = make_store(tmp_path)
        store.build(build_chunks(10))
        assert store.num_batches == 1
        for generation in range(3):
            list(store.merge_delta(
                [(k, [DeltaEdge(0, float(generation), Op.INSERT)])
                 for k in range(0, 10, 2)]
            ))
        assert store.num_batches == 4
        # Old versions remain until compaction: file exceeds live bytes.
        assert store.file_size > store.live_bytes()
        store.close()

    def test_latest_version_wins_across_batches(self, tmp_path):
        store = make_store(tmp_path)
        store.build(build_chunks(4))
        list(store.merge_delta([(1, [DeltaEdge(0, "v2", Op.INSERT)])]))
        list(store.merge_delta([(1, [DeltaEdge(0, "v3", Op.INSERT)])]))
        assert store.get_chunk(1)[0].value == "v3"
        store.close()

    def test_nested_session_raises(self, tmp_path):
        store = make_store(tmp_path)
        store.build(build_chunks(2))
        store.begin_merge([0])
        with pytest.raises(StoreError):
            store.begin_merge([1])
        store.end_merge()
        store.close()

    def test_put_outside_session_raises(self, tmp_path):
        store = make_store(tmp_path)
        with pytest.raises(StoreError):
            store.put_chunk(1, [])
        store.close()


class TestWindowPolicies:
    @pytest.mark.parametrize(
        "policy_factory",
        [
            IndexOnlyPolicy,
            lambda: SingleFixedWindowPolicy(window_size=4096),
            lambda: MultiFixedWindowPolicy(window_size=2048),
            MultiDynamicWindowPolicy,
        ],
    )
    def test_all_policies_read_correctly(self, tmp_path, policy_factory):
        store = make_store(tmp_path, policy=policy_factory())
        store.build(build_chunks(50))
        list(store.merge_delta(
            [(k, [DeltaEdge(0, -1.0, Op.INSERT)]) for k in range(0, 50, 3)]
        ))
        # Every chunk readable and correct regardless of policy.
        for k in range(50):
            chunk = store.get_chunk(k)
            expected_first = -1.0 if k % 3 == 0 else float(k * 10)
            assert chunk[0].value == expected_first
        store.close()

    def test_index_only_issues_most_reads(self, tmp_path):
        def count_reads(policy):
            store = MRBGStore(str(tmp_path / repr(policy.__class__.__name__)),
                              policy=policy)
            store.build(build_chunks(200))
            keys = list(range(0, 200, 2))
            store.begin_merge(keys)
            for k in keys:
                store.get_chunk(k)
            store.end_merge()
            reads = store.metrics.io_reads
            store.close()
            return reads

        assert count_reads(IndexOnlyPolicy()) > count_reads(
            MultiDynamicWindowPolicy()
        )

    def test_dynamic_window_prefetch_hits_cache(self, tmp_path):
        store = make_store(tmp_path, policy=MultiDynamicWindowPolicy())
        store.build(build_chunks(100))
        keys = list(range(100))
        store.begin_merge(keys)
        for k in keys:
            store.get_chunk(k)
        store.end_merge()
        assert store.metrics.cache_hits > store.metrics.cache_misses
        store.close()


class TestPersistence:
    def test_save_and_reopen(self, tmp_path):
        store = make_store(tmp_path)
        store.build(build_chunks(10))
        list(store.merge_delta([(3, [DeltaEdge(0, "updated", Op.INSERT)])]))
        store.save_index()
        store.close()

        reopened = MRBGStore.open(str(tmp_path / "store"))
        assert len(reopened) == 10
        assert reopened.get_chunk(3)[0].value == "updated"
        assert reopened.num_batches == 2
        reopened.close()

    def test_closed_store_raises(self, tmp_path):
        store = make_store(tmp_path)
        store.build(build_chunks(2))
        store.close()
        with pytest.raises(StoreClosedError):
            store.get_chunk(1)
        store.close()  # second close is a no-op


class TestCompaction:
    def test_compact_preserves_content(self, tmp_path):
        store = make_store(tmp_path)
        store.build(build_chunks(30))
        for generation in range(4):
            list(store.merge_delta(
                [(k, [DeltaEdge(0, float(generation), Op.INSERT)])
                 for k in range(0, 30, 2)]
            ))
        before = {k: store.get_chunk(k) for k in store.keys()}
        old_size = store.file_size
        store.compact()
        assert store.num_batches == 1
        assert store.file_size < old_size
        assert store.file_size == store.live_bytes()
        after = {k: store.get_chunk(k) for k in store.keys()}
        assert before == after
        store.close()

    def test_compact_during_session_raises(self, tmp_path):
        store = make_store(tmp_path)
        store.build(build_chunks(2))
        store.begin_merge([0])
        with pytest.raises(StoreError):
            store.compact()
        store.end_merge()
        store.close()

    def test_compact_tracked_separately(self, tmp_path):
        store = make_store(tmp_path)
        store.build(build_chunks(10))
        read_before = store.metrics.read_time_s
        store.compact()
        assert store.metrics.compactions == 1
        assert store.metrics.compact_time_s > 0
        # Compaction time never leaks into read/write time.
        assert store.metrics.read_time_s == read_before
        store.close()


class TestMetrics:
    def test_bytes_read_measured(self, tmp_path):
        store = make_store(tmp_path, policy=IndexOnlyPolicy())
        store.build(build_chunks(10))
        store.metrics.reset()
        store.begin_merge([4])
        chunk_bytes = chunk_size(4, store.get_chunk(4))
        store.end_merge()
        assert store.metrics.bytes_read == chunk_bytes
        assert store.metrics.io_reads == 1
        store.close()

    def test_snapshot_since(self, tmp_path):
        store = make_store(tmp_path)
        store.build(build_chunks(10))
        snap = store.metrics.snapshot()
        list(store.merge_delta([(1, [DeltaEdge(0, 1.0, Op.INSERT)])]))
        delta = store.metrics.since(snap)
        assert delta.io_reads >= 1
        assert delta.bytes_written > 0
        store.close()


# Property test: an arbitrary interleaving of merges matches a dict model.
_delta_ops = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=9),   # k2
        st.integers(min_value=0, max_value=4),   # mk
        st.integers(min_value=-100, max_value=100),  # value
        st.booleans(),  # delete?
    ),
    min_size=1,
    max_size=30,
)


class TestStoreModelProperty:
    @given(st.lists(_delta_ops, min_size=1, max_size=4))
    @settings(max_examples=50, deadline=None)
    def test_merges_match_dict_model(self, tmp_path_factory, batches):
        tmp = tmp_path_factory.mktemp("store-prop")
        store = MRBGStore(str(tmp))
        store.build([(k, [Edge(0, 0)]) for k in range(10)])
        model = {k: {0: 0} for k in range(10)}

        for batch in batches:
            grouped = {}
            for k2, mk, value, is_delete in batch:
                grouped.setdefault(k2, []).append(
                    DeltaEdge(mk, None if is_delete else value,
                              Op.DELETE if is_delete else Op.INSERT)
                )
                chunk = model.setdefault(k2, {})
                if is_delete:
                    chunk.pop(mk, None)
                else:
                    chunk[mk] = value
            list(store.merge_delta(sorted(grouped.items())))

        for k in range(10):
            expected = model.get(k, {})
            actual = store.get_chunk(k)
            if not expected:
                assert actual is None or actual == []
            else:
                assert actual == [Edge(mk, expected[mk]) for mk in sorted(expected)]
        store.close()
